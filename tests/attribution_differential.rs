//! Cross-level differential tests for the power-attribution profiler:
//! on every circuit generator, the per-node attribution must reconcile
//! with the aggregate [`PowerReport`] under both Monte-Carlo kernels'
//! simulators (scalar [`ZeroDelaySim`] and packed [`Sim64`]), the two
//! kernels must attribute *identical* energy node-for-node (their
//! activities are bit-identical by the sim64 differential contract),
//! and the rollups must partition the totals exactly.

use hlpower::netlist::{
    attribute, gen, streams, Activity, AttributionReport, Library, McKernel, Netlist, Sim64,
    WideSim, Word, ZeroDelaySim, LANES, W256, W512,
};
use hlpower_rng::Rng;

const CYCLES: usize = 96;
const SEED: u64 = 0x5EED;

/// The same six generators the golden-snapshot suite covers.
fn generators() -> Vec<(&'static str, Netlist)> {
    gen::benchmark_suite()
}

/// The lane-collapsed activity of one packed run over `W::LANES`
/// split-seed streams. Lanes beyond the scalar reference's 64 reuse the
/// same split indices modulo 64, so every width sees the same *multiset*
/// of streams scaled by `W::LANES / 64` and per-node toggle totals stay
/// comparable after normalization — here we only need the 64-lane-width
/// case to match the scalar reference exactly, so wider runs use 64
/// distinct streams each repeated `W::LANES / 64` times and divide.
fn packed_activity<W: Word>(nl: &Netlist, repeat: bool) -> Activity {
    let w = nl.input_count();
    let root = Rng::seed_from_u64(SEED);
    let mut sim = WideSim::<W>::new(nl).expect("acyclic");
    let mut lanes: Vec<_> = (0..W::LANES)
        .map(|l| {
            let split = if repeat { (l % LANES) as u64 } else { l as u64 };
            streams::random_rng(root.split(split), w)
        })
        .collect();
    let mut words = vec![W::zero(); w];
    for _ in 0..CYCLES {
        words.iter_mut().for_each(|word| *word = W::zero());
        for (l, lane) in lanes.iter_mut().enumerate() {
            let v = lane.next().expect("infinite stream");
            for (word, &bit) in words.iter_mut().zip(&v) {
                word.set_lane(l, bit);
            }
        }
        sim.step(&words).expect("width");
    }
    sim.take_activity()
}

/// The activity a kernel's simulator produces for 64 split-seed streams
/// of `CYCLES` vectors each: 64 merged scalar runs for
/// [`McKernel::Scalar`], one lane-collapsed packed run for the packed
/// kernels. The 256/512-lane kernels drive the same 64 streams repeated
/// across their extra lanes (4x/8x every toggle count), then divide the
/// totals back down — exact, since every toggle count is an integer
/// multiple of the repetition factor.
fn kernel_activity(nl: &Netlist, kernel: McKernel) -> Activity {
    let w = nl.input_count();
    let root = Rng::seed_from_u64(SEED);
    let rescale = |mut act: Activity, factor: u64| {
        for t in &mut act.toggles {
            assert_eq!(*t % factor, 0, "repeated lanes must toggle identically");
            *t /= factor;
        }
        act.cycles /= factor;
        act
    };
    match kernel {
        McKernel::Scalar => {
            let mut total = Activity::zero(nl);
            for l in 0..LANES {
                let mut sim = ZeroDelaySim::new(nl).expect("acyclic");
                for v in streams::random_rng(root.split(l as u64), w).take(CYCLES) {
                    sim.step(&v).expect("width");
                }
                total.merge(&sim.take_activity()).expect("same netlist");
            }
            total
        }
        McKernel::Packed64 => packed_activity::<u64>(nl, false),
        McKernel::Packed256 => rescale(packed_activity::<W256>(nl, true), 4),
        McKernel::Packed512 => rescale(packed_activity::<W512>(nl, true), 8),
        McKernel::Auto => kernel_activity(nl, McKernel::Packed64),
    }
}

fn attribute_under(nl: &Netlist, kernel: McKernel) -> AttributionReport {
    let lib = Library::default();
    let act = kernel_activity(nl, kernel);
    let report = attribute(nl, &lib, &act);
    report
        .reconcile(&act.power(nl, &lib))
        .unwrap_or_else(|e| panic!("{kernel:?} attribution does not reconcile: {e}"));
    report
}

/// Every kernel's attribution reconciles with its power report and is
/// identical to the others' — every node label, toggle count, and
/// energy, at every packed width.
#[test]
fn attribution_is_kernel_independent_on_every_generator() {
    for (name, nl) in generators() {
        let scalar = attribute_under(&nl, McKernel::Scalar);
        for kernel in [McKernel::Packed64, McKernel::Packed256, McKernel::Packed512] {
            let packed = attribute_under(&nl, kernel);
            assert_eq!(
                scalar, packed,
                "{name}: scalar and {kernel:?} kernels attributed different energy"
            );
        }
        assert!(!scalar.nodes.is_empty(), "{name}: nothing toggled");
    }
}

/// The rollups partition the totals: per-node energies (plus the clock
/// term) and per-group energies each sum to `total_energy_fj`, per-bus
/// rollups never exceed it, and the hotspot list is sorted.
#[test]
fn rollups_partition_the_totals_on_every_generator() {
    let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
    for (name, nl) in generators() {
        let r = attribute_under(&nl, McKernel::Packed64);
        let node_sum: f64 = r.nodes.iter().map(|n| n.energy_fj).sum();
        assert!(
            rel(node_sum + r.clock_energy_fj, r.total_energy_fj) < 1e-9,
            "{name}: node energies + clock do not sum to the total"
        );
        assert!(
            rel(r.group_energy_sum_fj(), r.total_energy_fj) < 1e-9,
            "{name}: group rollup does not sum to the total"
        );
        let bus_sum: f64 = r.by_bus.values().map(|b| b.energy_fj).sum();
        assert!(
            bus_sum <= r.total_energy_fj * (1.0 + 1e-9),
            "{name}: bus rollup exceeds the total"
        );
        let group_nodes: usize = r.by_group.values().map(|g| g.nodes).sum();
        // The clock pseudo-entry contributes no node of its own.
        assert_eq!(group_nodes, r.nodes.len(), "{name}: group node counts do not partition");
        for pair in r.nodes.windows(2) {
            assert!(pair[0].energy_fj >= pair[1].energy_fj, "{name}: hotspots not sorted");
        }
    }
}

/// Attribution is insensitive to *how* the same activity was accumulated:
/// merging the 64 per-lane activities of one packed run attributes
/// identically to the lane-collapsed activity of the same run.
#[test]
fn lane_merge_order_does_not_change_attribution() {
    let lib = Library::default();
    for (name, nl) in generators() {
        let w = nl.input_count();
        let root = Rng::seed_from_u64(SEED);
        let mut sim = Sim64::new(&nl).expect("acyclic");
        let mut lanes: Vec<_> =
            (0..LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
        let mut words = vec![0u64; w];
        for _ in 0..CYCLES {
            words.iter_mut().for_each(|word| *word = 0);
            for (l, lane) in lanes.iter_mut().enumerate() {
                let v = lane.next().expect("infinite stream");
                for (word, bit) in words.iter_mut().zip(&v) {
                    *word |= u64::from(*bit) << l;
                }
            }
            sim.step(&words).expect("width");
        }
        let mut merged = Activity::zero(&nl);
        for lane_act in sim.take_lane_activities() {
            merged.merge(&lane_act).expect("same netlist");
        }
        let collapsed = kernel_activity(&nl, McKernel::Packed64);
        assert_eq!(merged, collapsed, "{name}: lane merge changed the activity");
        assert_eq!(
            attribute(&nl, &lib, &merged),
            attribute(&nl, &lib, &collapsed),
            "{name}: lane merge changed the attribution"
        );
    }
}
