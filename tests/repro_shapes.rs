//! Fast reproductions of the survey's headline quantitative claims — the
//! same shapes the bench harness regenerates, asserted as invariants so a
//! regression in any crate trips CI before it corrupts EXPERIMENTS.md.

use hlpower::netlist::{streams, Library};

/// Table I: constant-multiplication conversion cuts execution-unit
/// capacitance by several x and total capacitance by ~2-3x, while control
/// logic capacitance *rises*.
#[test]
fn table1_shape() {
    use hlpower::cdfg::{rtl, transform};
    let costs = rtl::RtlCosts::default();
    let taps = [9i64, 23, 51, 89, 119, 131, 119, 89, 51, 23, 9];
    let before = transform::fir_cdfg(&taps, 16);
    let after = transform::strength_reduce_const_mults(&before);
    let b = rtl::quick_estimate(&before, 11, &costs);
    let a = rtl::quick_estimate(&after, 11, &costs);
    assert!(
        b.execution_units_pf / a.execution_units_pf > 3.0,
        "exec ratio {:.1}",
        b.execution_units_pf / a.execution_units_pf
    );
    assert!(b.total_pf() / a.total_pf() > 1.5, "total ratio {:.2}", b.total_pf() / a.total_pf());
    assert!(a.control_logic_pf > b.control_logic_pf, "control must rise");
}

/// Figs. 4/5: Horner needs fewer multipliers; for the cubic it lengthens
/// the critical path, for the quadratic both paths are short.
#[test]
fn figs_4_5_shape() {
    use hlpower::cdfg::{schedule, transform, Delays};
    let delays = Delays::unit();
    for degree in [2usize, 3] {
        let d = transform::polynomial_direct(degree, 16);
        let h = transform::polynomial_horner(degree, 16);
        assert!(h.op_counts()["mul"] < d.op_counts()["mul"], "degree {degree}");
        if degree == 3 {
            assert!(
                schedule::asap(&h, &delays).makespan > schedule::asap(&d, &delays).makespan,
                "cubic Horner serializes"
            );
        }
    }
}

/// §II-A: the Tiwari model predicts program energy within ~10%.
#[test]
fn tiwari_shape() {
    use hlpower::sw::{tiwari, workloads, MachineConfig};
    let config = MachineConfig::default();
    let model = tiwari::characterize(&config);
    let (_, _, rel) = model.validate(&config, &workloads::fir(32, 6), 10_000_000).expect("halts");
    assert!(rel < 0.10, "error {rel:.3}");
}

/// §II-C2: sampler macro-modeling is dramatically cheaper at small error;
/// adaptive macro-modeling repairs training bias.
#[test]
fn sampling_shape() {
    use hlpower::estimate::sampling::{cosimulate, CosimStrategy};
    use hlpower::estimate::{MacroModelKind, ModuleHarness, TrainedMacroModel};
    let h = ModuleHarness::adder(8, Library::default());
    let train = h.trace(streams::random(1, 16).take(1500)).expect("ok");
    let pfa = TrainedMacroModel::fit(MacroModelKind::Pfa, &train).expect("ok");
    let app = h.trace(streams::correlated(2, 16, 0.15).take(5000)).expect("ok");
    let census = cosimulate(&pfa, &app, CosimStrategy::Census, 1).expect("ok");
    let sampler = cosimulate(&pfa, &app, CosimStrategy::Sampler { groups: 4, group_size: 30 }, 2)
        .expect("ok");
    let adaptive =
        cosimulate(&pfa, &app, CosimStrategy::Adaptive { gate_cycles: 400 }, 3).expect("ok");
    assert!(census.cost() / sampler.cost() > 20.0, "sampler speedup");
    assert!(census.error > 0.2, "pseudorandom-trained census is biased here");
    assert!(adaptive.error < 0.1, "adaptive repairs the bias: {adaptive:?}");
}

/// §III-B: predictive shutdown reaches multi-x improvement at a few
/// percent performance penalty, bounded by 1 + T_I/T_A.
#[test]
fn shutdown_shape() {
    use hlpower::optimize::shutdown::{self, policies::HwangWu};
    let device = shutdown::DeviceModel::default();
    let w = shutdown::bursty_workload(11, 3000);
    let mut hw = HwangWu::new(&device, 0.5, false);
    let r = shutdown::simulate(&mut hw, &device, &w);
    assert!(r.improvement > 3.0 && r.improvement < shutdown::improvement_upper_bound(&w));
    assert!(r.performance_penalty < 0.05);
}

/// §III-G: the codec ranking per stream family.
#[test]
fn bus_encoding_shape() {
    use hlpower::optimize::buscode::*;
    let seq = traces::sequential(64, 1500);
    let t_gray =
        transitions_per_word(Box::new(GrayCode::new(16)), Box::new(GrayCode::new(16)), &seq);
    let t_t0 = transitions_per_word(Box::new(T0Code::new(16)), Box::new(T0Code::new(16)), &seq);
    let t_plain =
        transitions_per_word(Box::new(Unencoded::new(16)), Box::new(Unencoded::new(16)), &seq);
    assert!((t_gray - 1.0).abs() < 1e-9);
    assert!(t_t0 < 0.01);
    assert!(t_plain > 1.5);
}

/// §II-B1: Tyagi's bound holds for every encoding on random machines.
#[test]
fn tyagi_shape() {
    use hlpower::fsm::{generators, tyagi_bound, Encoding, MarkovAnalysis};
    for seed in 0..4 {
        let stg = generators::random_stg(2, 16, 1, seed);
        let m = MarkovAnalysis::uniform(&stg);
        for enc in [Encoding::binary(&stg), Encoding::one_hot(&stg), Encoding::gray(&stg)] {
            assert!(tyagi_bound(&stg, &m, &enc).holds(), "seed {seed}");
        }
    }
}

/// §III-I: all three shutdown-logic techniques save power on their
/// canonical circuit classes.
#[test]
fn shutdown_logic_shape() {
    use hlpower::fsm::{generators, Encoding};
    use hlpower::optimize::{clockgate, guard, precompute};
    let lib = Library::default();
    // Precomputation on a comparator.
    let block = precompute::comparator_block(6);
    let stream: Vec<Vec<bool>> = streams::random(1, 12).take(1200).collect();
    let pc = precompute::evaluate(&block, 2, &stream, &lib).expect("ok");
    assert!(pc.saving() > 0.1, "precompute {:.2}", pc.saving());
    // Clock gating on a mostly-idle controller.
    let stg = generators::reactive_controller(8);
    let cg = clockgate::evaluate(&stg, &Encoding::one_hot(&stg), &lib, 2500, 2, 0.05).expect("ok");
    assert!(cg.saving() > 0.0, "clockgate {:.2}", cg.saving());
    // Guarded evaluation on a mux-dominated circuit.
    let nl = guard::guarded_mux_example(8);
    let cands = guard::find_candidates(&nl, &lib, 6).expect("ok");
    let g_stream: Vec<Vec<bool>> = streams::random(3, nl.input_count()).take(800).collect();
    let (base, guarded, ok) = guard::evaluate(&nl, &lib, &cands[0], &g_stream).expect("ok");
    assert!(ok && guarded < base);
}

/// §III-J: retiming a glitchy multiplier pipeline reduces power versus
/// output-only registers.
#[test]
fn retime_shape() {
    use hlpower::netlist::{gen, Netlist};
    use hlpower::optimize::retime;
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", 5);
    let b = nl.input_bus("b", 5);
    let p = gen::array_multiplier(&mut nl, &a, &b);
    nl.output_bus("p", &p);
    let lib = Library::default();
    let stream: Vec<Vec<bool>> = streams::random(4, 10).take(250).collect();
    let outcome = retime::low_power_retime(&nl, &lib, &stream, 4).expect("ok");
    assert!(outcome.saving() > 0.0, "{outcome:?}");
}

/// §III-F: two supply voltages cut energy versus one at mildly relaxed
/// latency.
#[test]
fn multivolt_shape() {
    use hlpower::cdfg::multivolt::{
        schedule_voltages, single_supply_energy_fj, single_supply_latency, VoltageModel,
    };
    use hlpower::cdfg::{rtl, transform, Delays};
    let g = transform::polynomial_horner(2, 16);
    let delays = Delays::default();
    let model = VoltageModel::default();
    let costs = rtl::RtlCosts::default();
    let t = single_supply_latency(&g, &delays, &model, 3.3, 3.3);
    let va = schedule_voltages(&g, &delays, &costs, &[3.3, 2.4, 1.8], &model, t * 1.6)
        .expect("feasible");
    let baseline = single_supply_energy_fj(&g, &costs, 3.3);
    assert!(va.energy_fj < 0.8 * baseline, "{} vs {}", va.energy_fj, baseline);
}
