//! Regression test: an invalid `HLPOWER_THREADS` value must surface as an
//! error from the seeded Monte-Carlo entry point, not be silently clamped.
//!
//! This lives in its own integration-test binary because it mutates the
//! process environment: cargo runs test *binaries* sequentially, and the
//! single `#[test]` below keeps the env manipulation single-threaded
//! within the binary too.

use hlpower::netlist::{
    gen, monte_carlo_power_seeded, streams, Library, MonteCarloOptions, Netlist, NetlistError,
};

fn adder() -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", 4);
    let b = nl.input_bus("b", 4);
    let c0 = nl.constant(false);
    let s = gen::ripple_adder(&mut nl, &a, &b, c0);
    nl.output_bus("s", &s);
    nl
}

#[test]
fn hlpower_threads_zero_is_an_error_not_a_clamp() {
    let nl = adder();
    let lib = Library::default();
    let w = nl.input_count();
    let opts = MonteCarloOptions { batch_cycles: 50, max_batches: 8, ..Default::default() };
    let run = || monte_carlo_power_seeded(&nl, &lib, |rng| streams::random_rng(rng, w), 3, &opts);

    // SAFETY: this is the only test in this binary, so no other thread is
    // reading or writing the environment concurrently.
    unsafe { std::env::set_var("HLPOWER_THREADS", "0") };
    assert!(
        matches!(run(), Err(NetlistError::InvalidThreadCount { .. })),
        "HLPOWER_THREADS=0 must be rejected"
    );

    unsafe { std::env::set_var("HLPOWER_THREADS", "not-a-number") };
    assert!(
        matches!(run(), Err(NetlistError::InvalidThreadCount { .. })),
        "unparseable HLPOWER_THREADS must be rejected"
    );

    unsafe { std::env::set_var("HLPOWER_THREADS", "2") };
    let ok = run().expect("valid explicit thread count");
    assert!(ok.power_uw > 0.0);

    unsafe { std::env::remove_var("HLPOWER_THREADS") };
    let default = run().expect("unset HLPOWER_THREADS falls back to available parallelism");
    // Same seed + any worker count => bit-identical result.
    assert_eq!(ok, default);
}
