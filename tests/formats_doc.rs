//! Executes `docs/FORMATS.md`: every fenced code block tagged `nl`,
//! `verilog`, or `edif` must parse cleanly with the matching front-end,
//! and blocks additionally tagged `error=<Variant>` must fail with
//! exactly that [`NetlistError`] variant. The formats reference can
//! therefore never drift from the parsers it documents.

use hlpower::netlist::{io, parse_edif, parse_verilog, NetlistError};

/// One fenced code block from the document.
struct Snippet {
    /// 1-based line of the opening fence (for failure messages).
    line: usize,
    /// `nl`, `verilog`, or `edif`.
    lang: String,
    /// Expected error variant name, or `None` for must-parse blocks.
    expect_error: Option<String>,
    body: String,
}

fn formats_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/FORMATS.md");
    std::fs::read_to_string(path).expect("docs/FORMATS.md exists")
}

/// Extracts the testable fenced blocks (` ```lang [error=Variant]`).
fn snippets(doc: &str) -> Vec<Snippet> {
    let mut out = Vec::new();
    let mut lines = doc.lines().enumerate();
    while let Some((i, line)) = lines.next() {
        let Some(info) = line.trim_start().strip_prefix("```") else {
            continue;
        };
        let mut words = info.split_whitespace();
        let lang = words.next().unwrap_or("").to_string();
        let expect_error = words.clone().find_map(|w| w.strip_prefix("error=")).map(str::to_string);
        let mut body = String::new();
        for (_, l) in lines.by_ref() {
            if l.trim_start().starts_with("```") {
                break;
            }
            body.push_str(l);
            body.push('\n');
        }
        if matches!(lang.as_str(), "nl" | "verilog" | "edif") {
            out.push(Snippet { line: i + 1, lang, expect_error, body });
        }
    }
    out
}

/// The Debug name of the variant an error is, e.g. `ParseUnknownCell`.
fn variant_name(e: &NetlistError) -> String {
    let dbg = format!("{e:?}");
    dbg.split(|c: char| !c.is_ascii_alphanumeric()).next().unwrap_or("").to_string()
}

fn parse_by_lang(lang: &str, src: &str) -> Result<(), NetlistError> {
    match lang {
        "verilog" => parse_verilog(src).map(|_| ()),
        "edif" => parse_edif(src).map(|_| ()),
        "nl" => io::parse_netlist(src).map(|_| ()).map_err(NetlistError::from),
        other => panic!("unhandled snippet language {other}"),
    }
}

#[test]
fn formats_doc_has_testable_snippets_for_every_format() {
    let doc = formats_md();
    let snips = snippets(&doc);
    for lang in ["nl", "verilog", "edif"] {
        assert!(
            snips.iter().any(|s| s.lang == lang && s.expect_error.is_none()),
            "docs/FORMATS.md has no must-parse `{lang}` example"
        );
        assert!(
            snips.iter().any(|s| s.lang == lang && s.expect_error.is_some()),
            "docs/FORMATS.md has no expected-error `{lang}` example"
        );
    }
}

#[test]
fn every_formats_doc_snippet_behaves_as_documented() {
    let doc = formats_md();
    for s in snippets(&doc) {
        let result = parse_by_lang(&s.lang, &s.body);
        match (&s.expect_error, result) {
            (None, Ok(())) => {}
            (None, Err(e)) => {
                panic!("FORMATS.md:{}: `{}` example failed to parse: {e}", s.line, s.lang)
            }
            (Some(want), Err(e)) => {
                let got = variant_name(&e);
                assert_eq!(
                    &got, want,
                    "FORMATS.md:{}: `{}` example raised {got} ({e}), documented as {want}",
                    s.line, s.lang
                );
            }
            (Some(want), Ok(())) => {
                panic!(
                    "FORMATS.md:{}: `{}` example parsed cleanly, documented to fail with {want}",
                    s.line, s.lang
                )
            }
        }
    }
}
