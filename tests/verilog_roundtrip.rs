//! Verilog emit → parse round trips for every generator circuit, golden
//! snapshots of the emitted text, and malformed-input coverage for every
//! parse-error variant of both external front-ends.
//!
//! Regenerate the `tests/golden/*.v` snapshots after an intentional
//! emitter change with:
//!
//! ```text
//! HLPOWER_BLESS=1 cargo test -q --offline -p hlpower --test verilog_roundtrip
//! ```

use std::path::PathBuf;

use hlpower::netlist::{
    emit_verilog, gen, parse_edif, parse_verilog, streams, structurally_equivalent, Activity,
    Netlist, NetlistError, Sim64, SourceFormat, LANES,
};
use hlpower_rng::Rng;

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// Every generator under test, as `(snapshot name, netlist)` — the same
/// six circuits the `.nl` golden suite covers.
fn generators() -> Vec<(&'static str, Netlist)> {
    let ripple = {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("sum", &s);
        nl
    };
    let multiplier = {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let p = gen::array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        nl
    };
    let alu = {
        let mut nl = Netlist::new();
        let op0 = nl.input("op0");
        let op1 = nl.input("op1");
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let y = gen::alu(&mut nl, [op0, op1], &a, &b);
        nl.output_bus("y", &y);
        nl
    };
    let comparator = {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 6);
        let b = nl.input_bus("b", 6);
        let eq = gen::equality(&mut nl, &a, &b);
        let lt = gen::less_than(&mut nl, &a, &b);
        nl.set_output("eq", eq);
        nl.set_output("lt", lt);
        nl
    };
    let fir = {
        let mut nl = Netlist::new();
        let x = nl.input_bus("x", 8);
        let y = gen::fir_filter(&mut nl, &x, &[7, 13, 7], true);
        nl.output_bus("y", &y);
        nl
    };
    let random = {
        let mut nl = Netlist::new();
        gen::random_logic(&mut nl, 2024, 6, 24, 3);
        nl
    };
    vec![
        ("ripple_adder", ripple),
        ("array_multiplier", multiplier),
        ("alu", alu),
        ("comparator", comparator),
        ("fir_shift_add", fir),
        ("random_logic", random),
    ]
}

/// 64-lane packed activity under the standard split-stream stimulus.
fn packed_activity(nl: &Netlist) -> Activity {
    const CYCLES: usize = 128;
    const SEED: u64 = 0x0DAC_1997;
    let width = nl.input_count();
    let mut sim = Sim64::new(nl).expect("generator circuits are acyclic");
    let root = Rng::seed_from_u64(SEED);
    let mut lanes: Vec<_> =
        (0..LANES as u64).map(|l| streams::random_rng(root.split(l), width)).collect();
    let mut words = vec![0u64; width];
    for _ in 0..CYCLES {
        words.iter_mut().for_each(|w| *w = 0);
        for (l, lane) in lanes.iter_mut().enumerate() {
            let vector = lane.next().expect("infinite stream");
            for (i, &bit) in vector.iter().enumerate() {
                if bit {
                    words[i] |= 1u64 << l;
                }
            }
        }
        sim.step(&words).expect("width matches");
    }
    sim.take_activity()
}

/// Every generator circuit survives `parse(emit_verilog(nl))` with full
/// structural equality and bit-identical packed-kernel activity.
#[test]
fn every_generator_round_trips_through_verilog() {
    for (name, nl) in generators() {
        let text = emit_verilog(&nl, name);
        let back =
            parse_verilog(&text).unwrap_or_else(|e| panic!("{name}: re-parse failed: {e}\n{text}"));
        structurally_equivalent(&nl, &back)
            .unwrap_or_else(|e| panic!("{name}: structural mismatch: {e}"));
        let a = packed_activity(&nl);
        let b = packed_activity(&back);
        assert_eq!(a.toggles, b.toggles, "{name}: packed toggle counts diverged");
        assert_eq!(a.cycles, b.cycles, "{name}: packed cycle counts diverged");
    }
}

/// `emit(parse(emit(nl)))` is a fixed point: the second emission is
/// byte-identical to the first.
#[test]
fn verilog_emission_is_a_fixed_point() {
    for (name, nl) in generators() {
        let text1 = emit_verilog(&nl, name);
        let back = parse_verilog(&text1).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let text2 = emit_verilog(&back, name);
        assert_eq!(text1, text2, "{name}: emit(parse(emit(nl))) differs from emit(nl)");
    }
}

/// Emitted Verilog matches the golden snapshots (`HLPOWER_BLESS=1`
/// regenerates them after an intentional emitter change).
#[test]
fn emitted_verilog_matches_golden_snapshots() {
    let bless = std::env::var_os("HLPOWER_BLESS").is_some();
    for (name, nl) in generators() {
        let text = emit_verilog(&nl, name);
        let path = golden_dir().join(format!("{name}.v"));
        if bless {
            std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
            std::fs::write(&path, &text).expect("write golden file");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{name}: missing golden file {} ({e}); run with HLPOWER_BLESS=1", path.display())
        });
        assert_eq!(
            text,
            golden,
            "{name}: emitted Verilog differs from {}; bless with HLPOWER_BLESS=1 if intended",
            path.display()
        );
    }
}

// ---------------------------------------------------------------------
// Malformed-input coverage: every parse-error variant of both external
// front-ends must fire with an accurate line/column position.
// ---------------------------------------------------------------------

/// Asserts `err` is the expected variant at the expected position.
macro_rules! expect_err {
    ($err:expr, $variant:ident, $fmt:expr, $line:expr, $col:expr) => {{
        match &$err {
            NetlistError::$variant { format, at, .. } => {
                assert_eq!(*format, $fmt, "wrong source format");
                assert_eq!((at.line, at.col), ($line, $col), "wrong position: {at}");
                assert!(!at.snippet.is_empty(), "empty snippet");
            }
            other => panic!(concat!("expected ", stringify!($variant), ", got {:?}"), other),
        }
    }};
}

#[test]
fn verilog_parse_syntax_reports_position() {
    // Missing semicolon: the parser trips on `endmodule` at line 3.
    let err = parse_verilog("module m (a, y);\n  input a\nendmodule\n").unwrap_err();
    expect_err!(err, ParseSyntax, SourceFormat::Verilog, 3, 1);
}

#[test]
fn verilog_unknown_name_reports_position() {
    let src = "module m (a, y);\n  input a;\n  output y;\n  not g0 (y, ghost);\nendmodule\n";
    let err = parse_verilog(src).unwrap_err();
    expect_err!(err, ParseUnknownName, SourceFormat::Verilog, 4, 14);
    assert!(err.to_string().contains("ghost"), "{err}");
}

#[test]
fn verilog_unknown_cell_reports_position() {
    let src =
        "module m (a, y);\n  input a;\n  output y;\n  FROBNICATE g0 (.Y(y), .A(a));\nendmodule\n";
    let err = parse_verilog(src).unwrap_err();
    expect_err!(err, ParseUnknownCell, SourceFormat::Verilog, 4, 3);
    assert!(err.to_string().contains("FROBNICATE"), "{err}");
}

#[test]
fn verilog_unsupported_reports_position() {
    let src = "module m (a, y);\n  input a;\n  output y;\n  initial y = a;\nendmodule\n";
    let err = parse_verilog(src).unwrap_err();
    expect_err!(err, ParseUnsupported, SourceFormat::Verilog, 4, 3);
}

#[test]
fn verilog_multiple_drivers_reports_position() {
    let src = "module m (a, y);\n  input a;\n  output y;\n  buf g0 (y, a);\n  not g1 (y, a);\nendmodule\n";
    let err = parse_verilog(src).unwrap_err();
    expect_err!(err, ParseMultipleDrivers, SourceFormat::Verilog, 5, 11);
    assert!(err.to_string().contains('y'), "{err}");
}

#[test]
fn verilog_undriven_reports_position() {
    let src = "module m (a, y);\n  input a;\n  output y;\nendmodule\n";
    let err = parse_verilog(src).unwrap_err();
    expect_err!(err, ParseUndriven, SourceFormat::Verilog, 3, 10);
    assert!(err.to_string().contains('y'), "{err}");
}

const EDIF_AND: &str = r#"(edif demo (edifVersion 2 0 0)
  (library work
    (cell AND2 (cellType GENERIC)
      (view netlist (viewType NETLIST)
        (interface (port A (direction INPUT))
                   (port B (direction INPUT))
                   (port Y (direction OUTPUT)))))
    (cell top (cellType GENERIC)
      (view netlist (viewType NETLIST)
        (interface (port a (direction INPUT))
                   (port b (direction INPUT))
                   (port y (direction OUTPUT)))
        (contents
          (instance g1 (viewRef netlist (cellRef AND2)))
          (net na (joined (portRef a) (portRef A (instanceRef g1))))
          (net nb (joined (portRef b) (portRef B (instanceRef g1))))
          (net ny (joined (portRef Y (instanceRef g1)) (portRef y)))))))
  (design demo (cellRef top)))
"#;

#[test]
fn edif_fixture_parses() {
    let nl = parse_edif(EDIF_AND).expect("fixture parses");
    assert_eq!(nl.input_count(), 2);
    assert_eq!(nl.gate_count(), 1);
}

#[test]
fn edif_parse_syntax_reports_position() {
    // Drop the final closer: the outermost `(edif` never closes.
    let src = EDIF_AND.trim_end().strip_suffix(')').unwrap().to_string();
    let err = parse_edif(&src).unwrap_err();
    expect_err!(err, ParseSyntax, SourceFormat::Edif, 1, 1);
}

#[test]
fn edif_unknown_name_reports_position() {
    let src = EDIF_AND.replace("(cellRef top))", "(cellRef missing))");
    let err = parse_edif(&src).unwrap_err();
    match err {
        NetlistError::ParseUnknownName { format, ref name, ref at, .. } => {
            assert_eq!(format, SourceFormat::Edif);
            assert_eq!(name, "missing");
            assert_eq!(at.line, 18, "{at}");
        }
        other => panic!("expected ParseUnknownName, got {other:?}"),
    }
}

#[test]
fn edif_unknown_cell_reports_position() {
    let src = EDIF_AND.replace("(cellRef AND2)", "(cellRef MYSTERY)");
    let err = parse_edif(&src).unwrap_err();
    match err {
        NetlistError::ParseUnknownCell { format, ref cell, ref at, .. } => {
            assert_eq!(format, SourceFormat::Edif);
            assert_eq!(cell, "MYSTERY");
            assert_eq!(at.line, 14, "{at}");
        }
        other => panic!("expected ParseUnknownCell, got {other:?}"),
    }
}

#[test]
fn edif_unsupported_reports_position() {
    let src = EDIF_AND.replace("(port b (direction INPUT))", "(port b (direction INOUT))");
    let err = parse_edif(&src).unwrap_err();
    match err {
        NetlistError::ParseUnsupported { format, ref at, .. } => {
            assert_eq!(format, SourceFormat::Edif);
            assert_eq!(at.line, 11, "{at}");
        }
        other => panic!("expected ParseUnsupported, got {other:?}"),
    }
}

#[test]
fn edif_multiple_drivers_reports_position() {
    // Join the interface input `a` onto the already-driven net ny.
    let src = EDIF_AND.replace(
        "(net ny (joined (portRef Y (instanceRef g1)) (portRef y))",
        "(net ny (joined (portRef Y (instanceRef g1)) (portRef a) (portRef y))",
    );
    let err = parse_edif(&src).unwrap_err();
    match err {
        NetlistError::ParseMultipleDrivers { format, ref name, ref at, .. } => {
            assert_eq!(format, SourceFormat::Edif);
            assert_eq!(name, "ny");
            assert_eq!(at.line, 17, "{at}");
        }
        other => panic!("expected ParseMultipleDrivers, got {other:?}"),
    }
}

#[test]
fn edif_undriven_reports_position() {
    // The output port y is never fed (its portRef disappears), though
    // the instance output still joins net ny.
    let src = EDIF_AND.replace(" (portRef y)", "");
    let err = parse_edif(&src).unwrap_err();
    match err {
        NetlistError::ParseUndriven { format, ref name, .. } => {
            assert_eq!(format, SourceFormat::Edif);
            assert_eq!(name, "y");
        }
        other => panic!("expected ParseUndriven, got {other:?}"),
    }
}
