//! Cross-level differential tests for the bit-parallel 64-lane compiled
//! simulator: on every circuit generator, one packed [`Sim64`] run must
//! be bit-identical — per-node toggle counts and cycle counts, lane by
//! lane — to 64 independent scalar [`ZeroDelaySim`] runs of the split
//! seed streams, and the seeded Monte-Carlo engine must return the same
//! bits regardless of kernel choice or thread count.

use hlpower::netlist::{
    gen, monte_carlo_power_seeded_threads, monte_carlo_power_seeded_threads_kernel, streams,
    Library, McKernel, MonteCarloOptions, Netlist, Sim64, ZeroDelaySim, LANES,
};
use hlpower_rng::Rng;

/// The same six generators the golden-snapshot suite covers (the shared
/// fixture behind the differential suites and `repro --profile`).
fn generators() -> Vec<(&'static str, Netlist)> {
    gen::benchmark_suite()
}

/// One packed run carrying 64 split-seed streams is bit-identical, lane
/// by lane, to 64 scalar runs of the same streams.
#[test]
fn packed_lanes_match_64_scalar_runs_on_every_generator() {
    const CYCLES: usize = 100;
    for (name, nl) in generators() {
        let w = nl.input_count();
        let root = Rng::seed_from_u64(99);

        // Reference: 64 independent scalar simulations.
        let scalar: Vec<_> = (0..LANES)
            .map(|l| {
                let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
                for v in streams::random_rng(root.split(l as u64), w).take(CYCLES) {
                    sim.step(&v).expect("width");
                }
                sim.take_activity()
            })
            .collect();

        // One packed simulation of the same 64 streams.
        let mut sim = Sim64::new(&nl).expect("acyclic");
        let mut lanes: Vec<_> =
            (0..LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
        let mut words = vec![0u64; w];
        for _ in 0..CYCLES {
            words.iter_mut().for_each(|word| *word = 0);
            for (l, lane) in lanes.iter_mut().enumerate() {
                let v = lane.next().expect("infinite stream");
                for (word, bit) in words.iter_mut().zip(&v) {
                    *word |= u64::from(*bit) << l;
                }
            }
            sim.step(&words).expect("width");
        }
        let packed = sim.take_lane_activities();

        assert_eq!(packed.len(), LANES, "{name}");
        for (l, (s, p)) in scalar.iter().zip(&packed).enumerate() {
            assert_eq!(s, p, "{name}: lane {l} diverged from scalar stream {l}");
        }
    }
}

/// The seeded Monte-Carlo engine returns the same bits for the scalar
/// kernel, the packed kernel, and the public entry point, at 1 and 4
/// threads alike.
#[test]
fn monte_carlo_is_bit_identical_across_kernels_and_thread_counts() {
    let lib = Library::default();
    let opts = MonteCarloOptions {
        batch_cycles: 60,
        max_batches: 80,
        target_relative_error: 0.01,
        z: 1.96,
    };
    for (name, nl) in generators() {
        let w = nl.input_count();
        let run = |threads: usize, kernel: McKernel| {
            monte_carlo_power_seeded_threads_kernel(
                &nl,
                &lib,
                |rng| streams::random_rng(rng, w),
                7,
                &opts,
                threads,
                kernel,
            )
            .expect("acyclic")
        };
        let reference = run(1, McKernel::Scalar);
        for threads in [1usize, 4] {
            for kernel in [McKernel::Scalar, McKernel::Packed64] {
                let got = run(threads, kernel);
                assert_eq!(
                    reference.power_uw.to_bits(),
                    got.power_uw.to_bits(),
                    "{name}: power diverged ({kernel:?}, {threads} threads)"
                );
                assert_eq!(
                    reference.half_width_uw.to_bits(),
                    got.half_width_uw.to_bits(),
                    "{name}: half-width diverged ({kernel:?}, {threads} threads)"
                );
                assert_eq!(reference.batches, got.batches, "{name} ({kernel:?}, {threads})");
                assert_eq!(reference.cycles, got.cycles, "{name} ({kernel:?}, {threads})");
            }
            let public = monte_carlo_power_seeded_threads(
                &nl,
                &lib,
                |rng| streams::random_rng(rng, w),
                7,
                &opts,
                threads,
            )
            .expect("acyclic");
            assert_eq!(
                reference.power_uw.to_bits(),
                public.power_uw.to_bits(),
                "{name}: public entry point diverged at {threads} threads"
            );
        }
    }
}
