//! Cross-crate determinism contract: parallel Monte-Carlo power
//! estimation is a pure function of the seed — the worker count must
//! never leak into the result (see README "Determinism and seeding"),
//! and turning span tracing on must not change a single bit either.

use hlpower::netlist::{
    gen, monte_carlo_power_seeded_threads, streams, Library, MonteCarloOptions, Netlist,
};
use hlpower::obs::trace;

fn adder(width: usize) -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", width);
    let b = nl.input_bus("b", width);
    let zero = nl.constant(false);
    let s = gen::ripple_adder(&mut nl, &a, &b, zero);
    nl.output_bus("s", &s);
    nl
}

/// The same seed yields a bit-identical `MonteCarloResult` at 1, 2, and 8
/// worker threads — every field, not just the mean within tolerance.
#[test]
fn monte_carlo_bit_identical_across_thread_counts() {
    let nl = adder(8);
    let lib = Library::default();
    let w = nl.input_count();
    let opts = MonteCarloOptions {
        batch_cycles: 100,
        max_batches: 120,
        target_relative_error: 0.02,
        z: 1.96,
    };
    let run = |threads: usize| {
        monte_carlo_power_seeded_threads(
            &nl,
            &lib,
            |rng| streams::random_rng(rng, w),
            0xC0FFEE,
            &opts,
            threads,
        )
        .expect("adder is acyclic and the stream is infinite")
    };
    let serial = run(1);
    for threads in [2, 8] {
        let parallel = run(threads);
        assert_eq!(
            serial, parallel,
            "thread count {threads} changed the result: {serial:?} vs {parallel:?}"
        );
    }
    assert!(serial.power_uw > 0.0);
}

/// Span tracing is pure observation: with recording enabled, the engine
/// still returns the exact same bits at every worker count as the
/// untraced serial reference.
#[test]
fn monte_carlo_bit_identical_with_tracing_enabled() {
    let nl = adder(8);
    let lib = Library::default();
    let w = nl.input_count();
    let opts = MonteCarloOptions {
        batch_cycles: 80,
        max_batches: 96,
        target_relative_error: 0.02,
        z: 1.96,
    };
    let run = |threads: usize| {
        monte_carlo_power_seeded_threads(
            &nl,
            &lib,
            |rng| streams::random_rng(rng, w),
            0xBEEF,
            &opts,
            threads,
        )
        .expect("adder is acyclic and the stream is infinite")
    };
    let untraced = run(1);
    trace::set_enabled(true);
    let traced: Vec<_> = [1usize, 2, 8].iter().map(|&t| run(t)).collect();
    trace::set_enabled(false);
    let events = trace::take_events();
    for (t, r) in [1usize, 2, 8].iter().zip(&traced) {
        assert_eq!(&untraced, r, "tracing changed the result at {t} thread(s)");
    }
    assert!(
        events.iter().any(|e| e.cat == "mc"),
        "no Monte-Carlo spans were recorded while tracing was on"
    );
}

/// The confidence-interval half-width stopping rule still fires in the
/// parallel engine: an easy circuit converges well before the batch
/// budget, at the advertised precision, identically at every width.
#[test]
fn stopping_rule_triggers_in_parallel_engine() {
    let nl = adder(8);
    let lib = Library::default();
    let w = nl.input_count();
    let opts = MonteCarloOptions {
        batch_cycles: 200,
        max_batches: 400,
        target_relative_error: 0.05,
        z: 1.96,
    };
    let mut batch_counts = Vec::new();
    for threads in [1, 2, 8] {
        let r = monte_carlo_power_seeded_threads(
            &nl,
            &lib,
            |rng| streams::random_rng(rng, w),
            7,
            &opts,
            threads,
        )
        .expect("acyclic");
        assert!(
            r.batches < opts.max_batches,
            "stopping rule never fired: used all {} batches",
            r.batches
        );
        assert!(r.batches >= 5, "stopped before the 5-sample minimum");
        assert!(r.relative_error() <= opts.target_relative_error);
        batch_counts.push(r.batches);
    }
    assert!(
        batch_counts.windows(2).all(|w| w[0] == w[1]),
        "stopping point varied with thread count: {batch_counts:?}"
    );
}
