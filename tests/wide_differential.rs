//! Cross-level differential tests for the wide (256/512-lane) packed
//! simulation kernels: on every circuit generator *and* both ingested
//! example netlists, one [`WideSim`]/[`WideTimedSim`] run carrying
//! split-seed streams must be bit-identical — per-node toggle counts,
//! functional transitions, and glitch counts, lane by lane — to
//! `W::LANES` independent scalar oracle runs of the same streams, and the
//! seeded Monte-Carlo engines must return the same bits at every kernel
//! width and thread count.

use hlpower::netlist::{
    gen, ingest_str, monte_carlo_glitch_power_seeded_threads_kernel,
    monte_carlo_power_seeded_threads_kernel, streams, EventDrivenSim, Library, McKernel,
    MonteCarloOptions, Netlist, SourceFormat, TimedKernel, WideSim, WideTimedSim, Word,
    ZeroDelaySim, W256, W512,
};
use hlpower_rng::Rng;

const GRAY_V: &str = include_str!("../examples/gray_counter4.v");
const MAJORITY_EDF: &str = include_str!("../examples/majority.edf");

/// The six shared circuit generators plus the two ingested front-end
/// examples (a sequential Verilog Gray counter and a combinational EDIF
/// majority voter), so the wide kernels are exercised on netlists from
/// every construction path.
fn fixtures() -> Vec<(String, Netlist)> {
    let mut all: Vec<(String, Netlist)> =
        gen::benchmark_suite().into_iter().map(|(n, nl)| (n.to_string(), nl)).collect();
    all.push((
        "gray_counter4.v".into(),
        ingest_str(GRAY_V, SourceFormat::Verilog).expect("example parses"),
    ));
    all.push((
        "majority.edf".into(),
        ingest_str(MAJORITY_EDF, SourceFormat::Edif).expect("example parses"),
    ));
    all
}

/// Packs one bool vector per lane into input words.
fn pack<W: Word>(width: usize, vectors: &[Vec<bool>]) -> Vec<W> {
    let mut words = vec![W::zero(); width];
    for (lane, v) in vectors.iter().enumerate() {
        for (i, &b) in v.iter().enumerate() {
            words[i].set_lane(lane, b);
        }
    }
    words
}

/// One wide zero-delay run is bit-identical, lane by lane, to `W::LANES`
/// scalar runs of the split-seed streams.
fn wide_lanes_match_scalar<W: Word>(cycles: usize) {
    for (name, nl) in fixtures() {
        let w = nl.input_count();
        let root = Rng::seed_from_u64(2026);
        let mut sim = WideSim::<W>::new(&nl).expect("acyclic");
        let mut iters: Vec<_> =
            (0..W::LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
        for _ in 0..cycles {
            let vectors: Vec<Vec<bool>> =
                iters.iter_mut().map(|it| it.next().expect("infinite stream")).collect();
            sim.step(&pack::<W>(w, &vectors)).expect("width matches");
        }
        let lanes = sim.take_lane_activities();
        assert_eq!(lanes.len(), W::LANES, "{name}");
        for (l, packed) in lanes.iter().enumerate() {
            let mut scalar = ZeroDelaySim::new(&nl).expect("acyclic");
            let act = scalar
                .run(streams::random_rng(root.split(l as u64), w).take(cycles))
                .expect("width matches");
            assert_eq!(packed, &act, "{name}: lane {l} diverged from scalar stream {l}");
        }
    }
}

#[test]
fn w256_lanes_match_scalar_runs_on_every_fixture() {
    wide_lanes_match_scalar::<W256>(80);
}

#[test]
fn w512_lanes_match_scalar_runs_on_every_fixture() {
    wide_lanes_match_scalar::<W512>(80);
}

/// One wide timed run is bit-identical — toggles, functional transitions,
/// *and* glitch counts — to `W::LANES` scalar event-driven runs.
fn wide_timed_lanes_match_scalar<W: Word>(cycles: usize) {
    let lib = Library::default();
    for (name, nl) in fixtures() {
        let w = nl.input_count();
        let root = Rng::seed_from_u64(404);
        let mut sim = WideTimedSim::<W>::new(&nl, &lib).expect("acyclic");
        let mut iters: Vec<_> =
            (0..W::LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
        for _ in 0..cycles {
            let vectors: Vec<Vec<bool>> =
                iters.iter_mut().map(|it| it.next().expect("infinite stream")).collect();
            sim.step(&pack::<W>(w, &vectors)).expect("width matches");
        }
        let lanes = sim.take_lane_activities();
        assert_eq!(lanes.len(), W::LANES, "{name}");
        for (l, packed) in lanes.iter().enumerate() {
            let mut scalar = EventDrivenSim::new(&nl, &lib).expect("acyclic");
            let act = scalar
                .run(streams::random_rng(root.split(l as u64), w).take(cycles))
                .expect("width matches");
            assert_eq!(packed, &act, "{name}: timed lane {l} diverged");
            assert_eq!(
                packed.total_glitches().expect("consistent"),
                act.total_glitches().expect("consistent"),
                "{name}: lane {l} glitch totals diverged"
            );
        }
    }
}

#[test]
fn w256_timed_lanes_match_scalar_runs_on_every_fixture() {
    wide_timed_lanes_match_scalar::<W256>(40);
}

#[test]
fn w512_timed_lanes_match_scalar_runs_on_every_fixture() {
    wide_timed_lanes_match_scalar::<W512>(40);
}

/// The seeded Monte-Carlo engine returns the same bits at every kernel
/// width (64/256/512 lanes and the scalar reference) and thread count, on
/// every fixture.
#[test]
fn monte_carlo_is_bit_identical_across_kernel_widths() {
    let lib = Library::default();
    let opts = MonteCarloOptions {
        batch_cycles: 60,
        max_batches: 80,
        target_relative_error: 0.01,
        z: 1.96,
    };
    for (name, nl) in fixtures() {
        let w = nl.input_count();
        let run = |threads: usize, kernel: McKernel| {
            monte_carlo_power_seeded_threads_kernel(
                &nl,
                &lib,
                |rng| streams::random_rng(rng, w),
                7,
                &opts,
                threads,
                kernel,
            )
            .expect("acyclic")
        };
        let reference = run(1, McKernel::Scalar);
        for threads in [1usize, 4] {
            for kernel in
                [McKernel::Packed64, McKernel::Packed256, McKernel::Packed512, McKernel::Auto]
            {
                let got = run(threads, kernel);
                assert_eq!(
                    reference.power_uw.to_bits(),
                    got.power_uw.to_bits(),
                    "{name}: power diverged ({kernel:?}, {threads} threads)"
                );
                assert_eq!(
                    reference.half_width_uw.to_bits(),
                    got.half_width_uw.to_bits(),
                    "{name}: half-width diverged ({kernel:?}, {threads} threads)"
                );
                assert_eq!(reference.batches, got.batches, "{name} ({kernel:?}, {threads})");
                assert_eq!(reference.cycles, got.cycles, "{name} ({kernel:?}, {threads})");
            }
        }
    }
}

/// The glitch-capturing Monte-Carlo engine is equally width- and
/// thread-invariant.
#[test]
fn glitch_monte_carlo_is_bit_identical_across_kernel_widths() {
    let lib = Library::default();
    let opts = MonteCarloOptions {
        batch_cycles: 30,
        max_batches: 50,
        target_relative_error: 0.01,
        z: 1.96,
    };
    for (name, nl) in fixtures() {
        let w = nl.input_count();
        let run = |threads: usize, kernel: TimedKernel| {
            monte_carlo_glitch_power_seeded_threads_kernel(
                &nl,
                &lib,
                |rng| streams::random_rng(rng, w),
                11,
                &opts,
                threads,
                kernel,
            )
            .expect("acyclic")
        };
        let reference = run(1, TimedKernel::Scalar);
        for threads in [1usize, 4] {
            for kernel in [
                TimedKernel::Packed64,
                TimedKernel::Packed256,
                TimedKernel::Packed512,
                TimedKernel::Auto,
            ] {
                let got = run(threads, kernel);
                assert_eq!(
                    reference.power_uw.to_bits(),
                    got.power_uw.to_bits(),
                    "{name}: glitch power diverged ({kernel:?}, {threads} threads)"
                );
                assert_eq!(reference.batches, got.batches, "{name} ({kernel:?}, {threads})");
            }
        }
    }
}
