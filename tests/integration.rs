//! Cross-crate integration tests: flows that thread multiple substrates
//! together the way the survey's Fig. 1 tool chain would.

use hlpower::bdd::{build_output_bdds, BddManager};
use hlpower::cdfg::{rtl, transform};
use hlpower::estimate::complexity::{controller_features, ControllerModel};
use hlpower::estimate::entropy;
use hlpower::estimate::{MacroModelKind, ModuleHarness, TrainedMacroModel};
use hlpower::explore::{Candidate, DesignLoop};
use hlpower::fsm::{generators, synthesize, Encoding, EncodingStrategy, MarkovAnalysis};
use hlpower::netlist::{streams, Library, ZeroDelaySim};

/// FSM -> low-power encoding -> gate-level synthesis -> simulated power:
/// the encoding that wins on the abstract switching metric also wins (or
/// ties) at the gate level.
#[test]
fn fsm_encoding_gains_survive_synthesis() {
    let mut abstract_wins = 0;
    let mut gate_wins = 0;
    let trials = 4;
    for seed in 0..trials {
        let stg = generators::random_stg(2, 12, 2, seed);
        let markov = MarkovAnalysis::uniform(&stg);
        let low = Encoding::with_strategy(&stg, &markov, EncodingStrategy::LowPower(seed));
        let rand = Encoding::with_strategy(&stg, &markov, EncodingStrategy::Random(seed + 50));
        if markov.expected_switching(&stg, &low) <= markov.expected_switching(&stg, &rand) {
            abstract_wins += 1;
        }
        // Gate level: state-register switching power only (the quantity
        // the encoding controls).
        let gate_power = |enc: &Encoding| {
            let circuit = synthesize(&stg, enc).expect("valid encoding");
            let mut sim = ZeroDelaySim::new(&circuit.netlist).expect("acyclic");
            let act = sim
                .run(streams::random(seed + 9, stg.input_bits()).take(1500))
                .expect("width matches");
            let toggles: u64 = circuit.state.iter().map(|&q| act.toggles[q.index()]).sum();
            toggles as f64 / act.cycles as f64
        };
        if gate_power(&low) <= gate_power(&rand) * 1.05 {
            gate_wins += 1;
        }
    }
    assert_eq!(abstract_wins, trials, "low-power encoding must win its own metric");
    assert!(gate_wins >= trials - 1, "gate-level confirmation failed: {gate_wins}/{trials}");
}

/// Macro-model characterization over an FSM-synthesized module: the flow
/// of §II-C applied to control logic rather than a datapath block.
#[test]
fn macromodel_works_on_synthesized_control_logic() {
    let stg = generators::random_stg(3, 10, 2, 5);
    let enc = Encoding::binary(&stg);
    let circuit = synthesize(&stg, &enc).expect("valid");
    // The synthesized machine has input bits as primary inputs; treat the
    // whole input vector as one operand.
    let width = circuit.netlist.input_count();
    let harness =
        ModuleHarness::new(circuit.netlist, Library::default(), vec![width]).expect("widths match");
    let train = harness.trace(streams::random(1, width).take(1200)).expect("widths");
    let model = TrainedMacroModel::fit(MacroModelKind::InputOutput, &train).expect("enough data");
    let test = harness.trace(streams::random(2, width).take(800)).expect("widths");
    let acc = model.accuracy(&test);
    assert!(acc.average_error < 0.1, "{acc:?}");
}

/// Landman-Rabaey controller model characterized against *real* gate-level
/// power from synthesized machines, then validated on held-out machines.
#[test]
fn controller_model_predicts_synthesized_power() {
    let lib = Library::default();
    let measure =
        |seed: u64, states: usize| -> (hlpower::estimate::complexity::ControllerFeatures, f64) {
            let stg = generators::random_stg(2, states, 2, seed);
            let markov = MarkovAnalysis::uniform(&stg);
            let enc = Encoding::binary(&stg);
            let circuit = synthesize(&stg, &enc).expect("valid");
            let mut sim = ZeroDelaySim::new(&circuit.netlist).expect("acyclic");
            let act =
                sim.run(streams::random(seed, stg.input_bits()).take(2000)).expect("width matches");
            let uw = act.power(&circuit.netlist, &lib).total_power_uw();
            (controller_features(&stg, &markov, &enc), uw)
        };
    let training: Vec<_> = (0..8).map(|s| measure(s, 6 + s as usize)).collect();
    let model = ControllerModel::fit(&training, lib.vdd, lib.clock_mhz);
    // Held-out machines: prediction within a factor of 2.5 (the model has
    // two structural coefficients for an entire synthesis flow).
    for seed in 20..24u64 {
        let (ft, actual) = measure(seed, 10);
        let predicted = model.predict_uw(&ft, lib.vdd, lib.clock_mhz);
        let ratio = predicted / actual;
        assert!((0.4..2.5).contains(&ratio), "seed {seed}: ratio {ratio:.2}");
    }
}

/// The Ferrandi BDD-size capacitance estimate feeds the entropy power
/// model: end-to-end, the entropy estimate with a BDD-derived C_tot lands
/// within a small factor of simulation.
#[test]
fn bdd_capacitance_feeds_entropy_estimate() {
    let lib = Library::default();
    let mut nl = hlpower::netlist::Netlist::new();
    let a = nl.input_bus("a", 6);
    let b = nl.input_bus("b", 6);
    let zero = nl.constant(false);
    let s = hlpower::netlist::gen::ripple_adder(&mut nl, &a, &b, zero);
    nl.output_bus("s", &s);
    let est = entropy::entropy_power_estimate(&nl, &lib, streams::random(3, 12).take(3000))
        .expect("acyclic");
    let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
    let act = sim.run(streams::random(3, 12).take(3000)).expect("width matches");
    let truth = act.power(&nl, &lib).net_power_uw;
    let ratio = est.power_uw_marculescu / truth;
    assert!((0.3..3.5).contains(&ratio), "ratio {ratio:.2}");
    // Under the declaration order (all of `a` before all of `b`) the
    // adder BDD is bushy; sifting recovers the compact interleaved form.
    let (m, roots) = build_output_bdds(&nl).expect("acyclic");
    let before = m.node_count_many(&roots);
    let (m2, roots2, _) = m.sift(&roots);
    let after = m2.node_count_many(&roots2);
    assert!(after < before, "sifting should shrink the adder: {before} -> {after}");
    assert!(after < 200, "sifted 6-bit adder should be compact, got {after}");
}

/// The design improvement loop across three levels with live estimators.
#[test]
fn design_loop_end_to_end() {
    let costs = rtl::RtlCosts::default();
    let mut dl = DesignLoop::new();
    let direct = transform::polynomial_direct(2, 16);
    let horner = transform::polynomial_horner(2, 16);
    dl.decide(
        "behavioral",
        vec![
            Candidate::new("direct", rtl::quick_estimate(&direct, 1, &costs).total_pf()),
            Candidate::new("horner", rtl::quick_estimate(&horner, 1, &costs).total_pf()),
        ],
    );
    let fir = transform::fir_cdfg(&[13, 29, 13], 16);
    let csd = transform::strength_reduce_const_mults(&fir);
    let winner = dl.decide(
        "strength reduction",
        vec![
            Candidate::new("multipliers", rtl::quick_estimate(&fir, 2, &costs).total_pf()),
            Candidate::new("shift-add", rtl::quick_estimate(&csd, 2, &costs).total_pf()),
        ],
    );
    assert_eq!(winner, "shift-add");
    assert!(dl.cumulative_spread() > 1.0);
    assert_eq!(dl.decisions().len(), 2);
}

/// Sifting the variable order of an FSM's output BDDs never increases the
/// node count and preserves the function (BDD package + FSM integration).
#[test]
fn sift_preserves_synthesized_functions() {
    let stg = generators::sequence_detector();
    let enc = Encoding::binary(&stg);
    let circuit = synthesize(&stg, &enc).expect("valid");
    let (m, roots) = build_output_bdds(&circuit.netlist).expect("acyclic");
    let before = m.node_count_many(&roots);
    let (m2, roots2, _) = m.sift(&roots);
    let after = m2.node_count_many(&roots2);
    assert!(after <= before);
    let nvars = m.var_count();
    for bits in 0..(1u32 << nvars) {
        let asg: Vec<bool> = (0..nvars).map(|i| bits & (1 << i) != 0).collect();
        for (r1, r2) in roots.iter().zip(&roots2) {
            assert_eq!(m.eval(*r1, &asg), m2.eval(*r2, &asg));
        }
    }
    // Silence unused-import lint for BddManager used in type position.
    let _: Option<BddManager> = None;
}
