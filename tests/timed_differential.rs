//! Cross-level differential tests for the bit-parallel 64-lane compiled
//! *timed* (glitch-capturing) simulator: on every circuit generator, one
//! packed [`TimedSim64`] run must be bit-identical — per-node total
//! transitions, functional transitions, and glitch counts, lane by lane —
//! to 64 independent scalar [`EventDrivenSim`] runs of the split seed
//! streams; the single-stream [`timed_activity`] profiler and the glitch
//! Monte-Carlo engine must return the same bits regardless of kernel
//! choice or thread count.

use hlpower::netlist::{
    gen, monte_carlo_glitch_power_seeded_threads_kernel, streams, timed_activity, EventDrivenSim,
    Library, MonteCarloOptions, Netlist, TimedKernel, TimedSim64, LANES,
};
use hlpower_rng::Rng;

/// The same six generators the golden-snapshot suite covers (the shared
/// fixture behind the differential suites and `repro --profile`).
fn generators() -> Vec<(&'static str, Netlist)> {
    gen::benchmark_suite()
}

/// One packed timed run carrying 64 split-seed streams is bit-identical,
/// lane by lane — toggles, functional transitions, *and* glitch counts —
/// to 64 scalar event-driven runs of the same streams.
#[test]
fn packed_timed_lanes_match_64_scalar_runs_on_every_generator() {
    const CYCLES: usize = 60;
    let lib = Library::default();
    for (name, nl) in generators() {
        let w = nl.input_count();
        let root = Rng::seed_from_u64(99);

        // Reference: 64 independent scalar event-driven simulations.
        let scalar: Vec<_> = (0..LANES)
            .map(|l| {
                let mut sim = EventDrivenSim::new(&nl, &lib).expect("acyclic");
                sim.run(streams::random_rng(root.split(l as u64), w).take(CYCLES))
                    .expect("width matches")
            })
            .collect();

        // One packed timed simulation of the same 64 streams.
        let mut sim = TimedSim64::new(&nl, &lib).expect("acyclic");
        let mut lanes: Vec<_> =
            (0..LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
        let mut words = vec![0u64; w];
        for _ in 0..CYCLES {
            words.iter_mut().for_each(|word| *word = 0);
            for (l, lane) in lanes.iter_mut().enumerate() {
                let v = lane.next().expect("infinite stream");
                for (word, bit) in words.iter_mut().zip(&v) {
                    *word |= u64::from(*bit) << l;
                }
            }
            sim.step(&words).expect("width");
        }
        let packed = sim.take_lane_activities();

        assert_eq!(packed.len(), LANES, "{name}");
        for (l, (s, p)) in scalar.iter().zip(&packed).enumerate() {
            assert_eq!(s, p, "{name}: lane {l} diverged from scalar stream {l}");
            assert_eq!(
                s.total_glitches().expect("consistent"),
                p.total_glitches().expect("consistent"),
                "{name}: lane {l} glitch totals diverged"
            );
        }
    }
}

/// The single-stream profiler returns identical records on both kernels
/// for every generator (the packed path reorganizes the work into
/// transition blocks; the integer counters make that invisible).
#[test]
fn timed_activity_is_kernel_invariant_on_every_generator() {
    let lib = Library::default();
    for (name, nl) in generators() {
        let stream: Vec<Vec<bool>> = streams::random(31, nl.input_count()).take(180).collect();
        let scalar = timed_activity(&nl, &lib, &stream, TimedKernel::Scalar).expect("acyclic");
        let packed = timed_activity(&nl, &lib, &stream, TimedKernel::Packed64).expect("acyclic");
        assert_eq!(scalar, packed, "{name}: kernels diverged");
        assert_eq!(
            scalar.total_glitches().expect("consistent"),
            packed.total_glitches().expect("consistent"),
            "{name}: glitch totals diverged"
        );
    }
}

/// The glitch Monte-Carlo engine returns the same bits for the scalar
/// kernel, the packed kernel, and any thread count.
#[test]
fn glitch_monte_carlo_is_bit_identical_across_kernels_and_thread_counts() {
    let lib = Library::default();
    let opts = MonteCarloOptions {
        batch_cycles: 40,
        max_batches: 70,
        target_relative_error: 0.01,
        z: 1.96,
    };
    for (name, nl) in generators() {
        let w = nl.input_count();
        let run = |threads: usize, kernel: TimedKernel| {
            monte_carlo_glitch_power_seeded_threads_kernel(
                &nl,
                &lib,
                |rng| streams::random_rng(rng, w),
                7,
                &opts,
                threads,
                kernel,
            )
            .expect("acyclic")
        };
        let reference = run(1, TimedKernel::Scalar);
        for threads in [1usize, 4] {
            for kernel in [TimedKernel::Scalar, TimedKernel::Packed64] {
                let got = run(threads, kernel);
                assert_eq!(
                    reference.power_uw.to_bits(),
                    got.power_uw.to_bits(),
                    "{name}: power diverged ({kernel:?}, {threads} threads)"
                );
                assert_eq!(
                    reference.half_width_uw.to_bits(),
                    got.half_width_uw.to_bits(),
                    "{name}: half-width diverged ({kernel:?}, {threads} threads)"
                );
                assert_eq!(reference.batches, got.batches, "{name} ({kernel:?}, {threads})");
                assert_eq!(reference.cycles, got.cycles, "{name} ({kernel:?}, {threads})");
            }
        }
    }
}

/// Paper-shaped check (survey §III, Fig. 4–5 discussion): the array
/// multiplier's long, unbalanced carry-save cascades glitch far more than
/// the CSD shift-add multiplier realized by the FIR's strength-reduced
/// form, under the same stimulus width and length.
#[test]
fn array_multiplier_outglitches_csd_shift_add_multiplier() {
    let lib = Library::default();
    let array = {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 6);
        let b = nl.input_bus("b", 6);
        let p = gen::array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        nl
    };
    // Constant multiplication by 13 realized as CSD shift-adds (the
    // strength-reduced form the survey's behavioral transformations
    // produce), on the same 12 input bits.
    let csd = {
        let mut nl = Netlist::new();
        let x = nl.input_bus("x", 12);
        let y = gen::fir_filter(&mut nl, &x, &[13], true);
        nl.output_bus("y", &y);
        nl
    };
    let fraction = |nl: &Netlist| {
        let stream: Vec<Vec<bool>> = streams::random(5, nl.input_count()).take(400).collect();
        timed_activity(nl, &lib, &stream, TimedKernel::Packed64)
            .expect("acyclic")
            .glitch_fraction()
            .expect("consistent")
    };
    let f_array = fraction(&array);
    let f_csd = fraction(&csd);
    assert!(
        f_array > f_csd,
        "array multiplier should outglitch CSD shift-add: {f_array:.3} vs {f_csd:.3}"
    );
}
