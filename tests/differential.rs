//! Differential tests: three independent estimation routes must agree.
//!
//! The reference is the *pair-probability-exact* estimate computed from
//! BDD signal probabilities: under independent uniform input vectors,
//! consecutive values of any node are independent Bernoulli(p) draws
//! (p = the node's BDD sat-fraction), so its exact transition density is
//! `2 p (1 - p)` — even with reconvergent fanout, where heuristic
//! probabilistic propagation goes wrong. Feeding these exact densities
//! through the ordinary switched-capacitance accounting gives the exact
//! expected power, against which both Monte-Carlo sampling (must land
//! inside its own reported confidence interval) and long zero-delay
//! simulation (law of large numbers) are differenced.

use hlpower::bdd::build_node_bdds;
use hlpower::netlist::{
    gen, monte_carlo_power_seeded, streams, Activity, Library, MonteCarloOptions, Netlist,
    ProbabilityAnalysis, ZeroDelaySim,
};

/// Synthetic cycle count for the exact-density activity record. Large so
/// that per-node `round(density * CYCLES)` keeps ~12 significant digits.
const EXACT_CYCLES: u64 = 1 << 40;

/// A small random combinational netlist (3-6 inputs, 6-12 gates).
fn random_netlist(seed: u64) -> Netlist {
    let mut nl = Netlist::new();
    let inputs = 3 + (seed % 4) as usize;
    let gates = 6 + (seed % 7) as usize;
    gen::random_logic(&mut nl, 1000 + seed, inputs, gates, 2);
    nl
}

/// The exact expected power under independent uniform inputs, via BDD
/// signal probabilities pushed through the standard power accounting.
fn exact_power_uw(nl: &Netlist, lib: &Library) -> f64 {
    let (m, map) = build_node_bdds(nl).expect("acyclic");
    let mut act = Activity { toggles: vec![0; nl.node_count()], cycles: EXACT_CYCLES };
    for id in nl.node_ids() {
        if let Some(&f) = map.get(&id) {
            let p = m.sat_fraction(f);
            let density = 2.0 * p * (1.0 - p);
            act.toggles[id.index()] = (density * EXACT_CYCLES as f64).round() as u64;
        }
    }
    act.power(nl, lib).total_power_uw()
}

/// Monte-Carlo power lands inside its own reported 99% confidence
/// interval of the exact estimate at 99% of seeds (at most 1 of 50 seeds
/// may miss; the CI is a statistical statement, not a bound).
#[test]
fn monte_carlo_covers_exact_estimate_at_99_percent_of_seeds() {
    let lib = Library::default();
    // Fixed sample size (target_relative_error = 0 disables the early
    // stop): a sequentially-stopped CI under-covers because stopping
    // correlates with an underestimated variance, so for a coverage test
    // the batch count must not be data-dependent.
    let opts = MonteCarloOptions {
        batch_cycles: 200,
        max_batches: 100,
        target_relative_error: 0.0,
        z: 2.576, // 99% two-sided
    };
    let mut misses: Vec<String> = Vec::new();
    for seed in 0..50u64 {
        let nl = random_netlist(seed);
        let exact = exact_power_uw(&nl, &lib);
        let w = nl.input_count();
        let mc =
            monte_carlo_power_seeded(&nl, &lib, |rng| streams::random_rng(rng, w), seed, &opts)
                .expect("acyclic, converges");
        if (mc.power_uw - exact).abs() > mc.half_width_uw {
            misses.push(format!(
                "seed {seed}: mc {:.4} +/- {:.4} vs exact {:.4}",
                mc.power_uw, mc.half_width_uw, exact
            ));
        }
    }
    assert!(misses.len() <= 1, "{} of 50 seeds outside their own CI: {misses:?}", misses.len());
}

/// Long zero-delay simulation converges to the exact estimate: both total
/// power and switched capacitance per cycle within a few percent.
#[test]
fn zero_delay_switched_capacitance_matches_exact_densities() {
    let lib = Library::default();
    for seed in [0u64, 7, 19, 33, 48] {
        let nl = random_netlist(seed);
        let exact = exact_power_uw(&nl, &lib);

        let (m, map) = build_node_bdds(&nl).expect("acyclic");
        let caps = nl.load_caps_ff(&lib);
        let exact_cap_per_cycle: f64 = nl
            .node_ids()
            .filter_map(|id| {
                map.get(&id).map(|&f| {
                    let p = m.sat_fraction(f);
                    2.0 * p * (1.0 - p) * caps[id.index()]
                })
            })
            .sum();

        let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
        let report = sim
            .run(streams::random(9000 + seed, nl.input_count()).take(30_000))
            .expect("width matches")
            .power(&nl, &lib);
        let rel_power = (report.total_power_uw() - exact).abs() / exact;
        assert!(
            rel_power < 0.05,
            "seed {seed}: sim {:.4} uW vs exact {exact:.4} uW",
            report.total_power_uw()
        );
        let rel_cap = (report.switched_cap_ff_per_cycle - exact_cap_per_cycle).abs()
            / exact_cap_per_cycle.max(1e-12);
        assert!(
            rel_cap < 0.05,
            "seed {seed}: sim {:.4} fF/cycle vs exact {exact_cap_per_cycle:.4} fF/cycle",
            report.switched_cap_ff_per_cycle
        );
    }
}

/// On a fanout-free circuit the heuristic probabilistic estimator is
/// itself exact, so it must agree with the BDD-exact route to float
/// precision — a direct check that the two probability machineries
/// implement the same semantics where both are exact.
#[test]
fn probabilistic_estimator_is_exact_without_reconvergence() {
    let mut nl = Netlist::new();
    // A parity tree: every gate output is used exactly once.
    let xs: Vec<_> = (0..8).map(|i| nl.input(format!("x{i}"))).collect();
    let mut layer = xs;
    while layer.len() > 1 {
        layer = layer.chunks(2).map(|pair| nl.xor([pair[0], pair[1]])).collect();
    }
    nl.set_output("parity", layer[0]);

    let lib = Library::default();
    let analytic =
        ProbabilityAnalysis::propagate_uniform(&nl).expect("acyclic").power_uw(&nl, &lib);
    let exact = exact_power_uw(&nl, &lib);
    let rel = (analytic - exact).abs() / exact;
    assert!(rel < 1e-9, "analytic {analytic:.9} vs exact {exact:.9}");
}
