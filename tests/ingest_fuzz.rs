//! Seeded mutation fuzzing of the netlist front-ends: random byte- and
//! token-level corruptions of the golden Verilog netlists and both
//! worked example files must never panic the parsers — every outcome is
//! either a successfully ingested netlist or a structured `Parse*`
//! [`NetlistError`] whose source location lies inside the corrupted
//! input.
//!
//! The corruption schedule is driven by the in-tree [`Check`] harness, so
//! `--features proptest` multiplies the case count 16x.

use hlpower::netlist::{ingest_auto, ingest_str, NetlistError, SourceFormat, SrcLoc};
use hlpower_rng::check::Check;
use hlpower_rng::Rng;

/// The fuzz corpus: every golden structural-Verilog snapshot plus both
/// ingest examples (one Verilog, one EDIF).
const CORPUS: &[(&str, &str, SourceFormat)] = &[
    ("alu.v", include_str!("golden/alu.v"), SourceFormat::Verilog),
    ("array_multiplier.v", include_str!("golden/array_multiplier.v"), SourceFormat::Verilog),
    ("comparator.v", include_str!("golden/comparator.v"), SourceFormat::Verilog),
    ("fir_shift_add.v", include_str!("golden/fir_shift_add.v"), SourceFormat::Verilog),
    ("random_logic.v", include_str!("golden/random_logic.v"), SourceFormat::Verilog),
    ("ripple_adder.v", include_str!("golden/ripple_adder.v"), SourceFormat::Verilog),
    ("gray_counter4.v", include_str!("../examples/gray_counter4.v"), SourceFormat::Verilog),
    ("majority.edf", include_str!("../examples/majority.edf"), SourceFormat::Edif),
];

/// Replacement tokens biased toward the grammars' own keywords and
/// punctuation, so corruptions hit deep parser states rather than dying
/// in the lexer every time.
const TOKENS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "wire",
    "assign",
    "(",
    ")",
    ";",
    ",",
    ".",
    "=",
    "1'b0",
    "1'b1",
    "(*",
    "*)",
    "edif",
    "cell",
    "net",
    "joined",
    "portRef",
    "instanceRef",
    "contents",
    "instance",
    "viewRef",
    "cellRef",
    "rename",
    "0",
    "42",
    "x",
    "DFF",
    "NAND2",
    "\"",
];

/// Applies one random byte-level corruption, staying valid UTF-8 by
/// operating on char boundaries.
fn corrupt_bytes(rng: &mut Rng, src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = chars.clone();
    let printable: Vec<char> = (' '..='~').chain(['\n', '\t', '\u{fffd}', 'é']).collect();
    match rng.gen_range(0u32..5) {
        // Replace one character.
        0 => {
            let i = rng.gen_range(0..out.len());
            out[i] = printable[rng.gen_range(0..printable.len())];
        }
        // Insert one character.
        1 => {
            let i = rng.gen_range(0..=out.len());
            out.insert(i, printable[rng.gen_range(0..printable.len())]);
        }
        // Delete a short range.
        2 => {
            let i = rng.gen_range(0..out.len());
            let n = rng.gen_range(1..=16usize.min(out.len() - i));
            out.drain(i..i + n);
        }
        // Duplicate a short range in place.
        3 => {
            let i = rng.gen_range(0..out.len());
            let n = rng.gen_range(1..=16usize.min(out.len() - i));
            let dup: Vec<char> = out[i..i + n].to_vec();
            for (k, c) in dup.into_iter().enumerate() {
                out.insert(i + k, c);
            }
        }
        // Truncate (mid-construct EOF).
        _ => {
            let i = rng.gen_range(0..out.len());
            out.truncate(i);
        }
    }
    out.into_iter().collect()
}

/// Applies one random token-level corruption: the source is split on
/// whitespace and a token is replaced, deleted, duplicated, or swapped.
fn corrupt_tokens(rng: &mut Rng, src: &str) -> String {
    let mut toks: Vec<&str> = src.split_whitespace().collect();
    if toks.is_empty() {
        return String::new();
    }
    match rng.gen_range(0u32..4) {
        0 => {
            let i = rng.gen_range(0..toks.len());
            toks[i] = TOKENS[rng.gen_range(0..TOKENS.len())];
        }
        1 => {
            let i = rng.gen_range(0..toks.len());
            toks.remove(i);
        }
        2 => {
            let i = rng.gen_range(0..toks.len());
            toks.insert(i, TOKENS[rng.gen_range(0..TOKENS.len())]);
        }
        _ => {
            let i = rng.gen_range(0..toks.len());
            let j = rng.gen_range(0..toks.len());
            toks.swap(i, j);
        }
    }
    toks.join(" ")
}

/// Destructures any `Parse*` variant into its format and location; panics
/// on every other variant (the front-ends must map *all* failures —
/// lexical, syntactic, structural, even constructed cycles — onto
/// located parse errors).
fn parse_location(err: &NetlistError) -> (SourceFormat, &SrcLoc) {
    match err {
        NetlistError::ParseSyntax { format, at, .. }
        | NetlistError::ParseUnknownName { format, at, .. }
        | NetlistError::ParseUnknownCell { format, at, .. }
        | NetlistError::ParseUnsupported { format, at, .. }
        | NetlistError::ParseMultipleDrivers { format, at, .. }
        | NetlistError::ParseUndriven { format, at, .. } => (*format, at),
        other => panic!("front-end surfaced a non-parse error: {other:?}"),
    }
}

/// The error location must point inside the corrupted source: a 1-based
/// line no further than one past the last line (EOF errors), and a
/// 1-based column no further than one past that line's end.
fn assert_loc_in_bounds(name: &str, src: &str, err: &NetlistError) {
    let (_, at) = parse_location(err);
    let n_lines = src.lines().count();
    assert!(
        at.line >= 1 && at.line <= n_lines.max(1) + 1,
        "{name}: line {} out of bounds (source has {n_lines} lines)\nerror: {err}",
        at.line
    );
    let line = src.lines().nth(at.line - 1).unwrap_or("");
    assert!(
        at.col >= 1 && at.col <= line.chars().count() + 1,
        "{name}: column {} out of bounds on line {} ({} chars)\nerror: {err}",
        at.col,
        at.line,
        line.chars().count()
    );
}

/// Feeds one corrupted source through the explicit front-end and the
/// auto-sniffing entry point; a panic anywhere fails the whole test.
fn check_one(name: &str, src: &str, format: SourceFormat) {
    if let Err(err) = ingest_str(src, format) {
        assert_loc_in_bounds(name, src, &err);
    }
    // The sniffer may route the corrupted text to a different front-end;
    // whichever one runs must still fail with a located parse error.
    if let Err(err) = ingest_auto(None, src) {
        assert_loc_in_bounds(name, src, &err);
    }
}

#[test]
fn byte_corruptions_never_panic_and_errors_stay_located() {
    Check::new("byte_corruptions_never_panic").cases(96).run(|rng| {
        for (name, src, format) in CORPUS {
            let mut s = src.to_string();
            // Stack up to three corruptions so errors surface in states a
            // single edit cannot reach.
            for _ in 0..rng.gen_range(1u32..=3) {
                s = corrupt_bytes(rng, &s);
            }
            check_one(name, &s, *format);
        }
    });
}

#[test]
fn token_corruptions_never_panic_and_errors_stay_located() {
    Check::new("token_corruptions_never_panic").cases(96).run(|rng| {
        for (name, src, format) in CORPUS {
            let mut s = src.to_string();
            for _ in 0..rng.gen_range(1u32..=2) {
                s = corrupt_tokens(rng, &s);
            }
            check_one(name, &s, *format);
        }
    });
}

/// The uncorrupted corpus still parses — guards against the fuzz fixture
/// set silently rotting.
#[test]
fn pristine_corpus_parses() {
    for (name, src, format) in CORPUS {
        ingest_str(src, *format).unwrap_or_else(|e| panic!("{name} no longer parses: {e}"));
    }
}

/// Degenerate inputs every lexer must survive.
#[test]
fn degenerate_inputs_are_rejected_gracefully() {
    for src in ["", " ", "\n\n\n", "(", ")", "module", "(edif", "\u{fffd}", "((((((((("] {
        for format in [SourceFormat::Verilog, SourceFormat::Edif, SourceFormat::NativeNl] {
            if let Err(err) = ingest_str(src, format) {
                assert_loc_in_bounds("degenerate", src, &err);
            }
        }
    }
}
