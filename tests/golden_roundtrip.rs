//! Serialization round-trip: `parse(emit(nl))` then `emit` again must be
//! a fixed point for every circuit generator, and the emitted text must
//! match the golden snapshots under `tests/golden/`.
//!
//! Regenerate the snapshots after an intentional format change with:
//!
//! ```text
//! HLPOWER_BLESS=1 cargo test -q --offline -p hlpower --test golden_roundtrip
//! ```

use std::path::PathBuf;

use hlpower::netlist::io::{parse_netlist, write_netlist};
use hlpower::netlist::{gen, streams, Netlist, ZeroDelaySim};

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// Every generator under test, as `(snapshot name, builder)`.
fn generators() -> Vec<(&'static str, Netlist)> {
    let ripple = {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("sum", &s);
        nl
    };
    let multiplier = {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let p = gen::array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        nl
    };
    let alu = {
        let mut nl = Netlist::new();
        let op0 = nl.input("op0");
        let op1 = nl.input("op1");
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let y = gen::alu(&mut nl, [op0, op1], &a, &b);
        nl.output_bus("y", &y);
        nl
    };
    let comparator = {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 6);
        let b = nl.input_bus("b", 6);
        let eq = gen::equality(&mut nl, &a, &b);
        let lt = gen::less_than(&mut nl, &a, &b);
        nl.set_output("eq", eq);
        nl.set_output("lt", lt);
        nl
    };
    let fir = {
        let mut nl = Netlist::new();
        let x = nl.input_bus("x", 8);
        let y = gen::fir_filter(&mut nl, &x, &[7, 13, 7], true);
        nl.output_bus("y", &y);
        nl
    };
    let random = {
        let mut nl = Netlist::new();
        gen::random_logic(&mut nl, 2024, 6, 24, 3);
        nl
    };
    vec![
        ("ripple_adder", ripple),
        ("array_multiplier", multiplier),
        ("alu", alu),
        ("comparator", comparator),
        ("fir_shift_add", fir),
        ("random_logic", random),
    ]
}

/// `parse -> emit -> parse` is a fixed point, and the reparsed netlist is
/// functionally identical to the original.
#[test]
fn emit_parse_emit_is_a_fixed_point_for_every_generator() {
    for (name, nl) in generators() {
        let text1 = write_netlist(&nl);
        let back = parse_netlist(&text1).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let text2 = write_netlist(&back);
        assert_eq!(text1, text2, "{name}: emit(parse(emit(nl))) differs from emit(nl)");
        let back2 = parse_netlist(&text2).expect("fixed point reparses");
        assert_eq!(text2, write_netlist(&back2), "{name}: second round trip diverged");

        // Functional equivalence of original and reparsed netlists.
        assert_eq!(back.input_count(), nl.input_count(), "{name}");
        assert_eq!(back.node_count(), nl.node_count(), "{name}");
        let mut s1 = ZeroDelaySim::new(&nl).expect("acyclic");
        let mut s2 = ZeroDelaySim::new(&back).expect("acyclic");
        for v in streams::random(77, nl.input_count()).take(100) {
            s1.step(&v).expect("width");
            s2.step(&v).expect("width");
            assert_eq!(s1.output_values(), s2.output_values(), "{name}");
        }
    }
}

/// Emitted text matches the golden snapshots (`HLPOWER_BLESS=1`
/// regenerates them after an intentional format change).
#[test]
fn emitted_text_matches_golden_snapshots() {
    let bless = std::env::var_os("HLPOWER_BLESS").is_some();
    for (name, nl) in generators() {
        let text = write_netlist(&nl);
        let path = golden_dir().join(format!("{name}.nl"));
        if bless {
            std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
            std::fs::write(&path, &text).expect("write golden file");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{name}: missing golden file {} ({e}); run with HLPOWER_BLESS=1", path.display())
        });
        assert_eq!(
            text,
            golden,
            "{name}: emitted netlist differs from {}; bless with HLPOWER_BLESS=1 if intended",
            path.display()
        );
    }
}
