//! Cross-level consistency: the same circuit estimated at different
//! abstraction levels must tell a consistent story — the survey's central
//! premise that level-by-level feedback is trustworthy.

use hlpower::estimate::entropy;
use hlpower::netlist::{
    gen, monte_carlo_power, streams, Library, MonteCarloOptions, Netlist, ProbabilityAnalysis,
    ZeroDelaySim,
};

fn adder(width: usize) -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", width);
    let b = nl.input_bus("b", width);
    let zero = nl.constant(false);
    let s = gen::ripple_adder(&mut nl, &a, &b, zero);
    nl.output_bus("s", &s);
    nl
}

/// Probabilistic propagation, Monte-Carlo sampling, and full simulation
/// agree on an adder under uniform inputs.
#[test]
fn three_estimators_agree_on_adder() {
    let nl = adder(8);
    let lib = Library::default();
    let analytic =
        ProbabilityAnalysis::propagate_uniform(&nl).expect("acyclic").power_uw(&nl, &lib);
    let mc = monte_carlo_power(
        &nl,
        &lib,
        streams::random(7, nl.input_count()),
        &MonteCarloOptions::default(),
    )
    .expect("converges");
    let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
    let act = sim.run(streams::random(99, nl.input_count()).take(30_000)).expect("width matches");
    let full = act.power(&nl, &lib).total_power_uw();
    let rel = |x: f64| (x - full).abs() / full;
    assert!(rel(mc.power_uw) < 0.05, "mc {:.1} vs sim {:.1}", mc.power_uw, full);
    // The analytic estimate carries reconvergent-fanout error but must
    // stay within ~25% on a ripple adder.
    assert!(rel(analytic) < 0.25, "analytic {analytic:.1} vs sim {full:.1}");
}

/// Every estimator ranks circuit *sizes* the same way: an 12-bit adder
/// burns more than an 6-bit adder at every abstraction level.
#[test]
fn estimators_preserve_size_ordering() {
    let small = adder(6);
    let big = adder(12);
    let lib = Library::default();
    // Level 1: entropy model.
    let e_small = entropy::entropy_power_estimate(&small, &lib, streams::random(1, 12).take(1500))
        .expect("acyclic");
    let e_big = entropy::entropy_power_estimate(&big, &lib, streams::random(1, 24).take(1500))
        .expect("acyclic");
    assert!(e_big.power_uw_marculescu > e_small.power_uw_marculescu);
    // Level 2: probabilistic.
    let p_small =
        ProbabilityAnalysis::propagate_uniform(&small).expect("acyclic").power_uw(&small, &lib);
    let p_big = ProbabilityAnalysis::propagate_uniform(&big).expect("acyclic").power_uw(&big, &lib);
    assert!(p_big > p_small);
    // Level 3: simulation.
    let sim_power = |nl: &Netlist, seed: u64| {
        let mut sim = ZeroDelaySim::new(nl).expect("acyclic");
        let act =
            sim.run(streams::random(seed, nl.input_count()).take(4000)).expect("width matches");
        act.power(nl, &lib).total_power_uw()
    };
    assert!(sim_power(&big, 2) > sim_power(&small, 2));
}

/// Every estimator ranks *data statistics* the same way: correlated
/// (low-activity) streams burn less than random streams.
#[test]
fn estimators_preserve_activity_ordering() {
    let nl = adder(8);
    let lib = Library::default();
    let n = nl.input_count();
    let sim_power = |stream: Vec<Vec<bool>>| {
        let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
        let act = sim.run(stream).expect("width matches");
        act.power(&nl, &lib).total_power_uw()
    };
    let p_random = sim_power(streams::random(3, n).take(4000).collect());
    let p_corr = sim_power(streams::correlated(3, n, 0.1).take(4000).collect());
    assert!(p_corr < p_random);
    let e_random = entropy::entropy_power_estimate(&nl, &lib, streams::random(3, n).take(4000))
        .expect("acyclic");
    let e_corr = entropy::entropy_power_estimate(&nl, &lib, streams::biased(3, n, 0.92).take(4000))
        .expect("acyclic");
    assert!(e_corr.power_uw_marculescu < e_random.power_uw_marculescu);
}

/// The RTL capacitance model and the gate level agree on which FIR
/// implementation wins (the decision Table I supports).
#[test]
fn rtl_and_gate_level_agree_on_fir_winner() {
    use hlpower::cdfg::{rtl, transform};
    let lib = Library::default();
    let costs = rtl::RtlCosts::default();
    let taps = [9i64, 23, 51, 23, 9];
    // RTL level.
    let before = transform::fir_cdfg(&taps, 12);
    let after = transform::strength_reduce_const_mults(&before);
    let rtl_before = rtl::quick_estimate(&before, 4, &costs).total_pf();
    let rtl_after = rtl::quick_estimate(&after, 4, &costs).total_pf();
    // Gate level.
    let coeffs: Vec<u64> = taps.iter().map(|&c| c as u64).collect();
    let gate_power = |shift_add: bool| {
        let mut nl = Netlist::new();
        let x = nl.input_bus("x", 8);
        let y = gen::fir_filter(&mut nl, &x, &coeffs, shift_add);
        nl.output_bus("y", &y);
        let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
        let act = sim.run(streams::random(6, 8).take(500)).expect("width matches");
        act.power(&nl, &lib).total_power_uw()
    };
    let gate_before = gate_power(false);
    let gate_after = gate_power(true);
    assert!(rtl_after < rtl_before, "RTL model prefers shift-add");
    assert!(gate_after < gate_before, "gate level prefers shift-add");
}

/// Glitch power only appears below the zero-delay abstraction, and it is
/// additive: event-driven power >= zero-delay power on the same stimulus.
#[test]
fn event_driven_power_dominates_zero_delay() {
    use hlpower::netlist::EventDrivenSim;
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", 5);
    let b = nl.input_bus("b", 5);
    let p = gen::array_multiplier(&mut nl, &a, &b);
    nl.output_bus("p", &p);
    let lib = Library::default();
    let vecs: Vec<Vec<bool>> = streams::random(8, 10).take(400).collect();
    let mut zd = ZeroDelaySim::new(&nl).expect("acyclic");
    let zd_power =
        zd.run(vecs.iter().cloned()).expect("width matches").power(&nl, &lib).total_power_uw();
    let mut ev = EventDrivenSim::new(&nl, &lib).expect("acyclic");
    let ev_power = ev.run(vecs).expect("width matches").power(&nl, &lib).total_power_uw();
    assert!(ev_power >= zd_power, "ev {ev_power:.1} vs zd {zd_power:.1}");
    assert!(ev_power > 1.2 * zd_power, "a multiplier should glitch substantially");
}
