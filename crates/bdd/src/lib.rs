//! A reduced ordered binary decision diagram (ROBDD) package.
//!
//! BDDs are the symbolic workhorse of the survey's control-logic sections
//! (§III-H), the Ferrandi capacitance model (§II-B1), precomputation
//! predictor synthesis and guarded-evaluation observability don't-cares
//! (§III-I). This crate implements a classic unique-table + ITE-cache
//! manager with quantification, composition, satisfy counting, variable
//! reordering by sifting, extraction of BDDs from gate-level netlists, and
//! mapping of BDDs back to multiplexer netlists. A small zero-suppressed
//! BDD (ZDD) module supports symbolic cover manipulation (Minato, survey
//! reference 98).
//!
//! # Example
//!
//! ```
//! use hlpower_bdd::BddManager;
//!
//! let mut m = BddManager::new(3);
//! let a = m.var(0);
//! let b = m.var(1);
//! let c = m.var(2);
//! let ab = m.and(a, b);
//! let f = m.or(ab, c);
//! assert_eq!(m.sat_count(f), 5.0); // |ab + c| over 3 vars
//! ```

#![warn(missing_docs)]

mod manager;
mod netlist_bridge;
pub mod zdd;

pub use manager::{BddManager, BddRef};
pub use netlist_bridge::{
    bdd_to_mux_netlist, bdd_to_timed_shannon, build_node_bdds, build_output_bdds,
};
