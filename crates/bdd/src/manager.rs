//! The BDD manager: unique table, ITE cache, and core algorithms.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use hlpower_obs::metrics as obs;
use hlpower_obs::trace;

/// A reference to a BDD node inside a [`BddManager`].
///
/// References are only meaningful within the manager that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(pub(crate) u32);

impl BddRef {
    /// The constant-false terminal.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true terminal.
    pub const TRUE: BddRef = BddRef(1);

    /// Whether this reference is a terminal (constant) node.
    pub fn is_const(self) -> bool {
        self.0 < 2
    }
}

const NO_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
}

/// Virtual hash-bucket count used to model unique-table chain lengths
/// (see [`BddManager::mk`]'s instrumentation).
const CHAIN_BUCKETS: usize = 1024;

/// A reduced ordered BDD manager over a fixed set of variables.
///
/// Variables are identified by index `0..var_count` and ordered by the
/// manager's current order (initially the identity). All operations are
/// memoized; structurally equal functions are guaranteed to share the same
/// [`BddRef`].
#[derive(Debug, Clone)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    /// Occupancy of each virtual hash bucket: the unique table is a std
    /// `HashMap` whose real probe chains are unobservable, so collision
    /// pressure is modeled by hashing every inserted key into one of
    /// [`CHAIN_BUCKETS`] virtual buckets and histogramming the bucket's
    /// occupancy after the insert (`obs::BDD_UNIQUE_CHAIN_LEN`).
    chain_occupancy: Vec<u16>,
    ite_cache: HashMap<(u32, u32, u32), u32>,
    /// `level_of[var]` is the variable's position in the order (0 = top).
    level_of: Vec<u32>,
    /// `var_at[level]` is the inverse map.
    var_at: Vec<u32>,
    cache_enabled: bool,
    /// Number of ITE cache hits (for the memoization ablation bench).
    pub ite_hits: u64,
    /// Number of recursive ITE calls.
    pub ite_calls: u64,
}

impl BddManager {
    /// Creates a manager over `var_count` variables with the identity order.
    pub fn new(var_count: usize) -> Self {
        let nodes = vec![Node { var: NO_VAR, lo: 0, hi: 0 }, Node { var: NO_VAR, lo: 1, hi: 1 }];
        BddManager {
            nodes,
            unique: HashMap::new(),
            chain_occupancy: vec![0; CHAIN_BUCKETS],
            ite_cache: HashMap::new(),
            level_of: (0..var_count as u32).collect(),
            var_at: (0..var_count as u32).collect(),
            cache_enabled: true,
            ite_hits: 0,
            ite_calls: 0,
        }
    }

    /// Creates a manager with an explicit variable order (`order[level] =
    /// var`).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn with_order(order: &[u32]) -> Self {
        let mut m = BddManager::new(order.len());
        let mut level_of = vec![u32::MAX; order.len()];
        for (lvl, &v) in order.iter().enumerate() {
            assert!(
                (v as usize) < order.len() && level_of[v as usize] == u32::MAX,
                "order must be a permutation"
            );
            level_of[v as usize] = lvl as u32;
        }
        m.level_of = level_of;
        m.var_at = order.to_vec();
        m
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.level_of.len()
    }

    /// The current variable order (`order[level] = var`).
    pub fn order(&self) -> &[u32] {
        &self.var_at
    }

    /// Total number of live nodes in the manager (including terminals).
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Disables the ITE memo cache (for the memoization ablation bench).
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.ite_cache.clear();
        }
    }

    /// The constant function `value`.
    pub fn constant(&self, value: bool) -> BddRef {
        if value {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        }
    }

    /// The projection function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&mut self, v: u32) -> BddRef {
        assert!((v as usize) < self.var_count(), "variable {v} out of range");
        let r = self.mk(v, 0, 1);
        BddRef(r)
    }

    /// The negated projection of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn nvar(&mut self, v: u32) -> BddRef {
        assert!((v as usize) < self.var_count(), "variable {v} out of range");
        let r = self.mk(v, 1, 0);
        BddRef(r)
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        if let Some(&n) = self.unique.get(&(var, lo, hi)) {
            return n;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        let mut h = std::collections::hash_map::DefaultHasher::new();
        (var, lo, hi).hash(&mut h);
        let occ = &mut self.chain_occupancy[(h.finish() % CHAIN_BUCKETS as u64) as usize];
        *occ = occ.saturating_add(1);
        obs::BDD_UNIQUE_CHAIN_LEN.record(u64::from(*occ));
        id
    }

    fn level(&self, r: u32) -> u32 {
        let v = self.nodes[r as usize].var;
        if v == NO_VAR {
            u32::MAX
        } else {
            self.level_of[v as usize]
        }
    }

    /// The top variable of `f`, or `None` for terminals.
    pub fn top_var(&self, f: BddRef) -> Option<u32> {
        let v = self.nodes[f.0 as usize].var;
        if v == NO_VAR {
            None
        } else {
            Some(v)
        }
    }

    /// The low (else) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn low(&self, f: BddRef) -> BddRef {
        assert!(!f.is_const(), "terminal has no children");
        BddRef(self.nodes[f.0 as usize].lo)
    }

    /// The high (then) child of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn high(&self, f: BddRef) -> BddRef {
        assert!(!f.is_const(), "terminal has no children");
        BddRef(self.nodes[f.0 as usize].hi)
    }

    /// If-then-else: `f ? g : h`.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        let (calls0, hits0, nodes0) = (self.ite_calls, self.ite_hits, self.nodes.len());
        let r = BddRef(self.ite_rec(f.0, g.0, h.0));
        obs::BDD_ITE_CALLS.add(self.ite_calls - calls0);
        obs::BDD_ITE_CACHE_HITS.add(self.ite_hits - hits0);
        obs::BDD_NODES_CREATED.add((self.nodes.len() - nodes0) as u64);
        obs::BDD_UNIQUE_TABLE_PEAK.record(self.nodes.len() as u64);
        r
    }

    fn ite_rec(&mut self, f: u32, g: u32, h: u32) -> u32 {
        self.ite_calls += 1;
        // Terminal cases.
        if f == 1 {
            return g;
        }
        if f == 0 {
            return h;
        }
        if g == h {
            return g;
        }
        if g == 1 && h == 0 {
            return f;
        }
        let key = (f, g, h);
        if self.cache_enabled {
            if let Some(&r) = self.ite_cache.get(&key) {
                self.ite_hits += 1;
                return r;
            }
        }
        let lf = self.level(f);
        let lg = self.level(g);
        let lh = self.level(h);
        let top_level = lf.min(lg).min(lh);
        let top_var = self.var_at[top_level as usize];
        let (f0, f1) = self.cofactors_at(f, top_level);
        let (g0, g1) = self.cofactors_at(g, top_level);
        let (h0, h1) = self.cofactors_at(h, top_level);
        let lo = self.ite_rec(f0, g0, h0);
        let hi = self.ite_rec(f1, g1, h1);
        let r = self.mk(top_var, lo, hi);
        if self.cache_enabled {
            self.ite_cache.insert(key, r);
        }
        r
    }

    fn cofactors_at(&self, f: u32, level: u32) -> (u32, u32) {
        if self.level(f) == level {
            let n = self.nodes[f as usize];
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Logical negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        self.ite(f, BddRef::FALSE, BddRef::TRUE)
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, g, BddRef::FALSE)
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, BddRef::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Exclusive nor (equivalence).
    pub fn xnor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Implication `f -> g`.
    pub fn implies(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, g, BddRef::TRUE)
    }

    /// Conjunction over many operands.
    pub fn and_many(&mut self, fs: impl IntoIterator<Item = BddRef>) -> BddRef {
        let mut acc = BddRef::TRUE;
        for f in fs {
            acc = self.and(acc, f);
        }
        acc
    }

    /// Disjunction over many operands.
    pub fn or_many(&mut self, fs: impl IntoIterator<Item = BddRef>) -> BddRef {
        let mut acc = BddRef::FALSE;
        for f in fs {
            acc = self.or(acc, f);
        }
        acc
    }

    /// Cofactor of `f` with variable `v` fixed to `value`.
    pub fn cofactor(&mut self, f: BddRef, v: u32, value: bool) -> BddRef {
        let mut memo = HashMap::new();
        BddRef(self.cofactor_rec(f.0, v, value, &mut memo))
    }

    fn cofactor_rec(&mut self, f: u32, v: u32, value: bool, memo: &mut HashMap<u32, u32>) -> u32 {
        if f < 2 {
            return f;
        }
        let n = self.nodes[f as usize];
        if n.var == v {
            return if value { n.hi } else { n.lo };
        }
        if self.level_of[n.var as usize] > self.level_of[v as usize] {
            // v is above this node in the order, so it cannot appear below.
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let lo = self.cofactor_rec(n.lo, v, value, memo);
        let hi = self.cofactor_rec(n.hi, v, value, memo);
        let r = self.mk(n.var, lo, hi);
        memo.insert(f, r);
        r
    }

    /// Existential quantification of `f` over the listed variables.
    pub fn exists(&mut self, f: BddRef, vars: &[u32]) -> BddRef {
        let mut acc = f;
        for &v in vars {
            let c0 = self.cofactor(acc, v, false);
            let c1 = self.cofactor(acc, v, true);
            acc = self.or(c0, c1);
        }
        acc
    }

    /// Universal quantification of `f` over the listed variables.
    pub fn forall(&mut self, f: BddRef, vars: &[u32]) -> BddRef {
        let mut acc = f;
        for &v in vars {
            let c0 = self.cofactor(acc, v, false);
            let c1 = self.cofactor(acc, v, true);
            acc = self.and(c0, c1);
        }
        acc
    }

    /// Substitutes function `g` for variable `v` inside `f`.
    pub fn compose(&mut self, f: BddRef, v: u32, g: BddRef) -> BddRef {
        let c0 = self.cofactor(f, v, false);
        let c1 = self.cofactor(f, v, true);
        self.ite(g, c1, c0)
    }

    /// Evaluates `f` under a complete variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the variable count.
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.var_count(), "assignment too short");
        let mut cur = f.0;
        while cur > 1 {
            let n = self.nodes[cur as usize];
            cur = if assignment[n.var as usize] { n.hi } else { n.lo };
        }
        cur == 1
    }

    /// Number of minterms of `f` over all `var_count` variables.
    pub fn sat_count(&self, f: BddRef) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        let frac = self.sat_frac(f.0, &mut memo);
        frac * 2f64.powi(self.var_count() as i32)
    }

    /// Fraction of the input space on which `f` is true (the signal
    /// probability of `f` under uniform inputs).
    pub fn sat_fraction(&self, f: BddRef) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.sat_frac(f.0, &mut memo)
    }

    fn sat_frac(&self, f: u32, memo: &mut HashMap<u32, f64>) -> f64 {
        if f == 0 {
            return 0.0;
        }
        if f == 1 {
            return 1.0;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.nodes[f as usize];
        let r = 0.5 * self.sat_frac(n.lo, memo) + 0.5 * self.sat_frac(n.hi, memo);
        memo.insert(f, r);
        r
    }

    /// Number of decision nodes reachable from `f` (the BDD "size" used by
    /// the Ferrandi capacitance model).
    pub fn node_count(&self, f: BddRef) -> usize {
        self.node_count_many(&[f])
    }

    /// Number of distinct decision nodes reachable from a set of roots
    /// (shared nodes counted once).
    pub fn node_count_many(&self, roots: &[BddRef]) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<u32> = roots.iter().map(|r| r.0).collect();
        while let Some(f) = stack.pop() {
            if f < 2 || !seen.insert(f) {
                continue;
            }
            let n = self.nodes[f as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }

    /// The set of variables `f` depends on.
    pub fn support(&self, f: BddRef) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.0];
        while let Some(x) = stack.pop() {
            if x < 2 || !seen.insert(x) {
                continue;
            }
            let n = self.nodes[x as usize];
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }

    /// One satisfying assignment of `f` (over its support; unconstrained
    /// variables are false), or `None` if `f` is unsatisfiable.
    pub fn any_sat(&self, f: BddRef) -> Option<Vec<bool>> {
        if f == BddRef::FALSE {
            return None;
        }
        let mut assignment = vec![false; self.var_count()];
        let mut cur = f.0;
        while cur > 1 {
            let n = self.nodes[cur as usize];
            if n.hi != 0 {
                assignment[n.var as usize] = true;
                cur = n.hi;
            } else {
                cur = n.lo;
            }
        }
        Some(assignment)
    }

    /// Rebuilds a set of functions in a new manager with a different
    /// variable order, returning the new manager and the translated roots.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of this manager's variables.
    pub fn transfer(&self, roots: &[BddRef], order: &[u32]) -> (BddManager, Vec<BddRef>) {
        assert_eq!(order.len(), self.var_count(), "order size mismatch");
        let mut dst = BddManager::with_order(order);
        let mut memo: HashMap<u32, u32> = HashMap::new();
        let new_roots =
            roots.iter().map(|r| BddRef(transfer_rec(self, &mut dst, r.0, &mut memo))).collect();
        (dst, new_roots)
    }

    /// Sifting-style variable reordering: greedily moves each variable to
    /// the position minimizing the shared node count of `roots`, one
    /// variable at a time (most-used variables first). Returns the improved
    /// manager, translated roots, and the chosen order.
    ///
    /// This is a rebuild-based implementation suited to the moderate
    /// variable counts of this crate's experiments; it trades the in-place
    /// swap machinery of production packages for simplicity.
    pub fn sift(&self, roots: &[BddRef]) -> (BddManager, Vec<BddRef>, Vec<u32>) {
        obs::BDD_SIFT_ROUNDS.inc();
        let _t = obs::BDD_SIFT_TIME.span();
        let _pass = trace::span("bdd", "bdd.sift");
        let mut best_order: Vec<u32> = self.var_at.clone();
        let (mut best_m, mut best_roots) = self.transfer(roots, &best_order);
        let mut best_size = best_m.node_count_many(&best_roots);
        let nvars = self.var_count();
        for v in 0..nvars as u32 {
            let _var_span = trace::span_dyn("bdd", || format!("bdd.sift:v{v}"));
            let cur_pos = best_order.iter().position(|&x| x == v).expect("var in order");
            let mut local_best = (best_size, cur_pos);
            for pos in 0..nvars {
                if pos == cur_pos {
                    continue;
                }
                let mut cand = best_order.clone();
                cand.remove(cur_pos);
                cand.insert(pos, v);
                obs::BDD_SIFT_CANDIDATE_ORDERS.inc();
                let (m, r) = self.transfer(roots, &cand);
                let size = m.node_count_many(&r);
                if size < local_best.0 {
                    local_best = (size, pos);
                }
            }
            if local_best.1 != cur_pos {
                obs::BDD_SIFT_MOVES.inc();
                best_order.remove(cur_pos);
                best_order.insert(local_best.1, v);
                let (m, r) = self.transfer(roots, &best_order);
                best_size = m.node_count_many(&r);
                best_m = m;
                best_roots = r;
            }
        }
        (best_m, best_roots, best_order)
    }
}

fn transfer_rec(
    src: &BddManager,
    dst: &mut BddManager,
    f: u32,
    memo: &mut HashMap<u32, u32>,
) -> u32 {
    if f < 2 {
        return f;
    }
    if let Some(&r) = memo.get(&f) {
        return r;
    }
    let n = src.nodes[f as usize];
    let lo = transfer_rec(src, dst, n.lo, memo);
    let hi = transfer_rec(src, dst, n.hi, memo);
    let v = dst.var(n.var);
    let r = dst.ite(v, BddRef(hi), BddRef(lo)).0;
    memo.insert(f, r);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut m = BddManager::new(2);
        assert_eq!(m.constant(true), BddRef::TRUE);
        let a = m.var(0);
        let a2 = m.var(0);
        assert_eq!(a, a2, "unique table must share nodes");
        let na = m.not(a);
        assert_eq!(m.nvar(0), na);
    }

    #[test]
    fn boolean_identities() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba, "canonical form implies commutativity as identity");
        let na = m.not(a);
        let nna = m.not(na);
        assert_eq!(nna, a);
        let t = m.or(a, na);
        assert_eq!(t, BddRef::TRUE);
        let f = m.and(a, na);
        assert_eq!(f, BddRef::FALSE);
        // De Morgan.
        let nab = m.not(ab);
        let nb = m.not(b);
        let de = m.or(na, nb);
        assert_eq!(nab, de);
    }

    #[test]
    fn xor_and_ite() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let x = m.xor(a, b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(m.eval(x, &[va, vb]), va ^ vb);
        }
        let xn = m.xnor(a, b);
        let nx = m.not(x);
        assert_eq!(xn, nx);
    }

    #[test]
    fn sat_count_majority() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let maj = m.or_many([ab, ac, bc]);
        assert_eq!(m.sat_count(maj), 4.0);
        assert!((m.sat_fraction(maj) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cofactor_and_quantify() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let bc = m.and(b, c);
        let f = m.or(a, bc); // a + bc
        let f_a1 = m.cofactor(f, 0, true);
        assert_eq!(f_a1, BddRef::TRUE);
        let f_a0 = m.cofactor(f, 0, false);
        assert_eq!(f_a0, bc);
        let ex = m.exists(f, &[1, 2]); // exists b,c: a + bc == true
        assert_eq!(ex, BddRef::TRUE);
        let fa = m.forall(f, &[1, 2]); // forall b,c == a
        assert_eq!(fa, a);
    }

    #[test]
    fn compose_substitutes() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.xor(a, b);
        let g = m.and(a, c);
        let h = m.compose(f, 1, g); // f[b := a & c] = a ^ (a & c)
        for bits in 0..8u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            assert_eq!(m.eval(h, &asg), asg[0] ^ (asg[0] && asg[2]));
        }
    }

    #[test]
    fn support_and_any_sat() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let c = m.var(2);
        let f = m.and(a, c);
        assert_eq!(m.support(f), vec![0, 2]);
        let sat = m.any_sat(f).unwrap();
        assert!(m.eval(f, &sat));
        let na = m.not(a);
        let contradiction = m.and(f, na);
        assert_eq!(m.any_sat(contradiction), None);
    }

    #[test]
    fn transfer_preserves_function() {
        let mut m = BddManager::new(4);
        let vs: Vec<BddRef> = (0..4).map(|i| m.var(i)).collect();
        let t1 = m.and(vs[0], vs[3]);
        let t2 = m.and(vs[1], vs[2]);
        let f = m.or(t1, t2);
        let (m2, roots) = m.transfer(&[f], &[3, 1, 0, 2]);
        for bits in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(m.eval(f, &asg), m2.eval(roots[0], &asg), "bits {bits:04b}");
        }
    }

    #[test]
    fn sifting_shrinks_interleaved_and() {
        // f = x0&x3 + x1&x4 + x2&x5 is exponential in the order
        // (0,1,2,3,4,5) but linear when pairs are adjacent.
        let mut m = BddManager::new(6);
        let vs: Vec<BddRef> = (0..6).map(|i| m.var(i)).collect();
        let t1 = m.and(vs[0], vs[3]);
        let t2 = m.and(vs[1], vs[4]);
        let t3 = m.and(vs[2], vs[5]);
        let f = m.or_many([t1, t2, t3]);
        let before = m.node_count(f);
        let (m2, roots, order) = m.sift(&[f]);
        let after = m2.node_count_many(&roots);
        assert!(after < before, "sift {before} -> {after} (order {order:?})");
        for bits in 0..64u32 {
            let asg: Vec<bool> = (0..6).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(m.eval(f, &asg), m2.eval(roots[0], &asg));
        }
    }

    #[test]
    fn cache_ablation_still_correct() {
        let mut m = BddManager::new(4);
        m.set_cache_enabled(false);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let d = m.var(3);
        let ab = m.and(a, b);
        let cd = m.and(c, d);
        let f = m.xor(ab, cd);
        assert_eq!(m.sat_count(f), 6.0);
        assert_eq!(m.ite_hits, 0);
    }
}
