//! Bridges between gate-level netlists and BDDs.
//!
//! `build_output_bdds` extracts the combinational functions of a netlist's
//! primary outputs as BDDs over the primary inputs (flip-flop outputs are
//! treated as additional free variables, appended after the inputs);
//! `bdd_to_mux_netlist` maps a BDD back into a multiplexer network — the
//! direct translation whose depth/size problems §III-H discusses.

use std::collections::HashMap;

use hlpower_netlist::{Netlist, NetlistError, NodeId, NodeKind};

use crate::manager::{BddManager, BddRef};

/// Builds BDDs for every node of the combinational network.
///
/// Variables `0..input_count` correspond to the primary inputs in
/// declaration order; variables `input_count..input_count + dff_count`
/// correspond to flip-flop outputs (present state). Returns the manager and
/// a map from node to BDD.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the netlist is cyclic.
pub fn build_node_bdds(
    netlist: &Netlist,
) -> Result<(BddManager, HashMap<NodeId, BddRef>), NetlistError> {
    let order = netlist.topo_order()?;
    let nvars = netlist.input_count() + netlist.dffs().len();
    let mut m = BddManager::new(nvars);
    let mut map: HashMap<NodeId, BddRef> = HashMap::new();
    for (i, &inp) in netlist.inputs().iter().enumerate() {
        let v = m.var(i as u32);
        map.insert(inp, v);
    }
    for (i, &q) in netlist.dffs().iter().enumerate() {
        let v = m.var((netlist.input_count() + i) as u32);
        map.insert(q, v);
    }
    for id in netlist.node_ids() {
        if let NodeKind::Const(c) = netlist.kind(id) {
            map.insert(id, m.constant(*c));
        }
    }
    for &id in &order {
        if let NodeKind::Gate { kind, inputs } = netlist.kind(id) {
            use hlpower_netlist::GateKind::*;
            let fanin: Vec<BddRef> = inputs.iter().map(|f| map[f]).collect();
            let f = match kind {
                Buf => fanin[0],
                Not => m.not(fanin[0]),
                And => m.and_many(fanin.iter().copied()),
                Or => m.or_many(fanin.iter().copied()),
                Nand => {
                    let x = m.and_many(fanin.iter().copied());
                    m.not(x)
                }
                Nor => {
                    let x = m.or_many(fanin.iter().copied());
                    m.not(x)
                }
                Xor => fanin[1..].iter().fold(fanin[0], |acc, &x| m.xor(acc, x)),
                Xnor => {
                    let x = fanin[1..].iter().fold(fanin[0], |acc, &x| m.xor(acc, x));
                    m.not(x)
                }
                Mux => m.ite(fanin[0], fanin[2], fanin[1]),
            };
            map.insert(id, f);
        }
    }
    Ok((m, map))
}

/// Builds BDDs for the primary outputs only; returns `(manager, roots)`
/// with one root per declared output, in order.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the netlist is cyclic.
pub fn build_output_bdds(netlist: &Netlist) -> Result<(BddManager, Vec<BddRef>), NetlistError> {
    let (m, map) = build_node_bdds(netlist)?;
    let roots = netlist.outputs().iter().map(|&(_, n)| map[&n]).collect();
    Ok((m, roots))
}

/// Maps a BDD into a 2:1-multiplexer netlist rooted at the returned node.
///
/// `var_nodes[v]` supplies the netlist node driving BDD variable `v`.
/// Shared BDD nodes become shared mux instances. This is the "obvious
/// mapping of each BDD node to a multiplexor" of §III-H.
///
/// # Panics
///
/// Panics if the BDD's support references a variable with no entry in
/// `var_nodes`.
pub fn bdd_to_mux_netlist(
    m: &BddManager,
    root: BddRef,
    var_nodes: &[NodeId],
    nl: &mut Netlist,
) -> NodeId {
    let mut memo: HashMap<BddRef, NodeId> = HashMap::new();
    build_mux(m, root, var_nodes, nl, &mut memo)
}

fn build_mux(
    m: &BddManager,
    f: BddRef,
    var_nodes: &[NodeId],
    nl: &mut Netlist,
    memo: &mut HashMap<BddRef, NodeId>,
) -> NodeId {
    if f == BddRef::FALSE {
        return nl.constant(false);
    }
    if f == BddRef::TRUE {
        return nl.constant(true);
    }
    if let Some(&n) = memo.get(&f) {
        return n;
    }
    let v = m.top_var(f).expect("non-terminal has a variable") as usize;
    assert!(v < var_nodes.len(), "BDD variable {v} has no driving node");
    let lo = build_mux(m, m.low(f), var_nodes, nl, memo);
    let hi = build_mux(m, m.high(f), var_nodes, nl, memo);
    let out = nl.mux(var_nodes[v], lo, hi);
    memo.insert(f, out);
    out
}

/// Maps a BDD into a *timed-Shannon* network (§III-H, reference 97): a token
/// is launched at the root and steered along the single path selected by
/// the input vector; the output asserts iff the token reaches the TRUE
/// terminal. Because only the gates on the previously-selected and
/// newly-selected root-to-terminal paths can switch, input changes cause
/// localized activity — the power-efficiency argument of the timed
/// Shannon style, versus the mux mapping where inner nodes toggle freely.
///
/// # Panics
///
/// Panics if the BDD's support references a variable with no entry in
/// `var_nodes`.
pub fn bdd_to_timed_shannon(
    m: &BddManager,
    root: BddRef,
    var_nodes: &[NodeId],
    nl: &mut Netlist,
) -> NodeId {
    if root == BddRef::FALSE {
        return nl.constant(false);
    }
    if root == BddRef::TRUE {
        return nl.constant(true);
    }
    // Collect reachable decision nodes in topological (parents-first)
    // order: any order works as long as parents precede children, which a
    // DFS post-order reversal provides for the child links.
    let mut order: Vec<BddRef> = Vec::new();
    let mut seen: HashMap<BddRef, bool> = HashMap::new();
    fn dfs(m: &BddManager, f: BddRef, seen: &mut HashMap<BddRef, bool>, order: &mut Vec<BddRef>) {
        if f.is_const() || seen.contains_key(&f) {
            return;
        }
        seen.insert(f, true);
        dfs(m, m.low(f), seen, order);
        dfs(m, m.high(f), seen, order);
        order.push(f);
    }
    dfs(m, root, &mut seen, &mut order);
    order.reverse(); // parents before children

    // Token arriving at each node: OR over incoming steered tokens.
    let one = nl.constant(true);
    let mut incoming: HashMap<BddRef, Vec<NodeId>> = HashMap::new();
    incoming.insert(root, vec![one]);
    let mut true_tokens: Vec<NodeId> = Vec::new();
    for &node in &order {
        let sources = incoming.remove(&node).unwrap_or_default();
        let token = match sources.len() {
            0 => continue, // unreachable (shouldn't happen)
            1 => sources[0],
            _ => nl.or(sources),
        };
        let v = m.top_var(node).expect("decision node") as usize;
        assert!(v < var_nodes.len(), "BDD variable {v} has no driving node");
        let sel = var_nodes[v];
        let nsel = nl.not(sel);
        let lo_token = nl.and([token, nsel]);
        let hi_token = nl.and([token, sel]);
        for (child, t) in [(m.low(node), lo_token), (m.high(node), hi_token)] {
            if child == BddRef::TRUE {
                true_tokens.push(t);
            } else if child != BddRef::FALSE {
                incoming.entry(child).or_default().push(t);
            }
        }
    }
    match true_tokens.len() {
        0 => nl.constant(false),
        1 => true_tokens[0],
        _ => nl.or(true_tokens),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_netlist::{gen, words::to_bits, ZeroDelaySim};

    #[test]
    fn extracted_bdd_matches_circuit() {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 3);
        let b = nl.input_bus("b", 3);
        let zero = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, zero);
        nl.output_bus("s", &s);
        let (m, roots) = build_output_bdds(&nl).unwrap();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        for x in 0u64..8 {
            for y in 0u64..8 {
                let mut v = to_bits(x, 3);
                v.extend(to_bits(y, 3));
                let outs = sim.eval_combinational(&v).unwrap();
                for (i, &r) in roots.iter().enumerate() {
                    assert_eq!(m.eval(r, &v), outs[i], "{x}+{y} bit {i}");
                }
            }
        }
    }

    #[test]
    fn dff_outputs_become_state_variables() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let q = nl.dff(a, false);
        let y = nl.xor([a, q]);
        nl.set_output("y", y);
        let (m, map) = build_node_bdds(&nl).unwrap();
        // y depends on input var 0 and state var 1.
        assert_eq!(m.support(map[&y]), vec![0, 1]);
    }

    #[test]
    fn mux_mapping_round_trips() {
        // Build f = majority(a, b, c) as BDD, map to muxes, check equality.
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let maj = m.or_many([ab, ac, bc]);

        let mut nl = Netlist::new();
        let ins = nl.input_bus("x", 3);
        let y = bdd_to_mux_netlist(&m, maj, &ins, &mut nl);
        nl.set_output("y", y);
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        for bits in 0..8u32 {
            let asg: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
            let expect = m.eval(maj, &asg);
            let got = sim.eval_combinational(&asg).unwrap()[0];
            assert_eq!(got, expect, "bits {bits:03b}");
        }
    }

    #[test]
    fn timed_shannon_matches_function() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let d = m.var(3);
        let ab = m.and(a, b);
        let cd = m.xor(c, d);
        let f = m.or(ab, cd);
        let mut nl = Netlist::new();
        let ins = nl.input_bus("x", 4);
        let y = bdd_to_timed_shannon(&m, f, &ins, &mut nl);
        nl.set_output("y", y);
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        for bits in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(sim.eval_combinational(&asg).unwrap()[0], m.eval(f, &asg), "{bits:04b}");
        }
    }

    #[test]
    fn timed_shannon_constants() {
        let m = BddManager::new(2);
        let mut nl = Netlist::new();
        let ins = nl.input_bus("x", 2);
        let t = bdd_to_timed_shannon(&m, BddRef::TRUE, &ins, &mut nl);
        let f = bdd_to_timed_shannon(&m, BddRef::FALSE, &ins, &mut nl);
        nl.set_output("t", t);
        nl.set_output("f", f);
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let out = sim.eval_combinational(&[false, true]).unwrap();
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn timed_shannon_localizes_switching() {
        // Single-bit input changes toggle fewer gates in the path-token
        // network than total activity in the mux network, relative to
        // size, on a chain-structured function.
        let mut m = BddManager::new(8);
        let vs: Vec<BddRef> = (0..8).map(|i| m.var(i)).collect();
        // f = x0 & x1 & ... & x7 (a single long path).
        let f = m.and_many(vs.iter().copied());
        let build = |style: u8| -> (Netlist, f64) {
            let mut nl = Netlist::new();
            let ins = nl.input_bus("x", 8);
            let y = if style == 0 {
                bdd_to_mux_netlist(&m, f, &ins, &mut nl)
            } else {
                bdd_to_timed_shannon(&m, f, &ins, &mut nl)
            };
            nl.set_output("y", y);
            // Walk Gray-code-like single-bit changes.
            let mut sim = ZeroDelaySim::new(&nl).unwrap();
            let mut v = vec![true; 8];
            sim.step(&v).unwrap();
            let mut toggles = 0u64;
            for i in 0..8 {
                v[i] = false;
                sim.step(&v).unwrap();
                v[i] = true;
                sim.step(&v).unwrap();
            }
            let act = sim.take_activity();
            toggles += act.toggles.iter().sum::<u64>();
            (nl, toggles as f64)
        };
        let (_nl_mux, mux_toggles) = build(0);
        let (_nl_ts, ts_toggles) = build(1);
        // Both are correct; the interesting claim is that activity stays
        // within a small factor despite the timed-Shannon net being larger.
        assert!(ts_toggles < 4.0 * mux_toggles, "ts {ts_toggles} vs mux {mux_toggles}");
    }

    #[test]
    fn shared_nodes_share_muxes() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let d = m.var(3);
        let cd = m.and(c, d);
        let f1 = m.or(a, cd);
        let f2 = m.or(b, cd);
        let f = m.and(f1, f2);
        let mut nl = Netlist::new();
        let ins = nl.input_bus("x", 4);
        let _ = bdd_to_mux_netlist(&m, f, &ins, &mut nl);
        // Mux count equals reachable BDD node count (sharing preserved).
        assert_eq!(nl.gate_count(), m.node_count(f));
    }
}
