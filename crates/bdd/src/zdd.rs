//! Zero-suppressed BDDs for symbolic cover manipulation (Minato, survey
//! reference 98).
//!
//! A ZDD represents a family of sets (here: a cover, i.e. a set of cubes
//! over positive literals). §III-H uses ZDD-backed covers as the link from
//! symbolic state-transition representations to multi-level logic
//! extraction; this module provides the set algebra those flows need.

use std::collections::HashMap;

/// A reference to a ZDD node inside a [`ZddManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZddRef(u32);

impl ZddRef {
    /// The empty family (no sets at all).
    pub const EMPTY: ZddRef = ZddRef(0);
    /// The family containing only the empty set.
    pub const UNIT: ZddRef = ZddRef(1);
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
}

/// A zero-suppressed BDD manager over a fixed variable universe.
#[derive(Debug, Clone)]
pub struct ZddManager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    var_count: usize,
}

impl ZddManager {
    /// Creates a manager over `var_count` element variables.
    pub fn new(var_count: usize) -> Self {
        ZddManager {
            nodes: vec![Node { var: u32::MAX, lo: 0, hi: 0 }, Node { var: u32::MAX, lo: 1, hi: 1 }],
            unique: HashMap::new(),
            var_count,
        }
    }

    /// Number of element variables.
    pub fn var_count(&self) -> usize {
        self.var_count
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if hi == 0 {
            return lo; // zero-suppression rule
        }
        if let Some(&n) = self.unique.get(&(var, lo, hi)) {
            return n;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        id
    }

    fn level(&self, f: u32) -> u32 {
        let v = self.nodes[f as usize].var;
        if v == u32::MAX {
            u32::MAX
        } else {
            v
        }
    }

    /// The family containing the single set `{v}`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn singleton(&mut self, v: u32) -> ZddRef {
        assert!((v as usize) < self.var_count, "variable {v} out of range");
        ZddRef(self.mk(v, 0, 1))
    }

    /// The family containing exactly one set, given by its elements.
    ///
    /// # Panics
    ///
    /// Panics if any element is out of range.
    pub fn set(&mut self, elements: &[u32]) -> ZddRef {
        let mut sorted: Vec<u32> = elements.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut f = 1u32; // unit family
        for &v in sorted.iter().rev() {
            assert!((v as usize) < self.var_count, "variable {v} out of range");
            f = self.mk(v, 0, f);
        }
        ZddRef(f)
    }

    /// Family union.
    pub fn union(&mut self, f: ZddRef, g: ZddRef) -> ZddRef {
        ZddRef(self.union_rec(f.0, g.0))
    }

    fn union_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == 0 {
            return g;
        }
        if g == 0 || f == g {
            return f;
        }
        let (f, g) = if f < g { (f, g) } else { (g, f) };
        let lf = self.level(f);
        let lg = self.level(g);
        if lf < lg {
            let n = self.nodes[f as usize];
            let lo = self.union_rec(n.lo, g);
            self.mk(n.var, lo, n.hi)
        } else if lg < lf {
            let n = self.nodes[g as usize];
            let lo = self.union_rec(f, n.lo);
            self.mk(n.var, lo, n.hi)
        } else {
            let nf = self.nodes[f as usize];
            let ng = self.nodes[g as usize];
            let lo = self.union_rec(nf.lo, ng.lo);
            let hi = self.union_rec(nf.hi, ng.hi);
            self.mk(nf.var, lo, hi)
        }
    }

    /// Family intersection.
    pub fn intersect(&mut self, f: ZddRef, g: ZddRef) -> ZddRef {
        ZddRef(self.intersect_rec(f.0, g.0))
    }

    fn intersect_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == 0 || g == 0 {
            return 0;
        }
        if f == g {
            return f;
        }
        let lf = self.level(f);
        let lg = self.level(g);
        if lf < lg {
            let n = self.nodes[f as usize];
            self.intersect_rec(n.lo, g)
        } else if lg < lf {
            let n = self.nodes[g as usize];
            self.intersect_rec(f, n.lo)
        } else {
            let nf = self.nodes[f as usize];
            let ng = self.nodes[g as usize];
            let lo = self.intersect_rec(nf.lo, ng.lo);
            let hi = self.intersect_rec(nf.hi, ng.hi);
            self.mk(nf.var, lo, hi)
        }
    }

    /// Family difference `f \ g`.
    pub fn difference(&mut self, f: ZddRef, g: ZddRef) -> ZddRef {
        ZddRef(self.diff_rec(f.0, g.0))
    }

    fn diff_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == 0 || f == g {
            return 0;
        }
        if g == 0 {
            return f;
        }
        let lf = self.level(f);
        let lg = self.level(g);
        if lf < lg {
            let n = self.nodes[f as usize];
            let lo = self.diff_rec(n.lo, g);
            self.mk(n.var, lo, n.hi)
        } else if lg < lf {
            let n = self.nodes[g as usize];
            self.diff_rec(f, n.lo)
        } else {
            let nf = self.nodes[f as usize];
            let ng = self.nodes[g as usize];
            let lo = self.diff_rec(nf.lo, ng.lo);
            let hi = self.diff_rec(nf.hi, ng.hi);
            self.mk(nf.var, lo, hi)
        }
    }

    /// Family join (cross product of set unions): `{a ∪ b : a ∈ f, b ∈
    /// g}` — the cover product used when multiplying symbolic
    /// sum-of-products forms (Minato's algebra).
    pub fn join(&mut self, f: ZddRef, g: ZddRef) -> ZddRef {
        ZddRef(self.join_rec(f.0, g.0))
    }

    fn join_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == 0 || g == 0 {
            return 0;
        }
        if f == 1 {
            return g;
        }
        if g == 1 {
            return f;
        }
        let lf = self.level(f);
        let lg = self.level(g);
        if lf < lg {
            let n = self.nodes[f as usize];
            let lo = self.join_rec(n.lo, g);
            let hi = self.join_rec(n.hi, g);
            let (var, lo_final, hi_merged) = (n.var, lo, hi);
            // hi branch may collide with sets already containing var from
            // lo side? No: hi carries var, lo does not; mk handles it.
            self.mk(var, lo_final, hi_merged)
        } else if lg < lf {
            self.join_rec(g, f)
        } else {
            let nf = self.nodes[f as usize];
            let ng = self.nodes[g as usize];
            // Sets containing var come from any pairing where either side
            // contributes var; sets without come only from lo x lo.
            let lo = self.join_rec(nf.lo, ng.lo);
            let h1 = self.join_rec(nf.hi, ng.hi);
            let h2 = self.join_rec(nf.hi, ng.lo);
            let h3 = self.join_rec(nf.lo, ng.hi);
            let h12 = self.union_rec(h1, h2);
            let hi = self.union_rec(h12, h3);
            self.mk(nf.var, lo, hi)
        }
    }

    /// Number of sets in the family.
    pub fn count(&self, f: ZddRef) -> u64 {
        let mut memo = HashMap::new();
        self.count_rec(f.0, &mut memo)
    }

    fn count_rec(&self, f: u32, memo: &mut HashMap<u32, u64>) -> u64 {
        if f == 0 {
            return 0;
        }
        if f == 1 {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.nodes[f as usize];
        let c = self.count_rec(n.lo, memo) + self.count_rec(n.hi, memo);
        memo.insert(f, c);
        c
    }

    /// Enumerates the family as sorted element lists (for testing and
    /// cover extraction; exponential in general).
    pub fn enumerate(&self, f: ZddRef) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.enum_rec(f.0, &mut prefix, &mut out);
        out.sort();
        out
    }

    fn enum_rec(&self, f: u32, prefix: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if f == 0 {
            return;
        }
        if f == 1 {
            out.push(prefix.clone());
            return;
        }
        let n = self.nodes[f as usize];
        self.enum_rec(n.lo, prefix, out);
        prefix.push(n.var);
        self.enum_rec(n.hi, prefix, out);
        prefix.pop();
    }

    /// Number of live nodes in the manager.
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_construction_and_count() {
        let mut z = ZddManager::new(4);
        let s1 = z.set(&[0, 2]);
        let s2 = z.set(&[1]);
        let u = z.union(s1, s2);
        assert_eq!(z.count(u), 2);
        assert_eq!(z.enumerate(u), vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn union_is_idempotent_and_commutative() {
        let mut z = ZddManager::new(3);
        let a = z.set(&[0]);
        let b = z.set(&[1, 2]);
        let ab = z.union(a, b);
        let ba = z.union(b, a);
        assert_eq!(ab, ba);
        let aa = z.union(ab, a);
        assert_eq!(aa, ab);
    }

    #[test]
    fn intersection_and_difference() {
        let mut z = ZddManager::new(3);
        let a = z.set(&[0]);
        let b = z.set(&[1]);
        let c = z.set(&[0, 1]);
        let fam1 = z.union(a, b); // {{0},{1}}
        let fam2 = z.union(b, c); // {{1},{0,1}}
        let i = z.intersect(fam1, fam2);
        assert_eq!(z.enumerate(i), vec![vec![1]]);
        let d = z.difference(fam1, fam2);
        assert_eq!(z.enumerate(d), vec![vec![0]]);
    }

    #[test]
    fn empty_set_vs_empty_family() {
        let mut z = ZddManager::new(2);
        let unit = z.set(&[]);
        assert_eq!(unit, ZddRef::UNIT);
        assert_eq!(z.count(ZddRef::EMPTY), 0);
        assert_eq!(z.count(unit), 1);
    }

    #[test]
    fn join_is_cross_product_of_unions() {
        let mut z = ZddManager::new(4);
        let a0 = z.set(&[0]);
        let a1 = z.set(&[1]);
        let f = z.union(a0, a1); // {{0},{1}}
        let b2 = z.set(&[2]);
        let b3 = z.set(&[2, 3]);
        let g = z.union(b2, b3); // {{2},{2,3}}
        let j = z.join(f, g);
        assert_eq!(z.enumerate(j), vec![vec![0, 2], vec![0, 2, 3], vec![1, 2], vec![1, 2, 3]]);
    }

    #[test]
    fn join_identities() {
        let mut z = ZddManager::new(3);
        let f = {
            let a = z.set(&[0, 1]);
            let b = z.set(&[2]);
            z.union(a, b)
        };
        // Unit family is the identity; empty family annihilates.
        assert_eq!(z.join(f, ZddRef::UNIT), f);
        assert_eq!(z.join(f, ZddRef::EMPTY), ZddRef::EMPTY);
        // Joining with itself unions overlapping sets (idempotent union of
        // elements): {{0,1},{2}} x itself = {{0,1},{0,1,2},{2}}.
        let jj = z.join(f, f);
        assert_eq!(z.enumerate(jj), vec![vec![0, 1], vec![0, 1, 2], vec![2]]);
    }

    #[test]
    fn zero_suppression_shares_structure() {
        let mut z = ZddManager::new(8);
        // Building the same family twice yields identical refs.
        let f1 = {
            let a = z.set(&[0, 3, 5]);
            let b = z.set(&[2]);
            z.union(a, b)
        };
        let f2 = {
            let b = z.set(&[2]);
            let a = z.set(&[0, 3, 5]);
            z.union(b, a)
        };
        assert_eq!(f1, f2);
    }
}
