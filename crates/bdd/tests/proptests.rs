//! Property-based tests: BDD operations agree with direct Boolean
//! evaluation on random expression trees, and canonical-form identities
//! hold. Runs on the in-tree [`hlpower_rng::check`] harness.

use hlpower_bdd::{BddManager, BddRef};
use hlpower_rng::check::Check;
use hlpower_rng::Rng;

/// A random Boolean expression over `n` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Draws a random expression tree of depth at most `depth` (the recursive
/// analogue of the old `prop_recursive` strategy).
fn random_expr(rng: &mut Rng, nvars: u32, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.25) {
        return Expr::Var(rng.gen_range(0..nvars));
    }
    match rng.gen_range(0u32..5) {
        0 => Expr::Not(Box::new(random_expr(rng, nvars, depth - 1))),
        1 => Expr::And(
            Box::new(random_expr(rng, nvars, depth - 1)),
            Box::new(random_expr(rng, nvars, depth - 1)),
        ),
        2 => Expr::Or(
            Box::new(random_expr(rng, nvars, depth - 1)),
            Box::new(random_expr(rng, nvars, depth - 1)),
        ),
        3 => Expr::Xor(
            Box::new(random_expr(rng, nvars, depth - 1)),
            Box::new(random_expr(rng, nvars, depth - 1)),
        ),
        _ => Expr::Ite(
            Box::new(random_expr(rng, nvars, depth - 1)),
            Box::new(random_expr(rng, nvars, depth - 1)),
            Box::new(random_expr(rng, nvars, depth - 1)),
        ),
    }
}

fn build(m: &mut BddManager, e: &Expr) -> BddRef {
    match e {
        Expr::Var(v) => m.var(*v),
        Expr::Not(a) => {
            let x = build(m, a);
            m.not(x)
        }
        Expr::And(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.and(x, y)
        }
        Expr::Or(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.or(x, y)
        }
        Expr::Xor(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.xor(x, y)
        }
        Expr::Ite(a, b, c) => {
            let (x, y, z) = (build(m, a), build(m, b), build(m, c));
            m.ite(x, y, z)
        }
    }
}

fn eval(e: &Expr, asg: &[bool]) -> bool {
    match e {
        Expr::Var(v) => asg[*v as usize],
        Expr::Not(a) => !eval(a, asg),
        Expr::And(a, b) => eval(a, asg) && eval(b, asg),
        Expr::Or(a, b) => eval(a, asg) || eval(b, asg),
        Expr::Xor(a, b) => eval(a, asg) ^ eval(b, asg),
        Expr::Ite(a, b, c) => {
            if eval(a, asg) {
                eval(b, asg)
            } else {
                eval(c, asg)
            }
        }
    }
}

const NVARS: u32 = 6;
const DEPTH: u32 = 5;

/// The BDD of a random expression evaluates identically to the
/// expression on every assignment, and its sat-count matches brute
/// force.
#[test]
fn bdd_matches_expression() {
    Check::new("bdd_matches_expression").cases(48).run(|rng| {
        let e = random_expr(rng, NVARS, DEPTH);
        let mut m = BddManager::new(NVARS as usize);
        let f = build(&mut m, &e);
        let mut count = 0u32;
        for bits in 0..(1u32 << NVARS) {
            let asg: Vec<bool> = (0..NVARS).map(|i| bits & (1 << i) != 0).collect();
            let expect = eval(&e, &asg);
            assert_eq!(m.eval(f, &asg), expect);
            count += expect as u32;
        }
        assert_eq!(m.sat_count(f), count as f64);
    });
}

/// Canonical-form identity: semantically equal expressions produce the
/// same node (double negation, De Morgan).
#[test]
fn canonical_identities() {
    Check::new("canonical_identities").cases(48).run(|rng| {
        let e = random_expr(rng, NVARS, DEPTH);
        let mut m = BddManager::new(NVARS as usize);
        let f = build(&mut m, &e);
        let nf = m.not(f);
        let nnf = m.not(nf);
        assert_eq!(nnf, f, "double negation");
        let tautology = m.or(f, nf);
        assert_eq!(tautology, BddRef::TRUE);
        let contradiction = m.and(f, nf);
        assert_eq!(contradiction, BddRef::FALSE);
    });
}

/// Shannon expansion: f == ite(x, f|x=1, f|x=0) for every variable.
#[test]
fn shannon_expansion() {
    Check::new("shannon_expansion").cases(48).run(|rng| {
        let e = random_expr(rng, NVARS, DEPTH);
        let v = rng.gen_range(0..NVARS);
        let mut m = BddManager::new(NVARS as usize);
        let f = build(&mut m, &e);
        let f1 = m.cofactor(f, v, true);
        let f0 = m.cofactor(f, v, false);
        let x = m.var(v);
        let rebuilt = m.ite(x, f1, f0);
        assert_eq!(rebuilt, f);
    });
}

/// Quantification: exists x. f is the OR of cofactors; forall the AND;
/// and forall f => f => exists f pointwise.
#[test]
fn quantification_sandwich() {
    Check::new("quantification_sandwich").cases(48).run(|rng| {
        let e = random_expr(rng, NVARS, DEPTH);
        let v = rng.gen_range(0..NVARS);
        let mut m = BddManager::new(NVARS as usize);
        let f = build(&mut m, &e);
        let ex = m.exists(f, &[v]);
        let fa = m.forall(f, &[v]);
        // forall implies f implies exists.
        let i1 = m.implies(fa, f);
        let i2 = m.implies(f, ex);
        assert_eq!(i1, BddRef::TRUE);
        assert_eq!(i2, BddRef::TRUE);
        // Quantified results are independent of v.
        assert!(!m.support(ex).contains(&v));
        assert!(!m.support(fa).contains(&v));
    });
}

/// Transfer to a random variable order preserves the function.
#[test]
fn transfer_preserves_function() {
    Check::new("transfer_preserves_function").cases(48).run(|rng| {
        let e = random_expr(rng, NVARS, DEPTH);
        let perm_seed = rng.gen_range(0u64..1000);
        let mut m = BddManager::new(NVARS as usize);
        let f = build(&mut m, &e);
        // Derive a permutation from the seed.
        let mut order: Vec<u32> = (0..NVARS).collect();
        let mut s = perm_seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let (m2, roots) = m.transfer(&[f], &order);
        for bits in 0..(1u32 << NVARS) {
            let asg: Vec<bool> = (0..NVARS).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(m.eval(f, &asg), m2.eval(roots[0], &asg));
        }
    });
}

/// Variable sifting preserves the function: same sat-count (exact in
/// `f64` — minterm counts over 6 variables are small integers), same
/// value on every assignment, ITE-checked equivalence against the
/// pre-reorder BDD rebuilt in the sifted manager, and never a larger
/// diagram.
#[test]
fn sifting_preserves_satcount_and_equivalence() {
    Check::new("sifting_preserves_satcount_and_equivalence").cases(24).run(|rng| {
        let e = random_expr(rng, NVARS, DEPTH);
        let mut m = BddManager::new(NVARS as usize);
        let f = build(&mut m, &e);
        let sat_before = m.sat_count(f);
        let size_before = m.node_count(f);

        let (mut m2, roots, order) = m.sift(&[f]);
        let g = roots[0];

        // Sat-count is preserved exactly.
        assert_eq!(m2.sat_count(g), sat_before, "sat-count changed (order {order:?})");
        // Sifting only improves (or keeps) the diagram size.
        assert!(
            m2.node_count(g) <= size_before,
            "sift grew the BDD: {size_before} -> {} (order {order:?})",
            m2.node_count(g)
        );
        // ITE equivalence against the pre-reorder function, rebuilt from
        // the same expression inside the sifted manager: canonicity makes
        // xnor(g, f') == TRUE iff the functions are identical.
        let f2 = build(&mut m2, &e);
        let equiv = m2.xnor(g, f2);
        assert_eq!(equiv, BddRef::TRUE, "sifted BDD differs from rebuilt function");
        // Belt and braces: pointwise agreement on all 64 assignments.
        for bits in 0..(1u32 << NVARS) {
            let asg: Vec<bool> = (0..NVARS).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(m.eval(f, &asg), m2.eval(g, &asg), "bits {bits:06b}");
        }
    });
}

/// `any_sat` returns a satisfying assignment exactly when one exists.
#[test]
fn any_sat_is_sound() {
    Check::new("any_sat_is_sound").cases(48).run(|rng| {
        let e = random_expr(rng, NVARS, DEPTH);
        let mut m = BddManager::new(NVARS as usize);
        let f = build(&mut m, &e);
        match m.any_sat(f) {
            Some(asg) => assert!(m.eval(f, &asg)),
            None => assert_eq!(f, BddRef::FALSE),
        }
    });
}
