//! Property-based differential tests for the incremental candidate
//! scorers: every converted optimize pass must produce results
//! bit-identical to the historical clone-and-fully-resimulate path,
//! across a pool of generated circuit families and both ingested example
//! netlists. Runs on the in-tree [`hlpower_rng::check`] harness.

use hlpower_netlist::{
    attribute, gen, parse_edif, parse_verilog, streams, IncrementalSim, IncrementalTimedSim,
    Library, Netlist,
};
use hlpower_opt::{balance, guard, rewrite};
use hlpower_rng::check::Check;
use hlpower_rng::Rng;

/// The combinational EDIF example shipped with the repo.
const MAJORITY_EDF: &str =
    include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/majority.edf"));
/// The sequential structural-Verilog example shipped with the repo.
const GRAY_COUNTER_V: &str =
    include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/gray_counter4.v"));

/// Six combinational circuit families plus the ingested EDIF example.
/// Every case draws one at random, so over a run the differential
/// properties see adders, multipliers, ALUs, mux trees, CSD shifters,
/// unstructured random logic, and an externally-authored netlist.
fn combinational(rng: &mut Rng) -> (&'static str, Netlist) {
    match rng.gen_range(0u32..7) {
        0 => {
            let bits = rng.gen_range(3usize..7);
            let mut nl = Netlist::new();
            let a = nl.input_bus("a", bits);
            let b = nl.input_bus("b", bits);
            let zero = nl.constant(false);
            let s = gen::ripple_adder(&mut nl, &a, &b, zero);
            nl.output_bus("s", &s);
            ("adder", nl)
        }
        1 => {
            let bits = rng.gen_range(2usize..5);
            let mut nl = Netlist::new();
            let a = nl.input_bus("a", bits);
            let b = nl.input_bus("b", bits);
            let p = gen::array_multiplier(&mut nl, &a, &b);
            nl.output_bus("p", &p);
            ("multiplier", nl)
        }
        2 => {
            let bits = rng.gen_range(2usize..5);
            let mut nl = Netlist::new();
            let op = [nl.input("op0"), nl.input("op1")];
            let a = nl.input_bus("a", bits);
            let b = nl.input_bus("b", bits);
            let y = gen::alu(&mut nl, op, &a, &b);
            nl.output_bus("y", &y);
            ("alu", nl)
        }
        3 => ("guarded_mux", guard::guarded_mux_example(rng.gen_range(4usize..9))),
        4 => {
            let k = rng.gen_range(3u64..200);
            let mut nl = Netlist::new();
            let a = nl.input_bus("a", 5);
            let p = gen::csd_const_multiplier(&mut nl, &a, k);
            nl.output_bus("p", &p);
            ("csd_mult", nl)
        }
        5 => {
            let mut nl = Netlist::new();
            gen::random_logic(&mut nl, rng.next_u64(), rng.gen_range(4usize..8), 30, 3);
            ("random_logic", nl)
        }
        _ => ("majority_edf", parse_edif(MAJORITY_EDF).expect("shipped example parses")),
    }
}

/// The guard scorer replays only a candidate's dirty region against one
/// recording; the reference scorer replays the whole netlist per
/// candidate. Their `(base, guarded, ok)` triples must agree to the bit
/// on every candidate, and [`guard::search`] must select exactly the
/// candidate the reference scores would pick.
#[test]
fn guard_scorer_matches_from_scratch_on_diverse_circuits() {
    Check::new("guard_scorer_matches_from_scratch").cases(12).run(|rng| {
        let lib = Library::default();
        let (name, nl) = combinational(rng);
        let cycles = rng.gen_range(48usize..192);
        let stream: Vec<Vec<bool>> =
            streams::random(rng.next_u64(), nl.input_count()).take(cycles).collect();
        let candidates = guard::find_candidates(&nl, &lib, 12).expect("acyclic");
        if candidates.is_empty() {
            return;
        }
        let reference: Vec<(f64, f64, bool)> = candidates
            .iter()
            .map(|c| guard::evaluate(&nl, &lib, c, &stream).expect("acyclic"))
            .collect();
        let mut scorer = guard::GuardScorer::new(&nl, &lib, &stream).expect("acyclic");
        for (c, r) in candidates.iter().zip(&reference) {
            let (base, guarded, ok) = scorer.score(c);
            assert_eq!(base.to_bits(), r.0.to_bits(), "{name}: baseline diverged");
            assert_eq!(guarded.to_bits(), r.1.to_bits(), "{name}: guarded energy diverged");
            assert_eq!(ok, r.2, "{name}: correctness bit diverged");
        }
        // Replay the search's selection rule over the reference scores.
        let opts =
            guard::GuardSearchOptions { max_targets: 12, ..guard::GuardSearchOptions::default() };
        let outcome = guard::search(&nl, &lib, &stream, &opts).expect("acyclic");
        let base = reference[0].0;
        let mut expect: Option<(usize, f64)> = None;
        for (i, r) in reference.iter().enumerate() {
            if r.2 && r.1 < base && expect.is_none_or(|(_, g)| r.1 < g) {
                expect = Some((i, r.1));
            }
        }
        match (expect, &outcome.best) {
            (None, None) => {}
            (Some((i, g)), Some((c, got))) => {
                assert_eq!(c.target, candidates[i].target, "{name}: search picked another target");
                assert_eq!(got.to_bits(), g.to_bits(), "{name}: best energy diverged");
            }
            (e, b) => panic!("{name}: search best {b:?} but reference scores say {e:?}"),
        }
        assert_eq!(outcome.base_energy_fj.to_bits(), base.to_bits());
    });
}

/// The rewrite loop maintains its recording and attribution
/// incrementally across accepted mutations; both caches must end
/// bit-identical to a from-scratch record / attribution of the final
/// netlist (and the baseline to one of the original).
#[test]
fn rewrite_incremental_caches_match_from_scratch_records() {
    Check::new("rewrite_caches_match_from_scratch").cases(12).run(|rng| {
        let lib = Library::default();
        let (name, nl) = combinational(rng);
        let cycles = rng.gen_range(48usize..192);
        let stream: Vec<Vec<bool>> =
            streams::random(rng.next_u64(), nl.input_count()).take(cycles).collect();
        let out = rewrite::rewrite_gates(&nl, &lib, &stream, &rewrite::RewriteOptions::default())
            .expect("combinational");
        let base = IncrementalSim::record(&nl, &stream).expect("combinational");
        assert_eq!(
            out.baseline_uw.to_bits(),
            base.activity().power(&nl, &lib).total_power_uw().to_bits(),
            "{name}: baseline diverged"
        );
        let fresh = IncrementalSim::record(&out.netlist, &stream).expect("combinational");
        let act = fresh.activity();
        assert_eq!(
            out.optimized_uw.to_bits(),
            act.power(&out.netlist, &lib).total_power_uw().to_bits(),
            "{name}: optimized power diverged from a from-scratch record"
        );
        assert_eq!(
            out.attribution,
            attribute(&out.netlist, &lib, &act),
            "{name}: delta-maintained attribution diverged"
        );
    });
}

/// Path balancing scores its one candidate through the timed dirty-cone
/// replay; the outcome's power and glitch numbers must match a
/// from-scratch timed recording of the balanced netlist — including on
/// the sequential ingested example, which exercises the
/// register-boundary replay path.
#[test]
fn balance_outcome_matches_from_scratch_timed_record() {
    Check::new("balance_matches_from_scratch").cases(8).run(|rng| {
        let lib = Library::default();
        let (name, nl) = match rng.gen_range(0u32..3) {
            0 => (
                "skewed_parity",
                balance::skewed_parity_example(rng.gen_range(4usize..8), rng.gen_range(2usize..6)),
            ),
            1 => ("gray_counter_v", parse_verilog(GRAY_COUNTER_V).expect("shipped example")),
            _ => combinational(rng),
        };
        let cycles = rng.gen_range(48usize..160);
        let stream: Vec<Vec<bool>> =
            streams::random(rng.next_u64(), nl.input_count()).take(cycles).collect();
        let out = balance::balance_paths(&nl, &lib, &stream, &balance::BalanceOptions::default())
            .expect("acyclic");
        let base = IncrementalTimedSim::record(&nl, &lib, &stream).expect("acyclic");
        assert_eq!(
            out.baseline_uw.to_bits(),
            base.activity().power(&nl, &lib).total_power_uw().to_bits(),
            "{name}: baseline diverged"
        );
        let fresh = IncrementalTimedSim::record(&out.netlist, &lib, &stream).expect("acyclic");
        let act = fresh.activity();
        assert_eq!(
            out.balanced_uw.to_bits(),
            act.power(&out.netlist, &lib).total_power_uw().to_bits(),
            "{name}: balanced power diverged from a from-scratch record"
        );
        assert_eq!(
            out.glitch_fraction_after.to_bits(),
            act.glitch_fraction().expect("nonempty stream").to_bits(),
            "{name}: glitch fraction diverged"
        );
    });
}
