//! Property-based tests: every bus codec is bijective on arbitrary
//! streams, Bus-Invert honors its transition bound, and shutdown policy
//! simulation respects physical bounds.

use hlpower_opt::buscode::*;
use hlpower_opt::shutdown::{self, policies::*};
use proptest::prelude::*;

fn word_stream() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1 << 16), 2..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All stateful codecs round-trip arbitrary word streams.
    #[test]
    fn codecs_round_trip(words in word_stream()) {
        let mut pairs: Vec<(Box<dyn BusCodec>, Box<dyn BusCodec>)> = vec![
            (Box::new(Unencoded::new(16)), Box::new(Unencoded::new(16))),
            (Box::new(BusInvert::new(16)), Box::new(BusInvert::new(16))),
            (Box::new(GrayCode::new(16)), Box::new(GrayCode::new(16))),
            (Box::new(T0Code::new(16)), Box::new(T0Code::new(16))),
            (Box::new(WorkingZone::new(16, 4, 8)), Box::new(WorkingZone::new(16, 4, 8))),
        ];
        let beach = BeachCode::train(16, &words, 8);
        pairs.push((Box::new(beach.clone()), Box::new(beach)));
        for (enc, dec) in &mut pairs {
            for &w in &words {
                let lines = enc.encode(w);
                prop_assert_eq!(dec.decode(lines), w, "{} failed", enc.name());
            }
        }
    }

    /// Bus-Invert never toggles more than N/2 + 1 lines per word.
    #[test]
    fn bus_invert_bound(words in word_stream()) {
        let mut enc = BusInvert::new(16);
        let mut prev: Option<u64> = None;
        for &w in &words {
            let lines = enc.encode(w);
            if let Some(p) = prev {
                prop_assert!((lines ^ p).count_ones() <= 9);
            }
            prev = Some(lines);
        }
    }

    /// Gray encoding of consecutive integers differs in exactly one bit,
    /// for any starting point.
    #[test]
    fn gray_adjacency(start in 0u64..(1 << 16)) {
        let mut g = GrayCode::new(17);
        let a = g.encode(start);
        let b = g.encode(start + 1);
        prop_assert_eq!((a ^ b).count_ones(), 1);
    }

    /// Policy simulations never report power below `p_off` or above
    /// `p_wake`, never exceed the oracle bound, and keep the shutdown
    /// fraction a valid probability.
    #[test]
    fn shutdown_simulation_bounds(seed in 0u64..200, timeout in 0.5f64..20.0) {
        let device = shutdown::DeviceModel::default();
        let w = shutdown::bursty_workload(seed, 300);
        let mut policy = StaticTimeout { timeout };
        let r = shutdown::simulate(&mut policy, &device, &w);
        prop_assert!(r.average_power >= device.p_off - 1e-9);
        prop_assert!(r.average_power <= device.p_wake + 1e-9);
        prop_assert!((0.0..=1.0).contains(&r.shutdown_fraction));
        prop_assert!(r.performance_penalty >= 0.0);
        // No policy beats the physics: improvement below the T_I/T_A bound.
        prop_assert!(r.improvement <= shutdown::improvement_upper_bound(&w) + 1e-9);
    }

    /// The oracle never loses to any static timeout on the same workload.
    #[test]
    fn oracle_dominates_static(seed in 0u64..100, timeout in 0.5f64..20.0) {
        let device = shutdown::DeviceModel::default();
        let w = shutdown::bursty_workload(seed, 300);
        let r_static = shutdown::simulate(&mut StaticTimeout { timeout }, &device, &w);
        let r_oracle = shutdown::simulate(&mut Oracle::new(&device, &w), &device, &w);
        prop_assert!(r_oracle.average_power <= r_static.average_power + 1e-9);
    }
}
