//! Property-based tests: every bus codec is bijective on arbitrary
//! streams, Bus-Invert honors its transition bound, and shutdown policy
//! simulation respects physical bounds. Runs on the in-tree
//! [`hlpower_rng::check`] harness.

use hlpower_opt::buscode::*;
use hlpower_opt::shutdown::{self, policies::*};
use hlpower_rng::check::Check;
use hlpower_rng::Rng;

fn word_stream(rng: &mut Rng) -> Vec<u64> {
    let len = rng.gen_range(2usize..200);
    (0..len).map(|_| rng.gen_range(0u64..(1 << 16))).collect()
}

/// All stateful codecs round-trip arbitrary word streams.
#[test]
fn codecs_round_trip() {
    Check::new("codecs_round_trip").cases(48).run(|rng| {
        let words = word_stream(rng);
        let mut pairs: Vec<(Box<dyn BusCodec>, Box<dyn BusCodec>)> = vec![
            (Box::new(Unencoded::new(16)), Box::new(Unencoded::new(16))),
            (Box::new(BusInvert::new(16)), Box::new(BusInvert::new(16))),
            (Box::new(GrayCode::new(16)), Box::new(GrayCode::new(16))),
            (Box::new(T0Code::new(16)), Box::new(T0Code::new(16))),
            (Box::new(WorkingZone::new(16, 4, 8)), Box::new(WorkingZone::new(16, 4, 8))),
        ];
        let beach = BeachCode::train(16, &words, 8);
        pairs.push((Box::new(beach.clone()), Box::new(beach)));
        for (enc, dec) in &mut pairs {
            for &w in &words {
                let lines = enc.encode(w);
                assert_eq!(dec.decode(lines), w, "{} failed", enc.name());
            }
        }
    });
}

/// Bus-Invert never toggles more than N/2 + 1 lines per word.
#[test]
fn bus_invert_bound() {
    Check::new("bus_invert_bound").cases(48).run(|rng| {
        let words = word_stream(rng);
        let mut enc = BusInvert::new(16);
        let mut prev: Option<u64> = None;
        for &w in &words {
            let lines = enc.encode(w);
            if let Some(p) = prev {
                assert!((lines ^ p).count_ones() <= 9);
            }
            prev = Some(lines);
        }
    });
}

/// Gray encoding of consecutive integers differs in exactly one bit,
/// for any starting point.
#[test]
fn gray_adjacency() {
    Check::new("gray_adjacency").cases(48).run(|rng| {
        let start = rng.gen_range(0u64..(1 << 16));
        let mut g = GrayCode::new(17);
        let a = g.encode(start);
        let b = g.encode(start + 1);
        assert_eq!((a ^ b).count_ones(), 1);
    });
}

/// Policy simulations never report power below `p_off` or above
/// `p_wake`, never exceed the oracle bound, and keep the shutdown
/// fraction a valid probability.
#[test]
fn shutdown_simulation_bounds() {
    Check::new("shutdown_simulation_bounds").cases(48).run(|rng| {
        let seed = rng.gen_range(0u64..200);
        let timeout = rng.gen_range(0.5..20.0);
        let device = shutdown::DeviceModel::default();
        let w = shutdown::bursty_workload(seed, 300);
        let mut policy = StaticTimeout { timeout };
        let r = shutdown::simulate(&mut policy, &device, &w);
        assert!(r.average_power >= device.p_off - 1e-9);
        assert!(r.average_power <= device.p_wake + 1e-9);
        assert!((0.0..=1.0).contains(&r.shutdown_fraction));
        assert!(r.performance_penalty >= 0.0);
        // No policy beats the physics: improvement below the T_I/T_A bound.
        assert!(r.improvement <= shutdown::improvement_upper_bound(&w) + 1e-9);
    });
}

/// The oracle never loses to any static timeout on the same workload.
#[test]
fn oracle_dominates_static() {
    Check::new("oracle_dominates_static").cases(48).run(|rng| {
        let seed = rng.gen_range(0u64..100);
        let timeout = rng.gen_range(0.5..20.0);
        let device = shutdown::DeviceModel::default();
        let w = shutdown::bursty_workload(seed, 300);
        let r_static = shutdown::simulate(&mut StaticTimeout { timeout }, &device, &w);
        let r_oracle = shutdown::simulate(&mut Oracle::new(&device, &w), &device, &w);
        assert!(r_oracle.average_power <= r_static.average_power + 1e-9);
    });
}
