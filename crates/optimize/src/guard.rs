//! Guarded evaluation (survey §III-I, Fig. 8, reference 105).
//!
//! For an internal signal `z` with observability don't-care set `D_z(X)`,
//! any existing signal `s` with `s ⇒ D_z` can guard the logic cone `F`
//! driving `z`: when `s = 1`, transparent latches at `F`'s inputs hold
//! their values and the cone does not switch — the outputs are unaffected
//! *by construction* of the ODC. The timing condition `t_l(s) < t_e(Y)`
//! ensures the latches close before the cone's inputs move.

use std::collections::{HashMap, HashSet};

use hlpower_bdd::{BddManager, BddRef};
use hlpower_netlist::{Library, Netlist, NetlistError, NodeId, NodeKind, ZeroDelaySim};

/// One guarded-evaluation opportunity.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardCandidate {
    /// The guarded signal whose cone is latched.
    pub target: NodeId,
    /// The existing signal used as the guard (asserts when `target` is
    /// unobservable).
    pub guard: NodeId,
    /// Probability that the guard asserts (shutdown fraction) under
    /// uniform inputs.
    pub guard_probability: f64,
    /// Nodes in the guarded cone (the logic that stops switching).
    pub cone: Vec<NodeId>,
    /// Whether the timing condition `t_l(s) < t_e(Y)` holds under the
    /// library's delay model.
    pub timing_ok: bool,
}

/// Computes the observability don't-care set of `target` by re-extracting
/// the output BDDs with `target` replaced by a fresh variable: `ODC =
/// AND_out XNOR(out|z=0, out|z=1)`.
fn odc_of(
    netlist: &Netlist,
    target: NodeId,
) -> Result<(BddManager, BddRef, HashMap<NodeId, BddRef>), NetlistError> {
    let order = netlist.topo_order()?;
    let nvars = netlist.input_count() + netlist.dffs().len() + 1;
    let zvar = (nvars - 1) as u32;
    let mut m = BddManager::new(nvars);
    let mut map: HashMap<NodeId, BddRef> = HashMap::new();
    for (i, &inp) in netlist.inputs().iter().enumerate() {
        let v = m.var(i as u32);
        map.insert(inp, v);
    }
    for (i, &q) in netlist.dffs().iter().enumerate() {
        let v = m.var((netlist.input_count() + i) as u32);
        map.insert(q, v);
    }
    for id in netlist.node_ids() {
        if let NodeKind::Const(c) = netlist.kind(id) {
            map.insert(id, m.constant(*c));
        }
    }
    for &id in &order {
        if id == target {
            let v = m.var(zvar);
            map.insert(id, v);
            continue;
        }
        if let NodeKind::Gate { kind, inputs } = netlist.kind(id) {
            use hlpower_netlist::GateKind::*;
            let fanin: Vec<BddRef> = inputs.iter().map(|f| map[f]).collect();
            let f = match kind {
                Buf => fanin[0],
                Not => m.not(fanin[0]),
                And => m.and_many(fanin.iter().copied()),
                Or => m.or_many(fanin.iter().copied()),
                Nand => {
                    let x = m.and_many(fanin.iter().copied());
                    m.not(x)
                }
                Nor => {
                    let x = m.or_many(fanin.iter().copied());
                    m.not(x)
                }
                Xor => fanin[1..].iter().fold(fanin[0], |acc, &x| m.xor(acc, x)),
                Xnor => {
                    let x = fanin[1..].iter().fold(fanin[0], |acc, &x| m.xor(acc, x));
                    m.not(x)
                }
                Mux => m.ite(fanin[0], fanin[2], fanin[1]),
            };
            map.insert(id, f);
        }
    }
    let mut odc = BddRef::TRUE;
    for &(_, o) in netlist.outputs() {
        let f = map[&o];
        let f0 = m.cofactor(f, zvar, false);
        let f1 = m.cofactor(f, zvar, true);
        let same = m.xnor(f0, f1);
        odc = m.and(odc, same);
    }
    Ok((m, odc, map))
}

/// The transitive fan-in cone of a node (gates only, the node included).
fn cone_of(netlist: &Netlist, target: NodeId) -> Vec<NodeId> {
    let mut seen = HashSet::new();
    let mut stack = vec![target];
    let mut cone = Vec::new();
    while let Some(x) = stack.pop() {
        if !seen.insert(x) {
            continue;
        }
        if let NodeKind::Gate { inputs, .. } = netlist.kind(x) {
            cone.push(x);
            stack.extend(inputs.iter().copied());
        }
    }
    cone
}

/// Finds guarded-evaluation opportunities: for each internal signal with
/// a non-trivial ODC, search the other signals for one that implies it,
/// check timing, and report the candidates ranked by expected saving
/// (guard probability x cone size).
///
/// # Errors
///
/// Returns a netlist error for cyclic circuits.
pub fn find_candidates(
    netlist: &Netlist,
    lib: &Library,
    max_targets: usize,
) -> Result<Vec<GuardCandidate>, NetlistError> {
    let arrivals = netlist.arrival_times_ps(lib)?;
    let gates: Vec<NodeId> = netlist
        .node_ids()
        .filter(|&id| matches!(netlist.kind(id), NodeKind::Gate { .. }))
        .collect();
    // Any existing signal may serve as a guard, including primary inputs
    // (the paper's "a signal s in C").
    let mut guard_pool = gates.clone();
    guard_pool.extend(netlist.inputs().iter().copied());
    let output_set: HashSet<NodeId> = netlist.outputs().iter().map(|&(_, n)| n).collect();
    let mut out = Vec::new();
    // Prefer targets with large cones.
    let mut targets: Vec<NodeId> =
        gates.iter().copied().filter(|id| !output_set.contains(id)).collect();
    targets.sort_by_key(|&t| std::cmp::Reverse(cone_of(netlist, t).len()));
    for &target in targets.iter().take(max_targets) {
        let (mut m, odc, map) = odc_of(netlist, target)?;
        if odc == BddRef::FALSE {
            continue;
        }
        let cone = cone_of(netlist, target);
        let cone_set: HashSet<NodeId> = cone.iter().copied().collect();
        // Earliest switching time of the cone's inputs.
        let t_e = cone
            .iter()
            .flat_map(|&c| match netlist.kind(c) {
                NodeKind::Gate { inputs, .. } => inputs.clone(),
                _ => Vec::new(),
            })
            .filter(|x| !cone_set.contains(x))
            .map(|x| arrivals[x.index()])
            .fold(f64::INFINITY, f64::min);
        for &guard in &guard_pool {
            if cone_set.contains(&guard) || guard == target {
                continue;
            }
            // Guard must not depend on the target's cone output (it
            // does not, structurally: it is outside the cone, but it may
            // read the target; skip if target is in its fan-in).
            if cone_of(netlist, guard).contains(&target) {
                continue;
            }
            let s = map[&guard];
            // s implies ODC: s & !ODC == false.
            let nodc = m.not(odc);
            if m.and(s, nodc) != BddRef::FALSE {
                continue;
            }
            let p = m.sat_fraction(s);
            if p < 0.05 {
                continue;
            }
            let timing_ok = arrivals[guard.index()] < t_e;
            out.push(GuardCandidate {
                target,
                guard,
                guard_probability: p,
                cone: cone.clone(),
                timing_ok,
            });
        }
    }
    out.sort_by(|a, b| {
        let sa = a.guard_probability * a.cone.len() as f64;
        let sb = b.guard_probability * b.cone.len() as f64;
        sb.partial_cmp(&sa).expect("finite")
    });
    Ok(out)
}

/// Simulates the circuit with guarded evaluation applied to one
/// candidate: on cycles where the guard (computed from current inputs)
/// asserts, the cone's nodes hold their previous values (the transparent
/// latches are opaque) and dissipate nothing; outputs remain correct by
/// the ODC property. Returns `(baseline_energy_fj, guarded_energy_fj,
/// outputs_match)`.
///
/// # Errors
///
/// Returns a netlist error for cyclic circuits or width mismatches.
pub fn evaluate(
    netlist: &Netlist,
    lib: &Library,
    candidate: &GuardCandidate,
    stream: &[Vec<bool>],
) -> Result<(f64, f64, bool), NetlistError> {
    let order = netlist.topo_order()?;
    let caps = netlist.load_caps_ff(lib);
    let energy_of: Vec<f64> = netlist
        .node_ids()
        .map(|id| {
            let mut e = lib.switching_energy_fj(caps[id.index()]);
            if let NodeKind::Gate { kind, .. } = netlist.kind(id) {
                e += lib.cell(*kind).internal_energy_fj;
            }
            e
        })
        .collect();
    let cone_set: HashSet<NodeId> = candidate.cone.iter().copied().collect();

    // Baseline.
    let mut base_sim = ZeroDelaySim::new(netlist)?;
    let mut base_outputs = Vec::new();
    let mut base_energy = 0.0;
    for v in stream {
        base_sim.step(v)?;
        base_outputs.push(base_sim.output_values());
        let act = base_sim.take_activity();
        base_energy +=
            act.toggles.iter().enumerate().map(|(i, &t)| t as f64 * energy_of[i]).sum::<f64>();
    }

    // Guarded interpretation.
    let mut values = vec![false; netlist.node_count()];
    for id in netlist.node_ids() {
        if let NodeKind::Const(c) = netlist.kind(id) {
            values[id.index()] = *c;
        }
    }
    let mut guarded_energy = 0.0;
    let mut outputs_match = true;
    let mut first = true;
    for (t, v) in stream.iter().enumerate() {
        // Apply inputs.
        for (i, &inp) in netlist.inputs().iter().enumerate() {
            if !first && values[inp.index()] != v[i] {
                guarded_energy += energy_of[inp.index()];
            }
            values[inp.index()] = v[i];
        }
        // The guard's own cone is disjoint from the target cone (checked
        // during candidate search), so it can be settled first to decide
        // the freeze; then one topological pass evaluates everything else,
        // holding the target cone when the guard asserts.
        let guard_cone: HashSet<NodeId> = {
            let mut gc: HashSet<NodeId> = cone_of(netlist, candidate.guard).into_iter().collect();
            gc.insert(candidate.guard);
            gc
        };
        for &id in &order {
            if !guard_cone.contains(&id) {
                continue;
            }
            if let NodeKind::Gate { kind, inputs } = netlist.kind(id) {
                let vals: Vec<bool> = inputs.iter().map(|f| values[f.index()]).collect();
                let new = kind.eval(&vals);
                if !first && new != values[id.index()] {
                    guarded_energy += energy_of[id.index()];
                }
                values[id.index()] = new;
            }
        }
        let guard_asserted = values[candidate.guard.index()];
        for &id in &order {
            if guard_cone.contains(&id) {
                continue;
            }
            if guard_asserted && cone_set.contains(&id) {
                continue; // latched: holds its previous value, no energy
            }
            if let NodeKind::Gate { kind, inputs } = netlist.kind(id) {
                let vals: Vec<bool> = inputs.iter().map(|f| values[f.index()]).collect();
                let new = kind.eval(&vals);
                if !first && new != values[id.index()] {
                    guarded_energy += energy_of[id.index()];
                }
                values[id.index()] = new;
            }
        }
        // Compare outputs.
        let outs: Vec<bool> = netlist.outputs().iter().map(|&(_, n)| values[n.index()]).collect();
        if outs != base_outputs[t] {
            outputs_match = false;
        }
        first = false;
    }
    Ok((base_energy, guarded_energy, outputs_match))
}

/// A mux-dominated example circuit with a natural guard: `y = sel ? a_fn :
/// b_fn` where `sel` makes one branch unobservable.
pub fn guarded_mux_example(width: usize) -> Netlist {
    let mut nl = Netlist::new();
    let sel = nl.input("sel");
    let a = nl.input_bus("a", width);
    let b = nl.input_bus("b", width);
    // Branch A: parity chain (deep cone).
    let mut pa = a[0];
    for &bit in &a[1..] {
        pa = nl.xor([pa, bit]);
    }
    // Branch B: AND-OR tree.
    let mut pb = b[0];
    for &bit in &b[1..] {
        pb = nl.and([pb, bit]);
    }
    let y = nl.mux(sel, pa, pb);
    nl.set_output("y", y);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_netlist::streams;

    #[test]
    fn finds_mux_guard() {
        let nl = guarded_mux_example(6);
        let lib = Library::default();
        let candidates = find_candidates(&nl, &lib, 8).unwrap();
        assert!(!candidates.is_empty(), "mux select must guard a branch");
        // The guard probability of a select-like guard is ~1/2.
        assert!(candidates.iter().any(|c| (c.guard_probability - 0.5).abs() < 1e-9));
    }

    #[test]
    fn guarded_outputs_stay_correct() {
        let nl = guarded_mux_example(6);
        let lib = Library::default();
        let candidates = find_candidates(&nl, &lib, 8).unwrap();
        let stream: Vec<Vec<bool>> = streams::random(2, nl.input_count()).take(500).collect();
        let best = &candidates[0];
        let (_, _, ok) = evaluate(&nl, &lib, best, &stream).unwrap();
        assert!(ok, "guarded evaluation changed outputs for {best:?}");
    }

    #[test]
    fn guarding_saves_energy() {
        let nl = guarded_mux_example(8);
        let lib = Library::default();
        let candidates = find_candidates(&nl, &lib, 8).unwrap();
        let stream: Vec<Vec<bool>> = streams::random(3, nl.input_count()).take(1500).collect();
        let best = &candidates[0];
        let (base, guarded, ok) = evaluate(&nl, &lib, best, &stream).unwrap();
        assert!(ok);
        assert!(guarded < 0.95 * base, "expected >5% energy saving: {base:.0} -> {guarded:.0}");
    }

    #[test]
    fn no_candidates_in_fully_observable_circuit() {
        // A parity tree: every node is always observable (ODC empty).
        let mut nl = Netlist::new();
        let xs = nl.input_bus("x", 6);
        let mut p = xs[0];
        for &x in &xs[1..] {
            p = nl.xor([p, x]);
        }
        nl.set_output("p", p);
        let lib = Library::default();
        let candidates = find_candidates(&nl, &lib, 10).unwrap();
        assert!(candidates.is_empty());
    }
}
