//! Guarded evaluation (survey §III-I, Fig. 8, reference 105).
//!
//! For an internal signal `z` with observability don't-care set `D_z(X)`,
//! any existing signal `s` with `s ⇒ D_z` can guard the logic cone `F`
//! driving `z`: when `s = 1`, transparent latches at `F`'s inputs hold
//! their values and the cone does not switch — the outputs are unaffected
//! *by construction* of the ODC. The timing condition `t_l(s) < t_e(Y)`
//! ensures the latches close before the cone's inputs move.

use std::collections::{HashMap, HashSet};

use hlpower_bdd::{BddManager, BddRef};
use hlpower_netlist::{
    GateKind, IncrementalSim, Library, Netlist, NetlistError, NodeId, NodeKind, ZeroDelaySim,
};
use hlpower_obs::metrics as obs;

/// One guarded-evaluation opportunity.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardCandidate {
    /// The guarded signal whose cone is latched.
    pub target: NodeId,
    /// The existing signal used as the guard (asserts when `target` is
    /// unobservable).
    pub guard: NodeId,
    /// Probability that the guard asserts (shutdown fraction) under
    /// uniform inputs.
    pub guard_probability: f64,
    /// Nodes in the guarded cone (the logic that stops switching).
    pub cone: Vec<NodeId>,
    /// Whether the timing condition `t_l(s) < t_e(Y)` holds under the
    /// library's delay model.
    pub timing_ok: bool,
}

/// Computes the observability don't-care set of `target` by re-extracting
/// the output BDDs with `target` replaced by a fresh variable: `ODC =
/// AND_out XNOR(out|z=0, out|z=1)`.
fn odc_of(
    netlist: &Netlist,
    target: NodeId,
) -> Result<(BddManager, BddRef, HashMap<NodeId, BddRef>), NetlistError> {
    let order = netlist.topo_order()?;
    let nvars = netlist.input_count() + netlist.dffs().len() + 1;
    let zvar = (nvars - 1) as u32;
    let mut m = BddManager::new(nvars);
    let mut map: HashMap<NodeId, BddRef> = HashMap::new();
    for (i, &inp) in netlist.inputs().iter().enumerate() {
        let v = m.var(i as u32);
        map.insert(inp, v);
    }
    for (i, &q) in netlist.dffs().iter().enumerate() {
        let v = m.var((netlist.input_count() + i) as u32);
        map.insert(q, v);
    }
    for id in netlist.node_ids() {
        if let NodeKind::Const(c) = netlist.kind(id) {
            map.insert(id, m.constant(*c));
        }
    }
    for &id in &order {
        if id == target {
            let v = m.var(zvar);
            map.insert(id, v);
            continue;
        }
        if let NodeKind::Gate { kind, inputs } = netlist.kind(id) {
            use hlpower_netlist::GateKind::*;
            let fanin: Vec<BddRef> = inputs.iter().map(|f| map[f]).collect();
            let f = match kind {
                Buf => fanin[0],
                Not => m.not(fanin[0]),
                And => m.and_many(fanin.iter().copied()),
                Or => m.or_many(fanin.iter().copied()),
                Nand => {
                    let x = m.and_many(fanin.iter().copied());
                    m.not(x)
                }
                Nor => {
                    let x = m.or_many(fanin.iter().copied());
                    m.not(x)
                }
                Xor => fanin[1..].iter().fold(fanin[0], |acc, &x| m.xor(acc, x)),
                Xnor => {
                    let x = fanin[1..].iter().fold(fanin[0], |acc, &x| m.xor(acc, x));
                    m.not(x)
                }
                Mux => m.ite(fanin[0], fanin[2], fanin[1]),
            };
            map.insert(id, f);
        }
    }
    let mut odc = BddRef::TRUE;
    for &(_, o) in netlist.outputs() {
        let f = map[&o];
        let f0 = m.cofactor(f, zvar, false);
        let f1 = m.cofactor(f, zvar, true);
        let same = m.xnor(f0, f1);
        odc = m.and(odc, same);
    }
    Ok((m, odc, map))
}

/// The transitive fan-in cone of a node (gates only, the node included).
fn cone_of(netlist: &Netlist, target: NodeId) -> Vec<NodeId> {
    let mut seen = HashSet::new();
    let mut stack = vec![target];
    let mut cone = Vec::new();
    while let Some(x) = stack.pop() {
        if !seen.insert(x) {
            continue;
        }
        if let NodeKind::Gate { inputs, .. } = netlist.kind(x) {
            cone.push(x);
            stack.extend(inputs.iter().copied());
        }
    }
    cone
}

/// Finds guarded-evaluation opportunities: for each internal signal with
/// a non-trivial ODC, search the other signals for one that implies it,
/// check timing, and report the candidates ranked by expected saving
/// (guard probability x cone size).
///
/// # Errors
///
/// Returns a netlist error for cyclic circuits.
pub fn find_candidates(
    netlist: &Netlist,
    lib: &Library,
    max_targets: usize,
) -> Result<Vec<GuardCandidate>, NetlistError> {
    let arrivals = netlist.arrival_times_ps(lib)?;
    let gates: Vec<NodeId> = netlist
        .node_ids()
        .filter(|&id| matches!(netlist.kind(id), NodeKind::Gate { .. }))
        .collect();
    // Any existing signal may serve as a guard, including primary inputs
    // (the paper's "a signal s in C"). Built once; the search below only
    // indexes into it.
    let guard_pool: Vec<NodeId> =
        gates.iter().copied().chain(netlist.inputs().iter().copied()).collect();
    let output_set: HashSet<NodeId> = netlist.outputs().iter().map(|&(_, n)| n).collect();
    let fanouts = netlist.fanouts();
    let mut out = Vec::new();
    // Prefer targets with large cones. `sort_by_cached_key` computes each
    // cone once instead of once per comparison.
    let mut targets: Vec<NodeId> =
        gates.iter().copied().filter(|id| !output_set.contains(id)).collect();
    targets.sort_by_cached_key(|&t| std::cmp::Reverse(cone_of(netlist, t).len()));
    // Forward-reachability marks from the current target: a signal reads
    // the target iff it lies in the target's gate-level forward closure.
    // One O(edges) sweep per target replaces a `cone_of` per guard.
    let mut reads_target = vec![false; netlist.node_count()];
    let mut marked: Vec<NodeId> = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    for &target in targets.iter().take(max_targets) {
        let (mut m, odc, map) = odc_of(netlist, target)?;
        if odc == BddRef::FALSE {
            continue;
        }
        let cone = cone_of(netlist, target);
        let cone_set: HashSet<NodeId> = cone.iter().copied().collect();
        // Earliest switching time of the cone's inputs.
        let t_e = cone
            .iter()
            .flat_map(|&c| match netlist.kind(c) {
                NodeKind::Gate { inputs, .. } => inputs.clone(),
                _ => Vec::new(),
            })
            .filter(|x| !cone_set.contains(x))
            .map(|x| arrivals[x.index()])
            .fold(f64::INFINITY, f64::min);
        for &id in &marked {
            reads_target[id.index()] = false;
        }
        marked.clear();
        stack.clear();
        stack.push(target);
        reads_target[target.index()] = true;
        marked.push(target);
        while let Some(x) = stack.pop() {
            for &r in &fanouts[x.index()] {
                if !reads_target[r.index()] && matches!(netlist.kind(r), NodeKind::Gate { .. }) {
                    reads_target[r.index()] = true;
                    marked.push(r);
                    stack.push(r);
                }
            }
        }
        for &guard in &guard_pool {
            if cone_set.contains(&guard) || guard == target {
                continue;
            }
            // Guard must not depend on the target's cone output (it
            // does not, structurally: it is outside the cone, but it may
            // read the target; skip if target is in its fan-in).
            if reads_target[guard.index()] {
                continue;
            }
            let s = map[&guard];
            // s implies ODC: s & !ODC == false.
            let nodc = m.not(odc);
            if m.and(s, nodc) != BddRef::FALSE {
                continue;
            }
            let p = m.sat_fraction(s);
            if p < 0.05 {
                continue;
            }
            let timing_ok = arrivals[guard.index()] < t_e;
            out.push(GuardCandidate {
                target,
                guard,
                guard_probability: p,
                cone: cone.clone(),
                timing_ok,
            });
        }
    }
    out.sort_by(|a, b| {
        let sa = a.guard_probability * a.cone.len() as f64;
        let sb = b.guard_probability * b.cone.len() as f64;
        sb.partial_cmp(&sa).expect("finite")
    });
    Ok(out)
}

/// Per-node switching energy table: load energy plus internal energy for
/// gates, indexed by node id.
fn energy_table(netlist: &Netlist, lib: &Library) -> Vec<f64> {
    let caps = netlist.load_caps_ff(lib);
    netlist
        .node_ids()
        .map(|id| {
            let mut e = lib.switching_energy_fj(caps[id.index()]);
            if let NodeKind::Gate { kind, .. } = netlist.kind(id) {
                e += lib.cell(*kind).internal_energy_fj;
            }
            e
        })
        .collect()
}

/// Energy of integer per-node toggle counts: one dot product in node-index
/// order. Both the from-scratch and the incremental scorer finish through
/// this, so equal integer counts give bit-identical f64 energies.
fn toggle_energy_fj(toggles: &[u64], energy_of: &[f64]) -> f64 {
    toggles.iter().zip(energy_of).map(|(&t, &e)| t as f64 * e).sum()
}

/// Allocation-free gate evaluation over a fanin-value lookup, matching
/// [`GateKind::eval`] bit for bit.
fn eval_gate_with(kind: GateKind, inputs: &[NodeId], get: impl Fn(NodeId) -> bool) -> bool {
    use GateKind::*;
    match kind {
        Buf => get(inputs[0]),
        Not => !get(inputs[0]),
        And => inputs.iter().all(|&f| get(f)),
        Or => inputs.iter().any(|&f| get(f)),
        Nand => !inputs.iter().all(|&f| get(f)),
        Nor => !inputs.iter().any(|&f| get(f)),
        Xor => inputs.iter().fold(false, |acc, &f| acc ^ get(f)),
        Xnor => !inputs.iter().fold(false, |acc, &f| acc ^ get(f)),
        Mux => {
            if get(inputs[0]) {
                get(inputs[2])
            } else {
                get(inputs[1])
            }
        }
    }
}

/// Simulates the circuit with guarded evaluation applied to one
/// candidate: on cycles where the guard (computed from current inputs)
/// asserts, the cone's nodes hold their previous values (the transparent
/// latches are opaque) and dissipate nothing; outputs remain correct by
/// the ODC property. Returns `(baseline_energy_fj, guarded_energy_fj,
/// outputs_match)`.
///
/// This is the from-scratch reference scorer: it replays the whole
/// netlist for every call. [`GuardScorer`] produces bit-identical results
/// by replaying only the candidate's dirty region against a recording;
/// both accumulate integer toggle counts and convert to energy with one
/// node-order dot product, so their f64 outputs agree exactly.
///
/// # Errors
///
/// Returns a netlist error for cyclic circuits or width mismatches.
pub fn evaluate(
    netlist: &Netlist,
    lib: &Library,
    candidate: &GuardCandidate,
    stream: &[Vec<bool>],
) -> Result<(f64, f64, bool), NetlistError> {
    let order = netlist.topo_order()?;
    let energy_of = energy_table(netlist, lib);
    let cone_set: HashSet<NodeId> = candidate.cone.iter().copied().collect();

    // Baseline: one full run, integer toggle totals.
    let mut base_sim = ZeroDelaySim::new(netlist)?;
    let mut base_outputs = Vec::new();
    for v in stream {
        base_sim.step(v)?;
        base_outputs.push(base_sim.output_values());
    }
    let base_energy = toggle_energy_fj(&base_sim.take_activity().toggles, &energy_of);

    // Guarded interpretation. The guard's own cone is disjoint from the
    // target cone (checked during candidate search), so it is settled
    // first each cycle to decide the freeze; then one topological pass
    // evaluates everything else, holding the target cone when the guard
    // asserts.
    let guard_cone: HashSet<NodeId> = {
        let mut gc: HashSet<NodeId> = cone_of(netlist, candidate.guard).into_iter().collect();
        gc.insert(candidate.guard);
        gc
    };
    let mut values = vec![false; netlist.node_count()];
    for id in netlist.node_ids() {
        if let NodeKind::Const(c) = netlist.kind(id) {
            values[id.index()] = *c;
        }
    }
    let mut toggles = vec![0u64; netlist.node_count()];
    let mut outputs_match = true;
    let mut first = true;
    for (t, v) in stream.iter().enumerate() {
        // Apply inputs.
        for (i, &inp) in netlist.inputs().iter().enumerate() {
            if !first && values[inp.index()] != v[i] {
                toggles[inp.index()] += 1;
            }
            values[inp.index()] = v[i];
        }
        for &id in &order {
            if !guard_cone.contains(&id) {
                continue;
            }
            if let NodeKind::Gate { kind, inputs } = netlist.kind(id) {
                let new = eval_gate_with(*kind, inputs, |f| values[f.index()]);
                if !first && new != values[id.index()] {
                    toggles[id.index()] += 1;
                }
                values[id.index()] = new;
            }
        }
        let guard_asserted = values[candidate.guard.index()];
        for &id in &order {
            if guard_cone.contains(&id) {
                continue;
            }
            if guard_asserted && cone_set.contains(&id) {
                continue; // latched: holds its previous value, no energy
            }
            if let NodeKind::Gate { kind, inputs } = netlist.kind(id) {
                let new = eval_gate_with(*kind, inputs, |f| values[f.index()]);
                if !first && new != values[id.index()] {
                    toggles[id.index()] += 1;
                }
                values[id.index()] = new;
            }
        }
        // Compare outputs.
        let outs: Vec<bool> = netlist.outputs().iter().map(|&(_, n)| values[n.index()]).collect();
        if outs != base_outputs[t] {
            outputs_match = false;
        }
        first = false;
    }
    Ok((base_energy, toggle_energy_fj(&toggles, &energy_of), outputs_match))
}

/// Incremental candidate scorer: records the baseline once with
/// [`IncrementalSim`] and scores each guard candidate by replaying only
/// its *dirty region* — the forward closure of the frozen gates (the
/// target cone minus the guard's own cone). Every node outside that
/// region provably keeps its baseline values under the guarded
/// interpretation, so its cached toggle counts are reused as-is.
///
/// Scores are bit-identical to [`evaluate`] on the same candidate: both
/// accumulate integer toggle counts and convert them to energy with the
/// same node-order dot product.
#[derive(Debug)]
pub struct GuardScorer {
    inc: IncrementalSim,
    energy_of: Vec<f64>,
    base_toggles: Vec<u64>,
    base_energy_fj: f64,
    order: Vec<NodeId>,
    fanouts: Vec<Vec<NodeId>>,
    blocks: usize,
    // Reusable per-candidate scratch: scoring a candidate allocates
    // nothing once these reach steady-state capacity.
    in_cone: Vec<bool>,
    in_guard_cone: Vec<bool>,
    in_dirty: Vec<bool>,
    dirty_idx: Vec<u32>,
    stack: Vec<NodeId>,
    gc_nodes: Vec<NodeId>,
    dirty: Vec<NodeId>,
    dirty_values: Vec<bool>,
    dirty_toggles: Vec<u64>,
}

impl GuardScorer {
    /// Records the baseline netlist over the profiling stream.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotCombinational`] for sequential netlists
    /// (the guarded interpretation has no register semantics), or the
    /// usual recording errors for cyclic netlists and bad streams.
    pub fn new(
        netlist: &Netlist,
        lib: &Library,
        stream: &[Vec<bool>],
    ) -> Result<Self, NetlistError> {
        if !netlist.dffs().is_empty() {
            return Err(NetlistError::NotCombinational { dffs: netlist.dffs().len() });
        }
        let inc = IncrementalSim::record(netlist, stream)?;
        let energy_of = energy_table(netlist, lib);
        let base_toggles = inc.activity().toggles;
        let base_energy_fj = toggle_energy_fj(&base_toggles, &energy_of);
        let order = netlist.topo_order()?;
        let fanouts = netlist.fanouts();
        let n = netlist.node_count();
        Ok(GuardScorer {
            inc,
            energy_of,
            base_toggles,
            base_energy_fj,
            order,
            fanouts,
            blocks: stream.len().div_ceil(64),
            in_cone: vec![false; n],
            in_guard_cone: vec![false; n],
            in_dirty: vec![false; n],
            dirty_idx: vec![u32::MAX; n],
            stack: Vec::new(),
            gc_nodes: Vec::new(),
            dirty: Vec::new(),
            dirty_values: Vec::new(),
            dirty_toggles: Vec::new(),
        })
    }

    /// The recorded baseline netlist.
    pub fn base(&self) -> &Netlist {
        self.inc.base()
    }

    /// Baseline energy over the recorded stream, in fJ.
    pub fn base_energy_fj(&self) -> f64 {
        self.base_energy_fj
    }

    /// Scores one candidate: `(baseline_energy_fj, guarded_energy_fj,
    /// outputs_match)`, bit-identical to [`evaluate`] on the same inputs.
    ///
    /// The candidate must come from [`find_candidates`] on the recorded
    /// netlist (its node ids index the recording).
    pub fn score(&mut self, candidate: &GuardCandidate) -> (f64, f64, bool) {
        let GuardScorer {
            inc,
            energy_of,
            base_toggles,
            base_energy_fj,
            order,
            fanouts,
            blocks,
            in_cone,
            in_guard_cone,
            in_dirty,
            dirty_idx,
            stack,
            gc_nodes,
            dirty,
            dirty_values,
            dirty_toggles,
        } = self;
        let nl = inc.base();
        for &id in &candidate.cone {
            in_cone[id.index()] = true;
        }
        // The guard's fan-in cone: always at baseline values (its gate
        // fanins are transitively inside it, so no frozen gate can feed
        // it).
        gc_nodes.clear();
        stack.clear();
        stack.push(candidate.guard);
        in_guard_cone[candidate.guard.index()] = true;
        gc_nodes.push(candidate.guard);
        while let Some(x) = stack.pop() {
            if let NodeKind::Gate { inputs, .. } = nl.kind(x) {
                for &f in inputs {
                    if !in_guard_cone[f.index()] {
                        in_guard_cone[f.index()] = true;
                        gc_nodes.push(f);
                        stack.push(f);
                    }
                }
            }
        }
        // Dirty region: forward closure (through gates) of the frozen
        // set, the target cone minus the guard cone.
        dirty.clear();
        stack.clear();
        for &id in &candidate.cone {
            if !in_guard_cone[id.index()] && !in_dirty[id.index()] {
                in_dirty[id.index()] = true;
                stack.push(id);
            }
        }
        while let Some(x) = stack.pop() {
            for &r in &fanouts[x.index()] {
                if !in_dirty[r.index()] && matches!(nl.kind(r), NodeKind::Gate { .. }) {
                    in_dirty[r.index()] = true;
                    stack.push(r);
                }
            }
        }
        for &id in order.iter() {
            if in_dirty[id.index()] {
                dirty_idx[id.index()] = dirty.len() as u32;
                dirty.push(id);
            }
        }
        // Per-cycle replay of the dirty region only. Fanins outside it
        // are read from the recording; the guard itself is outside it, so
        // its recorded value decides the freeze.
        dirty_values.clear();
        dirty_values.resize(dirty.len(), false);
        dirty_toggles.clear();
        dirty_toggles.resize(dirty.len(), 0);
        let mut outputs_match = true;
        for c in 0..inc.vectors() {
            let guard_on = inc.value_at(candidate.guard, c);
            for (k, &id) in dirty.iter().enumerate() {
                if guard_on && in_cone[id.index()] {
                    continue; // latched: holds its previous value
                }
                let NodeKind::Gate { kind, inputs } = nl.kind(id) else {
                    unreachable!("dirty region contains gates only")
                };
                let new = eval_gate_with(*kind, inputs, |f| {
                    let u = dirty_idx[f.index()];
                    if u != u32::MAX {
                        dirty_values[u as usize]
                    } else {
                        inc.value_at(f, c)
                    }
                });
                if c > 0 && new != dirty_values[k] {
                    dirty_toggles[k] += 1;
                }
                dirty_values[k] = new;
            }
            for &(_, o) in nl.outputs() {
                let u = dirty_idx[o.index()];
                if u != u32::MAX && dirty_values[u as usize] != inc.value_at(o, c) {
                    outputs_match = false;
                }
            }
        }
        // Energy: dirty counts substituted into the cached baseline
        // counts, one dot product in node-index order (the same order
        // `evaluate` uses).
        let mut guarded_energy = 0.0;
        for (i, &e) in energy_of.iter().enumerate() {
            let u = dirty_idx[i];
            let t = if u != u32::MAX { dirty_toggles[u as usize] } else { base_toggles[i] };
            guarded_energy += t as f64 * e;
        }
        obs::OPT_CANDIDATES_EVALUATED.inc();
        obs::OPT_CONE_SIZE.record(dirty.len() as u64);
        obs::OPT_RESIM_WORDS.add((dirty.len() * *blocks) as u64);
        // Clear the per-candidate marks.
        for &id in candidate.cone.iter() {
            in_cone[id.index()] = false;
        }
        for &id in gc_nodes.iter() {
            in_guard_cone[id.index()] = false;
        }
        for &id in dirty.iter() {
            in_dirty[id.index()] = false;
            dirty_idx[id.index()] = u32::MAX;
        }
        (*base_energy_fj, guarded_energy, outputs_match)
    }
}

/// Options for [`search`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardSearchOptions {
    /// Targets examined by candidate discovery. The default doubles the
    /// historical budget of 8: incremental scoring made candidates cheap.
    pub max_targets: usize,
    /// Only consider candidates whose latch-timing condition holds. Off
    /// by default: zero-delay arrival times make the condition vacuously
    /// fail for input-driven guards (`0 < 0`), and each candidate already
    /// reports its own `timing_ok` bit.
    pub require_timing: bool,
}

impl Default for GuardSearchOptions {
    fn default() -> Self {
        GuardSearchOptions { max_targets: 16, require_timing: false }
    }
}

/// Outcome of [`search`].
#[derive(Debug, Clone)]
pub struct GuardSearchOutcome {
    /// Baseline energy over the profiling stream, in fJ.
    pub base_energy_fj: f64,
    /// The best correct, energy-saving candidate and its guarded energy
    /// in fJ, if any candidate saves energy.
    pub best: Option<(GuardCandidate, f64)>,
    /// Candidates scored.
    pub candidates_evaluated: usize,
}

/// Full guarded-evaluation search: discovers candidates, scores every one
/// through the incremental [`GuardScorer`], and returns the best
/// energy-saving candidate whose outputs stayed correct.
///
/// # Errors
///
/// Returns a netlist error for cyclic or sequential circuits and bad
/// streams.
pub fn search(
    netlist: &Netlist,
    lib: &Library,
    stream: &[Vec<bool>],
    opts: &GuardSearchOptions,
) -> Result<GuardSearchOutcome, NetlistError> {
    let candidates = find_candidates(netlist, lib, opts.max_targets)?;
    let mut scorer = GuardScorer::new(netlist, lib, stream)?;
    let mut best: Option<(GuardCandidate, f64)> = None;
    let mut candidates_evaluated = 0usize;
    for c in &candidates {
        if opts.require_timing && !c.timing_ok {
            continue;
        }
        let (_, guarded, ok) = scorer.score(c);
        candidates_evaluated += 1;
        if !ok || guarded >= scorer.base_energy_fj() {
            continue;
        }
        if best.as_ref().is_none_or(|&(_, g)| guarded < g) {
            obs::OPT_CANDIDATES_ACCEPTED.inc();
            best = Some((c.clone(), guarded));
        }
    }
    Ok(GuardSearchOutcome { base_energy_fj: scorer.base_energy_fj(), best, candidates_evaluated })
}

/// A mux-dominated example circuit with a natural guard: `y = sel ? a_fn :
/// b_fn` where `sel` makes one branch unobservable.
pub fn guarded_mux_example(width: usize) -> Netlist {
    let mut nl = Netlist::new();
    let sel = nl.input("sel");
    let a = nl.input_bus("a", width);
    let b = nl.input_bus("b", width);
    // Branch A: parity chain (deep cone).
    let mut pa = a[0];
    for &bit in &a[1..] {
        pa = nl.xor([pa, bit]);
    }
    // Branch B: AND-OR tree.
    let mut pb = b[0];
    for &bit in &b[1..] {
        pb = nl.and([pb, bit]);
    }
    let y = nl.mux(sel, pa, pb);
    nl.set_output("y", y);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_netlist::streams;

    #[test]
    fn finds_mux_guard() {
        let nl = guarded_mux_example(6);
        let lib = Library::default();
        let candidates = find_candidates(&nl, &lib, 8).unwrap();
        assert!(!candidates.is_empty(), "mux select must guard a branch");
        // The guard probability of a select-like guard is ~1/2.
        assert!(candidates.iter().any(|c| (c.guard_probability - 0.5).abs() < 1e-9));
    }

    #[test]
    fn guarded_outputs_stay_correct() {
        let nl = guarded_mux_example(6);
        let lib = Library::default();
        let candidates = find_candidates(&nl, &lib, 8).unwrap();
        let stream: Vec<Vec<bool>> = streams::random(2, nl.input_count()).take(500).collect();
        let best = &candidates[0];
        let (_, _, ok) = evaluate(&nl, &lib, best, &stream).unwrap();
        assert!(ok, "guarded evaluation changed outputs for {best:?}");
    }

    #[test]
    fn guarding_saves_energy() {
        let nl = guarded_mux_example(8);
        let lib = Library::default();
        let candidates = find_candidates(&nl, &lib, 8).unwrap();
        let stream: Vec<Vec<bool>> = streams::random(3, nl.input_count()).take(1500).collect();
        let best = &candidates[0];
        let (base, guarded, ok) = evaluate(&nl, &lib, best, &stream).unwrap();
        assert!(ok);
        assert!(guarded < 0.95 * base, "expected >5% energy saving: {base:.0} -> {guarded:.0}");
    }

    #[test]
    fn incremental_scorer_matches_evaluate_bit_for_bit() {
        let nl = guarded_mux_example(6);
        let lib = Library::default();
        let candidates = find_candidates(&nl, &lib, 8).unwrap();
        assert!(!candidates.is_empty());
        let stream: Vec<Vec<bool>> = streams::random(9, nl.input_count()).take(300).collect();
        let mut scorer = GuardScorer::new(&nl, &lib, &stream).unwrap();
        for c in &candidates {
            let (base_ref, guarded_ref, ok_ref) = evaluate(&nl, &lib, c, &stream).unwrap();
            let (base, guarded, ok) = scorer.score(c);
            assert_eq!(base.to_bits(), base_ref.to_bits(), "baseline diverged for {c:?}");
            assert_eq!(guarded.to_bits(), guarded_ref.to_bits(), "guarded diverged for {c:?}");
            assert_eq!(ok, ok_ref, "correctness verdict diverged for {c:?}");
        }
    }

    #[test]
    fn scorer_dirty_region_is_smaller_than_the_netlist() {
        // The economy claim: scoring a candidate replays only the frozen
        // cone's forward closure, not the whole netlist.
        let nl = guarded_mux_example(8);
        let lib = Library::default();
        let candidates = find_candidates(&nl, &lib, 8).unwrap();
        let stream: Vec<Vec<bool>> = streams::random(4, nl.input_count()).take(128).collect();
        hlpower_obs::metrics::reset_all();
        let mut scorer = GuardScorer::new(&nl, &lib, &stream).unwrap();
        let best = &candidates[0];
        let _ = scorer.score(best);
        let words = hlpower_obs::metrics::OPT_RESIM_WORDS.get();
        let full = (nl.node_count() * stream.len().div_ceil(64)) as u64;
        assert!(words > 0 && words < full, "dirty replay {words} vs full {full}");
    }

    #[test]
    fn search_returns_a_correct_saving_candidate() {
        let nl = guarded_mux_example(8);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(3, nl.input_count()).take(1024).collect();
        let outcome = search(&nl, &lib, &stream, &GuardSearchOptions::default()).unwrap();
        assert!(outcome.candidates_evaluated > 0);
        let (best, guarded) = outcome.best.expect("the mux select guards a branch");
        assert!(guarded < outcome.base_energy_fj);
        // The chosen candidate re-validates under the from-scratch scorer.
        let (base_ref, guarded_ref, ok) = evaluate(&nl, &lib, &best, &stream).unwrap();
        assert!(ok);
        assert_eq!(guarded.to_bits(), guarded_ref.to_bits());
        assert_eq!(outcome.base_energy_fj.to_bits(), base_ref.to_bits());
    }

    #[test]
    fn sequential_netlists_are_rejected_by_the_scorer() {
        let mut nl = Netlist::new();
        let x = nl.input("x");
        let q = nl.dff(x, false);
        nl.set_output("q", q);
        let lib = Library::default();
        let err = GuardScorer::new(&nl, &lib, &[vec![false]]);
        assert!(matches!(err, Err(NetlistError::NotCombinational { .. })));
    }

    #[test]
    fn no_candidates_in_fully_observable_circuit() {
        // A parity tree: every node is always observable (ODC empty).
        let mut nl = Netlist::new();
        let xs = nl.input_bus("x", 6);
        let mut p = xs[0];
        for &x in &xs[1..] {
            p = nl.xor([p, x]);
        }
        nl.set_output("p", p);
        let lib = Library::default();
        let candidates = find_candidates(&nl, &lib, 10).unwrap();
        assert!(candidates.is_empty());
    }
}
