//! Power-driven local gate rewriting (survey §III-I: logic-level
//! transformations for low power).
//!
//! A greedy restructuring loop over small, function-preserving rewrite
//! rules — De Morgan gate merging, inverter folding — plus a dead-gate
//! sweep that ties unobserved logic to a constant so it stops toggling.
//! Every candidate is scored *exactly* (not with a heuristic cost
//! function) by re-simulating the recorded profiling stream, which is
//! affordable because [`IncrementalSim`] re-evaluates only the dirty cone
//! of the touched gates against cached fan-in words. Accepted rewrites
//! are folded back with [`IncrementalSim::commit`] and the attribution
//! profile is kept current with [`attribute_delta`], so a full netlist
//! replay never happens after the initial recording.
//!
//! The power model sees two effects from these rules:
//!
//! * De Morgan merges and inverter folds move fanout pins between nets;
//!   the rewritten gate computes the same function (same toggles), so the
//!   direct delta is capacitive.
//! * The real saving appears when the bypassed inverters or drivers lose
//!   their last fanout: the cleanup sweep rewires them to a constant
//!   buffer, zeroing their switched capacitance and internal energy.
//!   Cleanup is evaluated *atomically* with the rewrite that orphaned the
//!   gates, so the pair is accepted or rejected on its combined saving —
//!   a greedy per-gate loop would reject the (power-neutral) first half
//!   and never reach the second.

use std::collections::BTreeSet;

use hlpower_netlist::{
    attribute, attribute_delta, AttributionReport, ConeResim, GateKind, IncrementalSim, Library,
    Netlist, NetlistError, NodeId, NodeKind, ResimScratch,
};
use hlpower_obs::metrics as obs;

/// The local rewrite rules [`rewrite_gates`] knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RewriteRule {
    /// `And(Not a, Not b)` → `Nor(a, b)` (De Morgan).
    AndOfNotsToNor,
    /// `Or(Not a, Not b)` → `Nand(a, b)` (De Morgan).
    OrOfNotsToNand,
    /// `Not(g)` → the complement of gate `g` over `g`'s own fanins
    /// (e.g. `Not(And(a, b))` → `Nand(a, b)`).
    FoldInverter,
    /// A gate nothing reads (no fanout, not a primary output) → a
    /// constant-driven buffer, so it stops toggling.
    SweepDead,
}

impl RewriteRule {
    /// Short lower-case name for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            RewriteRule::AndOfNotsToNor => "and-of-nots->nor",
            RewriteRule::OrOfNotsToNand => "or-of-nots->nand",
            RewriteRule::FoldInverter => "fold-inverter",
            RewriteRule::SweepDead => "sweep-dead",
        }
    }
}

/// Options for [`rewrite_gates`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewriteOptions {
    /// Maximum scans over the netlist. Each scan tries every candidate
    /// once; the loop stops early when a scan accepts nothing.
    pub max_passes: usize,
    /// Only accept a candidate whose exact re-simulated saving exceeds
    /// this many µW (0.0 demands a strictly positive saving).
    pub min_saving_uw: f64,
    /// Run the dead-gate sweep (both standalone and as cleanup fused into
    /// the other rules).
    pub sweep_dead: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        // Candidate scoring is an allocation-free dirty-cone replay, so
        // the default scan budget is double the historical 4.
        RewriteOptions { max_passes: 8, min_saving_uw: 0.0, sweep_dead: true }
    }
}

/// One accepted rewrite.
#[derive(Debug, Clone)]
pub struct RewriteStep {
    /// The primary rewritten node.
    pub node: NodeId,
    /// The rule that fired.
    pub rule: RewriteRule,
    /// Additional gates tied off by the fused cleanup sweep.
    pub swept: Vec<NodeId>,
    /// Power before this step, in µW.
    pub before_uw: f64,
    /// Power after this step, in µW.
    pub after_uw: f64,
    /// Nodes the dirty-cone re-simulation re-evaluated for this step.
    pub cone_nodes: usize,
}

/// Outcome of [`rewrite_gates`].
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten netlist (node ids stable; bypassed gates are tied to
    /// constants rather than removed).
    pub netlist: Netlist,
    /// Accepted rewrites, in application order.
    pub steps: Vec<RewriteStep>,
    /// Power of the original netlist over the profiling stream, in µW.
    pub baseline_uw: f64,
    /// Power of the rewritten netlist, in µW.
    pub optimized_uw: f64,
    /// Per-node power attribution of the rewritten netlist, maintained
    /// incrementally via [`attribute_delta`] — bit-identical to a
    /// from-scratch [`attribute`] of the final netlist.
    pub attribution: AttributionReport,
    /// Candidates scored (accepted + rejected).
    pub candidates_tried: usize,
    /// Total nodes re-evaluated across every candidate's dirty cone; the
    /// economy of the incremental engine is this against
    /// `candidates_tried * node_count` for full replays.
    pub cone_nodes_resimmed: usize,
}

impl RewriteOutcome {
    /// Fractional power saving over the profiling stream.
    pub fn saving(&self) -> f64 {
        1.0 - self.optimized_uw / self.baseline_uw.max(1e-12)
    }
}

/// A planned mutation: the mutated netlist plus the bookkeeping the
/// incremental engine and the delta attributor need.
struct Mutation {
    mutated: Netlist,
    /// Pre-existing gates whose function or fanins changed (the resim
    /// change set).
    changed: Vec<NodeId>,
    /// Every node whose fanout pin count may have changed (old and new
    /// fanins of all rewired gates, plus the constant tie-off driver) —
    /// their load capacitance moved, so delta attribution must refresh
    /// them even though their values did not change.
    touched_extra: Vec<NodeId>,
    /// Gates tied off by the fused cleanup sweep.
    swept: Vec<NodeId>,
}

/// The complement of a gate function, for inverter folding. `None` for
/// muxes (no single-gate complement in this cell library).
fn complement(kind: GateKind) -> Option<GateKind> {
    Some(match kind {
        GateKind::Buf => GateKind::Not,
        GateKind::Not => GateKind::Buf,
        GateKind::And => GateKind::Nand,
        GateKind::Nand => GateKind::And,
        GateKind::Or => GateKind::Nor,
        GateKind::Nor => GateKind::Or,
        GateKind::Xor => GateKind::Xnor,
        GateKind::Xnor => GateKind::Xor,
        GateKind::Mux => return None,
    })
}

/// The single fanin of a `Not` gate, if `id` is one.
fn not_input(netlist: &Netlist, id: NodeId) -> Option<NodeId> {
    match netlist.kind(id) {
        NodeKind::Gate { kind: GateKind::Not, inputs } => Some(inputs[0]),
        _ => None,
    }
}

/// True if `id` is already a constant tie-off (`Buf` fed by a constant),
/// i.e. sweeping it again would be a no-op.
fn is_tied_off(netlist: &Netlist, id: NodeId) -> bool {
    match netlist.kind(id) {
        NodeKind::Gate { kind: GateKind::Buf, inputs } => {
            matches!(netlist.kind(inputs[0]), NodeKind::Const(_))
        }
        _ => false,
    }
}

/// Scans the netlist for rewrite opportunities, in node order. Candidates
/// are re-validated by [`plan`] before use, so a stale entry (invalidated
/// by an earlier acceptance in the same pass) is simply skipped.
fn find_candidates(netlist: &Netlist, opts: &RewriteOptions) -> Vec<(RewriteRule, NodeId)> {
    let fanout = netlist.fanout_counts();
    let mut is_output = vec![false; netlist.node_count()];
    for id in netlist.output_nodes() {
        is_output[id.index()] = true;
    }
    let mut out = Vec::new();
    for id in netlist.node_ids() {
        let NodeKind::Gate { kind, inputs } = netlist.kind(id) else { continue };
        match kind {
            GateKind::And | GateKind::Or
                if inputs.len() == 2 && inputs.iter().all(|&i| not_input(netlist, i).is_some()) =>
            {
                out.push((
                    if *kind == GateKind::And {
                        RewriteRule::AndOfNotsToNor
                    } else {
                        RewriteRule::OrOfNotsToNand
                    },
                    id,
                ));
            }
            GateKind::Not => {
                if let NodeKind::Gate { kind: inner, .. } = netlist.kind(inputs[0]) {
                    if complement(*inner).is_some() && !is_tied_off(netlist, inputs[0]) {
                        out.push((RewriteRule::FoldInverter, id));
                    }
                }
            }
            _ => {}
        }
        if opts.sweep_dead
            && fanout[id.index()] == 0
            && !is_output[id.index()]
            && !is_tied_off(netlist, id)
        {
            out.push((RewriteRule::SweepDead, id));
        }
    }
    out
}

/// Rewires `node` in `mutated` and records the bookkeeping: the old and
/// new fanins land in `touched_extra` (their fanout pin counts changed),
/// the node itself in `changed`.
fn rewire(
    mutated: &mut Netlist,
    node: NodeId,
    kind: GateKind,
    new_inputs: Vec<NodeId>,
    changed: &mut Vec<NodeId>,
    touched_extra: &mut Vec<NodeId>,
) -> Result<(), NetlistError> {
    let NodeKind::Gate { inputs, .. } = mutated.kind(node) else {
        unreachable!("rewrite candidates are always gates");
    };
    touched_extra.extend(inputs.iter().copied());
    touched_extra.extend(new_inputs.iter().copied());
    mutated.replace_gate(node, kind, new_inputs)?;
    changed.push(node);
    Ok(())
}

/// Ties off every gate in `frontier` that lost its last fanout, cascading
/// into the fanins of swept gates. Only gates orphaned by *this* mutation
/// are considered — pre-existing dead logic gets its own standalone
/// [`RewriteRule::SweepDead`] candidate.
fn sweep_orphans(
    mutated: &mut Netlist,
    mut frontier: Vec<NodeId>,
    changed: &mut Vec<NodeId>,
    touched_extra: &mut Vec<NodeId>,
    swept: &mut Vec<NodeId>,
) -> Result<(), NetlistError> {
    let mut is_output = vec![false; mutated.node_count()];
    for id in mutated.output_nodes() {
        is_output[id.index()] = true;
    }
    while let Some(id) = frontier.pop() {
        let dead = mutated.fanout_counts()[id.index()] == 0
            && !is_output[id.index()]
            && matches!(mutated.kind(id), NodeKind::Gate { .. })
            && !is_tied_off(mutated, id);
        if !dead {
            continue;
        }
        let NodeKind::Gate { inputs, .. } = mutated.kind(id) else { unreachable!() };
        frontier.extend(inputs.iter().copied());
        let tie = mutated.constant(false);
        touched_extra.push(tie);
        rewire(mutated, id, GateKind::Buf, vec![tie], changed, touched_extra)?;
        swept.push(id);
    }
    Ok(())
}

/// Plans one candidate against the *current* netlist, re-validating the
/// pattern (an earlier acceptance may have invalidated it). Returns
/// `None` when the pattern no longer matches.
fn plan(
    rule: RewriteRule,
    node: NodeId,
    current: &Netlist,
    opts: &RewriteOptions,
) -> Result<Option<Mutation>, NetlistError> {
    let mut mutated = current.clone();
    let mut changed = Vec::new();
    let mut touched_extra = Vec::new();
    let mut swept = Vec::new();
    let orphan_frontier: Vec<NodeId>;
    match rule {
        RewriteRule::AndOfNotsToNor | RewriteRule::OrOfNotsToNand => {
            let want =
                if rule == RewriteRule::AndOfNotsToNor { GateKind::And } else { GateKind::Or };
            let NodeKind::Gate { kind, inputs } = current.kind(node) else { return Ok(None) };
            if *kind != want || inputs.len() != 2 {
                return Ok(None);
            }
            let (Some(x), Some(y)) = (not_input(current, inputs[0]), not_input(current, inputs[1]))
            else {
                return Ok(None);
            };
            let merged = if want == GateKind::And { GateKind::Nor } else { GateKind::Nand };
            orphan_frontier = inputs.clone();
            rewire(&mut mutated, node, merged, vec![x, y], &mut changed, &mut touched_extra)?;
        }
        RewriteRule::FoldInverter => {
            let Some(driver) = not_input(current, node) else { return Ok(None) };
            let NodeKind::Gate { kind: inner, inputs: inner_ins } = current.kind(driver) else {
                return Ok(None);
            };
            let Some(folded) = complement(*inner) else { return Ok(None) };
            if is_tied_off(current, driver) {
                return Ok(None);
            }
            orphan_frontier = vec![driver];
            let ins = inner_ins.clone();
            rewire(&mut mutated, node, folded, ins, &mut changed, &mut touched_extra)?;
        }
        RewriteRule::SweepDead => {
            if !matches!(current.kind(node), NodeKind::Gate { .. })
                || is_tied_off(current, node)
                || current.fanout_counts()[node.index()] != 0
                || current.output_nodes().contains(&node)
            {
                return Ok(None);
            }
            orphan_frontier = vec![node];
        }
    }
    if opts.sweep_dead {
        sweep_orphans(&mut mutated, orphan_frontier, &mut changed, &mut touched_extra, &mut swept)?;
    }
    if changed.is_empty() {
        // A sweep candidate whose gate regained a fanout in the meantime.
        return Ok(None);
    }
    Ok(Some(Mutation { mutated, changed, touched_extra, swept }))
}

/// Greedily applies power-saving local rewrites to a combinational
/// netlist, scoring every candidate exactly over the profiling `stream`
/// via dirty-cone incremental re-simulation and keeping the power
/// attribution current with delta re-attribution.
///
/// Node ids are stable: bypassed gates are tied to constants rather than
/// removed, so downstream tooling (attribution, diffing) can line the
/// result up with the original node for node.
///
/// # Errors
///
/// Returns [`NetlistError::NotCombinational`] for sequential netlists,
/// [`NetlistError::EmptyStream`] / [`NetlistError::InputWidthMismatch`]
/// for a bad stream, or [`NetlistError::CombinationalCycle`] for cyclic
/// netlists.
pub fn rewrite_gates(
    netlist: &Netlist,
    lib: &Library,
    stream: &[Vec<bool>],
    opts: &RewriteOptions,
) -> Result<RewriteOutcome, NetlistError> {
    // The recording itself now supports sequential circuits, but the
    // rewrite rules do not reason about register semantics.
    if !netlist.dffs().is_empty() {
        return Err(NetlistError::NotCombinational { dffs: netlist.dffs().len() });
    }
    let mut inc = IncrementalSim::record(netlist, stream)?;
    let mut current = netlist.clone();
    let base_act = inc.activity();
    let baseline_uw = base_act.power(&current, lib).total_power_uw();
    let mut attribution = attribute(&current, lib, &base_act);
    let mut current_uw = baseline_uw;
    let mut steps = Vec::new();
    let mut candidates_tried = 0usize;
    let mut cone_nodes_resimmed = 0usize;
    // Reusable replay buffers: a rejected candidate allocates nothing.
    let mut scratch = ResimScratch::default();
    let mut resim = ConeResim::default();
    for _pass in 0..opts.max_passes {
        let mut progressed = false;
        for (rule, node) in find_candidates(&current, opts) {
            let Some(m) = plan(rule, node, &current, opts)? else { continue };
            inc.resim_into(&m.mutated, &m.changed, &mut scratch, &mut resim)?;
            candidates_tried += 1;
            cone_nodes_resimmed += resim.cone.len();
            obs::OPT_CANDIDATES_EVALUATED.inc();
            obs::OPT_CONE_SIZE.record(resim.cone.len() as u64);
            obs::OPT_RESIM_WORDS.add(resim.words_replayed());
            let after_uw = resim.activity.power(&m.mutated, lib).total_power_uw();
            if current_uw - after_uw <= opts.min_saving_uw {
                continue;
            }
            // Accept: fold the mutation into the cache and refresh the
            // attribution from the delta. The touched set is the resim
            // cone plus every node whose fanout pin count moved.
            obs::OPT_CANDIDATES_ACCEPTED.inc();
            let touched: BTreeSet<NodeId> =
                resim.cone.iter().copied().chain(m.touched_extra.iter().copied()).collect();
            let touched: Vec<NodeId> = touched.into_iter().collect();
            attribution = attribute_delta(&m.mutated, lib, &attribution, &resim.activity, &touched);
            steps.push(RewriteStep {
                node,
                rule,
                swept: m.swept,
                before_uw: current_uw,
                after_uw,
                cone_nodes: resim.cone.len(),
            });
            inc.commit(&m.mutated, &resim);
            current = m.mutated;
            current_uw = after_uw;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    Ok(RewriteOutcome {
        netlist: current,
        steps,
        baseline_uw,
        optimized_uw: current_uw,
        attribution,
        candidates_tried,
        cone_nodes_resimmed,
    })
}

/// A small circuit with textbook De Morgan opportunities: each output bit
/// is `And(Not a[i], Not b[i])`, plus one inverted conjunction and one
/// gate nothing observes.
pub fn demorgan_example(bits: usize) -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", bits);
    let b = nl.input_bus("b", bits);
    for i in 0..bits {
        let na = nl.not(a[i]);
        let nb = nl.not(b[i]);
        let g = nl.and([na, nb]);
        nl.set_output(format!("y[{i}]"), g);
    }
    // An inverted conjunction: Not(And) folds to Nand.
    let conj = nl.and([a[0], b[0]]);
    let inv = nl.not(conj);
    nl.set_output("ny", inv);
    // Dead logic nothing reads.
    let dead = nl.xor([a[0], b[bits - 1]]);
    let _ = nl.not(dead);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_netlist::streams;

    fn stream_for(nl: &Netlist, seed: u64, cycles: usize) -> Vec<Vec<bool>> {
        streams::random(seed, nl.input_count()).take(cycles).collect()
    }

    /// Output values of a combinational netlist over a stream, as packed
    /// words per output, for function-preservation checks.
    fn output_words(nl: &Netlist, stream: &[Vec<bool>]) -> Vec<Vec<u64>> {
        let inc = IncrementalSim::record(nl, stream).unwrap();
        nl.output_nodes().iter().map(|&o| inc.value_words(o).to_vec()).collect()
    }

    #[test]
    fn demorgan_rewrites_save_power_and_preserve_function() {
        let nl = demorgan_example(4);
        let lib = Library::default();
        let stream = stream_for(&nl, 7, 192);
        let out = rewrite_gates(&nl, &lib, &stream, &RewriteOptions::default()).unwrap();
        assert!(!out.steps.is_empty());
        assert!(
            out.optimized_uw < out.baseline_uw,
            "rewrites must save power: {} -> {}",
            out.baseline_uw,
            out.optimized_uw
        );
        assert!(out.saving() > 0.0);
        // Every De Morgan pair collapsed and its inverters were tied off.
        let nors = out.steps.iter().filter(|s| s.rule == RewriteRule::AndOfNotsToNor).count();
        assert_eq!(nors, 4);
        assert!(out.steps.iter().any(|s| s.rule == RewriteRule::FoldInverter));
        assert!(out
            .steps
            .iter()
            .filter(|s| s.rule == RewriteRule::AndOfNotsToNor)
            .all(|s| s.swept.len() == 2));
        // Function preserved on the observed outputs.
        assert_eq!(output_words(&nl, &stream), output_words(&out.netlist, &stream));
        // The incremental engine did real work but never replayed the
        // whole netlist per candidate.
        assert!(out.candidates_tried >= out.steps.len());
        assert!(out.cone_nodes_resimmed < out.candidates_tried * nl.node_count());
    }

    #[test]
    fn per_step_power_accounting_is_monotone_and_exact() {
        let nl = demorgan_example(3);
        let lib = Library::default();
        let stream = stream_for(&nl, 19, 130);
        let out = rewrite_gates(&nl, &lib, &stream, &RewriteOptions::default()).unwrap();
        let mut prev = out.baseline_uw;
        for s in &out.steps {
            assert_eq!(s.before_uw.to_bits(), prev.to_bits());
            assert!(s.after_uw < s.before_uw, "step {:?} must save power", s.rule);
            assert!(s.cone_nodes > 0);
            prev = s.after_uw;
        }
        assert_eq!(prev.to_bits(), out.optimized_uw.to_bits());
        // The final power matches a from-scratch recording of the result.
        let full = IncrementalSim::record(&out.netlist, &stream).unwrap();
        assert_eq!(
            full.activity().power(&out.netlist, &lib).total_power_uw().to_bits(),
            out.optimized_uw.to_bits()
        );
    }

    #[test]
    fn delta_attribution_matches_a_from_scratch_attribution() {
        let nl = demorgan_example(4);
        let lib = Library::default();
        let stream = stream_for(&nl, 3, 200);
        let out = rewrite_gates(&nl, &lib, &stream, &RewriteOptions::default()).unwrap();
        assert!(out.steps.len() >= 4);
        let full = IncrementalSim::record(&out.netlist, &stream).unwrap();
        let scratch = attribute(&out.netlist, &lib, &full.activity());
        assert_eq!(out.attribution, scratch);
        out.attribution.reconcile(&full.activity().power(&out.netlist, &lib)).unwrap();
    }

    #[test]
    fn standalone_dead_gates_are_swept() {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 3);
        let keep = nl.xor([a[0], a[1]]);
        nl.set_output("y", keep);
        // A dead chain: nothing observes x2, so both gates can be tied off.
        let d0 = nl.and([a[1], a[2]]);
        let _d1 = nl.not(d0);
        let lib = Library::default();
        let stream = stream_for(&nl, 5, 96);
        let out = rewrite_gates(&nl, &lib, &stream, &RewriteOptions::default()).unwrap();
        assert!(out.steps.iter().any(|s| s.rule == RewriteRule::SweepDead));
        assert!(out.optimized_uw < out.baseline_uw);
        // Both dead gates ended up tied off; the live cone is untouched.
        let tied = nl.node_ids().filter(|&id| is_tied_off(&out.netlist, id)).count();
        assert_eq!(tied, 2);
        assert!(matches!(out.netlist.kind(keep), NodeKind::Gate { kind: GateKind::Xor, .. }));
        assert_eq!(output_words(&nl, &stream), output_words(&out.netlist, &stream));
    }

    #[test]
    fn sweep_can_be_disabled() {
        let nl = demorgan_example(2);
        let lib = Library::default();
        let stream = stream_for(&nl, 11, 64);
        let opts = RewriteOptions { sweep_dead: false, ..RewriteOptions::default() };
        let out = rewrite_gates(&nl, &lib, &stream, &opts).unwrap();
        // Without the fused cleanup the De Morgan half is capacitive noise
        // at best, so nothing orphaned may be tied off.
        assert!(out.steps.iter().all(|s| s.swept.is_empty()));
        assert!(out.netlist.node_ids().all(|id| !is_tied_off(&out.netlist, id)));
    }

    #[test]
    fn minimal_netlists_are_left_alone() {
        // A ripple adder has no inverter pairs or dead logic to exploit.
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let c0 = nl.constant(false);
        let s = hlpower_netlist::gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        let lib = Library::default();
        let stream = stream_for(&nl, 23, 128);
        let out = rewrite_gates(&nl, &lib, &stream, &RewriteOptions::default()).unwrap();
        assert!(out.steps.is_empty(), "unexpected steps: {:?}", out.steps);
        assert_eq!(out.optimized_uw.to_bits(), out.baseline_uw.to_bits());
        let scratch =
            attribute(&nl, &lib, &IncrementalSim::record(&nl, &stream).unwrap().activity());
        assert_eq!(out.attribution, scratch);
    }

    #[test]
    fn sequential_netlists_are_rejected() {
        let mut nl = Netlist::new();
        let x = nl.input("x");
        let q = nl.dff(x, false);
        nl.set_output("q", q);
        let lib = Library::default();
        let err = rewrite_gates(&nl, &lib, &[vec![false]], &RewriteOptions::default());
        assert!(matches!(err, Err(NetlistError::NotCombinational { .. })));
    }
}
