//! System-level power management (survey §III-B): shutdown policies for
//! event-driven devices.
//!
//! A device alternates `Active` and `Idle` periods. While powered it burns
//! `p_on`; shut down it burns `p_off`; waking up takes `t_wakeup` time at
//! `p_wake` and delays the pending request (the performance penalty).
//! Policies decide, at the start of each idle period, *when* (if ever) to
//! shut down, using only the observable history — exactly the framing of
//! Srivastava et al. and Hwang–Wu.

use hlpower_rng::Rng;

use crate::shutdown::policies::ShutdownPolicy;

/// Device and cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceModel {
    /// Power while powered (active or idling), in arbitrary units.
    pub p_on: f64,
    /// Power while shut down.
    pub p_off: f64,
    /// Power during wakeup.
    pub p_wake: f64,
    /// Time to return to service after a wakeup begins.
    pub t_wakeup: f64,
}

impl Default for DeviceModel {
    fn default() -> Self {
        DeviceModel { p_on: 1.0, p_off: 0.02, p_wake: 1.5, t_wakeup: 2.0 }
    }
}

impl DeviceModel {
    /// The idle time beyond which shutting down immediately pays off
    /// (the break-even point used by oracle policies).
    pub fn breakeven(&self) -> f64 {
        // Energy on: p_on * t. Energy off: p_wake * t_wakeup + p_off * (t
        // - t_wakeup). Equal at:
        (self.p_wake - self.p_off) * self.t_wakeup / (self.p_on - self.p_off)
    }
}

/// One active/idle episode of the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Episode {
    /// Active duration preceding the idle period.
    pub active: f64,
    /// Idle duration.
    pub idle: f64,
}

/// A bursty, regime-switching event workload (the X-server substitute).
///
/// The user alternates between a sticky *busy* regime (long active bursts,
/// short idles) and a sticky *away* regime (brief bursts, long heavy-tailed
/// idles). The stickiness gives idle lengths the serial correlation that
/// exponential-average predictors exploit, and the short-burst-before-
/// long-idle structure is exactly the signal Srivastava's threshold
/// heuristic keys on.
pub fn bursty_workload(seed: u64, episodes: usize) -> Vec<Episode> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(episodes);
    let mut away = false;
    for _ in 0..episodes {
        // Active bursts are similar in both regimes (the burst length is a
        // weak predictor, as on real interactive traces); idle lengths are
        // regime-dependent and serially correlated.
        let active = rng.gen_range(0.2..3.0);
        let idle = if away {
            // Long, heavy-tailed idle: 30..~300.
            30.0 * (rng.next_f64() * 2.3).exp()
        } else {
            rng.gen_range(0.5..3.0)
        };
        out.push(Episode { active, idle });
        // Sticky regime switch.
        if rng.gen_bool(0.08) {
            away = !away;
        }
    }
    out
}

/// Simulation outcome of one policy on one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyResult {
    /// Mean power over the whole run.
    pub average_power: f64,
    /// Power improvement over always-on (`p_on`).
    pub improvement: f64,
    /// Added latency as a fraction of total (active + idle) time — the
    /// "performance degradation" the survey quotes at ~3%.
    pub performance_penalty: f64,
    /// Fraction of idle periods in which the device was shut down.
    pub shutdown_fraction: f64,
}

/// Simulates a policy over a workload under a device model.
pub fn simulate(
    policy: &mut dyn ShutdownPolicy,
    device: &DeviceModel,
    workload: &[Episode],
) -> PolicyResult {
    let mut energy = 0.0;
    let mut total_time = 0.0;
    let mut total_active = 0.0;
    let mut added_latency = 0.0;
    let mut shutdowns = 0usize;
    for ep in workload {
        // Active period.
        energy += device.p_on * ep.active;
        total_time += ep.active;
        total_active += ep.active;
        // Idle period: the policy picks a wait time before shutdown.
        let wait = policy.wait_before_shutdown(ep.active);
        if wait >= ep.idle {
            // Never shut down during this idle.
            energy += device.p_on * ep.idle;
        } else {
            shutdowns += 1;
            energy += device.p_on * wait;
            let off_time = ep.idle - wait;
            // Pre-wakeup: the policy may schedule a wakeup before the
            // predicted end of the idle period.
            let prewake = policy.prewake_after(ep.active).unwrap_or(f64::INFINITY);
            if prewake < off_time {
                // Wake early: sleep until prewake, wake, then sit powered.
                let sleep = prewake.max(0.0);
                energy += device.p_off * sleep;
                energy += device.p_wake * device.t_wakeup;
                let powered_rest = (off_time - sleep - device.t_wakeup).max(0.0);
                energy += device.p_on * powered_rest;
                // If the wakeup finishes after the event arrives, part of
                // the wakeup latency is exposed.
                let exposed = (sleep + device.t_wakeup - off_time).max(0.0);
                added_latency += exposed;
            } else {
                // Sleep to the end of idle; the arriving event pays the
                // full wakeup latency.
                energy += device.p_off * off_time;
                energy += device.p_wake * device.t_wakeup;
                added_latency += device.t_wakeup;
            }
        }
        total_time += ep.idle;
        policy.observe(ep.active, ep.idle);
    }
    let _ = total_active;
    let average_power = energy / total_time.max(1e-12);
    PolicyResult {
        average_power,
        improvement: device.p_on / average_power,
        performance_penalty: added_latency / total_time.max(1e-12),
        shutdown_fraction: shutdowns as f64 / workload.len().max(1) as f64,
    }
}

/// Upper bound on the improvement: `1 + T_I / T_A` (everything idle at
/// zero cost).
pub fn improvement_upper_bound(workload: &[Episode]) -> f64 {
    let ta: f64 = workload.iter().map(|e| e.active).sum();
    let ti: f64 = workload.iter().map(|e| e.idle).sum();
    1.0 + ti / ta.max(1e-12)
}

/// The shutdown policies of §III-B.
pub mod policies {
    use super::*;

    /// A shutdown policy: decides the wait time at the start of each idle
    /// period, optionally schedules a pre-wakeup, and observes outcomes.
    pub trait ShutdownPolicy {
        /// Time to stay powered after entering idle before shutting down
        /// (`f64::INFINITY` = never shut down), given the length of the
        /// preceding active period.
        fn wait_before_shutdown(&mut self, preceding_active: f64) -> f64;

        /// Optional pre-wakeup: time after shutdown at which to start
        /// waking up in anticipation of the next event.
        fn prewake_after(&mut self, _preceding_active: f64) -> Option<f64> {
            None
        }

        /// Observes the completed episode (true idle length revealed).
        fn observe(&mut self, active: f64, idle: f64);

        /// Display name.
        fn name(&self) -> &'static str;
    }

    /// Never shuts down.
    #[derive(Debug, Default)]
    pub struct AlwaysOn;

    impl ShutdownPolicy for AlwaysOn {
        fn wait_before_shutdown(&mut self, _: f64) -> f64 {
            f64::INFINITY
        }
        fn observe(&mut self, _: f64, _: f64) {}
        fn name(&self) -> &'static str {
            "always-on"
        }
    }

    /// The conventional static policy: shut down `timeout` after entering
    /// idle (Fig. 3).
    #[derive(Debug)]
    pub struct StaticTimeout {
        /// The fixed timeout `T`.
        pub timeout: f64,
    }

    impl ShutdownPolicy for StaticTimeout {
        fn wait_before_shutdown(&mut self, _: f64) -> f64 {
            self.timeout
        }
        fn observe(&mut self, _: f64, _: f64) {}
        fn name(&self) -> &'static str {
            "static-timeout"
        }
    }

    /// Clairvoyant baseline: shuts down immediately iff the idle period
    /// will exceed the break-even time. Bounds every real policy.
    #[derive(Debug)]
    pub struct Oracle {
        breakeven: f64,
        idles: Vec<f64>,
        cursor: usize,
    }

    impl Oracle {
        /// Builds the oracle from the workload it will be run on.
        pub fn new(device: &DeviceModel, workload: &[Episode]) -> Self {
            Oracle {
                breakeven: device.breakeven(),
                idles: workload.iter().map(|e| e.idle).collect(),
                cursor: 0,
            }
        }
    }

    impl ShutdownPolicy for Oracle {
        fn wait_before_shutdown(&mut self, _: f64) -> f64 {
            let idle = self.idles.get(self.cursor).copied().unwrap_or(0.0);
            if idle > self.breakeven {
                0.0
            } else {
                f64::INFINITY
            }
        }
        fn observe(&mut self, _: f64, _: f64) {
            self.cursor += 1;
        }
        fn name(&self) -> &'static str {
            "oracle"
        }
    }

    /// Srivastava's threshold heuristic: if the preceding active burst was
    /// shorter than a threshold (short bursts precede long idles in
    /// session workloads), shut down immediately; otherwise never.
    #[derive(Debug)]
    pub struct SrivastavaThreshold {
        /// Active-time threshold below which an immediate shutdown is
        /// predicted profitable.
        pub active_threshold: f64,
    }

    impl ShutdownPolicy for SrivastavaThreshold {
        fn wait_before_shutdown(&mut self, preceding_active: f64) -> f64 {
            if preceding_active < self.active_threshold {
                0.0
            } else {
                f64::INFINITY
            }
        }
        fn observe(&mut self, _: f64, _: f64) {}
        fn name(&self) -> &'static str {
            "srivastava-threshold"
        }
    }

    /// Srivastava's regression predictor: predict the next idle length
    /// from a quadratic function of the previous active and idle periods,
    /// fitted online over a sliding window; shut down immediately when the
    /// prediction exceeds break-even.
    ///
    /// The window is a ring ([`std::collections::VecDeque`], O(1) slide
    /// instead of the O(n) front removal of a `Vec`) and the normal
    /// equations are accumulated straight off the window rows — no row
    /// matrix or right-hand side is materialized per prediction, so the
    /// per-episode hot path allocates nothing.
    #[derive(Debug)]
    pub struct SrivastavaRegression {
        breakeven: f64,
        window: std::collections::VecDeque<(f64, f64, f64)>, // (prev_idle, active, idle)
        prev_idle: f64,
        capacity: usize,
    }

    impl SrivastavaRegression {
        /// Creates the policy for a device model with a history window.
        pub fn new(device: &DeviceModel, capacity: usize) -> Self {
            SrivastavaRegression {
                breakeven: device.breakeven(),
                window: std::collections::VecDeque::with_capacity(capacity + 1),
                prev_idle: 0.0,
                capacity,
            }
        }

        fn predict(&self, active: f64) -> f64 {
            if self.window.len() < 8 {
                return 0.0; // not enough history: stay powered
            }
            // Least squares on [1, a, i, a^2, a*i] -> next idle, via the
            // normal equations accumulated directly from the window (the
            // iteration order matches the old materialized-rows path, so
            // the fitted coefficients are bit-identical).
            let mut a_mat = [[0.0f64; 6]; 5];
            for &(pi, a, i) in &self.window {
                let r = [1.0, a, pi, a * a, a * pi];
                for (ai, &ri) in a_mat.iter_mut().zip(&r) {
                    for (aij, &rj) in ai.iter_mut().zip(&r) {
                        *aij += ri * rj;
                    }
                    ai[5] += ri * i;
                }
            }
            match solve_normal(&mut a_mat) {
                Some(c) => {
                    let x = [1.0, active, self.prev_idle, active * active, active * self.prev_idle];
                    x.iter().zip(&c).map(|(a, b)| a * b).sum()
                }
                None => 0.0,
            }
        }
    }

    impl ShutdownPolicy for SrivastavaRegression {
        fn wait_before_shutdown(&mut self, preceding_active: f64) -> f64 {
            if self.predict(preceding_active) > self.breakeven {
                0.0
            } else {
                f64::INFINITY
            }
        }
        fn observe(&mut self, active: f64, idle: f64) {
            self.window.push_back((self.prev_idle, active, idle));
            if self.window.len() > self.capacity {
                self.window.pop_front();
            }
            self.prev_idle = idle;
        }
        fn name(&self) -> &'static str {
            "srivastava-regression"
        }
    }

    /// Hwang–Wu: exponential-average idle predictor `I_pred' = a * I +
    /// (1-a) * I_pred` with misprediction correction and pre-wakeup.
    #[derive(Debug)]
    pub struct HwangWu {
        breakeven: f64,
        /// Smoothing constant.
        pub alpha: f64,
        predicted: f64,
        /// Watchdog: when a long idle was underpredicted, the correction
        /// factor stretches the next prediction.
        correction: f64,
        /// Enable anticipatory wakeup slightly before the predicted idle
        /// end.
        pub prewakeup: bool,
        t_wakeup: f64,
    }

    impl HwangWu {
        /// Creates the policy for a device model.
        pub fn new(device: &DeviceModel, alpha: f64, prewakeup: bool) -> Self {
            HwangWu {
                breakeven: device.breakeven(),
                alpha,
                predicted: 0.0,
                correction: 1.0,
                prewakeup,
                t_wakeup: device.t_wakeup,
            }
        }
    }

    impl ShutdownPolicy for HwangWu {
        fn wait_before_shutdown(&mut self, _: f64) -> f64 {
            if self.predicted * self.correction > self.breakeven {
                0.0
            } else {
                f64::INFINITY
            }
        }

        fn prewake_after(&mut self, _: f64) -> Option<f64> {
            if self.prewakeup && self.predicted > self.breakeven {
                Some((self.predicted * self.correction - self.t_wakeup).max(0.0))
            } else {
                None
            }
        }

        fn observe(&mut self, _: f64, idle: f64) {
            let would_shut = self.predicted * self.correction > self.breakeven;
            // Misprediction correction (the Hwang-Wu refinement over the
            // plain exponential average): boost after under-predicted long
            // idles; after a shutdown that a short idle proved wrong,
            // snap the prediction down immediately so a regime change
            // costs one mistake, not several.
            if idle > 2.0 * self.predicted.max(1e-9) {
                self.correction = (self.correction * 1.5).min(8.0);
            } else {
                self.correction = (self.correction * 0.9).max(1.0);
            }
            self.predicted = self.alpha * idle + (1.0 - self.alpha) * self.predicted;
            if would_shut && idle < self.breakeven {
                self.predicted = self.predicted.min(idle);
                self.correction = 1.0;
            }
        }

        fn name(&self) -> &'static str {
            "hwang-wu"
        }
    }

    /// Solves the pre-accumulated 5-unknown normal equations `[A | b]` in
    /// place (Tikhonov-regularized Gaussian elimination with partial
    /// pivoting) — the fixed-size, allocation-free core of the regression
    /// policy's least squares.
    fn solve_normal(a: &mut [[f64; 6]; 5]) -> Option<[f64; 5]> {
        const P: usize = 5;
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        for col in 0..P {
            let piv = (col..P)
                .max_by(|&x, &z| a[x][col].abs().partial_cmp(&a[z][col].abs()).expect("finite"))?;
            a.swap(col, piv);
            if a[col][col].abs() < 1e-30 {
                return None;
            }
            for row in col + 1..P {
                let f = a[row][col] / a[col][col];
                for k in col..=P {
                    a[row][k] -= f * a[col][k];
                }
            }
        }
        let mut b = [0.0; P];
        for i in (0..P).rev() {
            let mut s = a[i][P];
            for j in i + 1..P {
                s -= a[i][j] * b[j];
            }
            b[i] = s / a[i][i];
        }
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::policies::*;
    use super::*;

    #[test]
    fn breakeven_is_positive_and_sane() {
        let d = DeviceModel::default();
        let be = d.breakeven();
        assert!(be > 0.0 && be < 100.0, "breakeven {be}");
    }

    #[test]
    fn oracle_dominates_static_and_always_on() {
        let d = DeviceModel::default();
        let w = bursty_workload(1, 4000);
        let always = simulate(&mut AlwaysOn, &d, &w);
        let static_t = simulate(&mut StaticTimeout { timeout: 2.0 * d.breakeven() }, &d, &w);
        let oracle = simulate(&mut Oracle::new(&d, &w), &d, &w);
        assert!(oracle.average_power <= static_t.average_power + 1e-9);
        assert!(static_t.average_power <= always.average_power + 1e-9);
        assert!((always.improvement - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predictive_policies_beat_static() {
        let d = DeviceModel::default();
        let w = bursty_workload(2, 4000);
        // Deployed static timeouts are conservative (they must not annoy
        // the user of *any* workload); four break-even times is already
        // generous compared to the minutes-long defaults of the era.
        let static_t = simulate(&mut StaticTimeout { timeout: 4.0 * d.breakeven() }, &d, &w);
        let mut hw = HwangWu::new(&d, 0.5, false);
        let hwang = simulate(&mut hw, &d, &w);
        assert!(
            hwang.average_power < static_t.average_power,
            "hwang {hwang:?} vs static {static_t:?}"
        );
    }

    #[test]
    fn large_improvement_on_mostly_idle_workload() {
        // The 38x-style claim: mostly-idle workloads admit order-of-
        // magnitude improvements with modest performance penalty.
        let d = DeviceModel::default();
        let w = bursty_workload(3, 6000);
        let bound = improvement_upper_bound(&w);
        let mut hw = HwangWu::new(&d, 0.5, false);
        let r = simulate(&mut hw, &d, &w);
        assert!(r.improvement > 3.0, "improvement {}", r.improvement);
        assert!(r.improvement < bound, "cannot beat the oracle bound {bound}");
        assert!(r.performance_penalty < 0.08, "penalty {}", r.performance_penalty);
    }

    #[test]
    fn hwang_wu_beats_srivastava_regression() {
        // The Hwang-Wu claim: misprediction correction plus pre-wakeup
        // give "higher efficiency and decreased delay penalty". Measured
        // as the power x delay-penalty product, Hwang-Wu should win; with
        // pre-wakeup enabled its delay penalty should also be strictly
        // lower than the regression policy's.
        let d = DeviceModel::default();
        let mut product_wins = 0;
        let mut latency_wins = 0;
        for seed in 0..5 {
            let w = bursty_workload(seed, 4000);
            let mut sr = SrivastavaRegression::new(&d, 64);
            let r_sr = simulate(&mut sr, &d, &w);
            let mut hw = HwangWu::new(&d, 0.5, false);
            let r_hw = simulate(&mut hw, &d, &w);
            let mut hw_pre = HwangWu::new(&d, 0.5, true);
            let r_pre = simulate(&mut hw_pre, &d, &w);
            if r_hw.average_power * r_hw.performance_penalty
                <= r_sr.average_power * r_sr.performance_penalty
            {
                product_wins += 1;
            }
            if r_pre.performance_penalty < r_sr.performance_penalty {
                latency_wins += 1;
            }
        }
        assert!(product_wins >= 4, "Hwang-Wu energy-delay won only {product_wins}/5");
        assert!(latency_wins >= 4, "pre-wakeup latency won only {latency_wins}/5");
    }

    #[test]
    fn prewakeup_reduces_latency_penalty() {
        let d = DeviceModel::default();
        let w = bursty_workload(7, 4000);
        let mut plain = HwangWu::new(&d, 0.5, false);
        let r_plain = simulate(&mut plain, &d, &w);
        let mut pre = HwangWu::new(&d, 0.5, true);
        let r_pre = simulate(&mut pre, &d, &w);
        assert!(
            r_pre.performance_penalty <= r_plain.performance_penalty,
            "pre {r_pre:?} vs plain {r_plain:?}"
        );
    }

    #[test]
    fn ring_window_regression_matches_the_old_vec_path_bit_for_bit() {
        // The VecDeque window + in-place normal-equation accumulation must
        // reproduce the original Vec-materializing implementation exactly.
        struct OldRegression {
            breakeven: f64,
            window: Vec<(f64, f64, f64)>,
            prev_idle: f64,
            capacity: usize,
        }
        fn old_solve_ls(rows: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
            let p = rows.first()?.len();
            let mut a = vec![vec![0.0f64; p + 1]; p];
            for (r, &yi) in rows.iter().zip(y) {
                for i in 0..p {
                    for j in 0..p {
                        a[i][j] += r[i] * r[j];
                    }
                    a[i][p] += r[i] * yi;
                }
            }
            for (i, row) in a.iter_mut().enumerate() {
                row[i] += 1e-9;
            }
            for col in 0..p {
                let piv = (col..p).max_by(|&x, &z| {
                    a[x][col].abs().partial_cmp(&a[z][col].abs()).expect("finite")
                })?;
                a.swap(col, piv);
                if a[col][col].abs() < 1e-30 {
                    return None;
                }
                for row in col + 1..p {
                    let f = a[row][col] / a[col][col];
                    for k in col..=p {
                        a[row][k] -= f * a[col][k];
                    }
                }
            }
            let mut b = vec![0.0; p];
            for i in (0..p).rev() {
                let mut s = a[i][p];
                for j in i + 1..p {
                    s -= a[i][j] * b[j];
                }
                b[i] = s / a[i][i];
            }
            Some(b)
        }
        impl ShutdownPolicy for OldRegression {
            fn wait_before_shutdown(&mut self, preceding_active: f64) -> f64 {
                let predicted = if self.window.len() < 8 {
                    0.0
                } else {
                    let rows: Vec<Vec<f64>> = self
                        .window
                        .iter()
                        .map(|&(pi, a, _)| vec![1.0, a, pi, a * a, a * pi])
                        .collect();
                    let y: Vec<f64> = self.window.iter().map(|&(_, _, i)| i).collect();
                    match old_solve_ls(&rows, &y) {
                        Some(c) => {
                            let a = preceding_active;
                            let x = [1.0, a, self.prev_idle, a * a, a * self.prev_idle];
                            x.iter().zip(&c).map(|(a, b)| a * b).sum()
                        }
                        None => 0.0,
                    }
                };
                if predicted > self.breakeven {
                    0.0
                } else {
                    f64::INFINITY
                }
            }
            fn observe(&mut self, active: f64, idle: f64) {
                self.window.push((self.prev_idle, active, idle));
                if self.window.len() > self.capacity {
                    self.window.remove(0);
                }
                self.prev_idle = idle;
            }
            fn name(&self) -> &'static str {
                "old-srivastava-regression"
            }
        }

        let d = DeviceModel::default();
        for seed in [4u64, 11, 23] {
            let w = bursty_workload(seed, 3000);
            let mut new_p = SrivastavaRegression::new(&d, 64);
            let r_new = simulate(&mut new_p, &d, &w);
            let mut old_p = OldRegression {
                breakeven: d.breakeven(),
                window: Vec::new(),
                prev_idle: 0.0,
                capacity: 64,
            };
            let r_old = simulate(&mut old_p, &d, &w);
            assert_eq!(r_new.average_power.to_bits(), r_old.average_power.to_bits(), "seed {seed}");
            assert_eq!(
                r_new.shutdown_fraction.to_bits(),
                r_old.shutdown_fraction.to_bits(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn threshold_policy_shuts_down_after_short_bursts() {
        let d = DeviceModel::default();
        let w = bursty_workload(8, 2000);
        let mut th = SrivastavaThreshold { active_threshold: 1.5 };
        let r = simulate(&mut th, &d, &w);
        assert!(r.shutdown_fraction > 0.1 && r.shutdown_fraction < 0.9);
    }
}
