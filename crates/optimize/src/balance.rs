//! Glitch reduction by path balancing (survey §III-I's companion
//! transformation, reference 109: "RT-level transformations for glitch
//! minimization").
//!
//! Glitches arise when a gate's fanins settle at different times. Buffer
//! chains inserted on early-arriving fanins equalize path delays, trading
//! a little buffer capacitance for the (often much larger) glitch
//! capacitance downstream — the same arithmetic as Fig. 9's registers,
//! but without touching the clock discipline.

use hlpower_netlist::{
    GateKind, IncrementalTimedSim, Library, Netlist, NetlistEditor, NetlistError, NodeKind,
    TimedKernel,
};
use hlpower_obs::metrics as obs;

/// Outcome of path balancing.
#[derive(Debug, Clone)]
pub struct BalanceOutcome {
    /// The balanced netlist.
    pub netlist: Netlist,
    /// Buffers inserted.
    pub buffers_added: usize,
    /// Power before, in µW (event-driven, glitches included).
    pub baseline_uw: f64,
    /// Power after, in µW.
    pub balanced_uw: f64,
    /// Glitch fraction before.
    pub glitch_fraction_before: f64,
    /// Glitch fraction after.
    pub glitch_fraction_after: f64,
}

impl BalanceOutcome {
    /// Fractional power saving (negative when buffers cost more than the
    /// glitches they remove).
    pub fn saving(&self) -> f64 {
        1.0 - self.balanced_uw / self.baseline_uw.max(1e-12)
    }
}

/// Options for [`balance_paths`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceOptions {
    /// Only pad fanins lagging the gate's latest fanin by more than this.
    pub tolerance_ps: f64,
    /// Only touch gates whose output glitched at least this many times in
    /// the profiling stream.
    pub min_glitches: u64,
    /// Maximum padding buffers per fanin (caps the capacitance spent).
    pub max_chain: usize,
    /// Retained for API compatibility: profiling now runs through the
    /// event-driven [`IncrementalTimedSim`] recording, which is
    /// bit-identical across kernels, so the choice no longer matters.
    pub kernel: TimedKernel,
}

impl Default for BalanceOptions {
    fn default() -> Self {
        BalanceOptions {
            tolerance_ps: 60.0,
            min_glitches: 2,
            max_chain: 8,
            kernel: TimedKernel::default(),
        }
    }
}

/// Pads early-arriving fanins of glitchy gates with buffer chains,
/// in place via [`NetlistEditor`]: buffers are appended and the lagging
/// pins rewired, so node ids of the original survive into the result.
/// Only gates whose output glitched at least `min_glitches` times in the
/// profiling stream are touched, so quiet logic does not pay buffer
/// overhead.
///
/// The balanced variant is scored by a dirty-cone timed replay against
/// the baseline recording ([`IncrementalTimedSim::resim`]), which is
/// bit-identical to re-simulating the mutated netlist from scratch.
///
/// # Errors
///
/// Returns a netlist error for cyclic circuits.
pub fn balance_paths(
    netlist: &Netlist,
    lib: &Library,
    stream: &[Vec<bool>],
    opts: &BalanceOptions,
) -> Result<BalanceOutcome, NetlistError> {
    let BalanceOptions { tolerance_ps, min_glitches, max_chain, kernel: _ } = *opts;
    let arrivals = netlist.arrival_times_ps(lib)?;
    let buf_delay = lib.cell(GateKind::Buf).delay_ps;

    // Record the baseline once: power, glitch profile, and the cached
    // waveforms every candidate replay reads.
    let inc = IncrementalTimedSim::record(netlist, lib, stream)?;
    let timed = inc.activity();
    let baseline_uw = timed.power(netlist, lib).total_power_uw();
    let glitch_fraction_before = timed.glitch_fraction()?;

    // Pad lagging fanins in place.
    let mut out = netlist.clone();
    let mut ed = NetlistEditor::begin(&mut out);
    let mut buffers_added = 0usize;
    for id in netlist.node_ids() {
        let NodeKind::Gate { inputs, .. } = netlist.kind(id) else { continue };
        if timed.node_glitches(id)? < min_glitches {
            continue;
        }
        let latest = inputs.iter().map(|i| arrivals[i.index()]).fold(0.0f64, f64::max);
        for (pin, &src) in inputs.iter().enumerate() {
            let lag = latest - arrivals[src.index()];
            if lag <= tolerance_ps {
                continue;
            }
            let chains = (lag / buf_delay).round() as usize;
            let mut mapped = src;
            for _ in 0..chains.min(max_chain) {
                mapped = ed.insert_gate(GateKind::Buf, [mapped])?;
                buffers_added += 1;
            }
            if mapped != src {
                ed.rewire_input(id, pin, mapped)?;
            }
        }
    }
    let changed = ed.changed().to_vec();
    ed.finish();

    // Score the candidate: replay only the forward cone of the rewired
    // gates and the appended buffers against the recorded waveforms.
    let resim = inc.resim(&out, &changed)?;
    obs::OPT_CANDIDATES_EVALUATED.inc();
    obs::OPT_CONE_SIZE.record(resim.cone.len() as u64);
    obs::OPT_RESIM_WORDS.add(resim.words_replayed());
    let balanced_uw = resim.activity.power(&out, lib).total_power_uw();
    if balanced_uw < baseline_uw {
        obs::OPT_CANDIDATES_ACCEPTED.inc();
    }
    Ok(BalanceOutcome {
        balanced_uw,
        glitch_fraction_after: resim.activity.glitch_fraction()?,
        netlist: out,
        buffers_added,
        baseline_uw,
        glitch_fraction_before,
    })
}

/// A circuit class where balancing pays: a serial parity chain (whose
/// skewed fanins glitch heavily) driving a heavy output load. Every
/// glitch that escapes the chain charges the big load, so the small
/// buffer investment wins.
pub fn skewed_parity_example(bits: usize, fanout: usize) -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", bits);
    let mut chain = a[0];
    for &bit in &a[1..] {
        chain = nl.xor([chain, bit]);
    }
    for i in 0..fanout {
        let driver = nl.buf(chain);
        nl.set_output(format!("y[{i}]"), driver);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_netlist::{gen, streams, words::to_bits, ZeroDelaySim};

    fn multiplier(width: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", width);
        let b = nl.input_bus("b", width);
        let p = gen::array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        nl
    }

    #[test]
    fn balancing_preserves_function() {
        let nl = multiplier(4);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(1, 8).take(100).collect();
        let out = balance_paths(&nl, &lib, &stream, &BalanceOptions::default()).unwrap();
        let mut s1 = ZeroDelaySim::new(&nl).unwrap();
        let mut s2 = ZeroDelaySim::new(&out.netlist).unwrap();
        for x in 0u64..16 {
            for y in [0u64, 3, 7, 15] {
                let mut v = to_bits(x, 4);
                v.extend(to_bits(y, 4));
                assert_eq!(
                    s1.eval_combinational(&v).unwrap(),
                    s2.eval_combinational(&v).unwrap(),
                    "{x}*{y}"
                );
            }
        }
    }

    #[test]
    fn balancing_reduces_glitch_fraction() {
        let nl = multiplier(5);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(2, 10).take(250).collect();
        let out = balance_paths(&nl, &lib, &stream, &BalanceOptions::default()).unwrap();
        assert!(out.buffers_added > 0);
        assert!(
            out.glitch_fraction_after < out.glitch_fraction_before,
            "{:.3} -> {:.3}",
            out.glitch_fraction_before,
            out.glitch_fraction_after
        );
    }

    #[test]
    fn balancing_pays_on_skewed_high_load_parity() {
        let nl = skewed_parity_example(8, 8);
        let lib = Library::default();
        // The per-stream saving is noisy, so assert the expected behavior
        // over several independent stimulus streams: balancing nets a
        // positive saving on average and always removes most glitches.
        let mut savings = Vec::new();
        for seed in 1..=5u64 {
            let stream: Vec<Vec<bool>> = streams::random(seed, 8).take(3000).collect();
            let out = balance_paths(&nl, &lib, &stream, &BalanceOptions::default()).unwrap();
            assert!(out.buffers_added > 0);
            assert!(
                out.glitch_fraction_after < out.glitch_fraction_before / 2.0,
                "glitch {:.2} -> {:.2}",
                out.glitch_fraction_before,
                out.glitch_fraction_after
            );
            savings.push(out.saving());
        }
        let mean = savings.iter().sum::<f64>() / savings.len() as f64;
        assert!(mean > 0.01, "expected positive mean saving: {savings:?}");
    }

    #[test]
    fn kernels_produce_identical_outcomes() {
        let nl = multiplier(4);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(6, 8).take(120).collect();
        let run = |kernel| {
            let opts = BalanceOptions { kernel, ..BalanceOptions::default() };
            balance_paths(&nl, &lib, &stream, &opts).unwrap()
        };
        let s = run(TimedKernel::Scalar);
        let p = run(TimedKernel::Packed64);
        assert_eq!(s.buffers_added, p.buffers_added);
        assert_eq!(s.baseline_uw.to_bits(), p.baseline_uw.to_bits());
        assert_eq!(s.balanced_uw.to_bits(), p.balanced_uw.to_bits());
        assert_eq!(s.glitch_fraction_before.to_bits(), p.glitch_fraction_before.to_bits());
        assert_eq!(s.glitch_fraction_after.to_bits(), p.glitch_fraction_after.to_bits());
    }

    #[test]
    fn incremental_scoring_matches_a_from_scratch_rerecord() {
        // The dirty-cone timed replay that scores the balanced netlist
        // must agree bit for bit with recording the mutated netlist from
        // scratch.
        let nl = multiplier(4);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(8, 8).take(150).collect();
        let out = balance_paths(&nl, &lib, &stream, &BalanceOptions::default()).unwrap();
        assert!(out.buffers_added > 0);
        let full = IncrementalTimedSim::record(&out.netlist, &lib, &stream).unwrap();
        let act = full.activity();
        assert_eq!(
            out.balanced_uw.to_bits(),
            act.power(&out.netlist, &lib).total_power_uw().to_bits()
        );
        assert_eq!(out.glitch_fraction_after.to_bits(), act.glitch_fraction().unwrap().to_bits());
    }

    #[test]
    fn quiet_circuits_are_left_alone() {
        // A balanced parity tree has little glitching; with a high glitch
        // threshold nothing should be touched.
        let mut nl = Netlist::new();
        let xs = nl.input_bus("x", 4);
        let p1 = nl.xor([xs[0], xs[1]]);
        let p2 = nl.xor([xs[2], xs[3]]);
        let p = nl.xor([p1, p2]);
        nl.set_output("p", p);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(3, 4).take(200).collect();
        let opts = BalanceOptions { min_glitches: 50, ..BalanceOptions::default() };
        let out = balance_paths(&nl, &lib, &stream, &opts).unwrap();
        assert_eq!(out.buffers_added, 0);
        assert!((out.saving()).abs() < 1e-9);
    }
}
