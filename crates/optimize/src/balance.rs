//! Glitch reduction by path balancing (survey §III-I's companion
//! transformation, reference 109: "RT-level transformations for glitch
//! minimization").
//!
//! Glitches arise when a gate's fanins settle at different times. Buffer
//! chains inserted on early-arriving fanins equalize path delays, trading
//! a little buffer capacitance for the (often much larger) glitch
//! capacitance downstream — the same arithmetic as Fig. 9's registers,
//! but without touching the clock discipline.

use std::collections::HashMap;

use hlpower_netlist::{
    timed_activity, Library, Netlist, NetlistError, NodeId, NodeKind, TimedKernel,
};

/// Outcome of path balancing.
#[derive(Debug, Clone)]
pub struct BalanceOutcome {
    /// The balanced netlist.
    pub netlist: Netlist,
    /// Buffers inserted.
    pub buffers_added: usize,
    /// Power before, in µW (event-driven, glitches included).
    pub baseline_uw: f64,
    /// Power after, in µW.
    pub balanced_uw: f64,
    /// Glitch fraction before.
    pub glitch_fraction_before: f64,
    /// Glitch fraction after.
    pub glitch_fraction_after: f64,
}

impl BalanceOutcome {
    /// Fractional power saving (negative when buffers cost more than the
    /// glitches they remove).
    pub fn saving(&self) -> f64 {
        1.0 - self.balanced_uw / self.baseline_uw.max(1e-12)
    }
}

/// Options for [`balance_paths`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceOptions {
    /// Only pad fanins lagging the gate's latest fanin by more than this.
    pub tolerance_ps: f64,
    /// Only touch gates whose output glitched at least this many times in
    /// the profiling stream.
    pub min_glitches: u64,
    /// Maximum padding buffers per fanin (caps the capacitance spent).
    pub max_chain: usize,
    /// Timed-simulation kernel used for the glitch profiling runs (both
    /// kernels give bit-identical profiles; the packed default is faster).
    pub kernel: TimedKernel,
}

impl Default for BalanceOptions {
    fn default() -> Self {
        BalanceOptions {
            tolerance_ps: 60.0,
            min_glitches: 2,
            max_chain: 8,
            kernel: TimedKernel::default(),
        }
    }
}

/// Rebuilds `netlist` with buffer chains inserted on gate fanins whose
/// arrival time trails the gate's latest fanin by more than the
/// tolerance. Only gates whose output glitched at least `min_glitches`
/// times in the profiling stream are touched, so quiet logic does not pay
/// buffer overhead.
///
/// # Errors
///
/// Returns a netlist error for cyclic circuits.
pub fn balance_paths(
    netlist: &Netlist,
    lib: &Library,
    stream: &[Vec<bool>],
    opts: &BalanceOptions,
) -> Result<BalanceOutcome, NetlistError> {
    let BalanceOptions { tolerance_ps, min_glitches, max_chain, kernel } = *opts;
    let arrivals = netlist.arrival_times_ps(lib)?;
    let buf_delay = lib.cell(hlpower_netlist::GateKind::Buf).delay_ps;

    // Profile glitches on the original.
    let timed = timed_activity(netlist, lib, stream, kernel)?;
    let baseline_uw = timed.power(netlist, lib).total_power_uw();
    let glitch_fraction_before = timed.glitch_fraction()?;

    // Rebuild with delay-padding buffers.
    let mut out = Netlist::new();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut buffers_added = 0usize;
    for id in netlist.node_ids() {
        let new_id = match netlist.kind(id) {
            NodeKind::Input => out.input(netlist.name(id).unwrap_or("in").to_string()),
            NodeKind::Const(c) => out.constant(*c),
            NodeKind::Dff { d, init } => {
                let md = map[d];
                out.dff(md, *init)
            }
            NodeKind::Gate { kind, inputs } => {
                let glitchy = timed.node_glitches(id)? >= min_glitches;
                let latest = inputs.iter().map(|i| arrivals[i.index()]).fold(0.0f64, f64::max);
                let mut new_inputs = Vec::with_capacity(inputs.len());
                for &src in inputs {
                    let mut mapped = map[&src];
                    if glitchy {
                        let lag = latest - arrivals[src.index()];
                        if lag > tolerance_ps {
                            let chains = (lag / buf_delay).round() as usize;
                            for _ in 0..chains.min(max_chain) {
                                mapped = out.buf(mapped);
                                buffers_added += 1;
                            }
                        }
                    }
                    new_inputs.push(mapped);
                }
                out.gate(*kind, new_inputs).expect("same arity as source")
            }
        };
        map.insert(id, new_id);
    }
    for (name, o) in netlist.outputs() {
        out.set_output(name.clone(), map[o]);
    }

    let timed2 = timed_activity(&out, lib, stream, kernel)?;
    Ok(BalanceOutcome {
        balanced_uw: timed2.power(&out, lib).total_power_uw(),
        glitch_fraction_after: timed2.glitch_fraction()?,
        netlist: out,
        buffers_added,
        baseline_uw,
        glitch_fraction_before,
    })
}

/// A circuit class where balancing pays: a serial parity chain (whose
/// skewed fanins glitch heavily) driving a heavy output load. Every
/// glitch that escapes the chain charges the big load, so the small
/// buffer investment wins.
pub fn skewed_parity_example(bits: usize, fanout: usize) -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", bits);
    let mut chain = a[0];
    for &bit in &a[1..] {
        chain = nl.xor([chain, bit]);
    }
    for i in 0..fanout {
        let driver = nl.buf(chain);
        nl.set_output(format!("y[{i}]"), driver);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_netlist::{gen, streams, words::to_bits, ZeroDelaySim};

    fn multiplier(width: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", width);
        let b = nl.input_bus("b", width);
        let p = gen::array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        nl
    }

    #[test]
    fn balancing_preserves_function() {
        let nl = multiplier(4);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(1, 8).take(100).collect();
        let out = balance_paths(&nl, &lib, &stream, &BalanceOptions::default()).unwrap();
        let mut s1 = ZeroDelaySim::new(&nl).unwrap();
        let mut s2 = ZeroDelaySim::new(&out.netlist).unwrap();
        for x in 0u64..16 {
            for y in [0u64, 3, 7, 15] {
                let mut v = to_bits(x, 4);
                v.extend(to_bits(y, 4));
                assert_eq!(
                    s1.eval_combinational(&v).unwrap(),
                    s2.eval_combinational(&v).unwrap(),
                    "{x}*{y}"
                );
            }
        }
    }

    #[test]
    fn balancing_reduces_glitch_fraction() {
        let nl = multiplier(5);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(2, 10).take(250).collect();
        let out = balance_paths(&nl, &lib, &stream, &BalanceOptions::default()).unwrap();
        assert!(out.buffers_added > 0);
        assert!(
            out.glitch_fraction_after < out.glitch_fraction_before,
            "{:.3} -> {:.3}",
            out.glitch_fraction_before,
            out.glitch_fraction_after
        );
    }

    #[test]
    fn balancing_pays_on_skewed_high_load_parity() {
        let nl = skewed_parity_example(8, 8);
        let lib = Library::default();
        // The per-stream saving is noisy, so assert the expected behavior
        // over several independent stimulus streams: balancing nets a
        // positive saving on average and always removes most glitches.
        let mut savings = Vec::new();
        for seed in 1..=5u64 {
            let stream: Vec<Vec<bool>> = streams::random(seed, 8).take(3000).collect();
            let out = balance_paths(&nl, &lib, &stream, &BalanceOptions::default()).unwrap();
            assert!(out.buffers_added > 0);
            assert!(
                out.glitch_fraction_after < out.glitch_fraction_before / 2.0,
                "glitch {:.2} -> {:.2}",
                out.glitch_fraction_before,
                out.glitch_fraction_after
            );
            savings.push(out.saving());
        }
        let mean = savings.iter().sum::<f64>() / savings.len() as f64;
        assert!(mean > 0.01, "expected positive mean saving: {savings:?}");
    }

    #[test]
    fn kernels_produce_identical_outcomes() {
        let nl = multiplier(4);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(6, 8).take(120).collect();
        let run = |kernel| {
            let opts = BalanceOptions { kernel, ..BalanceOptions::default() };
            balance_paths(&nl, &lib, &stream, &opts).unwrap()
        };
        let s = run(TimedKernel::Scalar);
        let p = run(TimedKernel::Packed64);
        assert_eq!(s.buffers_added, p.buffers_added);
        assert_eq!(s.baseline_uw.to_bits(), p.baseline_uw.to_bits());
        assert_eq!(s.balanced_uw.to_bits(), p.balanced_uw.to_bits());
        assert_eq!(s.glitch_fraction_before.to_bits(), p.glitch_fraction_before.to_bits());
        assert_eq!(s.glitch_fraction_after.to_bits(), p.glitch_fraction_after.to_bits());
    }

    #[test]
    fn quiet_circuits_are_left_alone() {
        // A balanced parity tree has little glitching; with a high glitch
        // threshold nothing should be touched.
        let mut nl = Netlist::new();
        let xs = nl.input_bus("x", 4);
        let p1 = nl.xor([xs[0], xs[1]]);
        let p2 = nl.xor([xs[2], xs[3]]);
        let p = nl.xor([p1, p2]);
        nl.set_output("p", p);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(3, 4).take(200).collect();
        let opts = BalanceOptions { min_glitches: 50, ..BalanceOptions::default() };
        let out = balance_paths(&nl, &lib, &stream, &opts).unwrap();
        assert_eq!(out.buffers_added, 0);
        assert!((out.saving()).abs() < 1e-9);
    }
}
