//! Precomputation-based shutdown (survey §III-I, Fig. 6, refs 99,
//! \[100\]).
//!
//! For a single-output block `f(X)`, predictor functions over a subset `S`
//! of the inputs are derived by universal quantification:
//! `g1 = ∀_{X\S} f` and `g0 = ∀_{X\S} ¬f`. When either asserts, the
//! block's registered inputs are disabled for the next cycle and the
//! output is taken from the registered predictor result. The expected
//! saving is the shutdown probability times the block's power, minus the
//! predictor's own cost.

use hlpower_bdd::{bdd_to_mux_netlist, build_output_bdds, BddManager, BddRef};
use hlpower_netlist::{
    ConeResim, GateKind, IncrementalSim, Library, Netlist, NetlistEditor, NetlistError, NodeId,
    NodeKind, ResimScratch, ZeroDelaySim,
};
use hlpower_obs::metrics as obs;

/// Analysis of one candidate precomputation architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecomputeCandidate {
    /// Indices (into the primary inputs) of the retained subset `S`.
    pub subset: Vec<usize>,
    /// Probability (under uniform inputs) that `g1 + g0` asserts — the
    /// fraction of cycles the block can be shut down.
    pub shutdown_probability: f64,
    /// Number of BDD nodes in the two predictors (predictor size proxy).
    pub predictor_nodes: usize,
}

/// Enumerates all input subsets of size `k` of a single-output block and
/// ranks them by shutdown probability (§III-I's predictor selection).
///
/// # Errors
///
/// Returns a netlist error for cyclic blocks.
///
/// # Panics
///
/// Panics if the block does not have exactly one output.
pub fn rank_subsets(block: &Netlist, k: usize) -> Result<Vec<PrecomputeCandidate>, NetlistError> {
    assert_eq!(block.outputs().len(), 1, "precomputation predictor needs a single-output block");
    let (mut m, roots) = build_output_bdds(block)?;
    let f = roots[0];
    let n = block.input_count();
    let mut out = Vec::new();
    let mut others: Vec<u32> = Vec::with_capacity(n);
    for_each_subset(n, k, |subset| {
        others.clear();
        others.extend((0..n as u32).filter(|v| !subset.contains(&(*v as usize))));
        let g1 = m.forall(f, &others);
        let nf = m.not(f);
        let g0 = m.forall(nf, &others);
        let either = m.or(g1, g0);
        let p = m.sat_fraction(either);
        out.push(PrecomputeCandidate {
            subset: subset.to_vec(),
            shutdown_probability: p,
            predictor_nodes: m.node_count_many(&[g0, g1]),
        });
    });
    out.sort_by(|a, b| {
        b.shutdown_probability.partial_cmp(&a.shutdown_probability).expect("finite probabilities")
    });
    Ok(out)
}

/// Calls `visit` with every size-`k` subset of `0..n` in lexicographic
/// order. One scratch buffer is advanced in place (the classic
/// next-combination walk), so enumeration allocates nothing per subset.
fn for_each_subset(n: usize, k: usize, mut visit: impl FnMut(&[usize])) {
    if k > n {
        return;
    }
    let mut cur: Vec<usize> = (0..k).collect();
    loop {
        visit(&cur);
        // Bump the rightmost index that can still grow, then restack
        // everything after it.
        let Some(i) = (0..k).rev().find(|&i| cur[i] < n - k + i) else { break };
        cur[i] += 1;
        for j in i + 1..k {
            cur[j] = cur[j - 1] + 1;
        }
    }
}

/// Universal-quantification predictor pair for a retained subset:
/// `g1 = ∀_{X\S} f` and `g0 = ∀_{X\S} ¬f`.
fn predictors(m: &mut BddManager, f: BddRef, n: usize, subset: &[usize]) -> (BddRef, BddRef) {
    let others: Vec<u32> = (0..n as u32).filter(|v| !subset.contains(&(*v as usize))).collect();
    let g1 = m.forall(f, &others);
    let nf = m.not(f);
    let g0 = m.forall(nf, &others);
    (g1, g0)
}

/// A synthesized precomputation architecture (Fig. 6): the original block
/// with input registers gated by the predictor pair.
#[derive(Debug)]
pub struct PrecomputeArchitecture {
    /// The transformed sequential netlist.
    pub netlist: Netlist,
    /// The candidate the architecture was built from.
    pub candidate: PrecomputeCandidate,
}

/// Builds the Fig. 6 architecture for the best subset of size `k`.
///
/// The block's inputs are registered; when `g1 + g0` asserted in the
/// previous cycle, the input registers hold their values (emulated with
/// recirculating muxes, as enable flip-flops would be in a real library)
/// and the output is taken from the registered predictor decision.
///
/// # Errors
///
/// Returns a netlist error for cyclic blocks.
///
/// # Panics
///
/// Panics if the block does not have exactly one output or has no
/// feasible candidate.
pub fn build_architecture(
    block: &Netlist,
    k: usize,
) -> Result<PrecomputeArchitecture, NetlistError> {
    let candidates = rank_subsets(block, k)?;
    let candidate = candidates.into_iter().next().expect("at least one subset");
    let (mut m, roots) = build_output_bdds(block)?;
    let (g1, g0) = predictors(&mut m, roots[0], block.input_count(), &candidate.subset);
    let (netlist, _) = synth_architecture(block, &m, g1, g0);
    Ok(PrecomputeArchitecture { netlist, candidate })
}

/// Node handles into a synthesized architecture that the candidate-swap
/// editor path rewires: the `fire` OR gate, the buffer feeding the g1
/// register (so a swap never touches a flip-flop's D pin directly), the
/// arena range holding the current predictor logic, and the raw inputs.
struct ArchHandles {
    fire: NodeId,
    g1_buf: NodeId,
    predictor: (usize, usize),
    raw: Vec<NodeId>,
}

/// Synthesizes the Fig. 6 architecture for one predictor pair: raw
/// inputs, predictor logic, hold registers, the block over held inputs,
/// and the output mux.
fn synth_architecture(
    block: &Netlist,
    m: &BddManager,
    g1: BddRef,
    g0: BddRef,
) -> (Netlist, ArchHandles) {
    let n = block.input_count();
    // New netlist with fresh inputs; predictors over raw inputs;
    // registered inputs recirculate when the registered predictor fired.
    let mut nl = Netlist::new();
    let raw: Vec<NodeId> = (0..n).map(|i| nl.input(format!("x[{i}]"))).collect();
    let p_start = nl.node_count();
    let g1_node = nl.with_group("predictor", |nl| bdd_to_mux_netlist(m, g1, &raw, nl));
    let g0_node = nl.with_group("predictor", |nl| bdd_to_mux_netlist(m, g0, &raw, nl));
    let p_end = nl.node_count();
    let fire = nl.with_group("predictor", |nl| nl.or([g1_node, g0_node]));
    // The g1 register is fed through a buffer so a candidate swap can
    // repoint it with a gate rewire (flip-flops keep their kind under
    // the editor).
    let g1_buf = nl.with_group("predictor", |nl| nl.buf(g1_node));
    let fire_q = nl.with_group("predictor", |nl| nl.dff(fire, false));
    let g1_q = nl.with_group("predictor", |nl| nl.dff(g1_buf, false));
    // Input registers with hold: q = dff(mux(fire, x, q)).
    let mut held = Vec::with_capacity(n);
    nl.with_group("registers/clock", |nl| {
        for &x in &raw {
            let q = nl.dff_placeholder(false);
            let d = nl.mux(fire, x, q);
            nl.connect_dff_d(q, d);
            held.push(q);
        }
    });
    // Rebuild the block over the held inputs.
    let block_out = nl.with_group("block", |nl| {
        let (bm, broots) = build_output_bdds(block).expect("validated above");
        bdd_to_mux_netlist(&bm, broots[0], &held, nl)
    });
    // Output: if the predictor fired last cycle, g1_q is the answer;
    // otherwise the block's output over the (freshly loaded) registers.
    let y = nl.mux(fire_q, block_out, g1_q);
    nl.set_output("y", y);
    (nl, ArchHandles { fire, g1_buf, predictor: (p_start, p_end), raw })
}

/// Expresses a candidate's architecture as an in-place edit of the
/// template: the new predictor pair is appended over the raw inputs,
/// `fire` and the g1 register feed are rewired onto it, and the
/// template's old predictor gates are tied to a constant so they stop
/// toggling (dead logic costs no dynamic power). Returns the
/// changed-gate set for [`IncrementalSim::resim_into`].
fn swap_predictor(
    arch: &mut Netlist,
    handles: &ArchHandles,
    m: &BddManager,
    g1: BddRef,
    g0: BddRef,
) -> Result<Vec<NodeId>, NetlistError> {
    // Appends are rollback-safe arena growth; they happen outside the
    // editor session so the BDD synthesizer can borrow the netlist.
    let g1_node = arch.with_group("predictor", |nl| bdd_to_mux_netlist(m, g1, &handles.raw, nl));
    let g0_node = arch.with_group("predictor", |nl| bdd_to_mux_netlist(m, g0, &handles.raw, nl));
    let tie = arch.constant(false);
    let (p_start, p_end) = handles.predictor;
    let old_gates: Vec<NodeId> = arch
        .node_ids()
        .skip(p_start)
        .take(p_end - p_start)
        .filter(|&id| matches!(arch.kind(id), NodeKind::Gate { .. }))
        .collect();
    let mut ed = NetlistEditor::begin(arch);
    ed.replace_gate(handles.fire, GateKind::Or, [g1_node, g0_node])?;
    ed.replace_gate(handles.g1_buf, GateKind::Buf, [g1_node])?;
    for &id in &old_gates {
        ed.replace_gate(id, GateKind::Buf, [tie])?;
    }
    let changed = ed.changed().to_vec();
    ed.finish();
    Ok(changed)
}

/// Measured outcome of a precomputation transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecomputeOutcome {
    /// Baseline block power (registered inputs, no predictor), in µW.
    pub baseline_uw: f64,
    /// Precomputed-architecture power, in µW.
    pub optimized_uw: f64,
    /// Measured shutdown fraction.
    pub shutdown_fraction: f64,
}

impl PrecomputeOutcome {
    /// Fractional power saving.
    pub fn saving(&self) -> f64 {
        1.0 - self.optimized_uw / self.baseline_uw.max(1e-12)
    }
}

/// One measured-power candidate in a [`search`] outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCandidate {
    /// The BDD-ranked candidate.
    pub candidate: PrecomputeCandidate,
    /// Measured power of its architecture under the stream, in µW.
    pub optimized_uw: f64,
}

/// Outcome of the measured-power candidate [`search`].
#[derive(Debug, Clone, PartialEq)]
pub struct PrecomputeSearchOutcome {
    /// Baseline block power (registered inputs, no predictor), in µW.
    pub baseline_uw: f64,
    /// Measured candidates, in BDD rank order.
    pub scored: Vec<ScoredCandidate>,
    /// Index into `scored` of the lowest measured power.
    pub best: usize,
}

impl PrecomputeSearchOutcome {
    /// The best measured candidate as a [`PrecomputeOutcome`].
    pub fn best_outcome(&self) -> PrecomputeOutcome {
        let b = &self.scored[self.best];
        PrecomputeOutcome {
            baseline_uw: self.baseline_uw,
            optimized_uw: b.optimized_uw,
            shutdown_fraction: b.candidate.shutdown_probability,
        }
    }
}

/// Measures the top-`top_r` BDD-ranked subsets by simulated power and
/// picks the cheapest — the Fig. 1 estimate/transform/re-estimate loop
/// run incrementally. The baseline and the top candidate's architecture
/// are each recorded once ([`IncrementalSim::record`]); every further
/// candidate is an in-place predictor swap on the template
/// (an editor-journaled predictor swap) scored by dirty-cone replay,
/// bit-identical to
/// recording its netlist from scratch.
///
/// # Errors
///
/// Returns a netlist error for cyclic blocks.
///
/// # Panics
///
/// Panics if the block does not have exactly one output.
pub fn search(
    block: &Netlist,
    k: usize,
    top_r: usize,
    stream: &[Vec<bool>],
    lib: &Library,
) -> Result<PrecomputeSearchOutcome, NetlistError> {
    let ranked = rank_subsets(block, k)?;
    let take = top_r.clamp(1, ranked.len());

    // Baseline: inputs registered, block evaluated every cycle. Recorded
    // once, shared by every candidate comparison.
    let n = block.input_count();
    let mut base = Netlist::new();
    let raw: Vec<NodeId> = (0..n).map(|i| base.input(format!("x[{i}]"))).collect();
    let regs = base.dff_bus(&raw);
    let (bm, broots) = build_output_bdds(block)?;
    let y = bdd_to_mux_netlist(&bm, broots[0], &regs, &mut base);
    base.set_output("y", y);
    let base_rec = IncrementalSim::record(&base, stream)?;
    let baseline_uw = base_rec.activity().power(&base, lib).total_power_uw();

    // Template: the top-ranked candidate's architecture, recorded once.
    let (mut m, roots) = build_output_bdds(block)?;
    let f = roots[0];
    let (g1, g0) = predictors(&mut m, f, n, &ranked[0].subset);
    let (tpl, handles) = synth_architecture(block, &m, g1, g0);
    let inc = IncrementalSim::record(&tpl, stream)?;
    obs::OPT_CANDIDATES_EVALUATED.inc();
    let mut scored = Vec::with_capacity(take);
    scored.push(ScoredCandidate {
        candidate: ranked[0].clone(),
        optimized_uw: inc.activity().power(&tpl, lib).total_power_uw(),
    });

    // Every further candidate: predictor swap + dirty-cone replay.
    let mut scratch = ResimScratch::default();
    let mut resim = ConeResim::default();
    for cand in ranked.iter().take(take).skip(1) {
        let (g1, g0) = predictors(&mut m, f, n, &cand.subset);
        let mut swapped = tpl.clone();
        let changed = swap_predictor(&mut swapped, &handles, &m, g1, g0)?;
        inc.resim_into(&swapped, &changed, &mut scratch, &mut resim)?;
        obs::OPT_CANDIDATES_EVALUATED.inc();
        obs::OPT_CONE_SIZE.record(resim.cone.len() as u64);
        obs::OPT_RESIM_WORDS.add(resim.words_replayed());
        scored.push(ScoredCandidate {
            candidate: cand.clone(),
            optimized_uw: resim.activity.power(&swapped, lib).total_power_uw(),
        });
    }
    let best = scored
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.optimized_uw.partial_cmp(&b.1.optimized_uw).expect("finite powers"))
        .map(|(i, _)| i)
        .expect("at least one candidate");
    if scored[best].optimized_uw < baseline_uw {
        obs::OPT_CANDIDATES_ACCEPTED.inc();
    }
    Ok(PrecomputeSearchOutcome { baseline_uw, scored, best })
}

/// Simulates the baseline (registered-input block) and the precomputation
/// architecture of the top-ranked subset under the same stream and
/// compares power — [`search`] restricted to one candidate.
///
/// # Errors
///
/// Returns a netlist error for cyclic blocks.
pub fn evaluate(
    block: &Netlist,
    k: usize,
    stream: &[Vec<bool>],
    lib: &Library,
) -> Result<PrecomputeOutcome, NetlistError> {
    let s = search(block, k, 1, stream, lib)?;
    let b = &s.scored[0];
    Ok(PrecomputeOutcome {
        baseline_uw: s.baseline_uw,
        optimized_uw: b.optimized_uw,
        shutdown_fraction: b.candidate.shutdown_probability,
    })
}

/// Functional-equivalence check between block and architecture over a
/// stream (the architecture has one cycle of latency).
///
/// # Errors
///
/// Returns a netlist error for cyclic blocks.
pub fn check_equivalence(
    block: &Netlist,
    k: usize,
    stream: &[Vec<bool>],
) -> Result<bool, NetlistError> {
    let arch = build_architecture(block, k)?;
    let mut ref_sim = ZeroDelaySim::new(block)?;
    let mut arch_sim = ZeroDelaySim::new(&arch.netlist)?;
    let mut expected: Vec<bool> = Vec::new();
    for v in stream {
        let r = ref_sim.eval_combinational(v)?;
        arch_sim.step(v)?;
        expected.push(r[0]);
    }
    // The architecture outputs, delayed by one cycle, must match.
    let mut arch_sim2 = ZeroDelaySim::new(&arch.netlist)?;
    let mut got = Vec::new();
    for v in stream {
        arch_sim2.step(v)?;
        got.push(arch_sim2.output_values()[0]);
    }
    // got[t] corresponds to inputs at t-1.
    Ok(got[1..] == expected[..expected.len() - 1])
}

/// The survey's canonical precomputation example: an n-bit magnitude
/// comparator, where the two MSBs decide the output most of the time.
pub fn comparator_block(width: usize) -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", width);
    let b = nl.input_bus("b", width);
    let lt = hlpower_netlist::gen::less_than(&mut nl, &a, &b);
    nl.set_output("lt", lt);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_netlist::streams;

    #[test]
    fn msb_subset_has_half_shutdown_probability() {
        // For a < b, knowing the MSBs a_{n-1} != b_{n-1} decides the
        // output: probability 1/2.
        let block = comparator_block(4);
        let ranked = rank_subsets(&block, 2).unwrap();
        let best = &ranked[0];
        // Best subset should be the two MSBs: inputs 3 (a[3]) and 7 (b[3]).
        assert_eq!(best.subset, vec![3, 7], "{best:?}");
        assert!((best.shutdown_probability - 0.5).abs() < 1e-9);
    }

    #[test]
    fn architecture_is_functionally_equivalent() {
        let block = comparator_block(4);
        let stream: Vec<Vec<bool>> = streams::random(3, 8).take(300).collect();
        assert!(check_equivalence(&block, 2, &stream).unwrap());
    }

    #[test]
    fn precomputation_saves_power_on_comparator() {
        let block = comparator_block(8);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(4, 16).take(2000).collect();
        let outcome = evaluate(&block, 2, &stream, &lib).unwrap();
        assert!(
            outcome.saving() > 0.1,
            "expected >10% saving, got {:.1}% ({outcome:?})",
            outcome.saving() * 100.0
        );
    }

    #[test]
    fn swap_scored_candidates_match_from_scratch_recording() {
        // Every µW the incremental search reports must be bit-identical
        // to recording the same (template or swapped) netlist from
        // scratch.
        let block = comparator_block(4);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(9, 8).take(200).collect();
        let outcome = search(&block, 2, 6, &stream, &lib).unwrap();
        assert_eq!(outcome.scored.len(), 6);

        // Replay the search's construction sequence on a fresh manager so
        // node ids line up, then record each netlist from scratch.
        let ranked = rank_subsets(&block, 2).unwrap();
        let (mut m, roots) = build_output_bdds(&block).unwrap();
        let f = roots[0];
        let n = block.input_count();
        let (g1, g0) = predictors(&mut m, f, n, &ranked[0].subset);
        let (tpl, handles) = synth_architecture(&block, &m, g1, g0);
        for (i, sc) in outcome.scored.iter().enumerate() {
            let nl = if i == 0 {
                tpl.clone()
            } else {
                let (g1, g0) = predictors(&mut m, f, n, &sc.candidate.subset);
                let mut sw = tpl.clone();
                swap_predictor(&mut sw, &handles, &m, g1, g0).unwrap();
                sw
            };
            let full = IncrementalSim::record(&nl, &stream).unwrap();
            assert_eq!(
                sc.optimized_uw.to_bits(),
                full.activity().power(&nl, &lib).total_power_uw().to_bits(),
                "candidate {i} ({:?})",
                sc.candidate.subset
            );
        }
    }

    #[test]
    fn swapped_architecture_stays_equivalent_to_the_block() {
        // A predictor swap must leave the architecture functionally the
        // one-cycle-latency block: the old predictor is fully detached.
        let block = comparator_block(3);
        let ranked = rank_subsets(&block, 2).unwrap();
        let (mut m, roots) = build_output_bdds(&block).unwrap();
        let f = roots[0];
        let n = block.input_count();
        let (g1, g0) = predictors(&mut m, f, n, &ranked[0].subset);
        let (tpl, handles) = synth_architecture(&block, &m, g1, g0);
        let (g1b, g0b) = predictors(&mut m, f, n, &ranked[1].subset);
        let mut sw = tpl.clone();
        swap_predictor(&mut sw, &handles, &m, g1b, g0b).unwrap();

        let stream: Vec<Vec<bool>> = streams::random(12, 6).take(200).collect();
        let mut ref_sim = ZeroDelaySim::new(&block).unwrap();
        let mut sw_sim = ZeroDelaySim::new(&sw).unwrap();
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for v in &stream {
            expected.push(ref_sim.eval_combinational(v).unwrap()[0]);
            sw_sim.step(v).unwrap();
            got.push(sw_sim.output_values()[0]);
        }
        assert_eq!(got[1..], expected[..expected.len() - 1]);
    }

    #[test]
    fn search_picks_the_measured_best() {
        let block = comparator_block(4);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(2, 8).take(400).collect();
        let outcome = search(&block, 2, 5, &stream, &lib).unwrap();
        let min = outcome.scored.iter().map(|s| s.optimized_uw).fold(f64::INFINITY, f64::min);
        assert_eq!(outcome.scored[outcome.best].optimized_uw.to_bits(), min.to_bits());
        assert!(outcome.best_outcome().baseline_uw > 0.0);
    }

    #[test]
    fn full_subset_gives_certain_shutdown() {
        let block = comparator_block(3);
        let ranked = rank_subsets(&block, 6).unwrap();
        assert!((ranked[0].shutdown_probability - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_subset_gives_no_shutdown_for_nonconstant_f() {
        let block = comparator_block(3);
        let ranked = rank_subsets(&block, 0).unwrap();
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].shutdown_probability, 0.0);
    }
}
