//! Precomputation-based shutdown (survey §III-I, Fig. 6, refs 99,
//! \[100\]).
//!
//! For a single-output block `f(X)`, predictor functions over a subset `S`
//! of the inputs are derived by universal quantification:
//! `g1 = ∀_{X\S} f` and `g0 = ∀_{X\S} ¬f`. When either asserts, the
//! block's registered inputs are disabled for the next cycle and the
//! output is taken from the registered predictor result. The expected
//! saving is the shutdown probability times the block's power, minus the
//! predictor's own cost.

use hlpower_bdd::{bdd_to_mux_netlist, build_output_bdds};
use hlpower_netlist::{Library, Netlist, NetlistError, NodeId, ZeroDelaySim};

/// Analysis of one candidate precomputation architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecomputeCandidate {
    /// Indices (into the primary inputs) of the retained subset `S`.
    pub subset: Vec<usize>,
    /// Probability (under uniform inputs) that `g1 + g0` asserts — the
    /// fraction of cycles the block can be shut down.
    pub shutdown_probability: f64,
    /// Number of BDD nodes in the two predictors (predictor size proxy).
    pub predictor_nodes: usize,
}

/// Enumerates all input subsets of size `k` of a single-output block and
/// ranks them by shutdown probability (§III-I's predictor selection).
///
/// # Errors
///
/// Returns a netlist error for cyclic blocks.
///
/// # Panics
///
/// Panics if the block does not have exactly one output.
pub fn rank_subsets(block: &Netlist, k: usize) -> Result<Vec<PrecomputeCandidate>, NetlistError> {
    assert_eq!(block.outputs().len(), 1, "precomputation predictor needs a single-output block");
    let (mut m, roots) = build_output_bdds(block)?;
    let f = roots[0];
    let n = block.input_count();
    let mut out = Vec::new();
    for subset in subsets(n, k) {
        let others: Vec<u32> = (0..n as u32).filter(|v| !subset.contains(&(*v as usize))).collect();
        let g1 = m.forall(f, &others);
        let nf = m.not(f);
        let g0 = m.forall(nf, &others);
        let either = m.or(g1, g0);
        let p = m.sat_fraction(either);
        out.push(PrecomputeCandidate {
            subset,
            shutdown_probability: p,
            predictor_nodes: m.node_count_many(&[g0, g1]),
        });
    }
    out.sort_by(|a, b| {
        b.shutdown_probability.partial_cmp(&a.shutdown_probability).expect("finite probabilities")
    });
    Ok(out)
}

fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

/// A synthesized precomputation architecture (Fig. 6): the original block
/// with input registers gated by the predictor pair.
#[derive(Debug)]
pub struct PrecomputeArchitecture {
    /// The transformed sequential netlist.
    pub netlist: Netlist,
    /// The candidate the architecture was built from.
    pub candidate: PrecomputeCandidate,
}

/// Builds the Fig. 6 architecture for the best subset of size `k`.
///
/// The block's inputs are registered; when `g1 + g0` asserted in the
/// previous cycle, the input registers hold their values (emulated with
/// recirculating muxes, as enable flip-flops would be in a real library)
/// and the output is taken from the registered predictor decision.
///
/// # Errors
///
/// Returns a netlist error for cyclic blocks.
///
/// # Panics
///
/// Panics if the block does not have exactly one output or has no
/// feasible candidate.
pub fn build_architecture(
    block: &Netlist,
    k: usize,
) -> Result<PrecomputeArchitecture, NetlistError> {
    let candidates = rank_subsets(block, k)?;
    let candidate = candidates.into_iter().next().expect("at least one subset");
    let (mut m, roots) = build_output_bdds(block)?;
    let f = roots[0];
    let n = block.input_count();
    let others: Vec<u32> =
        (0..n as u32).filter(|v| !candidate.subset.contains(&(*v as usize))).collect();
    let g1 = m.forall(f, &others);
    let nf = m.not(f);
    let g0 = m.forall(nf, &others);

    // Rebuild: new netlist with fresh inputs; predictors over raw inputs;
    // registered inputs recirculate when the registered predictor fired.
    let mut nl = Netlist::new();
    let raw: Vec<NodeId> = (0..n).map(|i| nl.input(format!("x[{i}]"))).collect();
    let g1_node = nl.with_group("predictor", |nl| bdd_to_mux_netlist(&m, g1, &raw, nl));
    let g0_node = nl.with_group("predictor", |nl| bdd_to_mux_netlist(&m, g0, &raw, nl));
    let fire = nl.with_group("predictor", |nl| nl.or([g1_node, g0_node]));
    let fire_q = nl.with_group("predictor", |nl| nl.dff(fire, false));
    let g1_q = nl.with_group("predictor", |nl| nl.dff(g1_node, false));
    // Input registers with hold: q = dff(mux(fire, x, q)).
    let mut held = Vec::with_capacity(n);
    nl.with_group("registers/clock", |nl| {
        for &x in &raw {
            let q = nl.dff_placeholder(false);
            let d = nl.mux(fire, x, q);
            nl.connect_dff_d(q, d);
            held.push(q);
        }
    });
    // Rebuild the block over the held inputs.
    let block_out = nl.with_group("block", |nl| {
        let (bm, broots) = build_output_bdds(block).expect("validated above");
        bdd_to_mux_netlist(&bm, broots[0], &held, nl)
    });
    // Output: if the predictor fired last cycle, g1_q is the answer;
    // otherwise the block's output over the (freshly loaded) registers.
    let y = nl.mux(fire_q, block_out, g1_q);
    nl.set_output("y", y);
    Ok(PrecomputeArchitecture { netlist: nl, candidate })
}

/// Measured outcome of a precomputation transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecomputeOutcome {
    /// Baseline block power (registered inputs, no predictor), in µW.
    pub baseline_uw: f64,
    /// Precomputed-architecture power, in µW.
    pub optimized_uw: f64,
    /// Measured shutdown fraction.
    pub shutdown_fraction: f64,
}

impl PrecomputeOutcome {
    /// Fractional power saving.
    pub fn saving(&self) -> f64 {
        1.0 - self.optimized_uw / self.baseline_uw.max(1e-12)
    }
}

/// Simulates the baseline (registered-input block) and the precomputation
/// architecture under the same stream and compares power.
///
/// # Errors
///
/// Returns a netlist error for cyclic blocks.
pub fn evaluate(
    block: &Netlist,
    k: usize,
    stream: &[Vec<bool>],
    lib: &Library,
) -> Result<PrecomputeOutcome, NetlistError> {
    // Baseline: inputs registered, block evaluated every cycle.
    let n = block.input_count();
    let mut base = Netlist::new();
    let raw: Vec<NodeId> = (0..n).map(|i| base.input(format!("x[{i}]"))).collect();
    let regs = base.dff_bus(&raw);
    let (bm, broots) = build_output_bdds(block)?;
    let y = bdd_to_mux_netlist(&bm, broots[0], &regs, &mut base);
    base.set_output("y", y);

    let arch = build_architecture(block, k)?;
    let mut sim_base = ZeroDelaySim::new(&base)?;
    let act_base = sim_base.run(stream.iter().cloned())?;
    let mut sim_arch = ZeroDelaySim::new(&arch.netlist)?;
    let act_arch = sim_arch.run(stream.iter().cloned())?;
    Ok(PrecomputeOutcome {
        baseline_uw: act_base.power(&base, lib).total_power_uw(),
        optimized_uw: act_arch.power(&arch.netlist, lib).total_power_uw(),
        shutdown_fraction: arch.candidate.shutdown_probability,
    })
}

/// Functional-equivalence check between block and architecture over a
/// stream (the architecture has one cycle of latency).
///
/// # Errors
///
/// Returns a netlist error for cyclic blocks.
pub fn check_equivalence(
    block: &Netlist,
    k: usize,
    stream: &[Vec<bool>],
) -> Result<bool, NetlistError> {
    let arch = build_architecture(block, k)?;
    let mut ref_sim = ZeroDelaySim::new(block)?;
    let mut arch_sim = ZeroDelaySim::new(&arch.netlist)?;
    let mut expected: Vec<bool> = Vec::new();
    for v in stream {
        let r = ref_sim.eval_combinational(v)?;
        arch_sim.step(v)?;
        expected.push(r[0]);
    }
    // The architecture outputs, delayed by one cycle, must match.
    let mut arch_sim2 = ZeroDelaySim::new(&arch.netlist)?;
    let mut got = Vec::new();
    for v in stream {
        arch_sim2.step(v)?;
        got.push(arch_sim2.output_values()[0]);
    }
    // got[t] corresponds to inputs at t-1.
    Ok(got[1..] == expected[..expected.len() - 1])
}

/// The survey's canonical precomputation example: an n-bit magnitude
/// comparator, where the two MSBs decide the output most of the time.
pub fn comparator_block(width: usize) -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", width);
    let b = nl.input_bus("b", width);
    let lt = hlpower_netlist::gen::less_than(&mut nl, &a, &b);
    nl.set_output("lt", lt);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_netlist::streams;

    #[test]
    fn msb_subset_has_half_shutdown_probability() {
        // For a < b, knowing the MSBs a_{n-1} != b_{n-1} decides the
        // output: probability 1/2.
        let block = comparator_block(4);
        let ranked = rank_subsets(&block, 2).unwrap();
        let best = &ranked[0];
        // Best subset should be the two MSBs: inputs 3 (a[3]) and 7 (b[3]).
        assert_eq!(best.subset, vec![3, 7], "{best:?}");
        assert!((best.shutdown_probability - 0.5).abs() < 1e-9);
    }

    #[test]
    fn architecture_is_functionally_equivalent() {
        let block = comparator_block(4);
        let stream: Vec<Vec<bool>> = streams::random(3, 8).take(300).collect();
        assert!(check_equivalence(&block, 2, &stream).unwrap());
    }

    #[test]
    fn precomputation_saves_power_on_comparator() {
        let block = comparator_block(8);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(4, 16).take(2000).collect();
        let outcome = evaluate(&block, 2, &stream, &lib).unwrap();
        assert!(
            outcome.saving() > 0.1,
            "expected >10% saving, got {:.1}% ({outcome:?})",
            outcome.saving() * 100.0
        );
    }

    #[test]
    fn full_subset_gives_certain_shutdown() {
        let block = comparator_block(3);
        let ranked = rank_subsets(&block, 6).unwrap();
        assert!((ranked[0].shutdown_probability - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_subset_gives_no_shutdown_for_nonconstant_f() {
        let block = comparator_block(3);
        let ranked = rank_subsets(&block, 0).unwrap();
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].shutdown_probability, 0.0);
    }
}
