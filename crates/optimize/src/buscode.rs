//! Low-power bus encoding (survey §III-G).
//!
//! Every codec is *reversible*: `decode(encode(w)) == w`, checked by the
//! test suite, because an encoding that loses information saves no power —
//! it just breaks the bus. Transition counts are measured on the physical
//! lines actually driven (data lines plus any redundant control line).

use std::collections::HashMap;

/// A stateful bus encoder/decoder pair.
///
/// `encode` maps the next word to the physical line values; `decode` must
/// invert it at the receiving end. Both ends carry the codec's state.
pub trait BusCodec {
    /// Number of physical lines (data width plus redundant lines).
    fn line_count(&self) -> usize;

    /// Encodes the next word into physical line values.
    fn encode(&mut self, word: u64) -> u64;

    /// Decodes physical line values back into the original word.
    fn decode(&mut self, lines: u64) -> u64;

    /// A short display name.
    fn name(&self) -> &'static str;
}

/// Counts total line transitions for a word stream under a codec,
/// verifying decodability along the way.
///
/// # Panics
///
/// Panics if the codec fails to round-trip any word (a codec bug).
pub fn count_transitions(
    mut encoder: Box<dyn BusCodec>,
    mut decoder: Box<dyn BusCodec>,
    words: &[u64],
) -> u64 {
    let mut prev: Option<u64> = None;
    let mut transitions = 0u64;
    for &w in words {
        let lines = encoder.encode(w);
        let back = decoder.decode(lines);
        assert_eq!(back, w, "codec {} failed to round-trip {w:#x}", encoder.name());
        if let Some(p) = prev {
            transitions += (p ^ lines).count_ones() as u64;
        }
        prev = Some(lines);
    }
    transitions
}

/// Transitions per emitted word (the §III-G figure of merit).
pub fn transitions_per_word(
    encoder: Box<dyn BusCodec>,
    decoder: Box<dyn BusCodec>,
    words: &[u64],
) -> f64 {
    if words.len() < 2 {
        return 0.0;
    }
    count_transitions(encoder, decoder, words) as f64 / (words.len() - 1) as f64
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

// ---------------------------------------------------------------------

/// The identity (unencoded) baseline.
#[derive(Debug, Clone)]
pub struct Unencoded {
    width: usize,
}

impl Unencoded {
    /// An uncoded `width`-bit bus.
    pub fn new(width: usize) -> Self {
        Unencoded { width }
    }
}

impl BusCodec for Unencoded {
    fn line_count(&self) -> usize {
        self.width
    }
    fn encode(&mut self, word: u64) -> u64 {
        word & mask(self.width)
    }
    fn decode(&mut self, lines: u64) -> u64 {
        lines & mask(self.width)
    }
    fn name(&self) -> &'static str {
        "unencoded"
    }
}

// ---------------------------------------------------------------------

/// Bus-Invert coding (Stan–Burleson): invert the word when more than half
/// the lines would toggle; one redundant `INV` line (the top line).
#[derive(Debug, Clone)]
pub struct BusInvert {
    width: usize,
    prev_lines: u64,
}

impl BusInvert {
    /// A Bus-Invert codec over `width` data lines (+1 INV line).
    pub fn new(width: usize) -> Self {
        BusInvert { width, prev_lines: 0 }
    }
}

impl BusCodec for BusInvert {
    fn line_count(&self) -> usize {
        self.width + 1
    }

    fn encode(&mut self, word: u64) -> u64 {
        let m = mask(self.width);
        let word = word & m;
        let prev_data = self.prev_lines & m;
        let toggles = (word ^ prev_data).count_ones() as usize;
        let lines = if 2 * toggles > self.width { (!word & m) | (1 << self.width) } else { word };
        self.prev_lines = lines;
        lines
    }

    fn decode(&mut self, lines: u64) -> u64 {
        let m = mask(self.width);
        if lines >> self.width & 1 == 1 {
            !lines & m
        } else {
            lines & m
        }
    }

    fn name(&self) -> &'static str {
        "bus-invert"
    }
}

// ---------------------------------------------------------------------

/// Gray coding: consecutive addresses differ in a single line.
#[derive(Debug, Clone)]
pub struct GrayCode {
    width: usize,
}

impl GrayCode {
    /// A Gray codec over `width` lines (irredundant).
    pub fn new(width: usize) -> Self {
        GrayCode { width }
    }
}

impl BusCodec for GrayCode {
    fn line_count(&self) -> usize {
        self.width
    }

    fn encode(&mut self, word: u64) -> u64 {
        let w = word & mask(self.width);
        w ^ (w >> 1)
    }

    fn decode(&mut self, lines: u64) -> u64 {
        let mut b = lines & mask(self.width);
        let mut shift = 1;
        while shift < self.width {
            b ^= b >> shift;
            shift <<= 1;
        }
        b & mask(self.width)
    }

    fn name(&self) -> &'static str {
        "gray"
    }
}

// ---------------------------------------------------------------------

/// T0 coding (Benini et al.): an `INC` line freezes the bus on
/// consecutive addresses; the receiver increments locally.
#[derive(Debug, Clone)]
pub struct T0Code {
    width: usize,
    prev_word: Option<u64>,
    prev_lines: u64,
}

impl T0Code {
    /// A T0 codec over `width` data lines (+1 INC line).
    pub fn new(width: usize) -> Self {
        T0Code { width, prev_word: None, prev_lines: 0 }
    }
}

impl BusCodec for T0Code {
    fn line_count(&self) -> usize {
        self.width + 1
    }

    fn encode(&mut self, word: u64) -> u64 {
        let m = mask(self.width);
        let word = word & m;
        let lines = match self.prev_word {
            Some(p) if word == (p + 1) & m => {
                // Freeze data lines, raise INC.
                (self.prev_lines & m) | (1 << self.width)
            }
            _ => word,
        };
        self.prev_word = Some(word);
        self.prev_lines = lines;
        lines
    }

    fn decode(&mut self, lines: u64) -> u64 {
        let m = mask(self.width);
        let word = if lines >> self.width & 1 == 1 {
            (self.prev_word.unwrap_or(0) + 1) & m
        } else {
            lines & m
        };
        self.prev_word = Some(word);
        word
    }

    fn name(&self) -> &'static str {
        "t0"
    }
}

// ---------------------------------------------------------------------

/// Working-Zone encoding (Musoll et al.): the receiver tracks a small set
/// of zone base addresses; in-zone accesses transmit only a Gray-coded
/// offset plus the zone id, out-of-zone accesses transmit the full
/// address (flag line low) and replace the least-recently-used zone.
#[derive(Debug, Clone)]
pub struct WorkingZone {
    width: usize,
    offset_bits: usize,
    zones: Vec<u64>,
    lru: Vec<u64>,
    tick: u64,
    prev_lines: u64,
}

impl WorkingZone {
    /// A Working-Zone codec with `zone_count` zones of `2^offset_bits`
    /// words over a `width`-bit address space (+1 hit-flag line).
    ///
    /// # Panics
    ///
    /// Panics if the zone id and offset do not fit in the data lines.
    pub fn new(width: usize, zone_count: usize, offset_bits: usize) -> Self {
        let id_bits = zone_count.next_power_of_two().trailing_zeros() as usize;
        assert!(offset_bits + id_bits.max(1) <= width, "zone id + offset must fit in the bus");
        WorkingZone {
            width,
            offset_bits,
            zones: vec![0; zone_count],
            lru: vec![0; zone_count],
            tick: 0,
            prev_lines: 0,
        }
    }

    fn find_zone(&self, word: u64) -> Option<(usize, u64)> {
        for (i, &base) in self.zones.iter().enumerate() {
            let offset = word.wrapping_sub(base);
            if offset < (1u64 << self.offset_bits) {
                return Some((i, offset));
            }
        }
        None
    }
}

impl BusCodec for WorkingZone {
    fn line_count(&self) -> usize {
        self.width + 1
    }

    fn encode(&mut self, word: u64) -> u64 {
        self.tick += 1;
        let m = mask(self.width);
        let word = word & m;
        let lines = match self.find_zone(word) {
            Some((zone, offset)) => {
                self.lru[zone] = self.tick;
                let gray = offset ^ (offset >> 1);
                let payload = ((zone as u64) << self.offset_bits) | gray;
                payload | (1 << self.width)
            }
            None => {
                // Miss: transmit in full, install as new zone base (LRU).
                let victim =
                    (0..self.zones.len()).min_by_key(|&i| self.lru[i]).expect("at least one zone");
                self.zones[victim] = word;
                self.lru[victim] = self.tick;
                word
            }
        };
        self.prev_lines = lines;
        lines
    }

    fn decode(&mut self, lines: u64) -> u64 {
        self.tick += 1;
        let m = mask(self.width);
        if lines >> self.width & 1 == 1 {
            let payload = lines & m;
            let zone = (payload >> self.offset_bits) as usize;
            let gray = payload & mask(self.offset_bits);
            let mut offset = gray;
            let mut shift = 1;
            while shift < self.offset_bits {
                offset ^= offset >> shift;
                shift <<= 1;
            }
            self.lru[zone] = self.tick;
            (self.zones[zone] + offset) & m
        } else {
            let word = lines & m;
            let victim =
                (0..self.zones.len()).min_by_key(|&i| self.lru[i]).expect("at least one zone");
            self.zones[victim] = word;
            self.lru[victim] = self.tick;
            word
        }
    }

    fn name(&self) -> &'static str {
        "working-zone"
    }
}

// ---------------------------------------------------------------------

/// The Beach code (Benini et al.): a trace-driven, cluster-wise
/// re-encoding. Bus lines are grouped into clusters of correlated lines;
/// within each cluster a bijective code is chosen that gives small
/// Hamming distance to the transitions that the training trace makes
/// often.
#[derive(Debug, Clone)]
pub struct BeachCode {
    width: usize,
    clusters: Vec<Vec<usize>>,
    /// Per cluster: forward permutation over `2^k` values.
    forward: Vec<Vec<u64>>,
    inverse: Vec<Vec<u64>>,
}

impl BeachCode {
    /// Trains a Beach code on an address trace. Lines are clustered by
    /// absolute pairwise correlation (greedy agglomeration into clusters
    /// of at most `max_cluster` lines), then each cluster's value stream
    /// gets a greedy minimum-weighted-transition code assignment.
    ///
    /// # Panics
    ///
    /// Panics if `max_cluster > 16` (table blow-up) or the trace is empty.
    pub fn train(width: usize, trace: &[u64], max_cluster: usize) -> Self {
        assert!(max_cluster <= 16, "cluster tables limited to 16 lines");
        assert!(!trace.is_empty(), "Beach training requires a trace");
        // Pairwise line correlation over the trace.
        let bit = |w: u64, i: usize| (w >> i) & 1;
        let n = trace.len() as f64;
        let mut means = vec![0.0f64; width];
        for &w in trace {
            for (i, m) in means.iter_mut().enumerate() {
                *m += bit(w, i) as f64;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut corr = vec![vec![0.0f64; width]; width];
        for i in 0..width {
            for j in i + 1..width {
                let mut cov = 0.0;
                for &w in trace {
                    cov += (bit(w, i) as f64 - means[i]) * (bit(w, j) as f64 - means[j]);
                }
                cov /= n;
                let si = (means[i] * (1.0 - means[i])).sqrt();
                let sj = (means[j] * (1.0 - means[j])).sqrt();
                let c = if si * sj > 1e-9 { (cov / (si * sj)).abs() } else { 0.0 };
                corr[i][j] = c;
                corr[j][i] = c;
            }
        }
        // Greedy clustering: repeatedly seed with the most correlated free
        // pair, grow to max_cluster by best average correlation.
        let mut assigned = vec![false; width];
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        loop {
            let mut best: Option<(f64, usize, usize)> = None;
            for i in 0..width {
                for j in i + 1..width {
                    if assigned[i] || assigned[j] {
                        continue;
                    }
                    if best.is_none_or(|(c, _, _)| corr[i][j] > c) {
                        best = Some((corr[i][j], i, j));
                    }
                }
            }
            let Some((_, i, j)) = best else { break };
            let mut cluster = vec![i, j];
            assigned[i] = true;
            assigned[j] = true;
            while cluster.len() < max_cluster {
                let cand = (0..width).filter(|&k| !assigned[k]).max_by(|&a, &b| {
                    let ca: f64 = cluster.iter().map(|&c| corr[a][c]).sum();
                    let cb: f64 = cluster.iter().map(|&c| corr[b][c]).sum();
                    ca.partial_cmp(&cb).expect("finite")
                });
                match cand {
                    Some(k) => {
                        assigned[k] = true;
                        cluster.push(k);
                    }
                    None => break,
                }
            }
            cluster.sort_unstable();
            clusters.push(cluster);
        }
        for i in 0..width {
            if !assigned[i] {
                clusters.push(vec![i]);
            }
        }
        // Per-cluster greedy re-encoding from the transition-frequency
        // graph.
        let mut forward = Vec::with_capacity(clusters.len());
        let mut inverse = Vec::with_capacity(clusters.len());
        for cluster in &clusters {
            let k = cluster.len();
            let size = 1usize << k;
            let extract = |w: u64| -> u64 {
                cluster
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (pos, &line)| acc | (((w >> line) & 1) << pos))
            };
            // Transition frequencies between cluster values.
            let mut freq: HashMap<(u64, u64), u64> = HashMap::new();
            let mut occur: HashMap<u64, u64> = HashMap::new();
            let mut prev: Option<u64> = None;
            for &w in trace {
                let v = extract(w);
                *occur.entry(v).or_default() += 1;
                if let Some(p) = prev {
                    if p != v {
                        let key = if p < v { (p, v) } else { (v, p) };
                        *freq.entry(key).or_default() += 1;
                    }
                }
                prev = Some(v);
            }
            // Greedy assignment: values by descending occurrence; each
            // takes the free code minimizing weighted Hamming to
            // already-placed neighbours.
            let mut values: Vec<u64> = occur.keys().copied().collect();
            // Tie-break equal occurrence counts by value: the map's
            // iteration order is seeded per process and must not leak
            // into the code assignment.
            values.sort_by_key(|&v| (std::cmp::Reverse(occur[&v]), v));
            let mut fwd = vec![u64::MAX; size];
            let mut used = vec![false; size];
            let mut placed: Vec<(u64, u64)> = Vec::new(); // (value, code)
            for &v in &values {
                let mut best_code = 0u64;
                let mut best_cost = f64::INFINITY;
                for code in 0..size as u64 {
                    if used[code as usize] {
                        continue;
                    }
                    let mut cost = 0.0;
                    for &(pv, pc) in &placed {
                        let key = if pv < v { (pv, v) } else { (v, pv) };
                        if let Some(&f) = freq.get(&key) {
                            cost += f as f64 * (pc ^ code).count_ones() as f64;
                        }
                    }
                    if cost < best_cost {
                        best_cost = cost;
                        best_code = code;
                    }
                }
                fwd[v as usize] = best_code;
                used[best_code as usize] = true;
                placed.push((v, best_code));
            }
            // Unseen values: fill with remaining codes (identity-seeking).
            for v in 0..size {
                if fwd[v] == u64::MAX {
                    let code = if !used[v] {
                        v as u64
                    } else {
                        (0..size as u64).find(|&c| !used[c as usize]).expect("bijection")
                    };
                    fwd[v] = code;
                    used[code as usize] = true;
                }
            }
            let mut inv = vec![0u64; size];
            for (v, &c) in fwd.iter().enumerate() {
                inv[c as usize] = v as u64;
            }
            forward.push(fwd);
            inverse.push(inv);
        }
        BeachCode { width, clusters, forward, inverse }
    }

    fn map(&self, word: u64, tables: &[Vec<u64>]) -> u64 {
        let mut out = 0u64;
        for (ci, cluster) in self.clusters.iter().enumerate() {
            let v = cluster
                .iter()
                .enumerate()
                .fold(0u64, |acc, (pos, &line)| acc | (((word >> line) & 1) << pos));
            let coded = tables[ci][v as usize];
            for (pos, &line) in cluster.iter().enumerate() {
                out |= ((coded >> pos) & 1) << line;
            }
        }
        out
    }
}

impl BusCodec for BeachCode {
    fn line_count(&self) -> usize {
        self.width
    }

    fn encode(&mut self, word: u64) -> u64 {
        self.map(word & mask(self.width), &self.forward)
    }

    fn decode(&mut self, lines: u64) -> u64 {
        self.map(lines & mask(self.width), &self.inverse)
    }

    fn name(&self) -> &'static str {
        "beach"
    }
}

// ---------------------------------------------------------------------

/// T0 combined with Bus-Invert (the survey's "several variants of the T0
/// code... may incorporate the Bus-Invert principle"): in-sequence words
/// freeze the bus behind an INC line; out-of-sequence words are
/// transmitted with Bus-Invert polarity selection. Two redundant lines.
#[derive(Debug, Clone)]
pub struct T0BusInvert {
    width: usize,
    prev_word: Option<u64>,
    prev_lines: u64,
}

impl T0BusInvert {
    /// A T0+BI codec over `width` data lines (+INC, +INV).
    pub fn new(width: usize) -> Self {
        T0BusInvert { width, prev_word: None, prev_lines: 0 }
    }
}

impl BusCodec for T0BusInvert {
    fn line_count(&self) -> usize {
        self.width + 2
    }

    fn encode(&mut self, word: u64) -> u64 {
        let m = mask(self.width);
        let inc_bit = 1u64 << self.width;
        let inv_bit = 1u64 << (self.width + 1);
        let word = word & m;
        let lines = match self.prev_word {
            Some(p) if word == (p + 1) & m => {
                // Freeze data and INV, raise INC.
                (self.prev_lines & (m | inv_bit)) | inc_bit
            }
            _ => {
                let prev_data = self.prev_lines & m;
                let toggles = (word ^ prev_data).count_ones() as usize;
                if 2 * toggles > self.width {
                    (!word & m) | inv_bit
                } else {
                    word
                }
            }
        };
        self.prev_word = Some(word);
        self.prev_lines = lines;
        lines
    }

    fn decode(&mut self, lines: u64) -> u64 {
        let m = mask(self.width);
        let inc = lines >> self.width & 1 == 1;
        let inv = lines >> (self.width + 1) & 1 == 1;
        let word = if inc {
            (self.prev_word.unwrap_or(0) + 1) & m
        } else if inv {
            !lines & m
        } else {
            lines & m
        };
        self.prev_word = Some(word);
        word
    }

    fn name(&self) -> &'static str {
        "t0+bus-invert"
    }
}

// ---------------------------------------------------------------------

/// Synthetic address-trace generators for the §III-G experiments.
pub mod traces {
    use hlpower_rng::Rng;

    /// Purely sequential addresses.
    pub fn sequential(start: u64, len: usize) -> Vec<u64> {
        (0..len as u64).map(|i| start + i).collect()
    }

    /// Uniform random words (data-bus regime).
    pub fn random(seed: u64, width: usize, len: usize) -> Vec<u64> {
        let mut rng = Rng::seed_from_u64(seed);
        let m = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
        (0..len).map(|_| rng.next_u64() & m).collect()
    }

    /// Interleaved sequential accesses to `arrays` distinct arrays — the
    /// working-zone regime (in-sequence per array, but the bus sees the
    /// interleave).
    pub fn interleaved_arrays(seed: u64, arrays: usize, len: usize) -> Vec<u64> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut cursors: Vec<u64> = (0..arrays as u64).map(|a| a * 0x10000).collect();
        (0..len)
            .map(|_| {
                let a = rng.gen_range(0..arrays);
                let addr = cursors[a];
                cursors[a] += 1;
                addr
            })
            .collect()
    }

    /// An embedded-software-style trace: a few hot loops (strongly
    /// block-correlated addresses) with occasional far jumps — the Beach
    /// regime.
    pub fn embedded(seed: u64, len: usize) -> Vec<u64> {
        let mut rng = Rng::seed_from_u64(seed);
        let loops: Vec<(u64, u64)> = vec![(0x4000, 12), (0x8A00, 20), (0x1200, 6), (0xC340, 30)];
        let mut out = Vec::with_capacity(len);
        let mut li = 0usize;
        let mut pos = 0u64;
        for _ in 0..len {
            let (base, span) = loops[li];
            out.push(base + pos);
            pos += 1;
            if pos >= span {
                pos = 0;
                if rng.gen_bool(0.3) {
                    li = rng.gen_range(0..loops.len());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_round_trip(mut enc: Box<dyn BusCodec>, mut dec: Box<dyn BusCodec>, words: &[u64]) {
        for &w in words {
            let lines = enc.encode(w);
            assert_eq!(dec.decode(lines), w, "{} failed on {w:#x}", enc.name());
        }
    }

    #[test]
    fn all_codecs_round_trip_random_words() {
        let words = traces::random(1, 16, 2000);
        check_round_trip(Box::new(Unencoded::new(16)), Box::new(Unencoded::new(16)), &words);
        check_round_trip(Box::new(BusInvert::new(16)), Box::new(BusInvert::new(16)), &words);
        check_round_trip(Box::new(GrayCode::new(16)), Box::new(GrayCode::new(16)), &words);
        check_round_trip(Box::new(T0Code::new(16)), Box::new(T0Code::new(16)), &words);
        check_round_trip(
            Box::new(WorkingZone::new(16, 4, 8)),
            Box::new(WorkingZone::new(16, 4, 8)),
            &words,
        );
        let beach = BeachCode::train(16, &words, 8);
        check_round_trip(Box::new(beach.clone()), Box::new(beach), &words);
    }

    #[test]
    fn bus_invert_bounds_transitions() {
        // Worst case: alternating all-zeros / all-ones. Unencoded: 16
        // transitions per word; Bus-Invert: at most N/2 + 1.
        let words: Vec<u64> = (0..100).map(|i| if i % 2 == 0 { 0 } else { 0xFFFF }).collect();
        let t_plain = transitions_per_word(
            Box::new(Unencoded::new(16)),
            Box::new(Unencoded::new(16)),
            &words,
        );
        let t_bi = transitions_per_word(
            Box::new(BusInvert::new(16)),
            Box::new(BusInvert::new(16)),
            &words,
        );
        assert_eq!(t_plain, 16.0);
        assert!(t_bi <= 9.0, "t_bi = {t_bi}");
    }

    #[test]
    fn gray_gives_one_transition_on_sequential() {
        let words = traces::sequential(1000, 500);
        let t =
            transitions_per_word(Box::new(GrayCode::new(16)), Box::new(GrayCode::new(16)), &words);
        assert!((t - 1.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn t0_gives_zero_transitions_on_sequential() {
        let words = traces::sequential(42, 500);
        let t = transitions_per_word(Box::new(T0Code::new(16)), Box::new(T0Code::new(16)), &words);
        // First word drives the bus once; afterwards INC stays high and
        // data lines freeze: asymptotically zero.
        assert!(t < 0.02, "t = {t}");
    }

    #[test]
    fn working_zone_beats_gray_on_interleaved_arrays() {
        let words = traces::interleaved_arrays(3, 3, 3000);
        let t_gray =
            transitions_per_word(Box::new(GrayCode::new(20)), Box::new(GrayCode::new(20)), &words);
        let t_t0 =
            transitions_per_word(Box::new(T0Code::new(20)), Box::new(T0Code::new(20)), &words);
        let t_wz = transitions_per_word(
            Box::new(WorkingZone::new(20, 4, 10)),
            Box::new(WorkingZone::new(20, 4, 10)),
            &words,
        );
        assert!(t_wz < t_gray, "wz {t_wz} vs gray {t_gray}");
        assert!(t_wz < t_t0, "wz {t_wz} vs t0 {t_t0}");
    }

    #[test]
    fn beach_beats_unencoded_on_embedded_trace() {
        let train = traces::embedded(5, 4000);
        let test = traces::embedded(6, 4000);
        let beach = BeachCode::train(16, &train, 8);
        let t_plain =
            transitions_per_word(Box::new(Unencoded::new(16)), Box::new(Unencoded::new(16)), &test);
        let t_beach = transitions_per_word(Box::new(beach.clone()), Box::new(beach), &test);
        assert!(t_beach < 0.9 * t_plain, "beach {t_beach} vs unencoded {t_plain}");
    }

    #[test]
    fn bus_invert_never_worse_than_half_plus_one() {
        let words = traces::random(9, 16, 3000);
        let mut enc = BusInvert::new(16);
        let mut prev = enc.encode(words[0]);
        for &w in &words[1..] {
            let lines = enc.encode(w);
            assert!((prev ^ lines).count_ones() <= 9, "more than N/2 + 1 transitions");
            prev = lines;
        }
    }

    #[test]
    fn t0bi_round_trips_and_combines_strengths() {
        // Round trip on random words.
        let words = traces::random(4, 16, 1500);
        check_round_trip(Box::new(T0BusInvert::new(16)), Box::new(T0BusInvert::new(16)), &words);
        // Sequential: behaves like T0 (near zero transitions).
        let seq = traces::sequential(10, 500);
        let t = transitions_per_word(
            Box::new(T0BusInvert::new(16)),
            Box::new(T0BusInvert::new(16)),
            &seq,
        );
        assert!(t < 0.02, "t = {t}");
        // Random: behaves like Bus-Invert (bounded below plain).
        let t_rand = transitions_per_word(
            Box::new(T0BusInvert::new(16)),
            Box::new(T0BusInvert::new(16)),
            &words,
        );
        let t_plain = transitions_per_word(
            Box::new(Unencoded::new(16)),
            Box::new(Unencoded::new(16)),
            &words,
        );
        assert!(t_rand < t_plain, "{t_rand} vs {t_plain}");
    }

    #[test]
    fn gray_decode_is_inverse_for_wide_buses() {
        let mut g = GrayCode::new(32);
        for w in [0u64, 1, 0xFFFF_FFFF, 0x1234_5678, 0xDEAD_BEEF] {
            let e = g.encode(w);
            assert_eq!(g.decode(e), w);
        }
    }
}
