//! Low-power retiming (survey §III-J, Fig. 9, reference 111).
//!
//! Registers filter glitches: a register's output makes at most one
//! transition per cycle regardless of how much its input glitched. The
//! Monteiro heuristic therefore places registers at the outputs of gates
//! with high glitch activity whose glitching propagates far. This module
//! implements a legal pipelining cut (every input→output path is
//! registered exactly once) parameterized by an arrival-time threshold,
//! profiles glitches with the event-driven simulator, and searches the
//! threshold for minimum total power.

use std::collections::HashMap;

use hlpower_netlist::{
    timed_activity, IncrementalTimedSim, Library, Netlist, NetlistEditor, NetlistError, NodeId,
    NodeKind, TimedConeResim, TimedKernel, TimedResimScratch,
};
use hlpower_obs::metrics as obs;

/// A pipelined version of a combinational netlist: registers inserted on
/// every edge crossing the arrival-time threshold, so all outputs are
/// delayed by exactly one cycle.
///
/// # Errors
///
/// Returns a netlist error for cyclic inputs.
pub fn pipeline_cut(
    netlist: &Netlist,
    lib: &Library,
    threshold_ps: f64,
) -> Result<Netlist, NetlistError> {
    let arrivals = netlist.arrival_times_ps(lib)?;
    let mut out = Netlist::new();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    // Registered view of a node, created lazily (shared among consumers).
    let mut registered: HashMap<NodeId, NodeId> = HashMap::new();

    let mut reg_of = |src: NodeId, mapped: NodeId, out: &mut Netlist| -> NodeId {
        *registered.entry(src).or_insert_with(|| out.dff(mapped, false))
    };

    for id in netlist.node_ids() {
        let new_id = match netlist.kind(id) {
            NodeKind::Input => out.input(netlist.name(id).unwrap_or("in").to_string()),
            NodeKind::Const(c) => out.constant(*c),
            NodeKind::Dff { .. } => {
                // Only combinational circuits are supported: treat any
                // existing flip-flop as opaque (re-register below).
                let d = match netlist.kind(id) {
                    NodeKind::Dff { d, .. } => *d,
                    _ => unreachable!(),
                };
                let md = map[&d];
                out.dff(md, false)
            }
            NodeKind::Gate { kind, inputs } => {
                let mut new_inputs = Vec::with_capacity(inputs.len());
                for &src in inputs {
                    let mapped = map[&src];
                    // Cut the edge if it crosses the threshold.
                    let a_src = arrivals[src.index()];
                    let a_dst = arrivals[id.index()];
                    if a_src < threshold_ps && a_dst >= threshold_ps {
                        new_inputs.push(reg_of(src, mapped, &mut out));
                    } else {
                        new_inputs.push(mapped);
                    }
                }
                out.gate(*kind, new_inputs).expect("same arity as source gate")
            }
        };
        map.insert(id, new_id);
    }
    for (name, o) in netlist.outputs() {
        let mapped = map[o];
        // Outputs below the threshold never crossed a register: register
        // them at the boundary so every path is cut exactly once.
        let a = arrivals[o.index()];
        let final_node = if a < threshold_ps { reg_of(*o, mapped, &mut out) } else { mapped };
        out.set_output(name.clone(), final_node);
    }
    Ok(out)
}

/// Per-node glitch counts under a stream (the selection signal of the
/// Monteiro heuristic).
///
/// # Errors
///
/// Returns a netlist error for cyclic circuits.
pub fn glitch_profile(
    netlist: &Netlist,
    lib: &Library,
    stream: &[Vec<bool>],
) -> Result<Vec<u64>, NetlistError> {
    glitch_profile_kernel(netlist, lib, stream, TimedKernel::default())
}

/// [`glitch_profile`] on an explicit timed kernel (both kernels give
/// bit-identical profiles).
///
/// # Errors
///
/// As [`glitch_profile`].
pub fn glitch_profile_kernel(
    netlist: &Netlist,
    lib: &Library,
    stream: &[Vec<bool>],
    kernel: TimedKernel,
) -> Result<Vec<u64>, NetlistError> {
    let timed = timed_activity(netlist, lib, stream, kernel)?;
    netlist.node_ids().map(|id| timed.node_glitches(id)).collect()
}

/// Outcome of the retiming search.
#[derive(Debug, Clone, PartialEq)]
pub struct RetimeOutcome {
    /// Power of the unpipelined circuit (with output registers only), µW.
    pub baseline_uw: f64,
    /// Power of the best cut found, µW.
    pub best_uw: f64,
    /// The chosen arrival-time threshold, ps.
    pub best_threshold_ps: f64,
    /// Power at every probed threshold (threshold, µW).
    pub sweep: Vec<(f64, f64)>,
    /// Glitch fraction of the baseline.
    pub baseline_glitch_fraction: f64,
}

impl RetimeOutcome {
    /// Fractional power reduction of the best cut vs the baseline.
    pub fn saving(&self) -> f64 {
        1.0 - self.best_uw / self.baseline_uw.max(1e-12)
    }
}

/// Searches arrival-time thresholds for the minimum-power pipeline cut
/// (the registers-at-glitchy-outputs heuristic realized as a sweep).
///
/// The baseline is the same circuit cut at the *output* boundary (every
/// path registered once at the end), so all compared designs have equal
/// latency and register discipline; differences come from where the
/// registers sit — exactly Fig. 9's point.
///
/// # Errors
///
/// Returns a netlist error for cyclic circuits.
pub fn low_power_retime(
    netlist: &Netlist,
    lib: &Library,
    stream: &[Vec<bool>],
    probes: usize,
) -> Result<RetimeOutcome, NetlistError> {
    low_power_retime_kernel(netlist, lib, stream, probes, TimedKernel::default())
}

/// Applies the threshold cut *in place* on `cut` (a clone of `base`):
/// every gate edge crossing `threshold_ps` is rewired through a register
/// and every output arriving below the threshold is rebound to a boundary
/// register, one shared register per source node — the same discipline as
/// [`pipeline_cut`], expressed as a [`NetlistEditor`] mutation so the
/// original node ids survive and the candidate can be scored by
/// dirty-cone timed replay. Returns the changed-gate set for
/// [`IncrementalTimedSim::resim_into`].
fn apply_cut_in_place(
    base: &Netlist,
    arrivals: &[f64],
    threshold_ps: f64,
    cut: &mut Netlist,
) -> Result<Vec<NodeId>, NetlistError> {
    let mut ed = NetlistEditor::begin(cut);
    let mut registered: HashMap<NodeId, NodeId> = HashMap::new();
    let mut reg_of = |src: NodeId, ed: &mut NetlistEditor| -> Result<NodeId, NetlistError> {
        if let Some(&r) = registered.get(&src) {
            return Ok(r);
        }
        let r = ed.insert_dff(src, false)?;
        registered.insert(src, r);
        Ok(r)
    };
    for id in base.node_ids() {
        let NodeKind::Gate { inputs, .. } = base.kind(id) else { continue };
        let a_dst = arrivals[id.index()];
        for (pin, &src) in inputs.iter().enumerate() {
            if arrivals[src.index()] < threshold_ps && a_dst >= threshold_ps {
                let r = reg_of(src, &mut ed)?;
                ed.rewire_input(id, pin, r)?;
            }
        }
    }
    for (idx, (_, o)) in base.outputs().iter().enumerate() {
        if arrivals[o.index()] < threshold_ps {
            let r = reg_of(*o, &mut ed)?;
            ed.rebind_output(idx, r)?;
        }
    }
    let changed = ed.changed().to_vec();
    ed.finish();
    Ok(changed)
}

/// [`low_power_retime`] on an explicit timed kernel. Retained for API
/// compatibility: the sweep is now scored by dirty-cone replay against a
/// single event-driven [`IncrementalTimedSim`] recording, which is
/// bit-identical across kernels, so the choice no longer matters.
///
/// Each probed threshold is expressed as an in-place register-insertion
/// edit of the profiled circuit, and only the forward cone of the rewired
/// gates and appended registers is replayed — the baseline waveforms of
/// everything upstream are reused from the recording.
///
/// # Errors
///
/// As [`low_power_retime`].
pub fn low_power_retime_kernel(
    netlist: &Netlist,
    lib: &Library,
    stream: &[Vec<bool>],
    probes: usize,
    kernel: TimedKernel,
) -> Result<RetimeOutcome, NetlistError> {
    let _ = kernel;
    let max_arrival = netlist.critical_path_ps(lib)?;
    let arrivals = netlist.arrival_times_ps(lib)?;
    // Record the unregistered circuit once; every threshold candidate is
    // scored by replaying only its dirty cone against this recording.
    let inc = IncrementalTimedSim::record(netlist, lib, stream)?;
    let baseline_glitch_fraction = inc.activity().glitch_fraction()?;

    let mut scratch = TimedResimScratch::default();
    let mut resim = TimedConeResim::default();
    let score = |threshold: f64,
                 scratch: &mut TimedResimScratch,
                 resim: &mut TimedConeResim|
     -> Result<f64, NetlistError> {
        let mut cut = netlist.clone();
        let changed = apply_cut_in_place(netlist, &arrivals, threshold, &mut cut)?;
        inc.resim_into(&cut, &changed, scratch, resim)?;
        obs::OPT_CANDIDATES_EVALUATED.inc();
        obs::OPT_CONE_SIZE.record(resim.cone.len() as u64);
        obs::OPT_RESIM_WORDS.add(resim.words_replayed());
        Ok(resim.activity.power(&cut, lib).total_power_uw())
    };

    // Baseline: the cut above the critical path registers nothing
    // mid-cone; outputs get registered by the boundary rule only if below
    // threshold — which they all are, so this is the output-registered
    // baseline.
    let baseline_uw = score(max_arrival + 1.0, &mut scratch, &mut resim)?;
    let mut sweep = Vec::with_capacity(probes);
    let mut best = (max_arrival + 1.0, baseline_uw);
    for i in 1..=probes {
        let threshold = max_arrival * i as f64 / (probes + 1) as f64;
        let uw = score(threshold, &mut scratch, &mut resim)?;
        sweep.push((threshold, uw));
        if uw < best.1 {
            obs::OPT_CANDIDATES_ACCEPTED.inc();
            best = (threshold, uw);
        }
    }
    Ok(RetimeOutcome {
        baseline_uw,
        best_uw: best.1,
        best_threshold_ps: best.0,
        sweep,
        baseline_glitch_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_netlist::{gen, streams, words::to_bits, ZeroDelaySim};

    fn multiplier(width: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", width);
        let b = nl.input_bus("b", width);
        let p = gen::array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        nl
    }

    #[test]
    fn pipeline_cut_preserves_function_with_one_cycle_latency() {
        let nl = multiplier(4);
        let lib = Library::default();
        let cut = pipeline_cut(&nl, &lib, nl.critical_path_ps(&lib).unwrap() / 2.0).unwrap();
        assert!(!cut.dffs().is_empty(), "cut must insert registers");
        let mut ref_sim = ZeroDelaySim::new(&nl).unwrap();
        let mut cut_sim = ZeroDelaySim::new(&cut).unwrap();
        let vecs: Vec<Vec<bool>> = streams::random(1, 8).take(60).collect();
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for v in &vecs {
            expected.push(ref_sim.eval_combinational(v).unwrap());
            cut_sim.step(v).unwrap();
            got.push(cut_sim.output_values());
        }
        assert_eq!(&got[1..], &expected[..expected.len() - 1], "one-cycle pipeline");
    }

    #[test]
    fn every_path_cut_exactly_once() {
        // Register count sanity: with the all-paths-once discipline, a
        // second pipelining of the cut circuit is still functional; here
        // we just check the output is registered or downstream of the cut.
        let nl = multiplier(3);
        let lib = Library::default();
        for frac in [0.25, 0.5, 0.75] {
            let t = nl.critical_path_ps(&lib).unwrap() * frac;
            let cut = pipeline_cut(&nl, &lib, t).unwrap();
            let mut ref_sim = ZeroDelaySim::new(&nl).unwrap();
            let mut cut_sim = ZeroDelaySim::new(&cut).unwrap();
            for (i, x) in [(3u64, 5u64), (7, 7), (2, 6), (1, 1)].iter().enumerate() {
                let mut v = to_bits(x.0, 3);
                v.extend(to_bits(x.1, 3));
                let e = ref_sim.eval_combinational(&v).unwrap();
                cut_sim.step(&v).unwrap();
                if i > 0 {
                    // Output corresponds to the previous vector.
                    let _ = e;
                }
            }
            // Functional check against delayed reference.
            let vecs: Vec<Vec<bool>> = streams::random(9, 6).take(40).collect();
            let mut ref2 = ZeroDelaySim::new(&nl).unwrap();
            let mut cut2 = ZeroDelaySim::new(&cut).unwrap();
            let mut exp = Vec::new();
            let mut got = Vec::new();
            for v in &vecs {
                exp.push(ref2.eval_combinational(v).unwrap());
                cut2.step(v).unwrap();
                got.push(cut2.output_values());
            }
            assert_eq!(&got[1..], &exp[..exp.len() - 1], "frac {frac}");
        }
    }

    #[test]
    fn multiplier_glitches_heavily() {
        let nl = multiplier(6);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(2, 12).take(200).collect();
        let timed = timed_activity(&nl, &lib, &stream, TimedKernel::default()).unwrap();
        let gf = timed.glitch_fraction().unwrap();
        assert!(gf > 0.15, "glitch fraction {gf}");
    }

    #[test]
    fn retime_kernels_produce_identical_outcomes() {
        let nl = multiplier(4);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(11, 8).take(120).collect();
        let s = low_power_retime_kernel(&nl, &lib, &stream, 3, TimedKernel::Scalar).unwrap();
        let p = low_power_retime_kernel(&nl, &lib, &stream, 3, TimedKernel::Packed64).unwrap();
        assert_eq!(s, p);
        let sp = glitch_profile_kernel(&nl, &lib, &stream, TimedKernel::Scalar).unwrap();
        let pp = glitch_profile_kernel(&nl, &lib, &stream, TimedKernel::Packed64).unwrap();
        assert_eq!(sp, pp);
    }

    #[test]
    fn in_place_cut_is_functionally_the_pipeline_cut() {
        // The editor-expressed cut that the sweep scores must implement
        // the same one-cycle pipeline as the materializing pipeline_cut.
        let nl = multiplier(4);
        let lib = Library::default();
        let arrivals = nl.arrival_times_ps(&lib).unwrap();
        let max = nl.critical_path_ps(&lib).unwrap();
        for frac in [0.25, 0.5, 0.75, 1.5] {
            let t = max * frac;
            let rebuilt = pipeline_cut(&nl, &lib, t).unwrap();
            let mut inplace = nl.clone();
            apply_cut_in_place(&nl, &arrivals, t, &mut inplace).unwrap();
            let mut s1 = ZeroDelaySim::new(&rebuilt).unwrap();
            let mut s2 = ZeroDelaySim::new(&inplace).unwrap();
            for v in streams::random(7, 8).take(50) {
                s1.step(&v).unwrap();
                s2.step(&v).unwrap();
                assert_eq!(s1.output_values(), s2.output_values(), "frac {frac}");
            }
        }
    }

    #[test]
    fn incremental_sweep_matches_from_scratch_recording() {
        // Every µW the sweep reports must be bit-identical to recording
        // the same cut netlist from scratch.
        let nl = multiplier(4);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(5, 8).take(150).collect();
        let outcome = low_power_retime(&nl, &lib, &stream, 3).unwrap();
        let arrivals = nl.arrival_times_ps(&lib).unwrap();
        let check = |threshold: f64, uw: f64| {
            let mut cut = nl.clone();
            apply_cut_in_place(&nl, &arrivals, threshold, &mut cut).unwrap();
            let full = IncrementalTimedSim::record(&cut, &lib, &stream).unwrap();
            assert_eq!(
                uw.to_bits(),
                full.activity().power(&cut, &lib).total_power_uw().to_bits(),
                "threshold {threshold}"
            );
        };
        check(nl.critical_path_ps(&lib).unwrap() + 1.0, outcome.baseline_uw);
        for &(threshold, uw) in &outcome.sweep {
            check(threshold, uw);
        }
    }

    #[test]
    fn retiming_reduces_power_on_glitchy_circuit() {
        let nl = multiplier(5);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(3, 10).take(300).collect();
        let outcome = low_power_retime(&nl, &lib, &stream, 4).unwrap();
        assert!(
            outcome.saving() > 0.0,
            "mid-cone registers should beat output-only registers: {outcome:?}"
        );
        assert!(outcome.best_threshold_ps < nl.critical_path_ps(&lib).unwrap());
    }

    #[test]
    fn glitch_profile_nonzero_for_multiplier() {
        let nl = multiplier(4);
        let lib = Library::default();
        let stream: Vec<Vec<bool>> = streams::random(4, 8).take(150).collect();
        let profile = glitch_profile(&nl, &lib, &stream).unwrap();
        assert!(profile.iter().any(|&g| g > 0));
    }
}
