//! Power optimization techniques (survey §III).
//!
//! * [`buscode`] — low-power bus encoding (§III-G): Bus-Invert, Gray, T0,
//!   Working-Zone, and the trace-driven Beach code, all as reversible
//!   codecs with transition accounting.
//! * [`shutdown`] — system-level power management (§III-B): static
//!   timeout, Srivastava predictive (regression and threshold) and
//!   Hwang–Wu exponential-average policies over bursty event workloads.
//! * [`precompute`] — precomputation architectures (§III-I): predictor
//!   synthesis by universal quantification over BDDs, input-subset search,
//!   and simulated savings.
//! * [`clockgate`] — gated clocks for reactive FSMs (§III-I).
//! * [`guard`] — guarded evaluation via observability don't-cares
//!   (§III-I).
//! * [`retime`] — glitch-aware pipelining/retiming (§III-J).
//! * [`balance`] — buffer-insertion path balancing for glitch reduction
//!   (the §III-I/reference 109 companion transformation).
//! * [`rewrite`] — power-driven local gate rewriting (§III-I) scored by
//!   dirty-cone incremental re-simulation, with fused dead-gate cleanup
//!   and delta-maintained power attribution.

#![warn(missing_docs)]
// Matrix- and table-style numerics read more clearly with explicit index
// loops; silence clippy's iterator-style suggestion for them.
#![allow(clippy::needless_range_loop)]

pub mod balance;
pub mod buscode;
pub mod clockgate;
pub mod guard;
pub mod precompute;
pub mod retime;
pub mod rewrite;
pub mod shutdown;
