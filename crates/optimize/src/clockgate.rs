//! Gated clocks for reactive FSMs (survey §III-I, Fig. 7, refs
//! \[101\]–\[103\]).
//!
//! The activation function `Fa` asserts exactly when the machine will
//! change state (or produce a changed Moore-style output); on every other
//! cycle the state register's clock is stopped. Power accounting: the
//! clock tree and register energy is paid only on enabled cycles, while
//! the synthesized `Fa` logic is a new cost — the classic gated-clock
//! trade-off.

use hlpower_bdd::bdd_to_mux_netlist;
use hlpower_fsm::{synthesize, Encoding, FsmError, MarkovAnalysis, Stg};
use hlpower_netlist::{words::to_bits, IncrementalSim, Library, Netlist, NodeId};
use hlpower_obs::metrics as obs;

use hlpower_rng::Rng;

/// Outcome of a gated-clock transformation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockGateOutcome {
    /// Power of the plain synthesized machine, in µW.
    pub baseline_uw: f64,
    /// Power of the gated machine (clock charged only on enabled cycles,
    /// plus the activation-logic power), in µW.
    pub gated_uw: f64,
    /// Fraction of cycles the clock was stopped.
    pub gated_fraction: f64,
    /// Steady-state self-loop probability (the analytic upper bound on
    /// the gating opportunity).
    pub self_loop_probability: f64,
}

impl ClockGateOutcome {
    /// Fractional power saving.
    pub fn saving(&self) -> f64 {
        1.0 - self.gated_uw / self.baseline_uw.max(1e-12)
    }
}

/// Builds the activation-function netlist `Fa(inputs, state)` for an
/// encoded machine: `Fa = 1` iff the next state differs from the present
/// state. Returns the netlist and its output node; inputs are the
/// machine's inputs followed by the state lines.
///
/// # Errors
///
/// Returns [`FsmError`] variants for invalid machines/encodings.
pub fn activation_function(stg: &Stg, encoding: &Encoding) -> Result<(Netlist, NodeId), FsmError> {
    // Synthesize the machine once to reuse its BDD construction, then
    // derive Fa = OR over state bits of (next_i XOR present_i).
    let circuit = synthesize(stg, encoding)?;
    // Build BDDs of the synthesized circuit's next-state functions: they
    // are the D inputs of the state flip-flops.
    let nl = &circuit.netlist;
    let (mut m, map) = hlpower_bdd::build_node_bdds(nl).map_err(|_| FsmError::Empty)?;
    let in_bits = stg.input_bits();
    let mut fa = hlpower_bdd::BddRef::FALSE;
    for (i, &q) in circuit.state.iter().enumerate() {
        let d_node = match nl.kind(q) {
            hlpower_netlist::NodeKind::Dff { d, .. } => *d,
            _ => unreachable!("state lines are flip-flops"),
        };
        let next = map[&d_node];
        let present = m.var((in_bits + i) as u32);
        let x = m.xor(next, present);
        fa = m.or(fa, x);
    }
    // Map Fa into a standalone netlist over fresh inputs.
    let mut out = Netlist::new();
    let ins = out.input_bus("in", in_bits);
    let st = out.input_bus("state", circuit.state.len());
    let mut vars = ins;
    vars.extend(st);
    let node = bdd_to_mux_netlist(&m, fa, &vars, &mut out);
    out.set_output("fa", node);
    Ok((out, node))
}

/// Simulates the machine with and without clock gating under a random
/// input stream and compares power.
///
/// The gated machine's accounting: on cycles where `Fa = 0`, the state
/// register clock does not fire (no clock-tree or flip-flop energy) and
/// the next-state logic inputs are frozen; the activation logic itself is
/// simulated at gate level and charged in full.
///
/// # Errors
///
/// Returns [`FsmError`] variants for invalid machines/encodings.
pub fn evaluate(
    stg: &Stg,
    encoding: &Encoding,
    lib: &Library,
    cycles: usize,
    seed: u64,
    input_one_prob: f64,
) -> Result<ClockGateOutcome, FsmError> {
    let circuit = synthesize(stg, encoding)?;
    let (fa_netlist, fa_node) = activation_function(stg, encoding)?;
    // Input-symbol distribution matching the biased per-bit stream.
    let symbols = stg.symbol_count();
    let dist: Vec<f64> = (0..symbols as u64)
        .map(|w| {
            let ones = w.count_ones() as i32;
            let zeros = stg.input_bits() as i32 - ones;
            input_one_prob.powi(ones) * (1.0 - input_one_prob).powi(zeros)
        })
        .collect();
    let markov = MarkovAnalysis::with_input_distribution(stg, &dist);

    let mut rng = Rng::seed_from_u64(seed);
    let words: Vec<u64> = (0..cycles)
        .map(|_| {
            (0..stg.input_bits() as u64).map(|b| (rng.gen_bool(input_one_prob) as u64) << b).sum()
        })
        .collect();

    // Baseline power: one sequential recording of the machine, with its
    // per-cycle register-boundary snapshots (bit-identical to a scalar
    // simulation).
    let stream: Vec<Vec<bool>> = words.iter().map(|&w| to_bits(w, stg.input_bits())).collect();
    let inc = IncrementalSim::record(&circuit.netlist, &stream).map_err(|_| FsmError::Empty)?;
    obs::OPT_CANDIDATES_EVALUATED.inc();
    let base_report = inc.activity().power(&circuit.netlist, lib);
    let baseline_uw = base_report.total_power_uw();

    // Present state per cycle, read off the register snapshots: power-on
    // values at cycle 0, then the settled Q of the previous cycle.
    let init_of = |q: NodeId| match circuit.netlist.kind(q) {
        hlpower_netlist::NodeKind::Dff { init, .. } => *init,
        _ => unreachable!("state lines are flip-flops"),
    };
    let state_word_at = |c: usize| -> u64 {
        circuit
            .state
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let v = if c == 0 { init_of(q) } else { inc.value_at(q, c - 1) };
                (v as u64) << i
            })
            .sum()
    };

    // Activation logic power + gating decisions: one packed
    // combinational recording over the (input, present-state) stream.
    let fa_stream: Vec<Vec<bool>> = words
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let mut v = to_bits(w, stg.input_bits());
            v.extend(to_bits(state_word_at(i), circuit.state.len()));
            v
        })
        .collect();
    let fa_inc = IncrementalSim::record(&fa_netlist, &fa_stream).map_err(|_| FsmError::Empty)?;
    let gated_cycles = (0..words.len()).filter(|&i| !fa_inc.value_at(fa_node, i)).count() as u64;
    let fa_uw = fa_inc.activity().power(&fa_netlist, lib).total_power_uw();

    // Gated power: baseline minus the clock/register energy saved on
    // gated cycles, plus the activation logic. Clock power scales with
    // the fraction of enabled cycles.
    let gate_fraction = gated_cycles as f64 / cycles.max(1) as f64;
    let clock_saving = base_report.clock_power_uw * gate_fraction;
    let gated_uw = baseline_uw - clock_saving + fa_uw;
    if gated_uw < baseline_uw {
        obs::OPT_CANDIDATES_ACCEPTED.inc();
    }

    Ok(ClockGateOutcome {
        baseline_uw,
        gated_uw,
        gated_fraction: gate_fraction,
        self_loop_probability: markov.self_loop_probability(stg),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_fsm::generators;
    use hlpower_netlist::ZeroDelaySim;

    #[test]
    fn activation_function_detects_state_changes() {
        let stg = generators::sequence_detector();
        let enc = Encoding::binary(&stg);
        let (fa_nl, _) = activation_function(&stg, &enc).unwrap();
        let mut sim = ZeroDelaySim::new(&fa_nl).unwrap();
        // Exhaustively check Fa against the STG for every (state, input).
        for s in 0..stg.state_count() {
            for w in 0..stg.symbol_count() as u64 {
                let mut v = hlpower_netlist::words::to_bits(w, stg.input_bits());
                v.extend(hlpower_netlist::words::to_bits(enc.code(s), enc.bits()));
                let fa = sim.eval_combinational(&v).unwrap()[0];
                let changes = stg.next(s, w).unwrap() != s;
                assert_eq!(fa, changes, "state {s} input {w}");
            }
        }
    }

    #[test]
    fn reactive_controller_benefits_from_gating() {
        // A mostly-idle reactive controller with a one-hot (register-rich)
        // state encoding and rare requests: the regime gated clocks are
        // built for.
        let stg = generators::reactive_controller(8);
        let enc = Encoding::one_hot(&stg);
        let lib = Library::default();
        let outcome = evaluate(&stg, &enc, &lib, 4000, 1, 0.05).unwrap();
        assert!(outcome.gated_fraction > 0.5, "{outcome:?}");
        assert!(outcome.saving() > 0.05, "gating should save power: {outcome:?}");
    }

    #[test]
    fn gated_fraction_tracks_self_loop_probability() {
        let stg = generators::reactive_controller(4);
        let enc = Encoding::binary(&stg);
        let lib = Library::default();
        let outcome = evaluate(&stg, &enc, &lib, 6000, 2, 0.1).unwrap();
        assert!(
            (outcome.gated_fraction - outcome.self_loop_probability).abs() < 0.08,
            "{outcome:?}"
        );
    }

    #[test]
    fn incremental_evaluate_matches_the_scalar_path_bit_for_bit() {
        // The recording-based evaluate must reproduce the historical
        // scalar two-simulator accounting exactly.
        let stg = generators::reactive_controller(4);
        let enc = Encoding::one_hot(&stg);
        let lib = Library::default();
        let (cycles, seed, p) = (1500usize, 7u64, 0.1f64);
        let outcome = evaluate(&stg, &enc, &lib, cycles, seed, p).unwrap();

        // Reference: the pre-incremental implementation, verbatim.
        let circuit = synthesize(&stg, &enc).unwrap();
        let (fa_netlist, _) = activation_function(&stg, &enc).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        let words: Vec<u64> = (0..cycles)
            .map(|_| (0..stg.input_bits() as u64).map(|b| (rng.gen_bool(p) as u64) << b).sum())
            .collect();
        let mut sim = ZeroDelaySim::new(&circuit.netlist).unwrap();
        let mut fa_sim = ZeroDelaySim::new(&fa_netlist).unwrap();
        let mut gated_cycles = 0u64;
        let mut state_words: Vec<u64> = Vec::with_capacity(cycles);
        for &w in &words {
            let st: u64 =
                circuit.state.iter().enumerate().map(|(i, &q)| (sim.value(q) as u64) << i).sum();
            state_words.push(st);
            sim.step(&to_bits(w, stg.input_bits())).unwrap();
        }
        let base_report = sim.take_activity().power(&circuit.netlist, &lib);
        let baseline_uw = base_report.total_power_uw();
        for (i, &w) in words.iter().enumerate() {
            let mut v = to_bits(w, stg.input_bits());
            v.extend(to_bits(state_words[i], circuit.state.len()));
            fa_sim.step(&v).unwrap();
            if !fa_sim.output_values()[0] {
                gated_cycles += 1;
            }
        }
        let fa_uw = fa_sim.take_activity().power(&fa_netlist, &lib).total_power_uw();
        let gate_fraction = gated_cycles as f64 / cycles.max(1) as f64;
        let gated_uw = baseline_uw - base_report.clock_power_uw * gate_fraction + fa_uw;

        assert_eq!(outcome.baseline_uw.to_bits(), baseline_uw.to_bits());
        assert_eq!(outcome.gated_uw.to_bits(), gated_uw.to_bits());
        assert_eq!(outcome.gated_fraction.to_bits(), gate_fraction.to_bits());
    }

    #[test]
    fn busy_machine_gains_little() {
        // A ring counter never self-loops: gating cannot help and the Fa
        // logic is pure overhead.
        let mut stg = Stg::new(1);
        for i in 0..4 {
            stg.add_state(format!("s{i}"));
        }
        for i in 0..4 {
            stg.set_transition(i, 0, (i + 1) % 4, 0);
            stg.set_transition(i, 1, (i + 1) % 4, 0);
        }
        let enc = Encoding::binary(&stg);
        let lib = Library::default();
        let outcome = evaluate(&stg, &enc, &lib, 2000, 3, 0.5).unwrap();
        assert!(outcome.gated_fraction < 0.01);
        assert!(outcome.saving() <= 0.0, "no gating opportunity: {outcome:?}");
    }
}
