//! The workspace's shared JSON layer: one escape routine, one non-finite
//! float guard, one parser — used by every in-tree emitter and reader.
//!
//! Before this module existed the escape table was replicated in three
//! places (`obs::report`, `obs::trace`, `bench::report`) and the trace
//! parser silently mangled surrogate-pair `\u` escapes. Centralizing the
//! logic means:
//!
//! * **Escaping** ([`escape_into`]) handles `"`, `\`, and all control
//!   characters, so netlist names from escaped Verilog identifiers
//!   (which may legally contain quotes and backslashes) can flow through
//!   any JSON dump without corrupting it.
//! * **Non-finite floats** ([`write_f64`]) serialize as `null` — never as
//!   the invalid bare tokens `NaN` / `inf`.
//! * **Parsing** ([`parse`]) decodes surrogate pairs correctly
//!   (`"\ud83d\ude00"` → 😀) and rejects unpaired surrogates with a
//!   **located** error (byte offset plus 1-based line and column) instead
//!   of replacing them with U+FFFD.
//!
//! [`Value`] doubles as the build-side representation for the serve
//! crate's HTTP responses: finite floats print via `{:?}` (the shortest
//! decimal that round-trips), and the parser reads them back with
//! `str::parse::<f64>`, so a power estimate survives an emit→parse trip
//! **bit-identically** — the property the server's determinism contract
//! is tested against.

use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted JSON string, escaping `"`, `\`, and
/// every control character.
///
/// Non-ASCII text is passed through as raw UTF-8 (valid JSON; [`parse`]
/// reads it back unchanged).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// [`escape_into`] returning a fresh `String` (quotes included).
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Appends `x` to `out` as a JSON number — or `null` when `x` is NaN or
/// infinite, which bare JSON cannot represent.
///
/// Finite values print via `{:?}`: the shortest decimal that parses back
/// to the same bits, with a trailing `.0` kept on integral floats.
pub fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

/// A JSON value: insertion-ordered objects, exact integers, `f64` floats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer token with no fraction or exponent, kept exact.
    Int(i128),
    /// A floating-point number; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; pairs keep insertion order (no sorting, no dedup).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as `f64` ([`Value::Int`] converts; may round for
    /// magnitudes beyond 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Numeric payload as `u64`: exact non-negative integers only
    /// (integral floats up to 2^53 accepted; anything lossy is `None`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Num(x) => {
                if x.is_finite() && *x >= 0.0 && x.fract() == 0.0 && *x <= 9007199254740992.0 {
                    Some(*x as u64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The items, if this is a [`Value::Arr`].
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation (the workspace's
    /// `results/*.json` house style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    /// Serializes on one line with no whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(x) => write_f64(out, *x),
            Value::Str(s) => escape_into(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item_break(out, indent, 1);
                    item.write(out, indent.map(|n| n + 1));
                }
                item_break(out, indent, 0);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item_break(out, indent, 1);
                    escape_into(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent.map(|n| n + 1));
                }
                item_break(out, indent, 0);
                out.push('}');
            }
        }
    }
}

fn item_break(out: &mut String, indent: Option<usize>, extra: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..(n + extra) {
            out.push_str("  ");
        }
    }
}

/// A parse failure with its location in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure (0-based).
    pub pos: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in bytes from the last newline).
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at line {} column {} (byte {})", self.msg, self.line, self.col, self.pos)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, anything
/// else after the value is an error).
///
/// Differences from the minimal readers this replaces: integer tokens
/// stay exact ([`Value::Int`]), `\u` surrogate pairs decode to the
/// correct scalar, and **unpaired surrogates are rejected with a located
/// [`JsonError`]** instead of being silently replaced.
///
/// # Errors
///
/// Returns the first syntax problem with its byte/line/column location.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        self.err_at(self.pos, msg)
    }

    fn err_at(&self, pos: usize, msg: &str) -> JsonError {
        let pos = pos.min(self.bytes.len());
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..pos] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError { pos, line, col, msg: msg.to_string() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        let start = self.pos;
        let mut integral = true;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' => {}
                b'+' | b'.' | b'e' | b'E' => integral = false,
                _ => break,
            }
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err_at(start, "malformed number"))?;
        if integral {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .ok()
            .filter(|x| x.is_finite())
            .map(Value::Num)
            .ok_or_else(|| self.err_at(start, "malformed number"))
    }

    /// Reads one `\uXXXX` unit (the caller has consumed the `\u`); leaves
    /// `pos` on the last hex digit, matching the single-escape advance.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("malformed \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let escape_start = self.pos;
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            match hi {
                                0xD800..=0xDBFF => {
                                    // High surrogate: a low surrogate must
                                    // follow as `\uXXXX`.
                                    if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                        return Err(self.err_at(
                                            escape_start,
                                            "unpaired high surrogate in \\u escape",
                                        ));
                                    }
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(self.err_at(
                                            escape_start,
                                            "high surrogate not followed by a low surrogate",
                                        ));
                                    }
                                    let scalar = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(
                                        char::from_u32(scalar)
                                            .expect("surrogate pair always decodes"),
                                    );
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err_at(
                                        escape_start,
                                        "unpaired low surrogate in \\u escape",
                                    ));
                                }
                                _ => {
                                    out.push(char::from_u32(hi).expect("non-surrogate BMP scalar"))
                                }
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(escaped("plain"), "\"plain\"");
        assert_eq!(escaped("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escaped("x\ny\t\u{1}"), "\"x\\ny\\t\\u0001\"");
        // Non-ASCII passes through as raw UTF-8.
        assert_eq!(escaped("π😀"), "\"π😀\"");
    }

    #[test]
    fn write_f64_guards_non_finite() {
        let mut out = String::new();
        write_f64(&mut out, 1.5);
        out.push(' ');
        write_f64(&mut out, f64::NAN);
        out.push(' ');
        write_f64(&mut out, f64::INFINITY);
        out.push(' ');
        write_f64(&mut out, f64::NEG_INFINITY);
        assert_eq!(out, "1.5 null null null");
    }

    #[test]
    fn surrogate_pairs_decode_correctly() {
        let v = parse("\"\\ud83d\\ude00\"").expect("valid pair");
        assert_eq!(v.as_str(), Some("😀"));
        // Mixed with surrounding text.
        let v = parse("\"a\\ud834\\udd1eb\"").expect("valid pair");
        assert_eq!(v.as_str(), Some("a\u{1D11E}b"));
    }

    #[test]
    fn unpaired_surrogates_are_located_errors() {
        let e = parse("\"x\\ud83d\"").expect_err("lone high surrogate");
        assert!(e.msg.contains("surrogate"), "{e}");
        assert_eq!((e.line, e.col), (1, 3), "{e}");
        let e = parse("\"\\ude00\"").expect_err("lone low surrogate");
        assert!(e.msg.contains("low surrogate"), "{e}");
        let e = parse("\"\\ud83d\\u0041\"").expect_err("high + non-low");
        assert!(e.msg.contains("not followed"), "{e}");
    }

    #[test]
    fn non_bmp_text_round_trips_raw_and_escaped() {
        let original = "span 😀 \u{1D11E}";
        let emitted = escaped(original);
        assert_eq!(parse(&emitted).expect("parses").as_str(), Some(original));
    }

    #[test]
    fn integers_stay_exact_and_floats_round_trip() {
        let big = u64::MAX - 3;
        let v = parse(&format!("[{big}, 0.1, -2.5e3, 12]")).expect("parses");
        let items = v.as_arr().expect("array");
        assert_eq!(items[0].as_u64(), Some(big));
        assert_eq!(items[1].as_f64(), Some(0.1));
        assert_eq!(items[2].as_f64(), Some(-2500.0));
        assert_eq!(items[2].as_u64(), None, "negative is not u64");
        assert_eq!(items[3], Value::Int(12));
        // Emit → parse is bit-identical for f64 payloads.
        let x = 123.456789012345678_f64;
        let emitted = Value::Num(x).pretty();
        assert_eq!(parse(&emitted).expect("parses").as_f64(), Some(x));
    }

    #[test]
    fn errors_carry_line_and_column() {
        let e = parse("{\n  \"a\": 1,\n  \"b\" 2\n}").expect_err("missing colon");
        assert_eq!(e.line, 3, "{e}");
        assert!(e.col > 1, "{e}");
        let shown = e.to_string();
        assert!(shown.contains("line 3"), "{shown}");
    }

    #[test]
    fn pretty_matches_house_style_and_compact_is_dense() {
        let v = Value::Obj(vec![
            ("name".to_string(), Value::Str("adder".to_string())),
            ("xs".to_string(), Value::Arr(vec![Value::Int(1), Value::Int(2)])),
            ("empty".to_string(), Value::Obj(Vec::new())),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"name\": \"adder\",\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": {}\n}"
        );
        assert_eq!(v.compact(), "{\"name\":\"adder\",\"xs\":[1,2],\"empty\":{}}");
        let back = parse(&v.pretty()).expect("parses");
        assert_eq!(back, v);
        assert_eq!(parse(&v.compact()).expect("parses"), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_documents() {
        assert!(parse("{} x").is_err());
        assert!(parse("{").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn getters_navigate_objects() {
        let v = parse("{\"ok\": true, \"n\": 7, \"s\": \"hi\"}").expect("parses");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert!(v.get("missing").is_none());
    }
}
