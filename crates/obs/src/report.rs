//! Metric snapshots: structured values plus human-readable and JSON
//! rendering.
//!
//! The JSON emitter reproduces the bench crate's hand-rolled format
//! (two-space indents, exact integers, `{:?}`-printed floats) so metric
//! dumps sit next to `results/*.json` and diff the same way. String
//! escaping and the non-finite float guard are shared with every other
//! emitter via [`crate::json`].

use std::fmt::Write as _;

use crate::hist::HistSummary;
use crate::json::{escape_into as write_json_str, write_f64 as write_json_f64};

/// One metric value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An event count.
    Count(u64),
    /// Accumulated wall-clock nanoseconds.
    Nanos(u64),
    /// A floating-point reading.
    Float(f64),
    /// A live level (goes up and down; see [`crate::Gauge`]).
    Gauge(u64),
    /// A recorded sample trajectory.
    Series(Vec<f64>),
    /// A log-linear histogram summary (see [`crate::hist`]).
    Hist(HistSummary),
}

/// A named group of metrics (one instrumented subsystem).
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section name (stable JSON key, e.g. `"monte_carlo"`).
    pub name: &'static str,
    /// `(metric name, value)` pairs in declaration order.
    pub entries: Vec<(&'static str, Value)>,
}

/// A point-in-time copy of every registered metric.
///
/// Snapshots are plain data: diff two with [`delta`](Self::delta), render
/// with [`render_text`](Self::render_text) or
/// [`to_json_pretty`](Self::to_json_pretty).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Schema tag written into the JSON dump (`"hlpower-obs/2"`).
    pub schema: &'static str,
    /// Numeric schema version written as `"schema_version"` in the JSON
    /// dump — machine-comparable (tools can check `>= 2` instead of
    /// parsing the tag string).
    pub schema_version: u32,
    /// All sections in rendering order.
    pub sections: Vec<Section>,
}

impl Snapshot {
    /// Looks up a metric by section and name.
    pub fn get(&self, section: &str, name: &str) -> Option<&Value> {
        self.sections
            .iter()
            .find(|s| s.name == section)?
            .entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// Looks up an integer metric ([`Value::Count`], [`Value::Nanos`],
    /// [`Value::Gauge`], or a [`Value::Hist`]'s recorded-value count).
    pub fn count(&self, section: &str, name: &str) -> Option<u64> {
        match self.get(section, name)? {
            Value::Count(n) | Value::Nanos(n) | Value::Gauge(n) => Some(*n),
            Value::Hist(h) => Some(h.count),
            _ => None,
        }
    }

    /// The snapshot minus a baseline, entry by entry.
    ///
    /// Counters subtract saturating; floats subtract; gauges, series,
    /// and histogram summaries keep this snapshot's value (levels,
    /// trajectories, and quantiles are not differenced).
    ///
    /// The result is the **union** of both snapshots: a section or entry
    /// present in only one side is kept with its full value rather than
    /// silently dropped — self-only entries pass through unchanged, and
    /// baseline-only sections/entries are appended (after this snapshot's
    /// entries, in baseline order) so a dump comparison never hides a
    /// metric that one build knows about and the other does not.
    pub fn delta(&self, baseline: &Snapshot) -> Snapshot {
        let mut sections: Vec<Section> = self
            .sections
            .iter()
            .map(|s| {
                let mut entries: Vec<(&'static str, Value)> = s
                    .entries
                    .iter()
                    .map(|(name, v)| {
                        let d = match (v, baseline.get(s.name, name)) {
                            (Value::Count(n), Some(Value::Count(b))) => {
                                Value::Count(n.saturating_sub(*b))
                            }
                            (Value::Nanos(n), Some(Value::Nanos(b))) => {
                                Value::Nanos(n.saturating_sub(*b))
                            }
                            (Value::Float(x), Some(Value::Float(b))) => Value::Float(x - b),
                            _ => v.clone(),
                        };
                        (*name, d)
                    })
                    .collect();
                // Baseline-only entries of a shared section: keep whole.
                if let Some(base) = baseline.sections.iter().find(|b| b.name == s.name) {
                    for (name, v) in &base.entries {
                        if !s.entries.iter().any(|(n, _)| n == name) {
                            entries.push((*name, v.clone()));
                        }
                    }
                }
                Section { name: s.name, entries }
            })
            .collect();
        // Baseline-only sections: keep whole.
        for base in &baseline.sections {
            if !self.sections.iter().any(|s| s.name == base.name) {
                sections.push(base.clone());
            }
        }
        Snapshot { schema: self.schema, schema_version: self.schema_version, sections }
    }

    /// Renders an aligned, human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for section in &self.sections {
            let _ = writeln!(out, "[{}]", section.name);
            for (name, value) in &section.entries {
                match value {
                    Value::Count(n) => {
                        let _ = writeln!(out, "  {name:<28} {n}");
                    }
                    Value::Nanos(n) => {
                        let _ = writeln!(out, "  {name:<28} {}", fmt_ns(*n));
                    }
                    Value::Float(x) => {
                        let _ = writeln!(out, "  {name:<28} {x:.6}");
                    }
                    Value::Gauge(n) => {
                        let _ = writeln!(out, "  {name:<28} {n} (gauge)");
                    }
                    Value::Series(xs) => {
                        let _ = writeln!(out, "  {name:<28} {} point(s)", xs.len());
                    }
                    Value::Hist(h) => {
                        let _ = writeln!(
                            out,
                            "  {name:<28} n={} min={} p50={} p90={} p99={} max={}",
                            h.count, h.min, h.p50, h.p90, h.p99, h.max
                        );
                    }
                }
            }
        }
        out
    }

    /// Serializes to the bench-style pretty JSON format.
    ///
    /// The top-level object carries a `"schema"` tag followed by one
    /// object per section; counters are exact integers, floats print via
    /// `{:?}` (shortest round-tripping decimal, non-finite → `null`).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": ");
        write_json_str(&mut out, self.schema);
        let _ = write!(out, ",\n  \"schema_version\": {}", self.schema_version);
        for section in &self.sections {
            out.push_str(",\n  ");
            write_json_str(&mut out, section.name);
            out.push_str(": {");
            for (i, (name, value)) in section.entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    ");
                write_json_str(&mut out, name);
                out.push_str(": ");
                match value {
                    Value::Count(n) | Value::Nanos(n) | Value::Gauge(n) => {
                        let _ = write!(out, "{n}");
                    }
                    Value::Float(x) => write_json_f64(&mut out, *x),
                    Value::Series(xs) => {
                        if xs.is_empty() {
                            out.push_str("[]");
                        } else {
                            out.push('[');
                            for (j, x) in xs.iter().enumerate() {
                                if j > 0 {
                                    out.push(',');
                                }
                                out.push_str("\n      ");
                                write_json_f64(&mut out, *x);
                            }
                            out.push_str("\n    ]");
                        }
                    }
                    Value::Hist(h) => {
                        let _ = write!(
                            out,
                            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                             \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                            h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                        );
                    }
                }
            }
            if section.entries.is_empty() {
                out.push('}');
            } else {
                out.push_str("\n  }");
            }
        }
        out.push_str("\n}");
        out
    }

    /// Renders the snapshot as Prometheus text exposition format 0.0.4
    /// (the `Content-Type: text/plain; version=0.0.4` format).
    ///
    /// Mapping per entry, metric names prefixed `hlpower_<section>_`:
    ///
    /// * [`Value::Count`] / [`Value::Nanos`] → `counter` named
    ///   `<name>_total` (nanosecond units are already in the entry
    ///   name, e.g. `total_ns_total`).
    /// * [`Value::Float`] / [`Value::Gauge`] → `gauge`.
    /// * [`Value::Hist`] → `histogram`: cumulative `_bucket{le="…"}`
    ///   lines built from the sparse summary buckets, a `+Inf` bucket,
    ///   then `_sum` and `_count`.
    /// * [`Value::Series`] trajectories have no Prometheus equivalent
    ///   and are skipped.
    ///
    /// Non-finite floats render as `+Inf` / `-Inf` / `NaN`, which the
    /// format allows.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for section in &self.sections {
            for (name, value) in &section.entries {
                let metric = format!("hlpower_{}_{}", section.name, name);
                match value {
                    Value::Count(n) | Value::Nanos(n) => {
                        let _ = writeln!(out, "# TYPE {metric}_total counter");
                        let _ = writeln!(out, "{metric}_total {n}");
                    }
                    Value::Gauge(n) => {
                        let _ = writeln!(out, "# TYPE {metric} gauge");
                        let _ = writeln!(out, "{metric} {n}");
                    }
                    Value::Float(x) => {
                        let _ = writeln!(out, "# TYPE {metric} gauge");
                        let _ = writeln!(out, "{metric} {}", fmt_prom_f64(*x));
                    }
                    Value::Hist(h) => {
                        let _ = writeln!(out, "# TYPE {metric} histogram");
                        let mut cum = 0u64;
                        for &(bound, n) in &h.buckets {
                            cum += n;
                            let _ = writeln!(out, "{metric}_bucket{{le=\"{bound}\"}} {cum}");
                        }
                        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", h.count);
                        let _ = writeln!(out, "{metric}_sum {}", h.sum);
                        let _ = writeln!(out, "{metric}_count {}", h.count);
                    }
                    Value::Series(_) => {}
                }
            }
        }
        out
    }
}

fn fmt_prom_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x:?}")
    }
}

/// One sample line from a Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Full metric name (e.g. `hlpower_serve_requests_total`).
    pub name: String,
    /// Label pairs in source order (e.g. `[("le", "1023")]`).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A parsed Prometheus text exposition: declared types plus samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromExposition {
    /// `# TYPE` declarations as `(metric name, type)` pairs.
    pub types: Vec<(String, String)>,
    /// All sample lines in document order.
    pub samples: Vec<PromSample>,
}

impl PromExposition {
    /// The declared type of `metric`, if any.
    pub fn type_of(&self, metric: &str) -> Option<&str> {
        self.types.iter().find(|(m, _)| m == metric).map(|(_, t)| t.as_str())
    }

    /// The first label-free sample named `name`, if any.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples.iter().find(|s| s.name == name && s.labels.is_empty()).map(|s| s.value)
    }
}

/// Parses Prometheus text exposition format 0.0.4 (the format
/// [`Snapshot::to_prometheus`] writes — the in-tree validator for CI
/// scrapes and tests).
///
/// Handles `# HELP`/`# TYPE` comment lines, labels with escaped values
/// (`\\`, `\"`, `\n`), and the special values `+Inf`, `-Inf`, `NaN`.
///
/// # Errors
///
/// Returns a `line N: …` description of the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<PromExposition, String> {
    let mut exp = PromExposition::default();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            if parts.next() == Some("TYPE") {
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
                let kind =
                    parts.next().ok_or_else(|| format!("line {lineno}: TYPE without a type"))?;
                exp.types.push((name.to_string(), kind.to_string()));
            }
            continue;
        }
        exp.samples.push(parse_sample_line(line, lineno)?);
    }
    Ok(exp)
}

fn parse_sample_line(line: &str, lineno: usize) -> Result<PromSample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| format!("line {lineno}: sample without a value"))?;
    let name = &line[..name_end];
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || "_:".contains(c)) {
        return Err(format!("line {lineno}: invalid metric name `{name}`"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(body) = rest.strip_prefix('{') {
        let close =
            body.find('}').ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
        labels = parse_labels(&body[..close], lineno)?;
        rest = &body[close + 1..];
    }
    let value_str = rest.split_whitespace().next().unwrap_or("");
    let value = match value_str {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        _ => value_str
            .parse::<f64>()
            .map_err(|_| format!("line {lineno}: bad sample value `{value_str}`"))?,
    };
    Ok(PromSample { name: name.to_string(), labels, value })
}

fn parse_labels(body: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Skip separators and whitespace; stop at end of the label body.
        while matches!(chars.peek(), Some(&c) if c == ',' || c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        while matches!(chars.peek(), Some(&c) if c != '=') {
            key.push(chars.next().unwrap());
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("line {lineno}: malformed label (expected `key=\"value\"`)"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => {
                        return Err(format!("line {lineno}: bad label escape `\\{other:?}`"));
                    }
                },
                Some(c) => value.push(c),
                None => return Err(format!("line {lineno}: unterminated label value")),
            }
        }
        labels.push((key.trim().to_string(), value));
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            schema: "hlpower-obs/2",
            schema_version: 2,
            sections: vec![
                Section {
                    name: "sim",
                    entries: vec![
                        ("steps", Value::Count(10)),
                        ("time", Value::Nanos(1_500)),
                        ("rate", Value::Float(2.5)),
                    ],
                },
                Section { name: "mc", entries: vec![("traj", Value::Series(vec![1.0, 0.5]))] },
            ],
        }
    }

    fn hist_summary() -> HistSummary {
        HistSummary {
            count: 4,
            sum: 201,
            min: 1,
            max: 100,
            p50: 10,
            p90: 90,
            p99: 100,
            buckets: vec![(1, 1), (10, 1), (95, 1), (103, 1)],
        }
    }

    #[test]
    fn lookup_and_count() {
        let s = sample();
        assert_eq!(s.count("sim", "steps"), Some(10));
        assert_eq!(s.count("sim", "time"), Some(1500));
        assert_eq!(s.count("sim", "rate"), None);
        assert_eq!(s.count("nope", "steps"), None);
        assert!(matches!(s.get("mc", "traj"), Some(Value::Series(v)) if v.len() == 2));
    }

    #[test]
    fn delta_subtracts_saturating() {
        let mut later = sample();
        later.sections[0].entries[0].1 = Value::Count(25);
        let d = later.delta(&sample());
        assert_eq!(d.count("sim", "steps"), Some(15));
        assert_eq!(d.count("sim", "time"), Some(0));
        // Series pass through.
        assert!(matches!(d.get("mc", "traj"), Some(Value::Series(v)) if v.len() == 2));
    }

    #[test]
    fn delta_keeps_one_sided_sections_and_entries() {
        let mut later = sample();
        // Entry only in `later` (new metric in the newer build).
        later.sections[0].entries.push(("fresh", Value::Count(7)));
        // Section only in `later`.
        later.sections.push(Section { name: "new_sec", entries: vec![("n", Value::Count(3))] });

        let mut base = sample();
        // Entry only in the baseline (metric removed since).
        base.sections[0].entries.push(("legacy", Value::Count(11)));
        // Section only in the baseline.
        base.sections.push(Section { name: "old_sec", entries: vec![("o", Value::Count(5))] });

        let d = later.delta(&base);
        // Both one-sided entries survive with their full value.
        assert_eq!(d.count("sim", "fresh"), Some(7));
        assert_eq!(d.count("sim", "legacy"), Some(11));
        // Both one-sided sections survive whole.
        assert_eq!(d.count("new_sec", "n"), Some(3));
        assert_eq!(d.count("old_sec", "o"), Some(5));
        // Shared entries still subtract.
        assert_eq!(d.count("sim", "steps"), Some(0));
    }

    #[test]
    fn hist_values_count_render_and_pass_through_delta() {
        let mut s = sample();
        s.sections[1].entries.push(("batch_ns", Value::Hist(hist_summary())));
        assert_eq!(s.count("mc", "batch_ns"), Some(4));
        let text = s.render_text();
        assert!(text.contains("p50=10"), "{text}");
        let json = s.to_json_pretty();
        assert!(
            json.contains(
                "\"batch_ns\": {\"count\": 4, \"sum\": 201, \"min\": 1, \"max\": 100, \
                 \"p50\": 10, \"p90\": 90, \"p99\": 100}"
            ),
            "{json}"
        );
        // Hist summaries are not differenced: delta keeps the later value.
        let d = s.delta(&sample());
        assert_eq!(d.get("mc", "batch_ns"), Some(&Value::Hist(hist_summary())));
    }

    #[test]
    fn text_render_names_every_metric() {
        let text = sample().render_text();
        assert!(text.contains("[sim]"));
        assert!(text.contains("steps"));
        assert!(text.contains("1.50 us"));
        assert!(text.contains("2 point(s)"));
    }

    #[test]
    fn json_matches_bench_style() {
        let json = sample().to_json_pretty();
        assert!(json.starts_with("{\n  \"schema\": \"hlpower-obs/2\",\n  \"schema_version\": 2"));
        assert!(json.contains("\"sim\": {\n    \"steps\": 10"));
        assert!(json.contains("\"rate\": 2.5"));
        assert!(json.contains("\"traj\": [\n      1.0,\n      0.5\n    ]"));
        assert!(json.ends_with("\n}"));
    }

    #[test]
    fn gauges_render_and_pass_through_delta() {
        let mut s = sample();
        s.sections[0].entries.push(("depth", Value::Gauge(5)));
        assert_eq!(s.count("sim", "depth"), Some(5));
        assert!(s.render_text().contains("5 (gauge)"));
        assert!(s.to_json_pretty().contains("\"depth\": 5"));
        let mut base = sample();
        base.sections[0].entries.push(("depth", Value::Gauge(9)));
        let d = s.delta(&base);
        assert_eq!(d.count("sim", "depth"), Some(5), "gauges are levels, not differenced");
    }

    #[test]
    fn prometheus_exposition_round_trips_and_matches_the_snapshot() {
        let mut s = sample();
        s.sections[0].entries.push(("depth", Value::Gauge(5)));
        s.sections[1].entries.push(("batch_ns", Value::Hist(hist_summary())));
        let text = s.to_prometheus();
        let exp = parse_prometheus(&text).expect("self-emitted exposition parses");

        // Counters: typed, `_total`-suffixed, exact values.
        assert_eq!(exp.type_of("hlpower_sim_steps_total"), Some("counter"));
        assert_eq!(exp.value("hlpower_sim_steps_total"), Some(10.0));
        assert_eq!(exp.value("hlpower_sim_time_total"), Some(1500.0));
        // Floats and gauges: plain gauges.
        assert_eq!(exp.type_of("hlpower_sim_rate"), Some("gauge"));
        assert_eq!(exp.value("hlpower_sim_rate"), Some(2.5));
        assert_eq!(exp.value("hlpower_sim_depth"), Some(5.0));
        // Series are skipped.
        assert!(!text.contains("traj"), "{text}");
        // Histogram: cumulative buckets, +Inf, sum, count.
        assert_eq!(exp.type_of("hlpower_mc_batch_ns"), Some("histogram"));
        let buckets: Vec<(&str, f64)> = exp
            .samples
            .iter()
            .filter(|smp| smp.name == "hlpower_mc_batch_ns_bucket")
            .map(|smp| (smp.label("le").unwrap(), smp.value))
            .collect();
        assert_eq!(
            buckets,
            vec![("1", 1.0), ("10", 2.0), ("95", 3.0), ("103", 4.0), ("+Inf", 4.0)],
            "cumulative le buckets from the sparse summary"
        );
        assert_eq!(exp.value("hlpower_mc_batch_ns_sum"), Some(201.0));
        assert_eq!(exp.value("hlpower_mc_batch_ns_count"), Some(4.0));
    }

    #[test]
    fn prometheus_parser_handles_labels_escapes_and_special_values() {
        let text = "# HELP x something\n# TYPE x gauge\n\
                    x{path=\"a\\\\b\\\"c\\nd\",code=\"200\"} +Inf\n\
                    y -Inf\nz NaN\nw 1e3\n";
        let exp = parse_prometheus(text).expect("parses");
        assert_eq!(exp.type_of("x"), Some("gauge"));
        let x = &exp.samples[0];
        assert_eq!(x.label("path"), Some("a\\b\"c\nd"));
        assert_eq!(x.label("code"), Some("200"));
        assert_eq!(x.value, f64::INFINITY);
        assert_eq!(exp.value("y"), Some(f64::NEG_INFINITY));
        assert!(exp.value("z").unwrap().is_nan());
        assert_eq!(exp.value("w"), Some(1000.0));
    }

    #[test]
    fn prometheus_parser_rejects_malformed_lines() {
        for (bad, why) in [
            ("metric", "no value"),
            ("metric{le=\"1\" 3", "unterminated labels"),
            ("metric{le=1} 3", "unquoted label value"),
            ("metric abc", "non-numeric value"),
            ("bad name 1", "space inside the name"),
        ] {
            let err = parse_prometheus(bad).expect_err(why);
            assert!(err.contains("line 1"), "{why}: {err}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let s = Snapshot {
            schema: "hlpower-obs/2",
            schema_version: 2,
            sections: vec![Section {
                name: "x",
                entries: vec![
                    ("nan", Value::Float(f64::NAN)),
                    ("inf", Value::Float(f64::INFINITY)),
                    ("traj", Value::Series(vec![1.0, f64::NEG_INFINITY])),
                ],
            }],
        };
        let json = s.to_json_pretty();
        assert!(json.contains("\"nan\": null"), "{json}");
        assert!(json.contains("\"inf\": null"), "{json}");
        // Non-finite series points null out too, and the document stays
        // valid JSON end to end.
        crate::json::parse(&json).expect("snapshot JSON parses");
        assert!(json.contains("null\n    ]"), "{json}");
    }
}
