//! Metric snapshots: structured values plus human-readable and JSON
//! rendering.
//!
//! The JSON emitter reproduces the bench crate's hand-rolled format
//! (two-space indents, exact integers, `{:?}`-printed floats) so metric
//! dumps sit next to `results/*.json` and diff the same way. String
//! escaping and the non-finite float guard are shared with every other
//! emitter via [`crate::json`].

use std::fmt::Write as _;

use crate::hist::HistSummary;
use crate::json::{escape_into as write_json_str, write_f64 as write_json_f64};

/// One metric value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An event count.
    Count(u64),
    /// Accumulated wall-clock nanoseconds.
    Nanos(u64),
    /// A floating-point reading.
    Float(f64),
    /// A recorded sample trajectory.
    Series(Vec<f64>),
    /// A log-linear histogram summary (see [`crate::hist`]).
    Hist(HistSummary),
}

/// A named group of metrics (one instrumented subsystem).
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section name (stable JSON key, e.g. `"monte_carlo"`).
    pub name: &'static str,
    /// `(metric name, value)` pairs in declaration order.
    pub entries: Vec<(&'static str, Value)>,
}

/// A point-in-time copy of every registered metric.
///
/// Snapshots are plain data: diff two with [`delta`](Self::delta), render
/// with [`render_text`](Self::render_text) or
/// [`to_json_pretty`](Self::to_json_pretty).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Schema tag written into the JSON dump (`"hlpower-obs/2"`).
    pub schema: &'static str,
    /// Numeric schema version written as `"schema_version"` in the JSON
    /// dump — machine-comparable (tools can check `>= 2` instead of
    /// parsing the tag string).
    pub schema_version: u32,
    /// All sections in rendering order.
    pub sections: Vec<Section>,
}

impl Snapshot {
    /// Looks up a metric by section and name.
    pub fn get(&self, section: &str, name: &str) -> Option<&Value> {
        self.sections
            .iter()
            .find(|s| s.name == section)?
            .entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// Looks up an integer metric ([`Value::Count`], [`Value::Nanos`], or
    /// a [`Value::Hist`]'s recorded-value count).
    pub fn count(&self, section: &str, name: &str) -> Option<u64> {
        match self.get(section, name)? {
            Value::Count(n) | Value::Nanos(n) => Some(*n),
            Value::Hist(h) => Some(h.count),
            _ => None,
        }
    }

    /// The snapshot minus a baseline, entry by entry.
    ///
    /// Integer values subtract saturating; floats subtract; series and
    /// histogram summaries keep this snapshot's value (trajectories and
    /// quantiles are not differenced).
    ///
    /// The result is the **union** of both snapshots: a section or entry
    /// present in only one side is kept with its full value rather than
    /// silently dropped — self-only entries pass through unchanged, and
    /// baseline-only sections/entries are appended (after this snapshot's
    /// entries, in baseline order) so a dump comparison never hides a
    /// metric that one build knows about and the other does not.
    pub fn delta(&self, baseline: &Snapshot) -> Snapshot {
        let mut sections: Vec<Section> = self
            .sections
            .iter()
            .map(|s| {
                let mut entries: Vec<(&'static str, Value)> = s
                    .entries
                    .iter()
                    .map(|(name, v)| {
                        let d = match (v, baseline.get(s.name, name)) {
                            (Value::Count(n), Some(Value::Count(b))) => {
                                Value::Count(n.saturating_sub(*b))
                            }
                            (Value::Nanos(n), Some(Value::Nanos(b))) => {
                                Value::Nanos(n.saturating_sub(*b))
                            }
                            (Value::Float(x), Some(Value::Float(b))) => Value::Float(x - b),
                            _ => v.clone(),
                        };
                        (*name, d)
                    })
                    .collect();
                // Baseline-only entries of a shared section: keep whole.
                if let Some(base) = baseline.sections.iter().find(|b| b.name == s.name) {
                    for (name, v) in &base.entries {
                        if !s.entries.iter().any(|(n, _)| n == name) {
                            entries.push((*name, v.clone()));
                        }
                    }
                }
                Section { name: s.name, entries }
            })
            .collect();
        // Baseline-only sections: keep whole.
        for base in &baseline.sections {
            if !self.sections.iter().any(|s| s.name == base.name) {
                sections.push(base.clone());
            }
        }
        Snapshot { schema: self.schema, schema_version: self.schema_version, sections }
    }

    /// Renders an aligned, human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for section in &self.sections {
            let _ = writeln!(out, "[{}]", section.name);
            for (name, value) in &section.entries {
                match value {
                    Value::Count(n) => {
                        let _ = writeln!(out, "  {name:<28} {n}");
                    }
                    Value::Nanos(n) => {
                        let _ = writeln!(out, "  {name:<28} {}", fmt_ns(*n));
                    }
                    Value::Float(x) => {
                        let _ = writeln!(out, "  {name:<28} {x:.6}");
                    }
                    Value::Series(xs) => {
                        let _ = writeln!(out, "  {name:<28} {} point(s)", xs.len());
                    }
                    Value::Hist(h) => {
                        let _ = writeln!(
                            out,
                            "  {name:<28} n={} min={} p50={} p90={} p99={} max={}",
                            h.count, h.min, h.p50, h.p90, h.p99, h.max
                        );
                    }
                }
            }
        }
        out
    }

    /// Serializes to the bench-style pretty JSON format.
    ///
    /// The top-level object carries a `"schema"` tag followed by one
    /// object per section; counters are exact integers, floats print via
    /// `{:?}` (shortest round-tripping decimal, non-finite → `null`).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": ");
        write_json_str(&mut out, self.schema);
        let _ = write!(out, ",\n  \"schema_version\": {}", self.schema_version);
        for section in &self.sections {
            out.push_str(",\n  ");
            write_json_str(&mut out, section.name);
            out.push_str(": {");
            for (i, (name, value)) in section.entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    ");
                write_json_str(&mut out, name);
                out.push_str(": ");
                match value {
                    Value::Count(n) | Value::Nanos(n) => {
                        let _ = write!(out, "{n}");
                    }
                    Value::Float(x) => write_json_f64(&mut out, *x),
                    Value::Series(xs) => {
                        if xs.is_empty() {
                            out.push_str("[]");
                        } else {
                            out.push('[');
                            for (j, x) in xs.iter().enumerate() {
                                if j > 0 {
                                    out.push(',');
                                }
                                out.push_str("\n      ");
                                write_json_f64(&mut out, *x);
                            }
                            out.push_str("\n    ]");
                        }
                    }
                    Value::Hist(h) => {
                        let _ = write!(
                            out,
                            "{{\"count\": {}, \"min\": {}, \"max\": {}, \
                             \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                            h.count, h.min, h.max, h.p50, h.p90, h.p99
                        );
                    }
                }
            }
            if section.entries.is_empty() {
                out.push('}');
            } else {
                out.push_str("\n  }");
            }
        }
        out.push_str("\n}");
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            schema: "hlpower-obs/2",
            schema_version: 2,
            sections: vec![
                Section {
                    name: "sim",
                    entries: vec![
                        ("steps", Value::Count(10)),
                        ("time", Value::Nanos(1_500)),
                        ("rate", Value::Float(2.5)),
                    ],
                },
                Section { name: "mc", entries: vec![("traj", Value::Series(vec![1.0, 0.5]))] },
            ],
        }
    }

    fn hist_summary() -> HistSummary {
        HistSummary { count: 4, min: 1, max: 100, p50: 10, p90: 90, p99: 100 }
    }

    #[test]
    fn lookup_and_count() {
        let s = sample();
        assert_eq!(s.count("sim", "steps"), Some(10));
        assert_eq!(s.count("sim", "time"), Some(1500));
        assert_eq!(s.count("sim", "rate"), None);
        assert_eq!(s.count("nope", "steps"), None);
        assert!(matches!(s.get("mc", "traj"), Some(Value::Series(v)) if v.len() == 2));
    }

    #[test]
    fn delta_subtracts_saturating() {
        let mut later = sample();
        later.sections[0].entries[0].1 = Value::Count(25);
        let d = later.delta(&sample());
        assert_eq!(d.count("sim", "steps"), Some(15));
        assert_eq!(d.count("sim", "time"), Some(0));
        // Series pass through.
        assert!(matches!(d.get("mc", "traj"), Some(Value::Series(v)) if v.len() == 2));
    }

    #[test]
    fn delta_keeps_one_sided_sections_and_entries() {
        let mut later = sample();
        // Entry only in `later` (new metric in the newer build).
        later.sections[0].entries.push(("fresh", Value::Count(7)));
        // Section only in `later`.
        later.sections.push(Section { name: "new_sec", entries: vec![("n", Value::Count(3))] });

        let mut base = sample();
        // Entry only in the baseline (metric removed since).
        base.sections[0].entries.push(("legacy", Value::Count(11)));
        // Section only in the baseline.
        base.sections.push(Section { name: "old_sec", entries: vec![("o", Value::Count(5))] });

        let d = later.delta(&base);
        // Both one-sided entries survive with their full value.
        assert_eq!(d.count("sim", "fresh"), Some(7));
        assert_eq!(d.count("sim", "legacy"), Some(11));
        // Both one-sided sections survive whole.
        assert_eq!(d.count("new_sec", "n"), Some(3));
        assert_eq!(d.count("old_sec", "o"), Some(5));
        // Shared entries still subtract.
        assert_eq!(d.count("sim", "steps"), Some(0));
    }

    #[test]
    fn hist_values_count_render_and_pass_through_delta() {
        let mut s = sample();
        s.sections[1].entries.push(("batch_ns", Value::Hist(hist_summary())));
        assert_eq!(s.count("mc", "batch_ns"), Some(4));
        let text = s.render_text();
        assert!(text.contains("p50=10"), "{text}");
        let json = s.to_json_pretty();
        assert!(
            json.contains(
                "\"batch_ns\": {\"count\": 4, \"min\": 1, \"max\": 100, \
                 \"p50\": 10, \"p90\": 90, \"p99\": 100}"
            ),
            "{json}"
        );
        // Hist summaries are not differenced: delta keeps the later value.
        let d = s.delta(&sample());
        assert_eq!(d.get("mc", "batch_ns"), Some(&Value::Hist(hist_summary())));
    }

    #[test]
    fn text_render_names_every_metric() {
        let text = sample().render_text();
        assert!(text.contains("[sim]"));
        assert!(text.contains("steps"));
        assert!(text.contains("1.50 us"));
        assert!(text.contains("2 point(s)"));
    }

    #[test]
    fn json_matches_bench_style() {
        let json = sample().to_json_pretty();
        assert!(json.starts_with("{\n  \"schema\": \"hlpower-obs/2\",\n  \"schema_version\": 2"));
        assert!(json.contains("\"sim\": {\n    \"steps\": 10"));
        assert!(json.contains("\"rate\": 2.5"));
        assert!(json.contains("\"traj\": [\n      1.0,\n      0.5\n    ]"));
        assert!(json.ends_with("\n}"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let s = Snapshot {
            schema: "hlpower-obs/2",
            schema_version: 2,
            sections: vec![Section {
                name: "x",
                entries: vec![
                    ("nan", Value::Float(f64::NAN)),
                    ("inf", Value::Float(f64::INFINITY)),
                    ("traj", Value::Series(vec![1.0, f64::NEG_INFINITY])),
                ],
            }],
        };
        let json = s.to_json_pretty();
        assert!(json.contains("\"nan\": null"), "{json}");
        assert!(json.contains("\"inf\": null"), "{json}");
        // Non-finite series points null out too, and the document stays
        // valid JSON end to end.
        crate::json::parse(&json).expect("snapshot JSON parses");
        assert!(json.contains("null\n    ]"), "{json}");
    }
}
