//! Request-scoped telemetry contexts.
//!
//! A [`RequestCtx`] travels with one serving request from HTTP parse to
//! final response: it carries a process-unique id, the client-supplied
//! `X-Request-Id` (echoed back verbatim), per-[`Stage`] accumulated
//! nanoseconds, and byte/lane/cycle counts. The id is additionally
//! installed in a thread-local (see [`enter`]) so deeply nested code —
//! the worker pool, the packed kernels — can stamp the id onto trace
//! spans without threading a parameter through every signature.
//!
//! ## Determinism
//!
//! Contexts are *write-only* telemetry: every field is an accumulator
//! that no instrumented code path reads back to make a decision, so the
//! workspace's bit-identical determinism contract is untouched. Stage
//! timers are additive (a stage may be entered several times; the
//! durations sum), which keeps attribution correct when the batcher
//! revisits a request across rounds.
//!
//! ```
//! use hlpower_obs::ctx::{RequestCtx, Stage};
//!
//! let ctx = RequestCtx::new(None);
//! {
//!     let _t = ctx.time_stage(Stage::Parse);
//! }
//! assert_eq!(ctx.echo(), ctx.id().to_string());
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The serving pipeline stages a request's wall time is attributed to.
///
/// The order is the pipeline order; [`Stage::ALL`] iterates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// JSON body parse plus netlist compile.
    Parse,
    /// Kernel-cache lock, lookup, and insert.
    Cache,
    /// Waiting in the batcher queue before first planning.
    Queue,
    /// Lane-packing plan construction (shared per round, attributed to
    /// every member of the round).
    Pack,
    /// Packed-kernel simulation (the round's parallel map wall time).
    Sim,
    /// Result demux, response building, and serialization.
    Finalize,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] =
        [Stage::Parse, Stage::Cache, Stage::Queue, Stage::Pack, Stage::Sim, Stage::Finalize];

    /// Stable lowercase name used in access logs and metrics.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Cache => "cache",
            Stage::Queue => "queue",
            Stage::Pack => "pack",
            Stage::Sim => "sim",
            Stage::Finalize => "finalize",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Process-wide monotonic request id source (first id is 1; 0 means
/// "no request" in the thread-local).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// One request's telemetry: identity, per-stage time, and size counts.
///
/// Shared across threads behind an `Arc`; every field is a relaxed
/// atomic accumulator.
#[derive(Debug)]
pub struct RequestCtx {
    id: u64,
    client_id: Option<String>,
    stage_ns: [AtomicU64; 6],
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    lanes: AtomicU64,
    lanes_shared: AtomicU64,
    cycles: AtomicU64,
}

impl RequestCtx {
    /// Creates a context with a fresh process-unique id. `client_id` is
    /// the inbound `X-Request-Id` header value, if the client sent one.
    pub fn new(client_id: Option<&str>) -> Self {
        RequestCtx {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            client_id: client_id.map(str::to_string),
            stage_ns: [const { AtomicU64::new(0) }; 6],
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            lanes: AtomicU64::new(0),
            lanes_shared: AtomicU64::new(0),
            cycles: AtomicU64::new(0),
        }
    }

    /// The server-assigned monotonic id (never 0).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The client-supplied `X-Request-Id`, if any.
    pub fn client_id(&self) -> Option<&str> {
        self.client_id.as_deref()
    }

    /// The id to echo back to the client: the client-supplied
    /// `X-Request-Id` verbatim, or the server id in decimal.
    pub fn echo(&self) -> String {
        match &self.client_id {
            Some(s) => s.clone(),
            None => self.id.to_string(),
        }
    }

    /// Adds `ns` to `stage`'s accumulated duration.
    pub fn add_stage_ns(&self, stage: Stage, ns: u64) {
        self.stage_ns[stage.index()].fetch_add(ns, Ordering::Relaxed);
    }

    /// Accumulated nanoseconds attributed to `stage`.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stage_ns[stage.index()].load(Ordering::Relaxed)
    }

    /// Starts a scoped stage timer; the elapsed time is added on drop.
    pub fn time_stage(&self, stage: Stage) -> StageTimer<'_> {
        StageTimer { ctx: self, stage, start: Instant::now() }
    }

    /// Adds to the inbound byte count (request body).
    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the outbound byte count (response body, including stream
    /// interims).
    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds packed lanes this request occupied across all rounds.
    pub fn add_lanes(&self, n: u64) {
        self.lanes.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds lanes this request occupied in words shared with *other*
    /// tenants (multi-tenant packing).
    pub fn add_lanes_shared(&self, n: u64) {
        self.lanes_shared.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds simulated cycles attributed to this request.
    pub fn add_cycles(&self, n: u64) {
        self.cycles.fetch_add(n, Ordering::Relaxed);
    }

    /// Inbound bytes recorded so far.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Outbound bytes recorded so far.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Packed lanes occupied across all rounds.
    pub fn lanes(&self) -> u64 {
        self.lanes.load(Ordering::Relaxed)
    }

    /// Lanes occupied in words shared with other tenants.
    pub fn lanes_shared(&self) -> u64 {
        self.lanes_shared.load(Ordering::Relaxed)
    }

    /// Simulated cycles attributed to this request.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }
}

/// Scope guard from [`RequestCtx::time_stage`]: adds the elapsed
/// nanoseconds to the stage on drop.
#[derive(Debug)]
pub struct StageTimer<'a> {
    ctx: &'a RequestCtx,
    stage: Stage,
    start: Instant,
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        self.ctx.add_stage_ns(self.stage, self.start.elapsed().as_nanos() as u64);
    }
}

thread_local! {
    /// The request id the current thread is working for (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// The request id installed on the calling thread, if any.
///
/// [`crate::trace::span`] reads this to stamp `args.request_id` onto
/// emitted events.
pub fn current_request_id() -> Option<u64> {
    let id = CURRENT.with(Cell::get);
    if id == 0 {
        None
    } else {
        Some(id)
    }
}

/// Installs `id` as the calling thread's current request until the
/// returned guard drops (the previous value, if any, is restored —
/// scopes nest).
pub fn enter(id: u64) -> CtxGuard {
    let prev = CURRENT.with(|c| c.replace(id));
    CtxGuard { prev }
}

/// Scope guard from [`enter`]: restores the previously installed
/// request id on drop.
#[derive(Debug)]
pub struct CtxGuard {
    prev: u64,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = RequestCtx::new(None);
        let b = RequestCtx::new(None);
        assert_ne!(a.id(), 0);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn echo_prefers_the_client_id() {
        let anon = RequestCtx::new(None);
        assert_eq!(anon.echo(), anon.id().to_string());
        let named = RequestCtx::new(Some("abc-123"));
        assert_eq!(named.echo(), "abc-123");
        assert_eq!(named.client_id(), Some("abc-123"));
    }

    #[test]
    fn stage_timers_accumulate() {
        let ctx = RequestCtx::new(None);
        ctx.add_stage_ns(Stage::Sim, 40);
        ctx.add_stage_ns(Stage::Sim, 2);
        {
            let _t = ctx.time_stage(Stage::Parse);
            std::hint::black_box((0..100).sum::<u64>());
        }
        assert_eq!(ctx.stage_ns(Stage::Sim), 42);
        assert_eq!(ctx.stage_ns(Stage::Cache), 0);
        // The scoped timer recorded *something* for parse.
        let _ = ctx.stage_ns(Stage::Parse);
    }

    #[test]
    fn counts_accumulate() {
        let ctx = RequestCtx::new(None);
        ctx.add_bytes_in(10);
        ctx.add_bytes_out(20);
        ctx.add_bytes_out(5);
        ctx.add_lanes(8);
        ctx.add_lanes_shared(3);
        ctx.add_cycles(900);
        assert_eq!(ctx.bytes_in(), 10);
        assert_eq!(ctx.bytes_out(), 25);
        assert_eq!(ctx.lanes(), 8);
        assert_eq!(ctx.lanes_shared(), 3);
        assert_eq!(ctx.cycles(), 900);
    }

    #[test]
    fn enter_nests_and_restores() {
        assert_eq!(current_request_id(), None);
        {
            let _a = enter(7);
            assert_eq!(current_request_id(), Some(7));
            {
                let _b = enter(9);
                assert_eq!(current_request_id(), Some(9));
            }
            assert_eq!(current_request_id(), Some(7));
        }
        assert_eq!(current_request_id(), None);
    }

    #[test]
    fn enter_propagates_nothing_across_threads_by_default() {
        let _g = enter(11);
        let seen = std::thread::scope(|s| s.spawn(current_request_id).join().unwrap());
        assert_eq!(seen, None, "thread-locals do not leak; the pool installs explicitly");
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["parse", "cache", "queue", "pack", "sim", "finalize"]);
    }
}
