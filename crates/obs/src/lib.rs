//! # hlpower-obs — zero-dependency observability for the estimation engine
//!
//! Cheap, always-on instrumentation primitives plus a central metric
//! registry ([`metrics`]) and a reporter ([`report`]) that renders both
//! human-readable summaries and the bench crate's hand-rolled JSON format.
//!
//! ## Design constraints
//!
//! * **Zero external dependencies** — only `std`, like every other crate
//!   in the workspace's default tree (see README "Hermetic build").
//! * **Determinism-safe** — instrumentation must not perturb the
//!   workspace's bit-identical determinism contract (seed + any thread
//!   count ⇒ identical output). Every primitive here is *additive and
//!   commutative*: counters only accumulate, so the totals observed after
//!   a deterministic computation are the same no matter how its work was
//!   interleaved across threads. No instrumented code path reads a metric
//!   to make a decision.
//! * **Cheap on hot paths** — counters are relaxed atomics;
//!   [`ShardedCounter`] spreads contended counters across cache-line-sized
//!   shards so parallel workers do not bounce a single line.
//!
//! ```
//! use hlpower_obs::Counter;
//!
//! static EVENTS: Counter = Counter::new();
//! EVENTS.add(3);
//! EVENTS.inc();
//! assert_eq!(EVENTS.get(), 4);
//! ```

#![warn(missing_docs)]

pub mod ctx;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod report;
pub mod trace;

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// A monotonically increasing event counter (relaxed atomic).
///
/// `const`-constructible so it can live in a `static`. Reads and writes
/// use relaxed ordering: metrics never synchronize program logic.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and explicit baseline resets only).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A gauge that remembers the maximum value ever recorded.
#[derive(Debug)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        MaxGauge(AtomicU64::new(0))
    }

    /// Records `v`, keeping the running maximum.
    pub fn record(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The maximum recorded so far.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for MaxGauge {
    fn default() -> Self {
        MaxGauge::new()
    }
}

/// A live level gauge (current queue depth, in-flight requests, busy
/// lanes): goes up and down, read as its instantaneous value.
///
/// Internally signed so momentarily-interleaved `inc`/`dec` pairs from
/// racing threads cannot wrap; [`get`](Self::get) clamps at zero.
#[derive(Debug)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n as i64, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n as i64, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Overwrites the level.
    pub fn set(&self, v: u64) {
        self.0.store(v as i64, Ordering::Relaxed);
    }

    /// Current level, clamped at zero.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed).max(0) as u64
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// Number of shards in a [`ShardedCounter`].
const SHARDS: usize = 16;

/// One cache line per shard so concurrent workers do not false-share.
#[repr(align(64))]
#[derive(Debug)]
struct PaddedU64(AtomicU64);

/// Worker-thread shard assignment: each thread gets a stable slot on
/// first use, round-robin over the shard count. Short-lived scoped
/// workers therefore distribute across shards instead of piling onto one.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn shard_slot() -> usize {
    SLOT.with(|s| *s)
}

/// A counter sharded per worker thread to avoid hot-path contention.
///
/// Adds go to the calling thread's shard; [`get`](Self::get) sums all
/// shards. Because addition is commutative and associative, the total is
/// independent of how deterministic work was scheduled across threads —
/// the property the README's "Observability" section documents.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: [PaddedU64; SHARDS],
}

impl ShardedCounter {
    /// Creates a sharded counter at zero.
    pub const fn new() -> Self {
        ShardedCounter { shards: [const { PaddedU64(AtomicU64::new(0)) }; SHARDS] }
    }

    /// Adds `n` on the calling thread's shard.
    pub fn add(&self, n: u64) {
        self.shards[shard_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sum over all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    /// Resets every shard to zero.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for ShardedCounter {
    fn default() -> Self {
        ShardedCounter::new()
    }
}

/// Accumulated wall-clock time plus a span count.
///
/// Use [`span`](Self::span) for scope-style timing: the returned guard
/// adds the elapsed nanoseconds when dropped.
#[derive(Debug)]
pub struct TimerNs {
    total_ns: Counter,
    spans: Counter,
}

impl TimerNs {
    /// Creates a timer at zero.
    pub const fn new() -> Self {
        TimerNs { total_ns: Counter::new(), spans: Counter::new() }
    }

    /// Starts a scoped span; elapsed time is recorded when the guard drops.
    pub fn span(&self) -> Span<'_> {
        Span { timer: self, start: Instant::now() }
    }

    /// Records an already-measured duration.
    pub fn record_ns(&self, ns: u64) {
        self.total_ns.add(ns);
        self.spans.inc();
    }

    /// Total accumulated nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.get()
    }

    /// Number of recorded spans.
    pub fn spans(&self) -> u64 {
        self.spans.get()
    }

    /// Resets both the total and the span count.
    pub fn reset(&self) {
        self.total_ns.reset();
        self.spans.reset();
    }
}

impl Default for TimerNs {
    fn default() -> Self {
        TimerNs::new()
    }
}

/// A scope guard created by [`TimerNs::span`].
#[derive(Debug)]
pub struct Span<'a> {
    timer: &'a TimerNs,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.timer.record_ns(self.start.elapsed().as_nanos() as u64);
    }
}

/// Maximum points retained by a [`Series`].
pub const SERIES_CAP: usize = 4096;

/// A bounded, mutex-guarded sequence of `f64` samples (e.g. the
/// Monte-Carlo confidence-interval half-width trajectory).
///
/// Pushes past [`SERIES_CAP`] are counted but dropped, so a runaway
/// producer cannot grow memory without bound. Only deterministic serial
/// code paths should push (the Monte-Carlo engine records from its serial
/// stopping-rule replay), keeping the recorded order reproducible.
///
/// A panic on an instrumented thread poisons the mutex; every accessor
/// recovers the guard with [`PoisonError::into_inner`] instead of
/// cascading the panic — samples are plain `f64`s with no invariant a
/// mid-push panic could break, so the data stays usable.
#[derive(Debug)]
pub struct Series {
    data: Mutex<Vec<f64>>,
    dropped: Counter,
}

impl Series {
    /// Creates an empty series.
    pub const fn new() -> Self {
        Series { data: Mutex::new(Vec::new()), dropped: Counter::new() }
    }

    /// Appends a sample (dropped, but counted, once the cap is reached).
    pub fn push(&self, v: f64) {
        let mut data = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        if data.len() < SERIES_CAP {
            data.push(v);
        } else {
            self.dropped.inc();
        }
    }

    /// A copy of the recorded samples.
    pub fn snapshot(&self) -> Vec<f64> {
        self.data.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.data.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many pushes were dropped at the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Clears the series.
    pub fn reset(&self) {
        self.data.lock().unwrap_or_else(PoisonError::into_inner).clear();
        self.dropped.reset();
    }
}

impl Default for Series {
    fn default() -> Self {
        Series::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let c = Counter::new();
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn max_gauge_keeps_peak() {
        let g = MaxGauge::new();
        g.record(3);
        g.record(10);
        g.record(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn gauge_moves_both_ways_and_clamps() {
        let g = Gauge::new();
        g.inc();
        g.add(4);
        g.dec();
        assert_eq!(g.get(), 4);
        g.sub(10);
        assert_eq!(g.get(), 0, "reads clamp at zero");
        g.inc();
        assert_eq!(g.get(), 0, "but the signed level is preserved underneath");
        g.set(3);
        assert_eq!(g.get(), 3);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn sharded_counter_sums_across_threads() {
        let c = ShardedCounter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn timer_span_records_elapsed() {
        let t = TimerNs::new();
        {
            let _span = t.span();
            std::hint::black_box((0..1000).sum::<u64>());
        }
        assert_eq!(t.spans(), 1);
        t.record_ns(50);
        assert!(t.total_ns() >= 50);
        assert_eq!(t.spans(), 2);
    }

    #[test]
    fn series_survives_a_poisoning_panic() {
        let s = Series::new();
        s.push(1.0);
        // Poison the mutex: panic while holding the guard on another thread.
        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = s.data.lock().expect("first lock is clean");
                    panic!("instrumented thread dies mid-push");
                })
                .join()
        });
        assert!(result.is_err(), "the worker must have panicked");
        // Every accessor still works and the data is intact.
        s.push(2.0);
        assert_eq!(s.snapshot(), vec![1.0, 2.0]);
        assert_eq!(s.len(), 2);
        s.reset();
        assert!(s.is_empty());
    }

    #[test]
    fn series_caps_and_counts_drops() {
        let s = Series::new();
        for i in 0..(SERIES_CAP + 10) {
            s.push(i as f64);
        }
        assert_eq!(s.len(), SERIES_CAP);
        assert_eq!(s.dropped(), 10);
        assert_eq!(s.snapshot()[2], 2.0);
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 0);
    }
}
