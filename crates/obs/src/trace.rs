//! Opt-in tracing spans: per-thread ring buffers of timed span events,
//! exported as Chrome trace-event JSON (loadable in `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev)).
//!
//! ## Design
//!
//! * **Opt-in** — tracing is off by default and costs one relaxed atomic
//!   load per [`span`] call. The `repro` binary enables it when the
//!   `HLPOWER_TRACE=<path>` environment variable is set (see
//!   [`env_path`]); tests may call [`set_enabled`] directly.
//! * **Lock-free push** — every thread records into its own fixed-capacity
//!   ring buffer (a plain `Vec` behind a `thread_local!`, so pushes take
//!   no lock at all). Buffers drain into a global sink when their thread
//!   exits; the exporting thread drains its own buffer at export time.
//!   Pushes past [`RING_CAP`] (or past the sink cap) are counted in
//!   [`dropped`] and discarded — a runaway producer can lose events but
//!   never grow memory without bound.
//! * **Determinism-safe** — spans only *observe* wall-clock time; no
//!   instrumented code path reads the trace state to make a decision, so
//!   the workspace's bit-identical determinism contract (seed + any
//!   thread count ⇒ identical output) is untouched with tracing on.
//!
//! ## Caveat
//!
//! Events held by threads that are still alive (other than the exporting
//! thread) at export time are not included. The workspace's worker pools
//! are scoped — workers are joined before any exporter runs — so in
//! practice only the exporting thread's buffer needs the explicit drain.
//!
//! ```
//! use hlpower_obs::trace;
//!
//! trace::set_enabled(true);
//! {
//!     let _span = trace::span("doc", "example.work");
//! }
//! let events = trace::take_events();
//! assert!(events.iter().any(|e| e.name == "example.work"));
//! trace::set_enabled(false);
//! ```

use std::borrow::Cow;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::json;
use crate::{ctx, Counter};

/// Maximum events retained per thread before drops start.
pub const RING_CAP: usize = 16 * 1024;

/// Maximum events retained in the global sink (sum over exited threads).
pub const SINK_CAP: usize = 1 << 20;

/// One completed span, in the process-local timebase.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name (e.g. `"mc.wave"`, `"sim64.compile"`).
    pub name: Cow<'static, str>,
    /// Category (Chrome `cat` field): the emitting subsystem.
    pub cat: &'static str,
    /// Recording thread id (stable per thread, first-use order).
    pub tid: u64,
    /// Start time in nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// The serving request this span worked for, if any (captured from
    /// [`ctx::current_request_id`] at span start; exported as Chrome
    /// `args.request_id`).
    pub request_id: Option<u64>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RING_DROPPED: Counter = Counter::new();
static SINK_DROPPED: Counter = Counter::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

struct ThreadRing {
    tid: u64,
    events: Vec<TraceEvent>,
}

impl Drop for ThreadRing {
    fn drop(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
        let room = SINK_CAP.saturating_sub(sink.len());
        let take = self.events.len().min(room);
        SINK_DROPPED.add((self.events.len() - take) as u64);
        sink.extend(self.events.drain(..take));
    }
}

thread_local! {
    static RING: RefCell<ThreadRing> = RefCell::new(ThreadRing {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

/// Whether tracing is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off (used by `repro` when `HLPOWER_TRACE` is set,
/// and by tests).
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first span so timestamps are positive.
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// The `HLPOWER_TRACE` output path, if the environment variable is set
/// and non-empty.
pub fn env_path() -> Option<String> {
    match std::env::var("HLPOWER_TRACE") {
        Ok(p) if !p.is_empty() => Some(p),
        _ => None,
    }
}

/// Total events dropped so far (full per-thread ring plus full sink).
pub fn dropped() -> u64 {
    RING_DROPPED.get() + SINK_DROPPED.get()
}

/// Events dropped at a full per-thread ring buffer.
pub fn ring_dropped() -> u64 {
    RING_DROPPED.get()
}

/// Events dropped at the full global sink when an exiting thread flushed.
pub fn sink_dropped() -> u64 {
    SINK_DROPPED.get()
}

fn push(event: TraceEvent) {
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        if ring.events.len() < RING_CAP {
            ring.events.push(event);
        } else {
            RING_DROPPED.inc();
        }
    });
}

/// A scope guard that records one [`TraceEvent`] when dropped.
///
/// Inert (no clock read, no allocation) when tracing is disabled at
/// construction time.
#[derive(Debug)]
pub struct TraceSpan {
    live: Option<(Cow<'static, str>, &'static str, u64, Option<u64>)>,
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some((name, cat, ts_ns, request_id)) = self.live.take() {
            let dur_ns = (epoch().elapsed().as_nanos() as u64).saturating_sub(ts_ns);
            let tid = RING.with(|r| r.borrow().tid);
            push(TraceEvent { name, cat, tid, ts_ns, dur_ns, request_id });
        }
    }
}

/// Starts a span with a static (or pre-built) name. Records on drop.
///
/// If the calling thread has a request installed via [`ctx::enter`],
/// the span is stamped with that request id.
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> TraceSpan {
    if !enabled() {
        return TraceSpan { live: None };
    }
    TraceSpan {
        live: Some((
            name.into(),
            cat,
            epoch().elapsed().as_nanos() as u64,
            ctx::current_request_id(),
        )),
    }
}

/// Starts a span whose name is built lazily — `name_fn` only runs (and
/// allocates) when tracing is enabled. Use on hot paths with dynamic
/// names (e.g. a batch index).
pub fn span_dyn(cat: &'static str, name_fn: impl FnOnce() -> String) -> TraceSpan {
    if !enabled() {
        return TraceSpan { live: None };
    }
    span(cat, name_fn())
}

/// Drains every completed event (the global sink plus the calling
/// thread's ring buffer), sorted by `(ts_ns, tid)`.
pub fn take_events() -> Vec<TraceEvent> {
    let mut events: Vec<TraceEvent> = {
        let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *sink)
    };
    RING.with(|ring| events.append(&mut ring.borrow_mut().events));
    events.sort_by(|a, b| (a.ts_ns, a.tid).cmp(&(b.ts_ns, b.tid)));
    events
}

/// Copies (without draining) every completed event recorded for request
/// `id` — the global sink plus the calling thread's own ring — sorted by
/// `(ts_ns, tid)`.
///
/// Used by the access log's slow-request dump: the request's spans are
/// reported inline while the trace keeps accumulating for the final
/// export. Spans still held by other live threads' rings are not
/// visible (same caveat as [`take_events`]).
pub fn events_for_request(id: u64) -> Vec<TraceEvent> {
    let mut events: Vec<TraceEvent> = {
        let sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
        sink.iter().filter(|e| e.request_id == Some(id)).cloned().collect()
    };
    RING.with(|ring| {
        events.extend(ring.borrow().events.iter().filter(|e| e.request_id == Some(id)).cloned());
    });
    events.sort_by(|a, b| (a.ts_ns, a.tid).cmp(&(b.ts_ns, b.tid)));
    events
}

/// Clears all recorded events and the drop counters (tests and explicit
/// baseline resets).
pub fn reset() {
    let _ = take_events();
    RING_DROPPED.reset();
    SINK_DROPPED.reset();
}

/// Renders events as Chrome trace-event JSON (the "JSON array format"
/// with complete `ph: "X"` events; timestamps in microseconds).
///
/// The output loads directly in `chrome://tracing` and Perfetto.
pub fn chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"name\": ");
        json::escape_into(&mut out, &e.name);
        out.push_str(", \"cat\": ");
        json::escape_into(&mut out, e.cat);
        let _ = write!(
            out,
            ", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {:?}, \"dur\": {:?}",
            e.tid,
            e.ts_ns as f64 / 1000.0,
            e.dur_ns as f64 / 1000.0
        );
        if let Some(rid) = e.request_id {
            let _ = write!(out, ", \"args\": {{\"request_id\": {rid}}}");
        }
        out.push('}');
    }
    if events.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Drains all events and writes them as Chrome trace JSON to `path`.
///
/// Returns the number of events written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_chrome_json(path: &str) -> std::io::Result<usize> {
    let events = take_events();
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, chrome_json(&events))?;
    Ok(events.len())
}

// --- Chrome trace parsing / validation -------------------------------------
//
// Validation of the files this module emits (CI's trace smoke re-parses
// the written file) goes through the shared [`crate::json`] parser, which
// decodes surrogate-pair `\u` escapes correctly and reports located
// errors for malformed input.

/// One event read back from a Chrome trace JSON file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTraceEvent {
    /// Span name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Phase — always `"X"` (complete event) in files this module writes.
    pub ph: String,
    /// Thread id.
    pub tid: u64,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds.
    pub dur: f64,
    /// The `args.request_id` correlation id, if the span carried one.
    pub request_id: Option<u64>,
}

/// Parses and validates a Chrome trace-event JSON document (the object
/// format with a `traceEvents` array, as written by [`chrome_json`]).
///
/// # Errors
///
/// Returns a description of the first structural problem: malformed
/// JSON (with the shared parser's line/column location), a missing
/// `traceEvents` array, or an event missing a required field (`name`,
/// `cat`, `ph`, `tid`, `ts`, `dur`).
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ParsedTraceEvent>, String> {
    let root = json::parse(text).map_err(|e| e.to_string())?;
    let events = match root.get("traceEvents").and_then(json::Value::as_arr) {
        Some(events) => events,
        None => return Err("missing `traceEvents` array".to_string()),
    };
    let mut out = Vec::with_capacity(events.len());
    for (i, e) in events.iter().enumerate() {
        let field =
            |key: &str| e.get(key).ok_or_else(|| format!("event {i}: missing field `{key}`"));
        let str_field = |key: &str| {
            field(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("event {i}: field `{key}` is not a string"))
        };
        let num_field = |key: &str| {
            field(key)?.as_f64().ok_or_else(|| format!("event {i}: field `{key}` is not a number"))
        };
        let request_id =
            e.get("args").and_then(|args| args.get("request_id")).and_then(json::Value::as_u64);
        out.push(ParsedTraceEvent {
            name: str_field("name")?,
            cat: str_field("cat")?,
            ph: str_field("ph")?,
            tid: num_field("tid")? as u64,
            ts: num_field("ts")?,
            dur: num_field("dur")?,
            request_id,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the enabled-flag-manipulating tests (the flag is
    /// process-global and cargo runs tests on parallel threads).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        set_enabled(false);
        reset();
        {
            let _s = span("test", "invisible");
        }
        assert!(take_events().is_empty());
    }

    #[test]
    fn enabled_spans_are_recorded_and_sorted() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        set_enabled(true);
        reset();
        {
            let _a = span("test", "outer");
            let _b = span_dyn("test", || format!("inner-{}", 7));
        }
        let events = take_events();
        set_enabled(false);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_ref()).collect();
        assert!(names.contains(&"outer"), "{names:?}");
        assert!(names.contains(&"inner-7"), "{names:?}");
        // Sorted by start time.
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn cross_thread_events_flush_on_thread_exit() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        set_enabled(true);
        reset();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = span("test", "worker.span");
            });
        });
        let events = take_events();
        set_enabled(false);
        assert!(events.iter().any(|e| e.name == "worker.span"));
    }

    #[test]
    fn overflow_is_counted_not_grown() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        set_enabled(true);
        reset();
        for _ in 0..(RING_CAP + 10) {
            push(TraceEvent {
                name: Cow::Borrowed("x"),
                cat: "test",
                tid: 0,
                ts_ns: 0,
                dur_ns: 0,
                request_id: None,
            });
        }
        assert_eq!(dropped(), 10);
        assert_eq!(ring_dropped(), 10, "ring overflow is attributed to the ring counter");
        assert_eq!(sink_dropped(), 0);
        let events = take_events();
        set_enabled(false);
        assert!(events.len() >= RING_CAP);
        reset();
        assert_eq!(dropped(), 0);
    }

    #[test]
    fn spans_inherit_the_installed_request_id() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        set_enabled(true);
        reset();
        {
            let _anon = span("test", "anon");
            let _ctx = ctx::enter(77);
            let _tagged = span("test", "tagged");
        }
        // Non-draining lookup first: the tagged span is visible by id.
        let for_77 = events_for_request(77);
        assert_eq!(for_77.len(), 1);
        assert_eq!(for_77[0].name, "tagged");
        let events = take_events();
        set_enabled(false);
        let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("tagged").request_id, Some(77));
        assert_eq!(by_name("anon").request_id, None);
        assert!(events_for_request(77).is_empty(), "take_events drained everything");
    }

    #[test]
    fn chrome_json_round_trips_through_parser() {
        let events = vec![
            TraceEvent {
                name: Cow::Borrowed("mc.wave"),
                cat: "mc",
                tid: 3,
                ts_ns: 1500,
                dur_ns: 2500,
                request_id: Some(42),
            },
            TraceEvent {
                name: Cow::Owned("weird \"name\"\n".to_string()),
                cat: "test",
                tid: 1,
                ts_ns: 4000,
                dur_ns: 0,
                request_id: None,
            },
        ];
        let json = chrome_json(&events);
        let parsed = parse_chrome_trace(&json).expect("self-emitted trace parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "mc.wave");
        assert_eq!(parsed[0].ph, "X");
        assert_eq!(parsed[0].tid, 3);
        assert!((parsed[0].ts - 1.5).abs() < 1e-12);
        assert!((parsed[0].dur - 2.5).abs() < 1e-12);
        assert_eq!(parsed[0].request_id, Some(42), "args.request_id round-trips");
        assert_eq!(parsed[1].name, "weird \"name\"\n");
        assert_eq!(parsed[1].request_id, None);
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_json(&[]);
        assert!(parse_chrome_trace(&json).expect("parses").is_empty());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_chrome_trace("{").is_err());
        assert!(parse_chrome_trace("{}").is_err(), "missing traceEvents");
        assert!(parse_chrome_trace("{\"traceEvents\": [{}]}").is_err(), "missing fields");
        assert!(parse_chrome_trace(
            "{\"traceEvents\": [{\"name\": 1, \"cat\": \"c\", \"ph\": \"X\", \
             \"tid\": 1, \"ts\": 0, \"dur\": 0}]}"
        )
        .is_err());
        assert!(parse_chrome_trace("{\"traceEvents\": []} trailing").is_err());
    }

    #[test]
    fn non_bmp_span_names_round_trip() {
        // Regression: the old private parser replaced surrogate pairs with
        // U+FFFD; a span name outside the BMP must survive export→parse.
        let name = "mc.wave 😀 \u{1D11E}";
        let events = vec![TraceEvent {
            name: Cow::Owned(name.to_string()),
            cat: "test",
            tid: 1,
            ts_ns: 10,
            dur_ns: 5,
            request_id: None,
        }];
        let parsed = parse_chrome_trace(&chrome_json(&events)).expect("parses");
        assert_eq!(parsed[0].name, name);
    }

    #[test]
    fn surrogate_pair_escapes_decode_and_lone_ones_are_located_errors() {
        let doc = |name: &str| {
            format!(
                "{{\"traceEvents\": [{{\"name\": \"{name}\", \"cat\": \"c\", \
                 \"ph\": \"X\", \"tid\": 1, \"ts\": 0, \"dur\": 0}}]}}"
            )
        };
        let parsed = parse_chrome_trace(&doc("\\ud83d\\ude00")).expect("pair decodes");
        assert_eq!(parsed[0].name, "😀");
        let err = parse_chrome_trace(&doc("\\ud83d")).expect_err("lone high surrogate");
        assert!(err.contains("surrogate"), "{err}");
        assert!(err.contains("line"), "located: {err}");
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let parsed = parse_chrome_trace(
            "{\"traceEvents\": [{\"name\": \"a\\u0041\\n\", \"cat\": \"c\", \
             \"ph\": \"X\", \"pid\": 1, \"tid\": 2, \"ts\": 1.25e3, \"dur\": -0.5}]}",
        )
        .expect("parses");
        assert_eq!(parsed[0].name, "aA\n");
        assert!((parsed[0].ts - 1250.0).abs() < 1e-12);
        assert!((parsed[0].dur + 0.5).abs() < 1e-12);
    }
}
