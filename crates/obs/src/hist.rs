//! `const`-constructible log-linear (HDR-style) histograms on relaxed
//! atomic buckets.
//!
//! A [`Hist`] covers the full `u64` range with bounded relative error:
//! each power-of-two octave is split into [`SUB_BUCKETS`] linear
//! sub-buckets, so any recorded value lands in a bucket whose width is at
//! most `1/16` of the value (≈6% worst-case quantile error). Values below
//! [`SUB_BUCKETS`] get exact unit-width buckets.
//!
//! Recording is a handful of relaxed atomic adds — additive and
//! commutative, like every other primitive in this crate, so totals are
//! independent of thread interleaving and the workspace's bit-determinism
//! contract is untouched (no instrumented path reads a histogram to make
//! a decision).
//!
//! ```
//! use hlpower_obs::hist::Hist;
//!
//! static BATCH_NS: Hist = Hist::new();
//! BATCH_NS.record(1_250);
//! BATCH_NS.record(900);
//! let snap = BATCH_NS.snapshot();
//! assert_eq!(snap.count, 2);
//! assert!(snap.quantile(0.5) >= 900);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// log2 of the number of linear sub-buckets per power-of-two octave.
pub const SUB_BUCKET_BITS: u32 = 4;

/// Linear sub-buckets per octave (16 → ≤6.25% bucket width).
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Total bucket count covering all of `0..=u64::MAX`.
///
/// Buckets `0..16` are exact unit buckets; each of the 60 remaining
/// octaves (`msb = 4..=63`) contributes 16 sub-buckets: `16 + 60 * 16`.
pub const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS;

/// Maps a value to its bucket index. Total order preserving: `a <= b`
/// implies `bucket_index(a) <= bucket_index(b)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let block = (msb - SUB_BUCKET_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BUCKET_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    block * SUB_BUCKETS + sub
}

/// The smallest value mapping to bucket `idx`.
#[inline]
pub fn bucket_low(idx: usize) -> u64 {
    debug_assert!(idx < BUCKETS);
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let block = (idx / SUB_BUCKETS) as u32;
    let sub = (idx % SUB_BUCKETS) as u64;
    let msb = block + SUB_BUCKET_BITS - 1;
    (1u64 << msb) + (sub << (msb - SUB_BUCKET_BITS))
}

/// The largest value mapping to bucket `idx`.
#[inline]
pub fn bucket_high(idx: usize) -> u64 {
    debug_assert!(idx < BUCKETS);
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let block = (idx / SUB_BUCKETS) as u32;
    let msb = block + SUB_BUCKET_BITS - 1;
    bucket_low(idx) + ((1u64 << (msb - SUB_BUCKET_BITS)) - 1)
}

/// A lock-free log-linear histogram. `const`-constructible so it can
/// live in a `static`; see the [module docs](self) for the bucketing
/// scheme and the determinism argument.
pub struct Hist {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Hist {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Hist {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (relaxed atomics; safe from any thread).
    ///
    /// The running sum wraps on overflow — with nanosecond samples that
    /// takes ~584 years of accumulated time, and the sum is only used
    /// for the mean in reports.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Starts a scoped timer; the elapsed nanoseconds are recorded into
    /// the histogram when the guard drops.
    pub fn time(&self) -> HistTimer<'_> {
        HistTimer { hist: self, start: Instant::now() }
    }

    /// A point-in-time copy of the full bucket state.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// The compact summary recorded in metric snapshots.
    pub fn summary(&self) -> HistSummary {
        self.snapshot().summary()
    }

    /// Resets to empty (tests and explicit baseline resets only).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hist").field("summary", &self.summary()).finish_non_exhaustive()
    }
}

/// A scope guard created by [`Hist::time`].
#[derive(Debug)]
pub struct HistTimer<'a> {
    hist: &'a Hist,
    start: Instant,
}

impl Drop for HistTimer<'_> {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

/// An owned copy of a [`Hist`]'s state, supporting merge and quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Wrapping sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (`0` when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> Self {
        HistSnapshot { buckets: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Merges `other` into `self`.
    ///
    /// Pure `u64` addition plus min/max, so merging is commutative and
    /// associative: any grouping of per-thread snapshots yields the same
    /// aggregate.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0..=1.0`) as an upper bucket bound, clamped
    /// to the recorded `[min, max]`. Returns 0 when empty.
    ///
    /// Monotone in `q`, and within one bucket width (≤6.25% relative) of
    /// the exact order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_high(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values (0 when empty; meaningless if `sum`
    /// wrapped).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The compact summary recorded in metric snapshots.
    ///
    /// `buckets` keeps only the occupied buckets as
    /// `(bucket_high, count)` pairs in ascending bound order — the
    /// sparse form Prometheus exposition needs for cumulative `le`
    /// buckets without hauling all [`BUCKETS`] slots around.
    pub fn summary(&self) -> HistSummary {
        if self.count == 0 {
            return HistSummary {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0,
                buckets: Vec::new(),
            };
        }
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(idx, &n)| (bucket_high(idx), n))
                .collect(),
        }
    }
}

/// The summary a [`Hist`] contributes to `metrics::snapshot()`
/// (`report::Value::Hist`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSummary {
    /// Recorded value count.
    pub count: u64,
    /// Wrapping sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median (upper bucket bound, clamped to `[min, max]`).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Occupied buckets as `(upper_bound, count)`, ascending, non-empty
    /// only (non-cumulative counts; they sum to `count`).
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — the test's own PRNG; `obs` cannot depend on
    /// `hlpower-rng` (which depends on `obs`).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// A value with a random bit-width, exercising every octave.
        fn next_spread(&mut self) -> u64 {
            let bits = (self.next() % 65) as u32;
            if bits == 0 {
                0
            } else {
                self.next() >> (64 - bits)
            }
        }
    }

    #[test]
    fn bucket_bounds_are_exact_and_exhaustive() {
        // Every bucket's [low, high] range maps back to itself, and
        // consecutive buckets tile the u64 range with no gap or overlap.
        for idx in 0..BUCKETS {
            let (lo, hi) = (bucket_low(idx), bucket_high(idx));
            assert!(lo <= hi, "bucket {idx}");
            assert_eq!(bucket_index(lo), idx, "low bound of bucket {idx}");
            assert_eq!(bucket_index(hi), idx, "high bound of bucket {idx}");
            if idx + 1 < BUCKETS {
                assert_eq!(bucket_low(idx + 1), hi + 1, "gap after bucket {idx}");
            }
        }
        assert_eq!(bucket_low(0), 0);
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_index_is_monotone_and_tight_on_random_values() {
        let mut rng = XorShift(0x9E3779B97F4A7C15);
        for _ in 0..20_000 {
            let v = rng.next_spread();
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v && v <= bucket_high(idx), "v={v} idx={idx}");
            // Bucket width stays within the 1/16 relative-error bound.
            let width = bucket_high(idx) - bucket_low(idx);
            assert!(width as u128 <= (v as u128 / SUB_BUCKETS as u128) + 1, "v={v}");
            // Monotone: a nearby larger value never lands in an earlier bucket.
            let v2 = v.saturating_add(rng.next() % 1024);
            assert!(bucket_index(v2) >= idx);
        }
        // Edges.
        for v in [0, 1, 15, 16, 17, 255, 256, u64::MAX - 1, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v && v <= bucket_high(idx), "edge v={v}");
        }
    }

    fn random_snapshot(rng: &mut XorShift, n: usize) -> HistSnapshot {
        let h = Hist::new();
        for _ in 0..n {
            h.record(rng.next_spread());
        }
        h.snapshot()
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mut rng = XorShift(42);
        for _ in 0..50 {
            let a = random_snapshot(&mut rng, 200);
            let b = random_snapshot(&mut rng, 150);
            let c = random_snapshot(&mut rng, 100);

            // a + b == b + a
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba);

            // (a + b) + c == a + (b + c)
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc);

            // Identity.
            let mut a_e = a.clone();
            a_e.merge(&HistSnapshot::empty());
            assert_eq!(a_e, a);
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed() {
        let mut rng = XorShift(7);
        for _ in 0..20 {
            let snap = random_snapshot(&mut rng, 500);
            let mut prev = 0u64;
            for i in 0..=100 {
                let q = snap.quantile(i as f64 / 100.0);
                assert!(q >= prev, "quantile not monotone at {i}%");
                assert!(q >= snap.min && q <= snap.max);
                prev = q;
            }
            assert_eq!(snap.quantile(1.0), snap.max);
        }
    }

    #[test]
    fn quantile_approximates_exact_order_statistic() {
        let mut rng = XorShift(99);
        let h = Hist::new();
        let mut values: Vec<u64> = (0..1000).map(|_| rng.next() % 1_000_000).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for (q, rank) in [(0.5, 499), (0.9, 899), (0.99, 989)] {
            let exact = values[rank] as f64;
            let approx = snap.quantile(q) as f64;
            assert!(
                (approx - exact).abs() <= exact / SUB_BUCKETS as f64 + 1.0,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Hist::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 8000);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 7999);
    }

    #[test]
    fn empty_and_reset_behave() {
        let h = Hist::new();
        assert_eq!(
            h.summary(),
            HistSummary {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0,
                buckets: Vec::new()
            }
        );
        h.record(500);
        assert_eq!(h.count(), 1);
        let s = h.summary();
        assert_eq!((s.min, s.max), (500, 500));
        assert_eq!(s.sum, 500);
        assert_eq!(s.p50, 500, "single value: quantiles clamp to it");
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot(), HistSnapshot::empty());
    }

    #[test]
    fn summary_buckets_are_sparse_sorted_and_complete() {
        let mut rng = XorShift(123);
        let h = Hist::new();
        let mut sum = 0u64;
        for _ in 0..300 {
            let v = rng.next() % 100_000;
            sum += v;
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.sum, sum);
        assert!(!s.buckets.is_empty());
        assert!(s.buckets.iter().all(|&(_, n)| n > 0), "no empty buckets in the sparse form");
        assert!(s.buckets.windows(2).all(|w| w[0].0 < w[1].0), "ascending upper bounds");
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), s.count);
        assert!(s.buckets.last().unwrap().0 >= s.max, "last bound covers the max");
    }
}
