//! The workspace metric registry: one static per instrumented quantity,
//! grouped by subsystem, plus [`snapshot`] / [`reset_all`].
//!
//! Statics live here (rather than in the instrumented crates) so the
//! reporter can enumerate every metric without a registration step and
//! so crates need only a one-line `add` at each instrumentation point.
//!
//! All counters are additive-commutative: after any deterministic
//! computation their totals are independent of the thread count that
//! executed it. The only non-counter state is the Monte-Carlo half-width
//! [`Series`], which is pushed exclusively from the engines' *serial*
//! stopping-rule replay and is therefore equally deterministic.

use crate::hist::Hist;
use crate::report::{Section, Snapshot, Value};
use crate::{trace, Counter, Gauge, MaxGauge, Series, ShardedCounter, TimerNs};

/// Schema tag stamped into every JSON dump.
pub const SCHEMA: &str = "hlpower-obs/2";

/// Numeric schema version (the `schema_version` JSON field).
///
/// v2 added `schema_version` itself, histogram-valued metrics
/// (`Value::Hist`), and the union semantics of `Snapshot::delta`.
pub const SCHEMA_VERSION: u32 = 2;

// --- Zero-delay simulator -------------------------------------------------

/// Clock cycles stepped by the zero-delay simulator (including the
/// initializing first vector of each run).
pub static SIM_ZD_STEPS: ShardedCounter = ShardedCounter::new();
/// Gate evaluations performed by the zero-delay simulator (every gate
/// settles once per step / combinational evaluation).
pub static SIM_ZD_GATE_EVALS: ShardedCounter = ShardedCounter::new();
/// Measured cycles flushed through `take_activity`.
pub static SIM_ZD_CYCLES: ShardedCounter = ShardedCounter::new();
/// Node transitions flushed through `take_activity`.
pub static SIM_ZD_TOGGLES: ShardedCounter = ShardedCounter::new();

// --- Packed 64-lane simulator ---------------------------------------------

/// Word steps taken by the lane-parallel packed simulator (each advances
/// up to 64 lanes one cycle).
pub static SIM64_STEPS: ShardedCounter = ShardedCounter::new();
/// Word-wide gate evaluations by the packed engines (multiply by 64 for
/// the scalar-equivalent gate-evaluation count).
pub static SIM64_GATE_EVALS: ShardedCounter = ShardedCounter::new();
/// Counted lane-cycles: active lanes per counted step (lane-parallel) or
/// valid cycles per block (time-parallel).
pub static SIM64_LANE_CYCLES: ShardedCounter = ShardedCounter::new();
/// Node transitions flushed out of the packed toggle planes.
pub static SIM64_TOGGLES: ShardedCounter = ShardedCounter::new();
/// Time-packed combinational blocks evaluated (up to 64 cycles each).
pub static SIM64_BLOCKS: ShardedCounter = ShardedCounter::new();

// --- Event-driven simulator -----------------------------------------------

/// Clock cycles stepped by the event-driven simulator.
pub static SIM_EV_STEPS: ShardedCounter = ShardedCounter::new();
/// Events processed (heap pops) by the event-driven simulator.
pub static SIM_EV_EVENTS: ShardedCounter = ShardedCounter::new();
/// Distribution of the event heap's depth, sampled once per step after
/// the initial schedule (how bursty the timed activity is).
pub static SIM_EV_QUEUE_DEPTH: Hist = Hist::new();
/// All transitions (functional + glitch) flushed through `take_activity`.
pub static SIM_EV_TRANSITIONS: ShardedCounter = ShardedCounter::new();
/// Glitch transitions flushed through `take_activity`.
pub static SIM_EV_GLITCHES: ShardedCounter = ShardedCounter::new();
/// Measured cycles flushed through `take_activity`.
pub static SIM_EV_CYCLES: ShardedCounter = ShardedCounter::new();

// --- Packed 64-lane timed simulator ---------------------------------------

/// Word steps taken by the packed timed simulator (each advances up to 64
/// lanes one cycle, or replays up to 64 stream transitions).
pub static SIM_EVP_STEPS: ShardedCounter = ShardedCounter::new();
/// Word-wide timed events processed (one coalesces up to 64 scalar heap
/// pops at a single `(time, node)` point).
pub static SIM_EVP_EVENTS: ShardedCounter = ShardedCounter::new();
/// Counted lane-cycles: active lanes per counted step or transition block.
pub static SIM_EVP_LANE_CYCLES: ShardedCounter = ShardedCounter::new();
/// All transitions (functional + glitch) flushed through
/// `take_lane_activities`.
pub static SIM_EVP_TRANSITIONS: ShardedCounter = ShardedCounter::new();
/// Glitch transitions flushed through `take_lane_activities`.
pub static SIM_EVP_GLITCHES: ShardedCounter = ShardedCounter::new();

// --- Incremental (dirty-cone) re-simulation --------------------------------

/// Full time-packed recordings taken by `IncrementalSim::record`.
pub static SIM_INC_RECORDS: Counter = Counter::new();
/// Dirty-cone re-simulations answered from the cache
/// (`IncrementalSim::resim`).
pub static SIM_INC_RESIMS: Counter = Counter::new();
/// Nodes re-evaluated across all dirty cones.
pub static SIM_INC_CONE_NODES: Counter = Counter::new();
/// Nodes whose cached packed values were reused verbatim (the work an
/// equivalent full replay would have repeated).
pub static SIM_INC_REUSED_NODES: Counter = Counter::new();

// --- Optimization candidate search ------------------------------------------

/// Candidates scored across all optimize-pass searches (guard, rewrite,
/// precompute, clockgate, retime, balance, shutdown).
pub static OPT_CANDIDATES_EVALUATED: Counter = Counter::new();
/// Candidates accepted into the evolving netlist / policy.
pub static OPT_CANDIDATES_ACCEPTED: Counter = Counter::new();
/// Distribution of dirty-cone sizes (nodes re-evaluated per scored
/// candidate) — how local the searches' edits are.
pub static OPT_CONE_SIZE: Hist = Hist::new();
/// Packed 64-cycle words replayed by incremental candidate scoring (the
/// work actually done, vs. `nodes x blocks` a full replay would cost).
pub static OPT_RESIM_WORDS: Counter = Counter::new();

// --- BDD manager ----------------------------------------------------------

/// Recursive ITE calls (batched per top-level `ite`).
pub static BDD_ITE_CALLS: ShardedCounter = ShardedCounter::new();
/// ITE memo-cache hits.
pub static BDD_ITE_CACHE_HITS: ShardedCounter = ShardedCounter::new();
/// Decision nodes created (unique-table inserts).
pub static BDD_NODES_CREATED: ShardedCounter = ShardedCounter::new();
/// Largest unique table (total node count) seen in any single manager.
pub static BDD_UNIQUE_TABLE_PEAK: MaxGauge = MaxGauge::new();
/// Calls to `BddManager::sift`.
pub static BDD_SIFT_ROUNDS: Counter = Counter::new();
/// Candidate variable positions evaluated during sifting.
pub static BDD_SIFT_CANDIDATE_ORDERS: Counter = Counter::new();
/// Accepted sifting moves (a variable actually changed position).
pub static BDD_SIFT_MOVES: Counter = Counter::new();
/// Wall-clock time spent inside `sift`.
pub static BDD_SIFT_TIME: TimerNs = TimerNs::new();
/// Distribution of unique-table hash-chain lengths, sampled at each node
/// insert (occupancy of the node's virtual hash bucket after the insert —
/// a direct collision-pressure indicator for the unique table).
pub static BDD_UNIQUE_CHAIN_LEN: Hist = Hist::new();

// --- Monte-Carlo engine ---------------------------------------------------

/// Monte-Carlo estimation runs started (serial + seeded engines).
pub static MC_RUNS: Counter = Counter::new();
/// Batches whose power sample was consumed by the stopping rule.
pub static MC_BATCHES: Counter = Counter::new();
/// Cycles contributing to consumed batches.
pub static MC_CYCLES: Counter = Counter::new();
/// Scheduling waves dispatched by the parallel engine.
pub static MC_WAVES: Counter = Counter::new();
/// Speculative batches simulated but discarded at the stop point.
pub static MC_DISCARDED_BATCHES: Counter = Counter::new();
/// Wall-clock time inside the Monte-Carlo entry points.
pub static MC_TIME: TimerNs = TimerNs::new();
/// Confidence-interval half-width (µW) after each consumed batch, in
/// batch order (recorded from the serial stopping-rule replay only, so
/// the trajectory is thread-count-invariant).
pub static MC_CI_HALF_WIDTH_UW: Series = Series::new();
/// Distribution of per-batch simulation wall times in nanoseconds
/// (recorded by every Monte-Carlo kernel, scalar and packed, on the
/// thread that ran the batch).
pub static MC_BATCH_NS: Hist = Hist::new();
/// Distribution of confidence-interval half-widths in nanowatts (µW ×
/// 1000, quantized to integers for the log-linear buckets), recorded at
/// the same serial stopping-rule replay points as
/// [`MC_CI_HALF_WIDTH_UW`].
pub static MC_CI_HALF_WIDTH_NW: Hist = Hist::new();

// --- Worker pool ----------------------------------------------------------

/// Parallel jobs dispatched by `par::map_with_threads` (serial fast-path
/// calls are counted in `pool.tasks` but not here).
pub static POOL_JOBS: Counter = Counter::new();
/// Work items processed (both pooled and serial fast-path).
pub static POOL_TASKS: ShardedCounter = ShardedCounter::new();
/// Scoped workers spawned across all pooled jobs.
pub static POOL_WORKERS_SPAWNED: Counter = Counter::new();
/// Summed wall-clock time workers spent claiming and running tasks.
pub static POOL_BUSY_NS: Counter = Counter::new();
/// Summed worker idle time: `workers x job wall time - busy` (claim
/// contention and end-of-job starvation; the pool claims from a shared
/// counter rather than stealing, so this is the steal-time analogue).
pub static POOL_IDLE_NS: Counter = Counter::new();
/// Wall-clock time of pooled jobs (span per job).
pub static POOL_WALL: TimerNs = TimerNs::new();

// --- Estimators -----------------------------------------------------------

/// Co-simulation runs (`estimate::sampling::cosimulate`).
pub static EST_COSIM_RUNS: Counter = Counter::new();
/// Sampler group means computed by the sampling co-simulator.
pub static EST_SAMPLER_GROUPS: Counter = Counter::new();
/// Cycle records evaluated through a trained macro-model.
pub static EST_MACRO_PREDICTIONS: ShardedCounter = ShardedCounter::new();
/// Macro-model regressions fitted.
pub static EST_MACRO_FITS: Counter = Counter::new();

// --- Estimation server ----------------------------------------------------

/// HTTP requests accepted by the estimation server.
pub static SERVE_REQUESTS: Counter = Counter::new();
/// Requests answered with a 2xx status.
pub static SERVE_REQUESTS_OK: Counter = Counter::new();
/// Requests answered with a 4xx/5xx status.
pub static SERVE_REQUESTS_ERR: Counter = Counter::new();
/// Estimation jobs whose compiled kernel was found in the cache.
pub static SERVE_CACHE_HITS: Counter = Counter::new();
/// Estimation jobs that missed the kernel cache and compiled.
pub static SERVE_CACHE_MISSES: Counter = Counter::new();
/// Cached circuits evicted to respect the cache byte budget.
pub static SERVE_CACHE_EVICTIONS: Counter = Counter::new();
/// Estimation jobs completed (one per `/estimate` netlist).
pub static SERVE_JOBS: Counter = Counter::new();
/// Packed words simulated by the multi-tenant lane packer.
pub static SERVE_PACKED_WORDS: Counter = Counter::new();
/// Tenant lanes carried by those words.
pub static SERVE_PACKED_LANES: Counter = Counter::new();
/// Distribution of live lanes per packed word (multi-tenant occupancy;
/// a mode above 1 means concurrent jobs are actually sharing words).
pub static SERVE_LANE_OCCUPANCY: Hist = Hist::new();
/// Distribution of per-request wall times in nanoseconds.
pub static SERVE_REQUEST_NS: Hist = Hist::new();
/// Incremental confidence-interval updates streamed to clients.
pub static SERVE_STREAMED_UPDATES: Counter = Counter::new();
/// TCP connections accepted by the estimation server.
pub static SERVE_CONNECTIONS: Counter = Counter::new();
/// Connections that served more than one request (HTTP/1.1 keep-alive
/// reuse).
pub static SERVE_CONNECTIONS_REUSED: Counter = Counter::new();

// --- Estimation server: per-stage pipeline --------------------------------
//
// One latency histogram per `ctx::Stage` (per-request attributed
// nanoseconds, recorded when the request finishes) plus the live gauges
// future admission control will read.

/// Per-request JSON parse + netlist compile time.
pub static SERVE_STAGE_PARSE_NS: Hist = Hist::new();
/// Per-request kernel-cache lock/lookup/insert time.
pub static SERVE_STAGE_CACHE_NS: Hist = Hist::new();
/// Per-request batcher queue wait (submit → first planning round).
pub static SERVE_STAGE_QUEUE_NS: Hist = Hist::new();
/// Per-request lane-packing plan time (round wall time, attributed to
/// each member of the round).
pub static SERVE_STAGE_PACK_NS: Hist = Hist::new();
/// Per-request packed-simulation time (round parallel-map wall time,
/// attributed to each member of the round).
pub static SERVE_STAGE_SIM_NS: Hist = Hist::new();
/// Per-request demux/response-build/serialize time.
pub static SERVE_STAGE_FINALIZE_NS: Hist = Hist::new();
/// Estimation jobs currently waiting or running in the batcher.
pub static SERVE_QUEUE_DEPTH: Gauge = Gauge::new();
/// HTTP requests currently being handled.
pub static SERVE_IN_FLIGHT: Gauge = Gauge::new();
/// Tenant lanes occupied by the simulation round in progress (0 between
/// rounds).
pub static SERVE_LANES_BUSY: Gauge = Gauge::new();

/// Captures every registered metric into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let ite_calls = BDD_ITE_CALLS.get();
    let ite_hits = BDD_ITE_CACHE_HITS.get();
    Snapshot {
        schema: SCHEMA,
        schema_version: SCHEMA_VERSION,
        sections: vec![
            Section {
                name: "sim_zero_delay",
                entries: vec![
                    ("steps", Value::Count(SIM_ZD_STEPS.get())),
                    ("gate_evals", Value::Count(SIM_ZD_GATE_EVALS.get())),
                    ("cycles", Value::Count(SIM_ZD_CYCLES.get())),
                    ("toggles", Value::Count(SIM_ZD_TOGGLES.get())),
                ],
            },
            Section {
                name: "sim_packed",
                entries: vec![
                    ("steps", Value::Count(SIM64_STEPS.get())),
                    ("gate_evals", Value::Count(SIM64_GATE_EVALS.get())),
                    ("lane_cycles", Value::Count(SIM64_LANE_CYCLES.get())),
                    ("toggles", Value::Count(SIM64_TOGGLES.get())),
                    ("blocks", Value::Count(SIM64_BLOCKS.get())),
                ],
            },
            Section {
                name: "sim_event",
                entries: vec![
                    ("steps", Value::Count(SIM_EV_STEPS.get())),
                    ("events", Value::Count(SIM_EV_EVENTS.get())),
                    ("transitions", Value::Count(SIM_EV_TRANSITIONS.get())),
                    ("glitches", Value::Count(SIM_EV_GLITCHES.get())),
                    ("cycles", Value::Count(SIM_EV_CYCLES.get())),
                    ("queue_depth", Value::Hist(SIM_EV_QUEUE_DEPTH.summary())),
                ],
            },
            Section {
                name: "sim_ev_packed",
                entries: vec![
                    ("steps", Value::Count(SIM_EVP_STEPS.get())),
                    ("events", Value::Count(SIM_EVP_EVENTS.get())),
                    ("lane_cycles", Value::Count(SIM_EVP_LANE_CYCLES.get())),
                    ("transitions", Value::Count(SIM_EVP_TRANSITIONS.get())),
                    ("glitches", Value::Count(SIM_EVP_GLITCHES.get())),
                ],
            },
            Section {
                name: "sim_incremental",
                entries: vec![
                    ("records", Value::Count(SIM_INC_RECORDS.get())),
                    ("resims", Value::Count(SIM_INC_RESIMS.get())),
                    ("cone_nodes", Value::Count(SIM_INC_CONE_NODES.get())),
                    ("reused_nodes", Value::Count(SIM_INC_REUSED_NODES.get())),
                ],
            },
            Section {
                name: "opt_search",
                entries: vec![
                    ("candidates_evaluated", Value::Count(OPT_CANDIDATES_EVALUATED.get())),
                    ("candidates_accepted", Value::Count(OPT_CANDIDATES_ACCEPTED.get())),
                    ("cone_size", Value::Hist(OPT_CONE_SIZE.summary())),
                    ("resim_words", Value::Count(OPT_RESIM_WORDS.get())),
                ],
            },
            Section {
                name: "bdd",
                entries: vec![
                    ("ite_calls", Value::Count(ite_calls)),
                    ("ite_cache_hits", Value::Count(ite_hits)),
                    ("ite_cache_misses", Value::Count(ite_calls.saturating_sub(ite_hits))),
                    ("nodes_created", Value::Count(BDD_NODES_CREATED.get())),
                    ("unique_table_peak", Value::Count(BDD_UNIQUE_TABLE_PEAK.get())),
                    ("sift_rounds", Value::Count(BDD_SIFT_ROUNDS.get())),
                    ("sift_candidate_orders", Value::Count(BDD_SIFT_CANDIDATE_ORDERS.get())),
                    ("sift_moves", Value::Count(BDD_SIFT_MOVES.get())),
                    ("sift_time_ns", Value::Nanos(BDD_SIFT_TIME.total_ns())),
                    ("unique_chain_len", Value::Hist(BDD_UNIQUE_CHAIN_LEN.summary())),
                ],
            },
            Section {
                name: "monte_carlo",
                entries: vec![
                    ("runs", Value::Count(MC_RUNS.get())),
                    ("batches", Value::Count(MC_BATCHES.get())),
                    ("cycles", Value::Count(MC_CYCLES.get())),
                    ("waves", Value::Count(MC_WAVES.get())),
                    ("discarded_batches", Value::Count(MC_DISCARDED_BATCHES.get())),
                    ("time_ns", Value::Nanos(MC_TIME.total_ns())),
                    ("ci_half_width_uw", Value::Series(MC_CI_HALF_WIDTH_UW.snapshot())),
                    ("batch_ns", Value::Hist(MC_BATCH_NS.summary())),
                    ("ci_half_width_nw", Value::Hist(MC_CI_HALF_WIDTH_NW.summary())),
                ],
            },
            Section {
                name: "pool",
                entries: vec![
                    ("jobs", Value::Count(POOL_JOBS.get())),
                    ("tasks", Value::Count(POOL_TASKS.get())),
                    ("workers_spawned", Value::Count(POOL_WORKERS_SPAWNED.get())),
                    ("busy_ns", Value::Nanos(POOL_BUSY_NS.get())),
                    ("idle_ns", Value::Nanos(POOL_IDLE_NS.get())),
                    ("wall_ns", Value::Nanos(POOL_WALL.total_ns())),
                ],
            },
            Section {
                name: "estimate",
                entries: vec![
                    ("cosim_runs", Value::Count(EST_COSIM_RUNS.get())),
                    ("sampler_groups", Value::Count(EST_SAMPLER_GROUPS.get())),
                    ("macro_predictions", Value::Count(EST_MACRO_PREDICTIONS.get())),
                    ("macro_fits", Value::Count(EST_MACRO_FITS.get())),
                ],
            },
            Section {
                name: "serve",
                entries: vec![
                    ("requests", Value::Count(SERVE_REQUESTS.get())),
                    ("requests_ok", Value::Count(SERVE_REQUESTS_OK.get())),
                    ("requests_err", Value::Count(SERVE_REQUESTS_ERR.get())),
                    ("cache_hits", Value::Count(SERVE_CACHE_HITS.get())),
                    ("cache_misses", Value::Count(SERVE_CACHE_MISSES.get())),
                    ("cache_evictions", Value::Count(SERVE_CACHE_EVICTIONS.get())),
                    ("jobs", Value::Count(SERVE_JOBS.get())),
                    ("packed_words", Value::Count(SERVE_PACKED_WORDS.get())),
                    ("packed_lanes", Value::Count(SERVE_PACKED_LANES.get())),
                    ("lane_occupancy", Value::Hist(SERVE_LANE_OCCUPANCY.summary())),
                    ("request_ns", Value::Hist(SERVE_REQUEST_NS.summary())),
                    ("streamed_updates", Value::Count(SERVE_STREAMED_UPDATES.get())),
                    ("connections", Value::Count(SERVE_CONNECTIONS.get())),
                    ("connections_reused", Value::Count(SERVE_CONNECTIONS_REUSED.get())),
                ],
            },
            Section {
                name: "serve_stage",
                entries: vec![
                    ("parse_ns", Value::Hist(SERVE_STAGE_PARSE_NS.summary())),
                    ("cache_ns", Value::Hist(SERVE_STAGE_CACHE_NS.summary())),
                    ("queue_ns", Value::Hist(SERVE_STAGE_QUEUE_NS.summary())),
                    ("pack_ns", Value::Hist(SERVE_STAGE_PACK_NS.summary())),
                    ("sim_ns", Value::Hist(SERVE_STAGE_SIM_NS.summary())),
                    ("finalize_ns", Value::Hist(SERVE_STAGE_FINALIZE_NS.summary())),
                    ("queue_depth", Value::Gauge(SERVE_QUEUE_DEPTH.get())),
                    ("in_flight", Value::Gauge(SERVE_IN_FLIGHT.get())),
                    ("lanes_busy", Value::Gauge(SERVE_LANES_BUSY.get())),
                ],
            },
            Section {
                name: "trace",
                entries: vec![
                    ("dropped", Value::Count(trace::dropped())),
                    ("ring_dropped", Value::Count(trace::ring_dropped())),
                    ("sink_dropped", Value::Count(trace::sink_dropped())),
                ],
            },
        ],
    }
}

/// The histogram backing each [`crate::ctx::Stage`]'s latency
/// distribution in the `serve_stage` section.
pub fn stage_hist(stage: crate::ctx::Stage) -> &'static Hist {
    use crate::ctx::Stage;
    match stage {
        Stage::Parse => &SERVE_STAGE_PARSE_NS,
        Stage::Cache => &SERVE_STAGE_CACHE_NS,
        Stage::Queue => &SERVE_STAGE_QUEUE_NS,
        Stage::Pack => &SERVE_STAGE_PACK_NS,
        Stage::Sim => &SERVE_STAGE_SIM_NS,
        Stage::Finalize => &SERVE_STAGE_FINALIZE_NS,
    }
}

/// Resets every registered metric to zero.
///
/// Intended for process-local baselines (e.g. before a metrics smoke run)
/// and tests; concurrent instrumented work will interleave with the
/// reset, so callers wanting exact attribution should quiesce first or
/// use [`Snapshot::delta`] instead.
pub fn reset_all() {
    SIM_ZD_STEPS.reset();
    SIM_ZD_GATE_EVALS.reset();
    SIM_ZD_CYCLES.reset();
    SIM_ZD_TOGGLES.reset();
    SIM64_STEPS.reset();
    SIM64_GATE_EVALS.reset();
    SIM64_LANE_CYCLES.reset();
    SIM64_TOGGLES.reset();
    SIM64_BLOCKS.reset();
    SIM_EV_STEPS.reset();
    SIM_EV_EVENTS.reset();
    SIM_EV_QUEUE_DEPTH.reset();
    SIM_EV_TRANSITIONS.reset();
    SIM_EV_GLITCHES.reset();
    SIM_EV_CYCLES.reset();
    SIM_EVP_STEPS.reset();
    SIM_EVP_EVENTS.reset();
    SIM_EVP_LANE_CYCLES.reset();
    SIM_EVP_TRANSITIONS.reset();
    SIM_EVP_GLITCHES.reset();
    SIM_INC_RECORDS.reset();
    SIM_INC_RESIMS.reset();
    SIM_INC_CONE_NODES.reset();
    SIM_INC_REUSED_NODES.reset();
    OPT_CANDIDATES_EVALUATED.reset();
    OPT_CANDIDATES_ACCEPTED.reset();
    OPT_CONE_SIZE.reset();
    OPT_RESIM_WORDS.reset();
    BDD_ITE_CALLS.reset();
    BDD_ITE_CACHE_HITS.reset();
    BDD_NODES_CREATED.reset();
    BDD_UNIQUE_TABLE_PEAK.reset();
    BDD_SIFT_ROUNDS.reset();
    BDD_SIFT_CANDIDATE_ORDERS.reset();
    BDD_SIFT_MOVES.reset();
    BDD_SIFT_TIME.reset();
    BDD_UNIQUE_CHAIN_LEN.reset();
    MC_RUNS.reset();
    MC_BATCHES.reset();
    MC_CYCLES.reset();
    MC_WAVES.reset();
    MC_DISCARDED_BATCHES.reset();
    MC_TIME.reset();
    MC_CI_HALF_WIDTH_UW.reset();
    MC_BATCH_NS.reset();
    MC_CI_HALF_WIDTH_NW.reset();
    POOL_JOBS.reset();
    POOL_TASKS.reset();
    POOL_WORKERS_SPAWNED.reset();
    POOL_BUSY_NS.reset();
    POOL_IDLE_NS.reset();
    POOL_WALL.reset();
    EST_COSIM_RUNS.reset();
    EST_SAMPLER_GROUPS.reset();
    EST_MACRO_PREDICTIONS.reset();
    EST_MACRO_FITS.reset();
    SERVE_REQUESTS.reset();
    SERVE_REQUESTS_OK.reset();
    SERVE_REQUESTS_ERR.reset();
    SERVE_CACHE_HITS.reset();
    SERVE_CACHE_MISSES.reset();
    SERVE_CACHE_EVICTIONS.reset();
    SERVE_JOBS.reset();
    SERVE_PACKED_WORDS.reset();
    SERVE_PACKED_LANES.reset();
    SERVE_LANE_OCCUPANCY.reset();
    SERVE_REQUEST_NS.reset();
    SERVE_STREAMED_UPDATES.reset();
    SERVE_CONNECTIONS.reset();
    SERVE_CONNECTIONS_REUSED.reset();
    SERVE_STAGE_PARSE_NS.reset();
    SERVE_STAGE_CACHE_NS.reset();
    SERVE_STAGE_QUEUE_NS.reset();
    SERVE_STAGE_PACK_NS.reset();
    SERVE_STAGE_SIM_NS.reset();
    SERVE_STAGE_FINALIZE_NS.reset();
    SERVE_QUEUE_DEPTH.reset();
    SERVE_IN_FLIGHT.reset();
    SERVE_LANES_BUSY.reset();
    // The trace section's drop counters reset with `trace::reset()`
    // (they belong to the trace sink, not this registry).
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_covers_all_sections() {
        let s = snapshot();
        let names: Vec<&str> = s.sections.iter().map(|x| x.name).collect();
        assert_eq!(
            names,
            vec![
                "sim_zero_delay",
                "sim_packed",
                "sim_event",
                "sim_ev_packed",
                "sim_incremental",
                "opt_search",
                "bdd",
                "monte_carlo",
                "pool",
                "estimate",
                "serve",
                "serve_stage",
                "trace"
            ]
        );
        // Every section renders into both output formats.
        let text = s.render_text();
        let json = s.to_json_pretty();
        for n in names {
            assert!(text.contains(&format!("[{n}]")));
            assert!(json.contains(&format!("\"{n}\"")));
        }
    }

    #[test]
    fn snapshot_reflects_metric_updates_monotonically() {
        // No reset here: other tests in this binary may run concurrently,
        // so assert monotone growth via delta instead of absolute values.
        let before = snapshot();
        SIM_ZD_STEPS.add(7);
        BDD_ITE_CALLS.add(3);
        BDD_ITE_CACHE_HITS.add(1);
        let d = snapshot().delta(&before);
        assert!(d.count("sim_zero_delay", "steps").unwrap() >= 7);
        assert!(d.count("bdd", "ite_calls").unwrap() >= 3);
        // Derived misses stay consistent: calls - hits.
        let s = snapshot();
        assert_eq!(
            s.count("bdd", "ite_cache_misses").unwrap(),
            s.count("bdd", "ite_calls").unwrap() - s.count("bdd", "ite_cache_hits").unwrap()
        );
    }
}
