//! The Tiwari instruction-level power model (survey §II-A, reference 7):
//!
//! ```text
//! Energy_p = sum_i BC_i * N_i  +  sum_{i,j} SC_{i,j} * N_{i,j}  +  sum_k OC_k
//! ```
//!
//! Base costs `BC` and circuit-state costs `SC` are *characterized* by
//! running synthetic micro-benchmarks on the architectural simulator —
//! exactly how the original work characterized real processors with a
//! current probe — and the model is then evaluated against full programs.

use std::collections::HashMap;

use crate::isa::{Instr, OpClass, Program, Reg};
use crate::machine::{Machine, MachineConfig, RunStats, SwError};

/// Energy of a run with the "other effects" (cache misses, mispredicts,
/// stalls) removed, so that characterization isolates pure instruction
/// costs. The other-effect unit costs are the same ones the model carries
/// in its `OC` terms, so nothing is double counted at prediction time.
fn instruction_only_energy(stats: &RunStats, config: &MachineConfig) -> f64 {
    let e = &config.energy;
    stats.energy_pj
        - stats.imisses as f64 * (e.imiss_pj + e.stall_pj * config.imiss_penalty as f64)
        - stats.dmisses as f64 * (e.dmiss_pj + e.stall_pj * config.dmiss_penalty as f64)
        - stats.mispredicts as f64
            * (e.mispredict_pj + e.stall_pj * config.mispredict_penalty as f64)
        - stats.stalls as f64 * e.stall_pj
}

/// A characterized instruction-level energy model.
#[derive(Debug, Clone, PartialEq)]
pub struct TiwariModel {
    /// Base energy cost per instruction class, in picojoules.
    pub base_cost_pj: [f64; 7],
    /// Circuit-state overhead per (previous, next) class pair, in
    /// picojoules (what remains after base costs are charged).
    pub state_cost_pj: HashMap<(OpClass, OpClass), f64>,
    /// Other-effect costs: per instruction-cache miss.
    pub imiss_pj: f64,
    /// Per data-cache miss.
    pub dmiss_pj: f64,
    /// Per branch misprediction.
    pub mispredict_pj: f64,
    /// Per load-use stall cycle.
    pub stall_pj: f64,
}

/// A representative instruction of each class, used by the
/// characterization micro-benchmarks. Registers are chosen hazard-free.
fn representative(class: OpClass) -> Instr {
    match class {
        OpClass::Alu => Instr::Add(Reg(1), Reg(2), Reg(3)),
        OpClass::Mul => Instr::Mul(Reg(4), Reg(5), Reg(6)),
        OpClass::Load => Instr::Ld(Reg(7), Reg::ZERO, 0),
        OpClass::Store => Instr::St(Reg::ZERO, Reg(8), 1),
        OpClass::Branch => Instr::Beq(Reg(9), Reg(10), 1),
        OpClass::Jump => Instr::Jmp(1),
        OpClass::Nop => Instr::Nop,
    }
}

fn straightline(body: Vec<Instr>) -> Program {
    let mut code = body;
    code.push(Instr::Halt);
    Program { code, data: vec![0; 64] }
}

/// Marginal per-instruction energy of a repeated straight-line body, with
/// other-effect energy (cold-cache fetch misses of the long body, etc.)
/// subtracted out.
fn marginal_energy(machine: &mut Machine, body: &[Instr], reps_a: usize, reps_b: usize) -> f64 {
    let config = machine.config().clone();
    let run = |reps: usize, m: &mut Machine| -> f64 {
        let mut code = Vec::with_capacity(body.len() * reps);
        for _ in 0..reps {
            code.extend_from_slice(body);
        }
        let p = straightline(code);
        let stats = m.run(&p, 10_000_000).expect("microbenchmark halts");
        instruction_only_energy(&stats, &config)
    };
    let ea = run(reps_a, machine);
    let eb = run(reps_b, machine);
    (eb - ea) / ((reps_b - reps_a) as f64 * body.len() as f64)
}

/// Characterizes a Tiwari model against the given machine configuration by
/// running per-class and per-pair micro-benchmarks.
///
/// `BC_i` is the marginal per-instruction energy of a homogeneous run of
/// class `i`; `SC_{i,j}` is the residual of an alternating `i,j` run after
/// base costs; the "other effects" costs are taken from differential runs
/// with forced misses/stalls.
pub fn characterize(config: &MachineConfig) -> TiwariModel {
    let mut machine = Machine::new(config.clone());
    machine.set_trace_limit(0);
    let classes = OpClass::all();
    let mut base = [0.0f64; 7];
    for &c in &classes {
        let body = vec![representative(c)];
        base[c.index()] = marginal_energy(&mut machine, &body, 64, 256);
    }
    let mut state = HashMap::new();
    for &a in &classes {
        for &b in &classes {
            if a == b {
                state.insert((a, b), 0.0);
                continue;
            }
            // Branches/jumps in alternation change control flow; use
            // not-taken conditionals (regs equal-never) and skip jump
            // pairs, falling back to the class-switch average measured on
            // safe pairs.
            if a == OpClass::Jump || b == OpClass::Jump {
                continue;
            }
            let body = vec![representative(a), representative(b)];
            let per_instr = marginal_energy(&mut machine, &body, 64, 256);
            // Per pair of instructions: 2*per_instr; subtract both bases;
            // split across the two directed transitions (i->j and j->i).
            let overhead = (2.0 * per_instr - base[a.index()] - base[b.index()]) / 2.0;
            state.insert((a, b), overhead.max(0.0));
        }
    }
    // Fill jump pairs with the mean measured overhead.
    let mean: f64 = {
        let vals: Vec<f64> = state.iter().filter(|(&(a, b), _)| a != b).map(|(_, &v)| v).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    for &a in &classes {
        for &b in &classes {
            state.entry((a, b)).or_insert(if a == b { 0.0 } else { mean });
        }
    }
    TiwariModel {
        base_cost_pj: base,
        state_cost_pj: state,
        imiss_pj: config.energy.imiss_pj + config.energy.stall_pj * config.imiss_penalty as f64,
        dmiss_pj: config.energy.dmiss_pj + config.energy.stall_pj * config.dmiss_penalty as f64,
        mispredict_pj: config.energy.mispredict_pj
            + config.energy.stall_pj * config.mispredict_penalty as f64,
        stall_pj: config.energy.stall_pj,
    }
}

impl TiwariModel {
    /// Predicts the energy of a run from its instruction statistics (the
    /// model never sees the reference energy).
    pub fn predict_pj(&self, stats: &RunStats) -> f64 {
        let mut e = 0.0;
        for (i, &n) in stats.class_counts.iter().enumerate() {
            e += self.base_cost_pj[i] * n as f64;
        }
        for (&pair, &n) in &stats.pair_counts {
            e += self.state_cost_pj.get(&pair).copied().unwrap_or(0.0) * n as f64;
        }
        e += self.imiss_pj * stats.imisses as f64;
        e += self.dmiss_pj * stats.dmisses as f64;
        e += self.mispredict_pj * stats.mispredicts as f64;
        e += self.stall_pj * stats.stalls as f64;
        e
    }

    /// Runs `program` on a fresh machine, predicts its energy with the
    /// model, and returns `(reference_pj, predicted_pj, relative_error)`.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn validate(
        &self,
        config: &MachineConfig,
        program: &Program,
        max_cycles: u64,
    ) -> Result<(f64, f64, f64), SwError> {
        let mut machine = Machine::new(config.clone());
        machine.set_trace_limit(0);
        let stats = machine.run(program, max_cycles)?;
        let predicted = self.predict_pj(&stats);
        let rel = (predicted - stats.energy_pj).abs() / stats.energy_pj.max(1e-12);
        Ok((stats.energy_pj, predicted, rel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn base_costs_order_sensibly() {
        let model = characterize(&MachineConfig::default());
        // Multiply costs more than ALU; loads more than nops.
        assert!(
            model.base_cost_pj[OpClass::Mul.index()] > model.base_cost_pj[OpClass::Alu.index()]
        );
        assert!(
            model.base_cost_pj[OpClass::Load.index()] > model.base_cost_pj[OpClass::Nop.index()]
        );
    }

    #[test]
    fn state_costs_nonnegative() {
        let model = characterize(&MachineConfig::default());
        for (&(a, b), &v) in &model.state_cost_pj {
            assert!(v >= 0.0, "SC({a:?},{b:?}) = {v}");
        }
    }

    #[test]
    fn model_predicts_workloads_accurately() {
        let config = MachineConfig::default();
        let model = characterize(&config);
        for (name, p) in [
            ("stream", workloads::stream_sum(128)),
            ("matmul", workloads::matmul(6)),
            ("sort", workloads::bubble_sort(32, 1)),
            ("fir", workloads::fir(48, 8)),
        ] {
            let (reference, predicted, rel) = model.validate(&config, &p, 10_000_000).unwrap();
            assert!(
                rel < 0.10,
                "{name}: reference {reference:.0} pJ, predicted {predicted:.0} pJ, rel {rel:.3}"
            );
        }
    }
}
