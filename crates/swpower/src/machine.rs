//! The architectural simulator: caches, branch prediction, pipeline
//! stalls, and cycle-by-cycle energy accounting.
//!
//! The per-cycle energy model plays the role of the "actual current
//! measurements" of Tiwari et al. (survey reference 7): it charges a base cost
//! per executed instruction class, a circuit-state cost proportional to
//! the instruction-bus Hamming switching plus an inter-class transition
//! penalty, and event costs for cache misses, branch mispredictions, and
//! load-use stalls. The instruction-level macro-model in
//! [`crate::tiwari`] is then *characterized against* this reference.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::isa::{Instr, OpClass, Program, Reg};

/// Errors from program execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SwError {
    /// The program ran past `max_cycles` without halting.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// The program counter left the code segment.
    PcOutOfRange {
        /// The offending program counter.
        pc: i64,
    },
    /// A load or store touched an address outside data memory.
    MemOutOfRange {
        /// The offending word address.
        addr: i64,
    },
}

impl fmt::Display for SwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
            SwError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            SwError::MemOutOfRange { addr } => write!(f, "memory address {addr} out of range"),
        }
    }
}

impl Error for SwError {}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Words per block.
    pub block_words: usize,
}

impl CacheConfig {
    /// An 8 KB-style two-way cache (matching the survey's Pentium
    /// description in spirit): 64 sets x 2 ways x 4 words.
    pub fn small() -> Self {
        CacheConfig { sets: 64, ways: 2, block_words: 4 }
    }

    /// A tiny cache that misses often (for stress tests).
    pub fn tiny() -> Self {
        CacheConfig { sets: 4, ways: 1, block_words: 2 }
    }
}

/// Per-event energy costs, in picojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyCosts {
    /// Base cost per instruction class (indexed by [`OpClass::index`]).
    pub base_pj: [f64; 7],
    /// Cost per toggled instruction-bus bit.
    pub bus_pj_per_bit: f64,
    /// Extra cost when consecutive instructions belong to different
    /// classes (circuit-state effect).
    pub class_switch_pj: f64,
    /// Instruction-cache miss.
    pub imiss_pj: f64,
    /// Data-cache miss.
    pub dmiss_pj: f64,
    /// Branch misprediction.
    pub mispredict_pj: f64,
    /// Per stall cycle.
    pub stall_pj: f64,
}

impl Default for EnergyCosts {
    fn default() -> Self {
        EnergyCosts {
            // Alu, Mul, Load, Store, Branch, Jump, Nop
            base_pj: [8.0, 32.0, 18.0, 16.0, 7.0, 6.0, 2.0],
            bus_pj_per_bit: 0.4,
            class_switch_pj: 3.5,
            imiss_pj: 42.0,
            dmiss_pj: 55.0,
            mispredict_pj: 11.0,
            stall_pj: 2.0,
        }
    }
}

/// Machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Instruction-cache geometry.
    pub icache: CacheConfig,
    /// Data-cache geometry.
    pub dcache: CacheConfig,
    /// Cycles stalled on an instruction-cache miss.
    pub imiss_penalty: u64,
    /// Cycles stalled on a data-cache miss.
    pub dmiss_penalty: u64,
    /// Cycles lost to a branch misprediction.
    pub mispredict_penalty: u64,
    /// Data memory size in words.
    pub memory_words: usize,
    /// Energy model.
    pub energy: EnergyCosts,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            icache: CacheConfig::small(),
            dcache: CacheConfig::small(),
            imiss_penalty: 8,
            dmiss_penalty: 12,
            mispredict_penalty: 3,
            memory_words: 1 << 16,
            energy: EnergyCosts::default(),
        }
    }
}

/// Statistics and energy from one program run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Total cycles (including stalls and penalties).
    pub cycles: u64,
    /// Total energy, in picojoules.
    pub energy_pj: f64,
    /// Per-class dynamic counts (indexed by [`OpClass::index`]).
    pub class_counts: [u64; 7],
    /// Dynamic counts of consecutive class pairs `(prev, next)`.
    pub pair_counts: HashMap<(OpClass, OpClass), u64>,
    /// Instruction-cache misses.
    pub imisses: u64,
    /// Instruction-cache accesses.
    pub iaccesses: u64,
    /// Data-cache misses.
    pub dmisses: u64,
    /// Data-cache accesses.
    pub daccesses: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Load-use stall cycles.
    pub stalls: u64,
    /// Total instruction-bus bit transitions.
    pub bus_transitions: u64,
    /// Final register file (for functional checks).
    pub regs: [i64; 16],
    /// The dynamic trace of executed instruction indices (capped; empty if
    /// tracing was disabled).
    pub trace: Vec<usize>,
}

impl RunStats {
    /// Average power in energy units per cycle.
    pub fn power_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.energy_pj / self.cycles as f64
        }
    }

    /// Instruction-cache miss rate.
    pub fn imiss_rate(&self) -> f64 {
        if self.iaccesses == 0 {
            0.0
        } else {
            self.imisses as f64 / self.iaccesses as f64
        }
    }

    /// Data-cache miss rate.
    pub fn dmiss_rate(&self) -> f64 {
        if self.daccesses == 0 {
            0.0
        } else {
            self.dmisses as f64 / self.daccesses as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Instruction mix as fractions per class.
    pub fn instruction_mix(&self) -> [f64; 7] {
        let n = self.instructions.max(1) as f64;
        let mut mix = [0.0; 7];
        for (i, &c) in self.class_counts.iter().enumerate() {
            mix[i] = c as f64 / n;
        }
        mix
    }
}

#[derive(Debug, Clone)]
struct Cache {
    cfg: CacheConfig,
    /// tags[set][way] and LRU stamps.
    tags: Vec<Vec<Option<u64>>>,
    stamps: Vec<Vec<u64>>,
    tick: u64,
}

impl Cache {
    fn new(cfg: CacheConfig) -> Self {
        Cache {
            cfg,
            tags: vec![vec![None; cfg.ways]; cfg.sets],
            stamps: vec![vec![0; cfg.ways]; cfg.sets],
            tick: 0,
        }
    }

    /// Returns true on hit; updates state either way.
    fn access(&mut self, word_addr: u64) -> bool {
        self.tick += 1;
        let block = word_addr / self.cfg.block_words as u64;
        let set = (block % self.cfg.sets as u64) as usize;
        let tag = block / self.cfg.sets as u64;
        for w in 0..self.cfg.ways {
            if self.tags[set][w] == Some(tag) {
                self.stamps[set][w] = self.tick;
                return true;
            }
        }
        // Miss: replace LRU.
        let victim = (0..self.cfg.ways).min_by_key(|&w| self.stamps[set][w]).expect("ways >= 1");
        self.tags[set][victim] = Some(tag);
        self.stamps[set][victim] = self.tick;
        false
    }
}

/// Two-bit saturating branch predictor table.
#[derive(Debug, Clone)]
struct Predictor {
    counters: Vec<u8>,
}

impl Predictor {
    fn new() -> Self {
        Predictor { counters: vec![1; 512] }
    }

    fn predict(&self, pc: usize) -> bool {
        self.counters[pc % 512] >= 2
    }

    fn update(&mut self, pc: usize, taken: bool) {
        let c = &mut self.counters[pc % 512];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// The architectural simulator.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    trace_limit: usize,
}

impl Machine {
    /// Creates a machine with the given configuration. Dynamic traces are
    /// captured up to one million instructions by default.
    pub fn new(config: MachineConfig) -> Self {
        Machine { config, trace_limit: 1_000_000 }
    }

    /// Sets the maximum captured trace length (0 disables tracing).
    pub fn set_trace_limit(&mut self, limit: usize) {
        self.trace_limit = limit;
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs `program` to `Halt` or until `max_cycles`.
    ///
    /// # Errors
    ///
    /// Returns [`SwError::CycleLimit`] if the program does not halt in
    /// time, [`SwError::PcOutOfRange`] / [`SwError::MemOutOfRange`] on
    /// wild control flow or memory accesses.
    pub fn run(&mut self, program: &Program, max_cycles: u64) -> Result<RunStats, SwError> {
        let e = self.config.energy.clone();
        let mut regs = [0i64; 16];
        let mut mem = vec![0i64; self.config.memory_words];
        mem[..program.data.len()].copy_from_slice(&program.data);

        let mut icache = Cache::new(self.config.icache);
        let mut dcache = Cache::new(self.config.dcache);
        let mut predictor = Predictor::new();

        let mut stats = RunStats {
            instructions: 0,
            cycles: 0,
            energy_pj: 0.0,
            class_counts: [0; 7],
            pair_counts: HashMap::new(),
            imisses: 0,
            iaccesses: 0,
            dmisses: 0,
            daccesses: 0,
            mispredicts: 0,
            branches: 0,
            stalls: 0,
            bus_transitions: 0,
            regs,
            trace: Vec::new(),
        };

        let mut pc: i64 = 0;
        let mut prev: Option<Instr> = None;
        let mut prev_dest: Option<Reg> = None; // for load-use hazard
        loop {
            if stats.cycles > max_cycles {
                return Err(SwError::CycleLimit { limit: max_cycles });
            }
            if pc < 0 || pc as usize >= program.code.len() {
                return Err(SwError::PcOutOfRange { pc });
            }
            let i = program.code[pc as usize];

            // Fetch.
            stats.iaccesses += 1;
            if !icache.access(pc as u64) {
                stats.imisses += 1;
                stats.cycles += self.config.imiss_penalty;
                stats.energy_pj += e.imiss_pj + e.stall_pj * self.config.imiss_penalty as f64;
            }

            // Circuit state: bus switching + class change.
            if let Some(p) = prev {
                let toggles = (p.encode() ^ i.encode()).count_ones() as u64;
                stats.bus_transitions += toggles;
                stats.energy_pj += e.bus_pj_per_bit * toggles as f64;
                if p.class() != i.class() {
                    stats.energy_pj += e.class_switch_pj;
                }
                *stats.pair_counts.entry((p.class(), i.class())).or_insert(0) += 1;
            }

            // Load-use hazard: previous instruction was a load whose dest
            // is one of our sources.
            if let (Some(Instr::Ld(..)), Some(d)) = (prev, prev_dest) {
                if i.sources().contains(&d) {
                    stats.stalls += 1;
                    stats.cycles += 1;
                    stats.energy_pj += e.stall_pj;
                }
            }

            stats.instructions += 1;
            stats.class_counts[i.class().index()] += 1;
            stats.energy_pj += e.base_pj[i.class().index()];
            stats.cycles += 1;
            if stats.trace.len() < self.trace_limit {
                stats.trace.push(pc as usize);
            }

            let rd = |r: Reg| if r.0 == 0 { 0 } else { regs[r.0 as usize] };
            let mut next_pc = pc + 1;
            match i {
                Instr::Add(d, a, b) => regs[d.0 as usize] = rd(a).wrapping_add(rd(b)),
                Instr::Sub(d, a, b) => regs[d.0 as usize] = rd(a).wrapping_sub(rd(b)),
                Instr::Mul(d, a, b) => regs[d.0 as usize] = rd(a).wrapping_mul(rd(b)),
                Instr::And(d, a, b) => regs[d.0 as usize] = rd(a) & rd(b),
                Instr::Or(d, a, b) => regs[d.0 as usize] = rd(a) | rd(b),
                Instr::Xor(d, a, b) => regs[d.0 as usize] = rd(a) ^ rd(b),
                Instr::Addi(d, a, imm) => regs[d.0 as usize] = rd(a).wrapping_add(imm as i64),
                Instr::Shli(d, a, k) => regs[d.0 as usize] = rd(a).wrapping_shl(k as u32),
                Instr::Ld(d, a, imm) => {
                    let addr = rd(a) + imm as i64;
                    if addr < 0 || addr as usize >= mem.len() {
                        return Err(SwError::MemOutOfRange { addr });
                    }
                    stats.daccesses += 1;
                    if !dcache.access(addr as u64) {
                        stats.dmisses += 1;
                        stats.cycles += self.config.dmiss_penalty;
                        stats.energy_pj +=
                            e.dmiss_pj + e.stall_pj * self.config.dmiss_penalty as f64;
                    }
                    regs[d.0 as usize] = mem[addr as usize];
                }
                Instr::St(a, v, imm) => {
                    let addr = rd(a) + imm as i64;
                    if addr < 0 || addr as usize >= mem.len() {
                        return Err(SwError::MemOutOfRange { addr });
                    }
                    stats.daccesses += 1;
                    if !dcache.access(addr as u64) {
                        stats.dmisses += 1;
                        stats.cycles += self.config.dmiss_penalty;
                        stats.energy_pj +=
                            e.dmiss_pj + e.stall_pj * self.config.dmiss_penalty as f64;
                    }
                    mem[addr as usize] = rd(v);
                }
                Instr::Beq(a, b, off) | Instr::Bne(a, b, off) | Instr::Blt(a, b, off) => {
                    let taken = match i {
                        Instr::Beq(..) => rd(a) == rd(b),
                        Instr::Bne(..) => rd(a) != rd(b),
                        _ => rd(a) < rd(b),
                    };
                    stats.branches += 1;
                    let predicted = predictor.predict(pc as usize);
                    if predicted != taken {
                        stats.mispredicts += 1;
                        stats.cycles += self.config.mispredict_penalty;
                        stats.energy_pj +=
                            e.mispredict_pj + e.stall_pj * self.config.mispredict_penalty as f64;
                    }
                    predictor.update(pc as usize, taken);
                    if taken {
                        next_pc = pc + off as i64;
                    }
                }
                Instr::Jmp(off) => next_pc = pc + off as i64,
                Instr::Nop => {}
                Instr::Halt => {
                    regs[0] = 0;
                    stats.regs = regs;
                    return Ok(stats);
                }
            }
            regs[0] = 0;
            prev_dest = i.dest();
            prev = Some(i);
            pc = next_pc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ProgramBuilder;

    fn count_down(n: i64) -> Program {
        let mut b = ProgramBuilder::new();
        b.push(Instr::Addi(Reg(1), Reg::ZERO, n as i32));
        let top = b.label();
        b.bind(top);
        b.push(Instr::Addi(Reg(1), Reg(1), -1));
        b.branch_to(top, |off| Instr::Bne(Reg(1), Reg::ZERO, off));
        b.push(Instr::Halt);
        b.build(vec![])
    }

    #[test]
    fn loop_executes_expected_instructions() {
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&count_down(10), 10_000).unwrap();
        // 1 init + 10 * (addi + bne) + halt
        assert_eq!(stats.instructions, 1 + 20 + 1);
        assert_eq!(stats.regs[1], 0);
        assert!(stats.energy_pj > 0.0);
    }

    #[test]
    fn cycle_limit_enforced() {
        let p = Program { code: vec![Instr::Jmp(0)], data: vec![] };
        let mut m = Machine::new(MachineConfig::default());
        assert!(matches!(m.run(&p, 100), Err(SwError::CycleLimit { .. })));
    }

    #[test]
    fn memory_bounds_checked() {
        let p = Program { code: vec![Instr::Ld(Reg(1), Reg::ZERO, -5), Instr::Halt], data: vec![] };
        let mut m = Machine::new(MachineConfig::default());
        assert!(matches!(m.run(&p, 100), Err(SwError::MemOutOfRange { addr: -5 })));
    }

    #[test]
    fn load_store_round_trip() {
        let p = Program {
            code: vec![
                Instr::Addi(Reg(1), Reg::ZERO, 99),
                Instr::St(Reg::ZERO, Reg(1), 7),
                Instr::Ld(Reg(2), Reg::ZERO, 7),
                Instr::Halt,
            ],
            data: vec![],
        };
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&p, 100).unwrap();
        assert_eq!(stats.regs[2], 99);
        assert_eq!(stats.daccesses, 2);
        // First store misses the cold cache, load hits the same block.
        assert_eq!(stats.dmisses, 1);
    }

    #[test]
    fn streaming_misses_with_tiny_cache() {
        // Walk 64 distinct blocks with a tiny cache: high miss rate.
        let mut b = ProgramBuilder::new();
        b.push(Instr::Addi(Reg(1), Reg::ZERO, 0));
        b.push(Instr::Addi(Reg(2), Reg::ZERO, 128));
        let top = b.label();
        b.bind(top);
        b.push(Instr::Ld(Reg(3), Reg(1), 0));
        b.push(Instr::Addi(Reg(1), Reg(1), 8)); // stride past the block
        b.branch_to(top, |off| Instr::Blt(Reg(1), Reg(2), off));
        b.push(Instr::Halt);
        let p = b.build(vec![0; 256]);
        let cfg = MachineConfig { dcache: CacheConfig::tiny(), ..MachineConfig::default() };
        let mut m = Machine::new(cfg);
        let stats = m.run(&p, 100_000).unwrap();
        assert!(stats.dmiss_rate() > 0.9, "rate {}", stats.dmiss_rate());
    }

    #[test]
    fn load_use_stall_detected() {
        let p = Program {
            code: vec![
                Instr::Ld(Reg(1), Reg::ZERO, 0),
                Instr::Add(Reg(2), Reg(1), Reg(1)), // uses r1 right away
                Instr::Halt,
            ],
            data: vec![5],
        };
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&p, 100).unwrap();
        assert_eq!(stats.stalls, 1);
        assert_eq!(stats.regs[2], 10);
    }

    #[test]
    fn branch_predictor_learns_loop() {
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&count_down(200), 100_000).unwrap();
        // A long loop with a 2-bit counter should mispredict rarely.
        assert!(stats.mispredict_rate() < 0.05, "rate {}", stats.mispredict_rate());
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let p = Program {
            code: vec![
                Instr::Addi(Reg(0), Reg::ZERO, 42),
                Instr::Add(Reg(1), Reg(0), Reg(0)),
                Instr::Halt,
            ],
            data: vec![],
        };
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&p, 100).unwrap();
        assert_eq!(stats.regs[1], 0);
    }
}
