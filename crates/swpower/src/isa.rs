//! The instruction set: a small load-store RISC with 16 registers.

use std::fmt;

/// A register index (0..16). `r0` reads as zero and ignores writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `rd = rs1 + rs2`
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2`
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 * rs2`
    Mul(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 + imm`
    Addi(Reg, Reg, i32),
    /// `rd = rs1 << imm`
    Shli(Reg, Reg, u8),
    /// `rd = mem[rs1 + imm]`
    Ld(Reg, Reg, i32),
    /// `mem[rs1 + imm] = rs2`
    St(Reg, Reg, i32),
    /// Branch to `pc + off` when `rs1 == rs2`.
    Beq(Reg, Reg, i32),
    /// Branch to `pc + off` when `rs1 != rs2`.
    Bne(Reg, Reg, i32),
    /// Branch to `pc + off` when `rs1 < rs2` (signed).
    Blt(Reg, Reg, i32),
    /// Unconditional jump to `pc + off`.
    Jmp(i32),
    /// No operation.
    Nop,
    /// Stop execution.
    Halt,
}

/// Coarse instruction classes used by the energy models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Single-cycle integer ALU (add/sub/logic/shift/addi).
    Alu,
    /// Integer multiply.
    Mul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump.
    Jump,
    /// No-op / halt.
    Nop,
}

impl OpClass {
    /// All classes, in a stable order.
    pub fn all() -> [OpClass; 7] {
        [
            OpClass::Alu,
            OpClass::Mul,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
            OpClass::Jump,
            OpClass::Nop,
        ]
    }

    /// A stable index (0..7) for table lookups.
    pub fn index(self) -> usize {
        match self {
            OpClass::Alu => 0,
            OpClass::Mul => 1,
            OpClass::Load => 2,
            OpClass::Store => 3,
            OpClass::Branch => 4,
            OpClass::Jump => 5,
            OpClass::Nop => 6,
        }
    }
}

impl Instr {
    /// The instruction's class.
    pub fn class(&self) -> OpClass {
        match self {
            Instr::Add(..)
            | Instr::Sub(..)
            | Instr::And(..)
            | Instr::Or(..)
            | Instr::Xor(..)
            | Instr::Addi(..)
            | Instr::Shli(..) => OpClass::Alu,
            Instr::Mul(..) => OpClass::Mul,
            Instr::Ld(..) => OpClass::Load,
            Instr::St(..) => OpClass::Store,
            Instr::Beq(..) | Instr::Bne(..) | Instr::Blt(..) => OpClass::Branch,
            Instr::Jmp(..) => OpClass::Jump,
            Instr::Nop | Instr::Halt => OpClass::Nop,
        }
    }

    /// The destination register, if any.
    pub fn dest(&self) -> Option<Reg> {
        match self {
            Instr::Add(d, ..)
            | Instr::Sub(d, ..)
            | Instr::Mul(d, ..)
            | Instr::And(d, ..)
            | Instr::Or(d, ..)
            | Instr::Xor(d, ..)
            | Instr::Addi(d, ..)
            | Instr::Shli(d, ..)
            | Instr::Ld(d, ..) => Some(*d),
            _ => None,
        }
    }

    /// Source registers.
    pub fn sources(&self) -> Vec<Reg> {
        match self {
            Instr::Add(_, a, b)
            | Instr::Sub(_, a, b)
            | Instr::Mul(_, a, b)
            | Instr::And(_, a, b)
            | Instr::Or(_, a, b)
            | Instr::Xor(_, a, b) => vec![*a, *b],
            Instr::Addi(_, a, _) | Instr::Shli(_, a, _) | Instr::Ld(_, a, _) => vec![*a],
            Instr::St(a, v, _) => vec![*a, *v],
            Instr::Beq(a, b, _) | Instr::Bne(a, b, _) | Instr::Blt(a, b, _) => vec![*a, *b],
            _ => Vec::new(),
        }
    }

    /// Whether this instruction may change the control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Beq(..) | Instr::Bne(..) | Instr::Blt(..) | Instr::Jmp(..) | Instr::Halt
        )
    }

    /// A 32-bit encoding used for instruction-bus switching accounting:
    /// `opcode(5) | rd(4) | rs1(4) | rs2(4) | imm(15)`.
    pub fn encode(&self) -> u32 {
        let (op, rd, rs1, rs2, imm): (u32, u32, u32, u32, i32) = match *self {
            Instr::Add(d, a, b) => (1, d.0 as u32, a.0 as u32, b.0 as u32, 0),
            Instr::Sub(d, a, b) => (2, d.0 as u32, a.0 as u32, b.0 as u32, 0),
            Instr::Mul(d, a, b) => (3, d.0 as u32, a.0 as u32, b.0 as u32, 0),
            Instr::And(d, a, b) => (4, d.0 as u32, a.0 as u32, b.0 as u32, 0),
            Instr::Or(d, a, b) => (5, d.0 as u32, a.0 as u32, b.0 as u32, 0),
            Instr::Xor(d, a, b) => (6, d.0 as u32, a.0 as u32, b.0 as u32, 0),
            Instr::Addi(d, a, i) => (7, d.0 as u32, a.0 as u32, 0, i),
            Instr::Shli(d, a, k) => (8, d.0 as u32, a.0 as u32, 0, k as i32),
            Instr::Ld(d, a, i) => (9, d.0 as u32, a.0 as u32, 0, i),
            Instr::St(a, v, i) => (10, 0, a.0 as u32, v.0 as u32, i),
            Instr::Beq(a, b, o) => (11, 0, a.0 as u32, b.0 as u32, o),
            Instr::Bne(a, b, o) => (12, 0, a.0 as u32, b.0 as u32, o),
            Instr::Blt(a, b, o) => (13, 0, a.0 as u32, b.0 as u32, o),
            Instr::Jmp(o) => (14, 0, 0, 0, o),
            Instr::Nop => (15, 0, 0, 0, 0),
            Instr::Halt => (16, 0, 0, 0, 0),
        };
        (op << 27) | (rd << 23) | (rs1 << 19) | (rs2 << 15) | ((imm as u32) & 0x7FFF)
    }
}

/// A program: instructions plus initial data memory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The instruction stream.
    pub code: Vec<Instr>,
    /// Initial contents of data memory (word addressed from 0).
    pub data: Vec<i64>,
}

impl Program {
    /// Total instruction-bus Hamming transitions over a dynamic execution
    /// trace of instruction indices.
    pub fn bus_transitions(&self, trace: &[usize]) -> u64 {
        trace
            .windows(2)
            .map(|w| (self.code[w[0]].encode() ^ self.code[w[1]].encode()).count_ones() as u64)
            .sum()
    }
}

/// A deferred branch: (instruction slot, target label, constructor).
type BranchFixup = (usize, usize, fn(i32) -> Instr);

/// A label-based builder for programs with forward branches.
///
/// # Example
///
/// ```
/// use hlpower_sw::{ProgramBuilder, Instr, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let loop_top = b.label();
/// b.bind(loop_top);
/// b.push(Instr::Addi(Reg(1), Reg(1), -1));
/// b.branch_to(loop_top, |off| Instr::Bne(Reg(1), Reg::ZERO, off));
/// b.push(Instr::Halt);
/// let prog = b.build(vec![]);
/// assert_eq!(prog.code.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    code: Vec<Instr>,
    labels: Vec<Option<usize>>,
    fixups: Vec<BranchFixup>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Allocates a fresh label.
    pub fn label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    /// Binds a label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: usize) {
        assert!(self.labels[label].is_none(), "label bound twice");
        self.labels[label] = Some(self.code.len());
    }

    /// Appends an instruction.
    pub fn push(&mut self, i: Instr) {
        self.code.push(i);
    }

    /// Appends a control-flow instruction targeting `label`; `make`
    /// receives the relative offset once known.
    pub fn branch_to(&mut self, label: usize, make: fn(i32) -> Instr) {
        let at = self.code.len();
        self.code.push(Instr::Nop); // placeholder
        self.fixups.push((at, label, make));
    }

    /// Current instruction count.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether no instructions have been added.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Resolves labels and produces the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound.
    pub fn build(mut self, data: Vec<i64>) -> Program {
        for (at, label, make) in self.fixups {
            let target = self.labels[label].expect("label must be bound before build");
            let off = target as i32 - at as i32;
            self.code[at] = make(off);
        }
        Program { code: self.code, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_instructions() {
        assert_eq!(Instr::Add(Reg(1), Reg(2), Reg(3)).class(), OpClass::Alu);
        assert_eq!(Instr::Mul(Reg(1), Reg(2), Reg(3)).class(), OpClass::Mul);
        assert_eq!(Instr::Ld(Reg(1), Reg(2), 0).class(), OpClass::Load);
        assert_eq!(Instr::St(Reg(1), Reg(2), 0).class(), OpClass::Store);
        assert_eq!(Instr::Beq(Reg(1), Reg(2), -1).class(), OpClass::Branch);
    }

    #[test]
    fn encodings_are_distinct() {
        let instrs = [
            Instr::Add(Reg(1), Reg(2), Reg(3)),
            Instr::Sub(Reg(1), Reg(2), Reg(3)),
            Instr::Addi(Reg(1), Reg(2), 5),
            Instr::Ld(Reg(1), Reg(2), 5),
            Instr::Nop,
        ];
        let encs: std::collections::HashSet<u32> = instrs.iter().map(|i| i.encode()).collect();
        assert_eq!(encs.len(), instrs.len());
    }

    #[test]
    fn defs_and_uses() {
        let i = Instr::Mul(Reg(4), Reg(5), Reg(6));
        assert_eq!(i.dest(), Some(Reg(4)));
        assert_eq!(i.sources(), vec![Reg(5), Reg(6)]);
        let s = Instr::St(Reg(1), Reg(2), 8);
        assert_eq!(s.dest(), None);
        assert_eq!(s.sources(), vec![Reg(1), Reg(2)]);
    }

    #[test]
    fn builder_resolves_backward_and_forward_labels() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        let done = b.label();
        b.bind(top);
        b.push(Instr::Addi(Reg(1), Reg(1), -1));
        b.branch_to(done, |off| Instr::Beq(Reg(1), Reg::ZERO, off));
        b.branch_to(top, Instr::Jmp);
        b.bind(done);
        b.push(Instr::Halt);
        let p = b.build(vec![]);
        assert_eq!(p.code[1], Instr::Beq(Reg(1), Reg::ZERO, 2));
        assert_eq!(p.code[2], Instr::Jmp(-2));
    }

    #[test]
    fn bus_transitions_counts_hamming() {
        let p = Program { code: vec![Instr::Nop, Instr::Halt], data: vec![] };
        let h = (Instr::Nop.encode() ^ Instr::Halt.encode()).count_ones() as u64;
        assert_eq!(p.bus_transitions(&[0, 1]), h);
    }
}
