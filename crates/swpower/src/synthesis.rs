//! Profile-driven program synthesis (survey §II-A, Hsieh et al., reference 8).
//!
//! A long application trace is reduced to a *characteristic profile*
//! (instruction mix, cache miss rates, branch misprediction rate, stall
//! rate); a short synthetic program is then generated whose profile
//! matches, so that slow detailed simulation can run on the short program
//! instead. The original reported 3–5 orders of magnitude simulation-time
//! reduction with negligible power-estimation error; here the "slow
//! simulator" is the same architectural model, so the speedup manifests
//! as the cycle-count ratio.

use hlpower_rng::Rng;

use crate::isa::{Instr, OpClass, Program, ProgramBuilder, Reg};
use crate::machine::{Machine, MachineConfig, RunStats, SwError};

/// The characteristic profile extracted from an architectural run.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacteristicProfile {
    /// Fraction of dynamic instructions per class.
    pub instruction_mix: [f64; 7],
    /// Data-cache miss rate.
    pub dmiss_rate: f64,
    /// Instruction-cache miss rate.
    pub imiss_rate: f64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// Load-use stalls per instruction.
    pub stall_rate: f64,
    /// Dynamic instruction count of the source run.
    pub instructions: u64,
}

impl CharacteristicProfile {
    /// Extracts the profile from run statistics.
    pub fn from_stats(stats: &RunStats) -> Self {
        CharacteristicProfile {
            instruction_mix: stats.instruction_mix(),
            dmiss_rate: stats.dmiss_rate(),
            imiss_rate: stats.imiss_rate(),
            mispredict_rate: stats.mispredict_rate(),
            stall_rate: stats.stalls as f64 / stats.instructions.max(1) as f64,
            instructions: stats.instructions,
        }
    }

    /// A scalar distance between two profiles (for validation).
    pub fn distance(&self, other: &CharacteristicProfile) -> f64 {
        let mut d = 0.0;
        for i in 0..7 {
            d += (self.instruction_mix[i] - other.instruction_mix[i]).abs();
        }
        d += (self.dmiss_rate - other.dmiss_rate).abs();
        d += (self.mispredict_rate - other.mispredict_rate).abs();
        d += (self.stall_rate - other.stall_rate).abs();
        d
    }
}

/// Result of the synthesis flow.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The synthesized short program.
    pub program: Program,
    /// Profile of the synthesized program (measured).
    pub achieved: CharacteristicProfile,
    /// Target profile it was synthesized for.
    pub target: CharacteristicProfile,
    /// Cycle count of the synthesized program.
    pub cycles: u64,
    /// Power-per-cycle of the synthesized program.
    pub power_per_cycle: f64,
}

/// Synthesizes a short program matching a characteristic profile.
///
/// The generator emits a loop whose body samples instruction classes from
/// the target mix. Data accesses alternate between a hot (cache-resident)
/// pointer and a streaming pointer; the blend is tuned by a short search
/// so the measured data-miss rate matches the target. Branch behaviour is
/// tuned the same way via a data-dependent conditional taken with a
/// controlled probability.
///
/// # Errors
///
/// Propagates simulator errors from the tuning runs.
pub fn synthesize(
    target: &CharacteristicProfile,
    config: &MachineConfig,
    body_len: usize,
    iterations: u32,
    seed: u64,
) -> Result<SynthesisResult, SwError> {
    // 1-D search over the streaming fraction to hit the target miss rate,
    // then a second knob for branch randomness.
    let mut best: Option<(f64, SynthesisResult)> = None;
    for stream_frac in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        for branch_rand in [0.0, 0.25, 0.5] {
            let program = generate(target, body_len, iterations, stream_frac, branch_rand, seed);
            let mut machine = Machine::new(config.clone());
            machine.set_trace_limit(0);
            let stats = machine.run(&program, 200_000_000)?;
            let achieved = CharacteristicProfile::from_stats(&stats);
            let d = target.distance(&achieved);
            let result = SynthesisResult {
                program,
                achieved,
                target: target.clone(),
                cycles: stats.cycles,
                power_per_cycle: stats.power_per_cycle(),
            };
            if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                best = Some((d, result));
            }
        }
    }
    Ok(best.expect("at least one candidate generated").1)
}

fn generate(
    target: &CharacteristicProfile,
    body_len: usize,
    iterations: u32,
    stream_frac: f64,
    branch_rand: f64,
    seed: u64,
) -> Program {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    // r1 = loop counter, r2 = hot pointer, r3 = streaming pointer,
    // r4 = branch-pattern register, r5.. = data regs.
    b.push(Instr::Addi(Reg(1), Reg::ZERO, iterations as i32));
    b.push(Instr::Addi(Reg(2), Reg::ZERO, 0));
    b.push(Instr::Addi(Reg(3), Reg::ZERO, 64));
    b.push(Instr::Addi(Reg(4), Reg::ZERO, 1));
    let top = b.label();
    b.bind(top);
    // Sample body instructions from the mix (branches handled separately).
    let mix = target.instruction_mix;
    let mut weights: Vec<(OpClass, f64)> = vec![
        (OpClass::Alu, mix[OpClass::Alu.index()]),
        (OpClass::Mul, mix[OpClass::Mul.index()]),
        (OpClass::Load, mix[OpClass::Load.index()]),
        (OpClass::Store, mix[OpClass::Store.index()]),
        (OpClass::Nop, mix[OpClass::Nop.index()]),
    ];
    let wsum: f64 = weights.iter().map(|(_, w)| w).sum();
    if wsum <= 0.0 {
        weights = vec![(OpClass::Alu, 1.0)];
    }
    let branch_every =
        (1.0 / mix[OpClass::Branch.index()].max(1e-3)).round().clamp(2.0, 64.0) as usize;
    let mut since_branch = 0usize;
    for k in 0..body_len {
        let pick = {
            let mut x = rng.next_f64() * weights.iter().map(|(_, w)| w).sum::<f64>();
            let mut chosen = weights[0].0;
            for &(c, w) in &weights {
                if x < w {
                    chosen = c;
                    break;
                }
                x -= w;
            }
            chosen
        };
        let d = Reg(5 + (k % 8) as u8);
        let a = Reg(5 + ((k + 3) % 8) as u8);
        match pick {
            OpClass::Alu => b.push(Instr::Add(d, a, Reg(4))),
            OpClass::Mul => b.push(Instr::Mul(d, a, Reg(4))),
            OpClass::Load => {
                if rng.gen_bool(stream_frac) {
                    // Streaming access with a stride past the block size.
                    b.push(Instr::Ld(Reg(13), Reg(3), 0));
                    b.push(Instr::Addi(Reg(3), Reg(3), 8));
                    // Wrap the streaming pointer to stay in memory.
                    b.push(Instr::And(Reg(3), Reg(3), Reg(14)));
                } else {
                    b.push(Instr::Ld(Reg(13), Reg(2), (k % 4) as i32));
                }
            }
            OpClass::Store => b.push(Instr::St(Reg(2), Reg(4), (k % 4) as i32)),
            _ => b.push(Instr::Nop),
        }
        since_branch += 1;
        if since_branch >= branch_every && k + 2 < body_len {
            since_branch = 0;
            // A short forward branch, taken with data-dependent odds when
            // branch_rand > 0 (r4 alternates pseudo-randomly below).
            let skip = b.label();
            if branch_rand > 0.0 {
                b.branch_to(skip, |off| Instr::Blt(Reg(4), Reg(15), off));
            } else {
                // Never taken: r4 >= 0 always, r0 == 0.
                b.branch_to(skip, |off| Instr::Blt(Reg(4), Reg::ZERO, off));
            }
            b.push(Instr::Add(Reg(12), Reg(12), Reg(4)));
            b.bind(skip);
        }
    }
    // Update the pseudo-random branch register: r4 = (r4 * 1103 + 7) mod
    // 255-ish via masking, threshold in r15 controls taken probability.
    b.push(Instr::Addi(Reg(11), Reg::ZERO, 1103));
    b.push(Instr::Mul(Reg(4), Reg(4), Reg(11)));
    b.push(Instr::Addi(Reg(4), Reg(4), 7));
    b.push(Instr::Addi(Reg(10), Reg::ZERO, 255));
    b.push(Instr::And(Reg(4), Reg(4), Reg(10)));
    b.push(Instr::Addi(Reg(15), Reg::ZERO, (255.0 * branch_rand) as i32));
    // Streaming mask register (wrap at 4096 words).
    b.push(Instr::Addi(Reg(14), Reg::ZERO, 4095));
    b.push(Instr::Addi(Reg(1), Reg(1), -1));
    b.branch_to(top, |off| Instr::Bne(Reg(1), Reg::ZERO, off));
    b.push(Instr::Halt);
    b.build(vec![0; 4096])
}

/// Runs the full §II-A experiment: simulate the reference workload,
/// extract its profile, synthesize a short program, and report the
/// speedup and power-estimation error.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn profile_synthesis_experiment(
    workload: &Program,
    config: &MachineConfig,
    seed: u64,
) -> Result<(RunStats, SynthesisResult, f64, f64), SwError> {
    let mut machine = Machine::new(config.clone());
    machine.set_trace_limit(0);
    let reference = machine.run(workload, 500_000_000)?;
    let profile = CharacteristicProfile::from_stats(&reference);
    let synth = synthesize(&profile, config, 64, 40, seed)?;
    let speedup = reference.cycles as f64 / synth.cycles as f64;
    let power_error =
        (synth.power_per_cycle - reference.power_per_cycle()).abs() / reference.power_per_cycle();
    Ok((reference, synth, speedup, power_error))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn profile_extraction_sums_to_one() {
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&workloads::fir(64, 8), 10_000_000).unwrap();
        let p = CharacteristicProfile::from_stats(&stats);
        let total: f64 = p.instruction_mix.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn synthesized_program_matches_profile_shape() {
        let config = MachineConfig::default();
        let mut m = Machine::new(config.clone());
        let stats = m.run(&workloads::matmul(8), 100_000_000).unwrap();
        let target = CharacteristicProfile::from_stats(&stats);
        let result = synthesize(&target, &config, 64, 30, 7).unwrap();
        // Mix within 0.1 per class in aggregate distance terms.
        let mix_err: f64 = (0..7)
            .map(|i| (result.achieved.instruction_mix[i] - target.instruction_mix[i]).abs())
            .sum();
        assert!(mix_err < 0.35, "mix distance {mix_err}");
    }

    #[test]
    fn experiment_reports_speedup_and_small_error() {
        let config = MachineConfig::default();
        let (reference, synth, speedup, err) =
            profile_synthesis_experiment(&workloads::matmul(10), &config, 3).unwrap();
        assert!(reference.cycles > synth.cycles);
        assert!(speedup > 3.0, "speedup {speedup}");
        assert!(err < 0.25, "power error {err}");
    }
}
