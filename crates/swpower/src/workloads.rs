//! Benchmark programs: the "typical application programs" the survey's
//! software-level estimation flow starts from.

use hlpower_rng::Rng;

use crate::isa::{Instr, Program, ProgramBuilder, Reg};

/// Streaming sum of `n` array elements (memory-bound, sequential access).
pub fn stream_sum(n: usize) -> Program {
    let mut b = ProgramBuilder::new();
    b.push(Instr::Addi(Reg(1), Reg::ZERO, 0)); // index
    b.push(Instr::Addi(Reg(2), Reg::ZERO, n as i32)); // limit
    b.push(Instr::Addi(Reg(3), Reg::ZERO, 0)); // sum
    let top = b.label();
    b.bind(top);
    b.push(Instr::Ld(Reg(4), Reg(1), 0));
    b.push(Instr::Add(Reg(3), Reg(3), Reg(4)));
    b.push(Instr::Addi(Reg(1), Reg(1), 1));
    b.branch_to(top, |off| Instr::Blt(Reg(1), Reg(2), off));
    b.push(Instr::St(Reg::ZERO, Reg(3), 0));
    b.push(Instr::Halt);
    let data: Vec<i64> = (0..n as i64).map(|i| i % 17).collect();
    b.build(data)
}

/// Naive `k x k` matrix multiply (compute-bound, mul-heavy).
pub fn matmul(k: usize) -> Program {
    let k_i32 = k as i32;
    let a_base = 0i32;
    let b_base = (k * k) as i32;
    let c_base = (2 * k * k) as i32;
    let mut b = ProgramBuilder::new();
    // r1=i, r2=j, r3=l, r4=acc, r5..r9 temps, r10=k
    b.push(Instr::Addi(Reg(10), Reg::ZERO, k_i32));
    b.push(Instr::Addi(Reg(1), Reg::ZERO, 0));
    let loop_i = b.label();
    b.bind(loop_i);
    b.push(Instr::Addi(Reg(2), Reg::ZERO, 0));
    let loop_j = b.label();
    b.bind(loop_j);
    b.push(Instr::Addi(Reg(4), Reg::ZERO, 0));
    b.push(Instr::Addi(Reg(3), Reg::ZERO, 0));
    let loop_l = b.label();
    b.bind(loop_l);
    // a[i*k + l]
    b.push(Instr::Mul(Reg(5), Reg(1), Reg(10)));
    b.push(Instr::Add(Reg(5), Reg(5), Reg(3)));
    b.push(Instr::Ld(Reg(6), Reg(5), a_base));
    // b[l*k + j]
    b.push(Instr::Mul(Reg(7), Reg(3), Reg(10)));
    b.push(Instr::Add(Reg(7), Reg(7), Reg(2)));
    b.push(Instr::Ld(Reg(8), Reg(7), b_base));
    b.push(Instr::Mul(Reg(9), Reg(6), Reg(8)));
    b.push(Instr::Add(Reg(4), Reg(4), Reg(9)));
    b.push(Instr::Addi(Reg(3), Reg(3), 1));
    b.branch_to(loop_l, |off| Instr::Blt(Reg(3), Reg(10), off));
    // c[i*k + j] = acc
    b.push(Instr::Mul(Reg(5), Reg(1), Reg(10)));
    b.push(Instr::Add(Reg(5), Reg(5), Reg(2)));
    b.push(Instr::St(Reg(5), Reg(4), c_base));
    b.push(Instr::Addi(Reg(2), Reg(2), 1));
    b.branch_to(loop_j, |off| Instr::Blt(Reg(2), Reg(10), off));
    b.push(Instr::Addi(Reg(1), Reg(1), 1));
    b.branch_to(loop_i, |off| Instr::Blt(Reg(1), Reg(10), off));
    b.push(Instr::Halt);
    let mut data = vec![0i64; 3 * k * k];
    for i in 0..k * k {
        data[i] = (i as i64 % 7) + 1;
        data[k * k + i] = (i as i64 % 5) - 2;
    }
    b.build(data)
}

/// Bubble sort of `n` pseudo-random elements (branchy, data-dependent).
pub fn bubble_sort(n: usize, seed: u64) -> Program {
    let mut b = ProgramBuilder::new();
    let n_i32 = n as i32;
    // r1 = i (outer), r2 = j (inner), r3 = n-1, r5/r6 elems
    b.push(Instr::Addi(Reg(3), Reg::ZERO, n_i32 - 1));
    b.push(Instr::Addi(Reg(1), Reg::ZERO, 0));
    let outer = b.label();
    b.bind(outer);
    b.push(Instr::Addi(Reg(2), Reg::ZERO, 0));
    let inner = b.label();
    b.bind(inner);
    b.push(Instr::Ld(Reg(5), Reg(2), 0));
    b.push(Instr::Ld(Reg(6), Reg(2), 1));
    let no_swap = b.label();
    b.branch_to(no_swap, |off| Instr::Blt(Reg(5), Reg(6), off));
    b.push(Instr::St(Reg(2), Reg(6), 0));
    b.push(Instr::St(Reg(2), Reg(5), 1));
    b.bind(no_swap);
    b.push(Instr::Addi(Reg(2), Reg(2), 1));
    b.branch_to(inner, |off| Instr::Blt(Reg(2), Reg(3), off));
    b.push(Instr::Addi(Reg(1), Reg(1), 1));
    b.branch_to(outer, |off| Instr::Blt(Reg(1), Reg(3), off));
    b.push(Instr::Halt);
    let mut rng = Rng::seed_from_u64(seed);
    let data: Vec<i64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
    b.build(data)
}

/// FIR filter over an input array (MAC-heavy DSP kernel).
pub fn fir(n: usize, taps: usize) -> Program {
    let x_base = 0i32;
    let c_base = n as i32;
    let y_base = (n + taps) as i32;
    let mut b = ProgramBuilder::new();
    // r1 = n (sample index), r2 = t (tap), r3 = acc, r10 = limits
    b.push(Instr::Addi(Reg(1), Reg::ZERO, taps as i32 - 1));
    b.push(Instr::Addi(Reg(10), Reg::ZERO, n as i32));
    b.push(Instr::Addi(Reg(11), Reg::ZERO, taps as i32));
    let outer = b.label();
    b.bind(outer);
    b.push(Instr::Addi(Reg(3), Reg::ZERO, 0));
    b.push(Instr::Addi(Reg(2), Reg::ZERO, 0));
    let inner = b.label();
    b.bind(inner);
    b.push(Instr::Sub(Reg(4), Reg(1), Reg(2))); // sample idx - tap
    b.push(Instr::Ld(Reg(5), Reg(4), x_base));
    b.push(Instr::Ld(Reg(6), Reg(2), c_base));
    b.push(Instr::Mul(Reg(7), Reg(5), Reg(6)));
    b.push(Instr::Add(Reg(3), Reg(3), Reg(7)));
    b.push(Instr::Addi(Reg(2), Reg(2), 1));
    b.branch_to(inner, |off| Instr::Blt(Reg(2), Reg(11), off));
    b.push(Instr::St(Reg(1), Reg(3), y_base));
    b.push(Instr::Addi(Reg(1), Reg(1), 1));
    b.branch_to(outer, |off| Instr::Blt(Reg(1), Reg(10), off));
    b.push(Instr::Halt);
    let mut data = vec![0i64; n + taps + n];
    for i in 0..n {
        data[i] = ((i * 13) % 29) as i64 - 14;
    }
    for t in 0..taps {
        data[n + t] = (t as i64 % 5) + 1;
    }
    b.build(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};

    #[test]
    fn stream_sum_is_correct() {
        let p = stream_sum(20);
        let expect: i64 = (0..20i64).map(|i| i % 17).sum();
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&p, 100_000).unwrap();
        assert_eq!(stats.regs[3], expect);
    }

    #[test]
    fn matmul_produces_correct_products() {
        let k = 3;
        let p = matmul(k);
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&p, 1_000_000).unwrap();
        // Recompute reference in Rust and compare one element via memory?
        // The machine does not expose memory; check instruction counts are
        // as expected for k^3 multiply-accumulate structure instead.
        let muls = stats.class_counts[crate::isa::OpClass::Mul.index()];
        // 3 muls per inner iteration (2 addressing + 1 data) + 1 per (i,j).
        assert_eq!(muls as usize, 3 * k * k * k + k * k);
    }

    #[test]
    fn bubble_sort_runs_to_completion() {
        let p = bubble_sort(24, 3);
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&p, 2_000_000).unwrap();
        assert!(stats.branches > 100);
        assert!(stats.mispredict_rate() > 0.0, "data-dependent branches mispredict");
    }

    #[test]
    fn fir_is_mul_heavy() {
        let p = fir(32, 8);
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&p, 2_000_000).unwrap();
        let mix = stats.instruction_mix();
        assert!(mix[crate::isa::OpClass::Mul.index()] > 0.1);
    }
}
