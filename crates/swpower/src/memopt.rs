//! The Fig. 2 memory-access optimization: eliminating an intermediate
//! array's 2n memory accesses by keeping each element in a register
//! (scalar replacement / loop fusion, survey §III-A).
//!
//! ```text
//! for i in 0..n { b[i] = a[i] + c; }        for i in 0..n {
//! for i in 0..n { d[i] = b[i] * k; }   =>      let t = a[i] + c;   // register
//!                                              b[i] = t;           // if still live
//!                                              d[i] = t * k;
//!                                           }
//! ```

use crate::isa::{Instr, Program, ProgramBuilder, Reg};
use crate::machine::{Machine, MachineConfig, RunStats, SwError};

/// The unoptimized two-loop version: the intermediate array `b` is written
/// by the first loop and read back by the second (2n extra accesses).
pub fn two_loop_version(n: usize, c: i32, k: i32) -> Program {
    let a_base = 0i32;
    // Pad the array bases so the three streams map to different cache
    // sets (a real compiler would do the same to avoid conflict misses).
    let b_base = n as i32 + 8;
    let d_base = 2 * n as i32 + 16;
    let mut b = ProgramBuilder::new();
    b.push(Instr::Addi(Reg(10), Reg::ZERO, n as i32));
    b.push(Instr::Addi(Reg(11), Reg::ZERO, c));
    b.push(Instr::Addi(Reg(12), Reg::ZERO, k));
    // Loop 1: b[i] = a[i] + c
    b.push(Instr::Addi(Reg(1), Reg::ZERO, 0));
    let l1 = b.label();
    b.bind(l1);
    b.push(Instr::Ld(Reg(2), Reg(1), a_base));
    b.push(Instr::Add(Reg(3), Reg(2), Reg(11)));
    b.push(Instr::St(Reg(1), Reg(3), b_base));
    b.push(Instr::Addi(Reg(1), Reg(1), 1));
    b.branch_to(l1, |off| Instr::Blt(Reg(1), Reg(10), off));
    // Loop 2: d[i] = b[i] * k
    b.push(Instr::Addi(Reg(1), Reg::ZERO, 0));
    let l2 = b.label();
    b.bind(l2);
    b.push(Instr::Ld(Reg(4), Reg(1), b_base));
    b.push(Instr::Mul(Reg(5), Reg(4), Reg(12)));
    b.push(Instr::St(Reg(1), Reg(5), d_base));
    b.push(Instr::Addi(Reg(1), Reg(1), 1));
    b.branch_to(l2, |off| Instr::Blt(Reg(1), Reg(10), off));
    b.push(Instr::Halt);
    b.build(test_data(n))
}

/// The optimized fused version: the intermediate element stays in a
/// register; `b` is still materialized once (it may be live-out), but the
/// n re-reads are gone and the loop overhead is halved.
pub fn fused_version(n: usize, c: i32, k: i32) -> Program {
    let a_base = 0i32;
    let b_base = n as i32 + 8;
    let d_base = 2 * n as i32 + 16;
    let mut b = ProgramBuilder::new();
    b.push(Instr::Addi(Reg(10), Reg::ZERO, n as i32));
    b.push(Instr::Addi(Reg(11), Reg::ZERO, c));
    b.push(Instr::Addi(Reg(12), Reg::ZERO, k));
    b.push(Instr::Addi(Reg(1), Reg::ZERO, 0));
    let l = b.label();
    b.bind(l);
    b.push(Instr::Ld(Reg(2), Reg(1), a_base));
    b.push(Instr::Add(Reg(3), Reg(2), Reg(11))); // t = a[i] + c (register)
    b.push(Instr::St(Reg(1), Reg(3), b_base)); // b[i] = t (live-out)
    b.push(Instr::Mul(Reg(5), Reg(3), Reg(12))); // d[i] = t * k
    b.push(Instr::St(Reg(1), Reg(5), d_base));
    b.push(Instr::Addi(Reg(1), Reg(1), 1));
    b.branch_to(l, |off| Instr::Blt(Reg(1), Reg(10), off));
    b.push(Instr::Halt);
    b.build(test_data(n))
}

fn test_data(n: usize) -> Vec<i64> {
    let mut data = vec![0i64; 3 * n + 32];
    for (i, d) in data.iter_mut().take(n).enumerate() {
        *d = (i as i64 * 7) % 23 - 11;
    }
    data
}

/// Runs both versions and returns `(two_loop_stats, fused_stats)`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn compare(n: usize, config: &MachineConfig) -> Result<(RunStats, RunStats), SwError> {
    let mut m = Machine::new(config.clone());
    m.set_trace_limit(0);
    let before = m.run(&two_loop_version(n, 5, 3), 100_000_000)?;
    let mut m2 = Machine::new(config.clone());
    m2.set_trace_limit(0);
    let after = m2.run(&fused_version(n, 5, 3), 100_000_000)?;
    Ok((before, after))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_version_reduces_memory_accesses() {
        let (before, after) = compare(256, &MachineConfig::default()).unwrap();
        // Two-loop: 4n accesses (ld a, st b, ld b, st d); fused: 3n.
        let n = 256u64;
        assert_eq!(before.daccesses, 4 * n);
        assert_eq!(after.daccesses, 3 * n);
    }

    #[test]
    fn fused_version_saves_energy_and_cycles() {
        let (before, after) = compare(512, &MachineConfig::default()).unwrap();
        assert!(after.energy_pj < before.energy_pj);
        assert!(after.cycles < before.cycles);
    }

    #[test]
    fn both_versions_compute_same_results() {
        // Spot check through final register state is insufficient (results
        // live in memory); instead compare instruction-level effects by
        // replaying with tiny n and capturing the store values through a
        // third program that sums d[].
        let n = 16;
        let sum_d = |prog: Program| -> i64 {
            // Append "sum d" after halting is impossible; build combined
            // program: run the kernel body then sum.
            let mut code = prog.code.clone();
            code.pop(); // remove Halt
                        // sum d[0..n] into r9
            let base = code.len();
            code.push(Instr::Addi(Reg(1), Reg::ZERO, 0));
            code.push(Instr::Addi(Reg(9), Reg::ZERO, 0));
            code.push(Instr::Ld(Reg(2), Reg(1), 2 * n as i32 + 16));
            code.push(Instr::Add(Reg(9), Reg(9), Reg(2)));
            code.push(Instr::Addi(Reg(1), Reg(1), 1));
            code.push(Instr::Blt(Reg(1), Reg(10), -3_i32));
            code.push(Instr::Halt);
            let _ = base;
            let p = Program { code, data: prog.data };
            let mut m = Machine::new(MachineConfig::default());
            m.run(&p, 10_000_000).unwrap().regs[9]
        };
        let s1 = sum_d(two_loop_version(n, 5, 3));
        let s2 = sum_d(fused_version(n, 5, 3));
        assert_eq!(s1, s2);
        // And against a Rust reference.
        let expect: i64 = (0..n as i64).map(|i| (((i * 7) % 23 - 11) + 5) * 3).sum();
        assert_eq!(s1, expect);
    }
}
