//! Software-level power estimation substrate (survey §II-A and §III-A).
//!
//! Provides a small RISC instruction set with an architectural simulator
//! (instruction/data caches, branch prediction, load-use stalls) whose
//! cycle-by-cycle energy accounting substitutes for the physical current
//! measurements of Tiwari et al.; on top of it: the Tiwari instruction-level
//! power model (base costs + circuit-state overheads + stall/miss costs),
//! cold scheduling of basic blocks for instruction-bus activity, the Hsieh
//! profile-driven program synthesis flow, and the Fig. 2 memory-access
//! optimization example.
//!
//! # Example
//!
//! ```
//! use hlpower_sw::{workloads, Machine, MachineConfig};
//!
//! let program = workloads::stream_sum(64);
//! let mut m = Machine::new(MachineConfig::default());
//! let run = m.run(&program, 100_000).expect("program halts");
//! assert!(run.cycles > 0 && run.energy_pj > 0.0);
//! ```

#![warn(missing_docs)]
// Matrix- and table-style numerics read more clearly with explicit index
// loops; silence clippy's iterator-style suggestion for them.
#![allow(clippy::needless_range_loop)]

pub mod coldsched;
mod isa;
mod machine;
pub mod memopt;
pub mod synthesis;
pub mod tiwari;
pub mod workloads;

pub use isa::{Instr, OpClass, Program, ProgramBuilder, Reg};
pub use machine::{CacheConfig, EnergyCosts, Machine, MachineConfig, RunStats, SwError};
