//! Cold scheduling (survey §III-A, Su et al., reference 6): reorder the
//! instructions of a basic block — respecting data dependences — so that
//! consecutive instructions toggle as few instruction-bus lines as
//! possible.

use crate::isa::Instr;

/// The result of cold-scheduling a basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdScheduleResult {
    /// The reordered block.
    pub scheduled: Vec<Instr>,
    /// Bus bit transitions of the original order.
    pub transitions_before: u64,
    /// Bus bit transitions of the scheduled order.
    pub transitions_after: u64,
}

impl ColdScheduleResult {
    /// Fractional reduction in bus switching.
    pub fn reduction(&self) -> f64 {
        if self.transitions_before == 0 {
            0.0
        } else {
            1.0 - self.transitions_after as f64 / self.transitions_before as f64
        }
    }
}

/// Static bus transitions of a straight-line sequence.
pub fn block_transitions(block: &[Instr]) -> u64 {
    block.windows(2).map(|w| (w[0].encode() ^ w[1].encode()).count_ones() as u64).sum()
}

/// Dependence test: must `b` stay after `a`?
fn depends(a: &Instr, b: &Instr) -> bool {
    // RAW: b reads a's dest.
    if let Some(d) = a.dest() {
        if d.0 != 0 && b.sources().contains(&d) {
            return true;
        }
    }
    // WAR: b writes a register a reads.
    if let Some(d) = b.dest() {
        if d.0 != 0 && a.sources().contains(&d) {
            return true;
        }
        // WAW.
        if a.dest() == Some(d) {
            return true;
        }
    }
    // Memory ops stay ordered relative to each other (no alias analysis).
    let mem = |i: &Instr| matches!(i, Instr::Ld(..) | Instr::St(..));
    if mem(a) && mem(b) && (matches!(a, Instr::St(..)) || matches!(b, Instr::St(..))) {
        return true;
    }
    // Control flow pins everything.
    a.is_control() || b.is_control()
}

/// Cold-schedules one basic block: a greedy list scheduler that always
/// emits the ready instruction with the lowest bus-switching cost relative
/// to the previously emitted instruction (the "power cost" priority of the
/// cold-scheduling paper).
pub fn cold_schedule(block: &[Instr]) -> ColdScheduleResult {
    let n = block.len();
    // Build the dependence DAG.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in i + 1..n {
            if depends(&block[i], &block[j]) {
                preds[j].push(i);
            }
        }
    }
    let mut emitted = vec![false; n];
    let mut remaining: Vec<usize> = preds.iter().map(|p| p.len()).collect();
    let mut out: Vec<Instr> = Vec::with_capacity(n);
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for _ in 0..n {
        // Ready set: all predecessors emitted.
        let mut best: Option<(u32, usize)> = None;
        for (j, &rem) in remaining.iter().enumerate() {
            if emitted[j] || rem > 0 {
                continue;
            }
            let cost = match out.last() {
                Some(prev) => (prev.encode() ^ block[j].encode()).count_ones(),
                None => 0,
            };
            // Tie-break by original order for determinism.
            if best.is_none_or(|(c, bj)| cost < c || (cost == c && j < bj)) {
                best = Some((cost, j));
            }
        }
        let (_, j) = best.expect("acyclic dependence DAG always has a ready instruction");
        emitted[j] = true;
        out.push(block[j]);
        order.push(j);
        for k in 0..n {
            if !emitted[k] && preds[k].contains(&j) {
                remaining[k] -= 1;
            }
        }
    }
    let before = block_transitions(block);
    let after = block_transitions(&out);
    // Greedy list scheduling can occasionally lose to the original order;
    // a compiler would keep whichever is cheaper, so do the same.
    if after > before {
        return ColdScheduleResult {
            transitions_before: before,
            transitions_after: before,
            scheduled: block.to_vec(),
        };
    }
    ColdScheduleResult { transitions_before: before, transitions_after: after, scheduled: out }
}

/// Operand swapping (Lee et al., §III-A): for commutative instructions,
/// swap the two source-register fields when that lowers the encoding
/// Hamming distance to the neighbouring instructions. Semantics are
/// unchanged; only the instruction-bus image improves. Returns the
/// rewritten block and the transition counts before/after.
pub fn swap_operands(block: &[Instr]) -> ColdScheduleResult {
    let commutative_swap = |i: &Instr| -> Option<Instr> {
        match *i {
            Instr::Add(d, a, b) if a != b => Some(Instr::Add(d, b, a)),
            Instr::Mul(d, a, b) if a != b => Some(Instr::Mul(d, b, a)),
            Instr::And(d, a, b) if a != b => Some(Instr::And(d, b, a)),
            Instr::Or(d, a, b) if a != b => Some(Instr::Or(d, b, a)),
            Instr::Xor(d, a, b) if a != b => Some(Instr::Xor(d, b, a)),
            _ => None,
        }
    };
    let mut out = block.to_vec();
    // Greedy left-to-right: each instruction choice sees its final left
    // neighbour and current right neighbour.
    for i in 0..out.len() {
        let Some(swapped) = commutative_swap(&out[i]) else { continue };
        let cost = |cand: &Instr| -> u32 {
            let mut c = 0;
            if i > 0 {
                c += (out[i - 1].encode() ^ cand.encode()).count_ones();
            }
            if i + 1 < out.len() {
                c += (cand.encode() ^ out[i + 1].encode()).count_ones();
            }
            c
        };
        if cost(&swapped) < cost(&out[i]) {
            out[i] = swapped;
        }
    }
    let before = block_transitions(block);
    let after = block_transitions(&out);
    ColdScheduleResult { transitions_before: before, transitions_after: after, scheduled: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;
    use hlpower_rng::Rng;

    fn random_block(seed: u64, n: usize) -> Vec<Instr> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let d = Reg(rng.gen_range(1..16));
                let a = Reg(rng.gen_range(1..16));
                let b = Reg(rng.gen_range(1..16));
                match rng.gen_range(0..5) {
                    0 => Instr::Add(d, a, b),
                    1 => Instr::Xor(d, a, b),
                    2 => Instr::Mul(d, a, b),
                    3 => Instr::Addi(d, a, rng.gen_range(-100..100)),
                    _ => Instr::Shli(d, a, rng.gen_range(0..8)),
                }
            })
            .collect()
    }

    /// Simulate register dataflow of a straight-line block.
    fn eval_block(block: &[Instr]) -> [i64; 16] {
        let mut r = [0i64; 16];
        for i in 1..16 {
            r[i] = i as i64 * 3 + 1;
        }
        for ins in block {
            let rd = |x: Reg, r: &[i64; 16]| if x.0 == 0 { 0 } else { r[x.0 as usize] };
            match *ins {
                Instr::Add(d, a, b) => r[d.0 as usize] = rd(a, &r).wrapping_add(rd(b, &r)),
                Instr::Sub(d, a, b) => r[d.0 as usize] = rd(a, &r).wrapping_sub(rd(b, &r)),
                Instr::Mul(d, a, b) => r[d.0 as usize] = rd(a, &r).wrapping_mul(rd(b, &r)),
                Instr::And(d, a, b) => r[d.0 as usize] = rd(a, &r) & rd(b, &r),
                Instr::Or(d, a, b) => r[d.0 as usize] = rd(a, &r) | rd(b, &r),
                Instr::Xor(d, a, b) => r[d.0 as usize] = rd(a, &r) ^ rd(b, &r),
                Instr::Addi(d, a, i) => r[d.0 as usize] = rd(a, &r).wrapping_add(i as i64),
                Instr::Shli(d, a, k) => r[d.0 as usize] = rd(a, &r).wrapping_shl(k as u32),
                _ => {}
            }
            r[0] = 0;
        }
        r
    }

    #[test]
    fn reduces_transitions_on_random_blocks() {
        let mut total_before = 0u64;
        let mut total_after = 0u64;
        for seed in 0..10 {
            let block = random_block(seed, 24);
            let r = cold_schedule(&block);
            assert!(r.transitions_after <= r.transitions_before);
            total_before += r.transitions_before;
            total_after += r.transitions_after;
        }
        assert!(
            (total_after as f64) < 0.95 * total_before as f64,
            "expected >5% aggregate reduction: {total_before} -> {total_after}"
        );
    }

    #[test]
    fn preserves_dataflow_semantics() {
        for seed in 0..20 {
            let block = random_block(seed * 7 + 1, 16);
            let r = cold_schedule(&block);
            assert_eq!(eval_block(&block), eval_block(&r.scheduled), "seed {seed}");
        }
    }

    #[test]
    fn keeps_memory_order() {
        let block = vec![
            Instr::St(Reg(1), Reg(2), 0),
            Instr::Ld(Reg(3), Reg(1), 0),
            Instr::Add(Reg(4), Reg(5), Reg(6)),
        ];
        let r = cold_schedule(&block);
        let st_pos = r.scheduled.iter().position(|i| matches!(i, Instr::St(..))).unwrap();
        let ld_pos = r.scheduled.iter().position(|i| matches!(i, Instr::Ld(..))).unwrap();
        assert!(st_pos < ld_pos);
    }

    #[test]
    fn control_instructions_stay_in_place() {
        let block = vec![
            Instr::Add(Reg(1), Reg(2), Reg(3)),
            Instr::Beq(Reg(1), Reg::ZERO, 5),
            Instr::Add(Reg(4), Reg(5), Reg(6)),
        ];
        let r = cold_schedule(&block);
        assert!(matches!(r.scheduled[1], Instr::Beq(..)));
    }

    #[test]
    fn operand_swapping_reduces_transitions() {
        let mut total_before = 0u64;
        let mut total_after = 0u64;
        for seed in 0..20 {
            let block = random_block(seed * 11 + 2, 20);
            let r = swap_operands(&block);
            assert!(r.transitions_after <= r.transitions_before);
            total_before += r.transitions_before;
            total_after += r.transitions_after;
        }
        assert!(total_after < total_before, "{total_before} -> {total_after}");
    }

    #[test]
    fn operand_swapping_preserves_semantics() {
        for seed in 0..20 {
            let block = random_block(seed * 13 + 5, 16);
            let r = swap_operands(&block);
            assert_eq!(eval_block(&block), eval_block(&r.scheduled), "seed {seed}");
        }
    }

    #[test]
    fn swapping_composes_with_cold_scheduling() {
        let block = random_block(77, 24);
        let scheduled = cold_schedule(&block);
        let both = swap_operands(&scheduled.scheduled);
        assert!(both.transitions_after <= scheduled.transitions_after);
        assert_eq!(eval_block(&block), eval_block(&both.scheduled));
    }

    #[test]
    fn empty_and_single_blocks() {
        assert_eq!(cold_schedule(&[]).scheduled.len(), 0);
        let one = vec![Instr::Nop];
        let r = cold_schedule(&one);
        assert_eq!(r.scheduled, one);
        assert_eq!(r.reduction(), 0.0);
    }
}
