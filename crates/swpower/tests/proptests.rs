//! Property-based tests: the architectural simulator and cold scheduler
//! preserve program semantics under arbitrary inputs.

use hlpower_sw::{coldsched, Instr, Machine, MachineConfig, Program, Reg};
use proptest::prelude::*;

/// Strategy for straight-line ALU blocks (no control flow, no memory).
fn alu_block() -> impl Strategy<Value = Vec<Instr>> {
    proptest::collection::vec(
        (0u8..5, 1u8..16, 1u8..16, 1u8..16, -100i32..100).prop_map(|(k, d, a, b, imm)| {
            match k {
                0 => Instr::Add(Reg(d), Reg(a), Reg(b)),
                1 => Instr::Sub(Reg(d), Reg(a), Reg(b)),
                2 => Instr::Xor(Reg(d), Reg(a), Reg(b)),
                3 => Instr::Addi(Reg(d), Reg(a), imm),
                _ => Instr::Mul(Reg(d), Reg(a), Reg(b)),
            }
        }),
        1..30,
    )
}

/// Runs a straight-line block on the machine with seeded register inits
/// and returns the final registers.
fn run_block(block: &[Instr], inits: &[i64]) -> [i64; 16] {
    let mut code = Vec::new();
    for (i, &v) in inits.iter().enumerate().take(15) {
        // Materialize small initial values.
        code.push(Instr::Addi(Reg(i as u8 + 1), Reg::ZERO, (v % 1000) as i32));
    }
    code.extend_from_slice(block);
    code.push(Instr::Halt);
    let p = Program { code, data: vec![0; 16] };
    let mut m = Machine::new(MachineConfig::default());
    m.set_trace_limit(0);
    m.run(&p, 10_000_000).expect("straight-line code halts").regs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cold scheduling preserves the register-file semantics of arbitrary
    /// straight-line blocks.
    #[test]
    fn cold_schedule_preserves_semantics(
        block in alu_block(),
        inits in proptest::collection::vec(-1000i64..1000, 15),
    ) {
        let r = coldsched::cold_schedule(&block);
        prop_assert!(r.transitions_after <= r.transitions_before);
        prop_assert_eq!(run_block(&block, &inits), run_block(&r.scheduled, &inits));
    }

    /// The scheduled block is a permutation of the original.
    #[test]
    fn cold_schedule_is_permutation(block in alu_block()) {
        let r = coldsched::cold_schedule(&block);
        let mut a = block.clone();
        let mut b = r.scheduled.clone();
        let key = |i: &Instr| i.encode();
        a.sort_by_key(key);
        b.sort_by_key(key);
        prop_assert_eq!(a, b);
    }

    /// Cycle counts dominate instruction counts, and the energy model is
    /// monotone in work: appending instructions never reduces energy.
    #[test]
    fn machine_accounting_monotone(block in alu_block(), extra in alu_block()) {
        let build = |instrs: &[Instr]| {
            let mut code = instrs.to_vec();
            code.push(Instr::Halt);
            Program { code, data: vec![] }
        };
        let mut m = Machine::new(MachineConfig::default());
        m.set_trace_limit(0);
        let short = m.run(&build(&block), 10_000_000).expect("halts");
        let mut longer_code = block.clone();
        longer_code.extend_from_slice(&extra);
        let long = m.run(&build(&longer_code), 10_000_000).expect("halts");
        prop_assert!(short.cycles >= short.instructions);
        prop_assert!(long.energy_pj >= short.energy_pj);
        prop_assert!(long.instructions == short.instructions + extra.len() as u64);
    }

    /// Instruction encodings are injective over register fields.
    #[test]
    fn encodings_distinguish_operands(d in 1u8..16, a in 1u8..16, b in 1u8..16) {
        let base = Instr::Add(Reg(d), Reg(a), Reg(b));
        let other = Instr::Add(Reg(d % 15 + 1), Reg(a), Reg(b));
        if base != other {
            prop_assert_ne!(base.encode(), other.encode());
        }
        prop_assert_ne!(base.encode(), Instr::Sub(Reg(d), Reg(a), Reg(b)).encode());
    }
}
