//! Property-based tests: the architectural simulator and cold scheduler
//! preserve program semantics under arbitrary inputs. Runs on the
//! in-tree [`hlpower_rng::check`] harness.

use hlpower_rng::check::Check;
use hlpower_rng::Rng;
use hlpower_sw::{coldsched, Instr, Machine, MachineConfig, Program, Reg};

/// Draws a straight-line ALU block (no control flow, no memory).
fn alu_block(rng: &mut Rng) -> Vec<Instr> {
    let len = rng.gen_range(1usize..30);
    (0..len)
        .map(|_| {
            let k = rng.gen_range(0u8..5);
            let d = Reg(rng.gen_range(1u8..16));
            let a = Reg(rng.gen_range(1u8..16));
            let b = Reg(rng.gen_range(1u8..16));
            let imm = rng.gen_range(-100i32..100);
            match k {
                0 => Instr::Add(d, a, b),
                1 => Instr::Sub(d, a, b),
                2 => Instr::Xor(d, a, b),
                3 => Instr::Addi(d, a, imm),
                _ => Instr::Mul(d, a, b),
            }
        })
        .collect()
}

/// Runs a straight-line block on the machine with seeded register inits
/// and returns the final registers.
fn run_block(block: &[Instr], inits: &[i64]) -> [i64; 16] {
    let mut code = Vec::new();
    for (i, &v) in inits.iter().enumerate().take(15) {
        // Materialize small initial values.
        code.push(Instr::Addi(Reg(i as u8 + 1), Reg::ZERO, (v % 1000) as i32));
    }
    code.extend_from_slice(block);
    code.push(Instr::Halt);
    let p = Program { code, data: vec![0; 16] };
    let mut m = Machine::new(MachineConfig::default());
    m.set_trace_limit(0);
    m.run(&p, 10_000_000).expect("straight-line code halts").regs
}

/// Cold scheduling preserves the register-file semantics of arbitrary
/// straight-line blocks.
#[test]
fn cold_schedule_preserves_semantics() {
    Check::new("cold_schedule_preserves_semantics").cases(48).run(|rng| {
        let block = alu_block(rng);
        let inits: Vec<i64> = (0..15).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let r = coldsched::cold_schedule(&block);
        assert!(r.transitions_after <= r.transitions_before);
        assert_eq!(run_block(&block, &inits), run_block(&r.scheduled, &inits));
    });
}

/// The scheduled block is a permutation of the original.
#[test]
fn cold_schedule_is_permutation() {
    Check::new("cold_schedule_is_permutation").cases(48).run(|rng| {
        let block = alu_block(rng);
        let r = coldsched::cold_schedule(&block);
        let mut a = block.clone();
        let mut b = r.scheduled.clone();
        let key = |i: &Instr| i.encode();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    });
}

/// Cycle counts dominate instruction counts, and the energy model is
/// monotone in work: appending instructions never reduces energy.
#[test]
fn machine_accounting_monotone() {
    Check::new("machine_accounting_monotone").cases(48).run(|rng| {
        let block = alu_block(rng);
        let extra = alu_block(rng);
        let build = |instrs: &[Instr]| {
            let mut code = instrs.to_vec();
            code.push(Instr::Halt);
            Program { code, data: vec![] }
        };
        let mut m = Machine::new(MachineConfig::default());
        m.set_trace_limit(0);
        let short = m.run(&build(&block), 10_000_000).expect("halts");
        let mut longer_code = block.clone();
        longer_code.extend_from_slice(&extra);
        let long = m.run(&build(&longer_code), 10_000_000).expect("halts");
        assert!(short.cycles >= short.instructions);
        assert!(long.energy_pj >= short.energy_pj);
        assert!(long.instructions == short.instructions + extra.len() as u64);
    });
}

/// Instruction encodings are injective over register fields.
#[test]
fn encodings_distinguish_operands() {
    Check::new("encodings_distinguish_operands").cases(48).run(|rng| {
        let d = rng.gen_range(1u8..16);
        let a = rng.gen_range(1u8..16);
        let b = rng.gen_range(1u8..16);
        let base = Instr::Add(Reg(d), Reg(a), Reg(b));
        let other = Instr::Add(Reg(d % 15 + 1), Reg(a), Reg(b));
        if base != other {
            assert_ne!(base.encode(), other.encode());
        }
        assert_ne!(base.encode(), Instr::Sub(Reg(d), Reg(a), Reg(b)).encode());
    });
}
