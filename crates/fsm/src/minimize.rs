//! State minimization of completely specified machines by partition
//! refinement (the classic algorithm behind the survey's restructuring
//! discussion, §III-H and reference 88).

use crate::stg::Stg;

/// Minimizes a completely specified Mealy machine.
///
/// Returns the minimized machine and the mapping from old state index to
/// new state index. Equivalent states (same outputs and equivalent
/// successors on every input symbol) are merged; the reset state is
/// preserved.
pub fn minimize_states(stg: &Stg) -> (Stg, Vec<usize>) {
    let n = stg.state_count();
    let symbols = stg.symbol_count();
    // Initial partition: by complete output signature.
    let mut class: Vec<usize> = {
        let mut signatures: Vec<Vec<u64>> = Vec::with_capacity(n);
        for s in 0..n {
            let sig: Vec<u64> =
                (0..symbols).map(|w| stg.output(s, w as u64).expect("in range")).collect();
            signatures.push(sig);
        }
        let mut canon: Vec<Vec<u64>> = Vec::new();
        signatures
            .iter()
            .map(|sig| {
                if let Some(i) = canon.iter().position(|c| c == sig) {
                    i
                } else {
                    canon.push(sig.clone());
                    canon.len() - 1
                }
            })
            .collect()
    };
    // Refine until stable: split classes whose members disagree on the
    // class of any successor.
    loop {
        let mut new_class = vec![0usize; n];
        let mut canon: Vec<(usize, Vec<usize>)> = Vec::new();
        for s in 0..n {
            let succ: Vec<usize> =
                (0..symbols).map(|w| class[stg.next(s, w as u64).expect("in range")]).collect();
            let key = (class[s], succ);
            if let Some(i) = canon.iter().position(|c| *c == key) {
                new_class[s] = i;
            } else {
                canon.push(key);
                new_class[s] = canon.len() - 1;
            }
        }
        if new_class == class {
            break;
        }
        class = new_class;
    }
    // Build the quotient machine.
    let class_count = class.iter().max().map_or(0, |m| m + 1);
    let mut out = Stg::with_outputs(stg.input_bits(), stg.output_bits());
    let mut representative = vec![usize::MAX; class_count];
    for s in 0..n {
        if representative[class[s]] == usize::MAX {
            representative[class[s]] = s;
        }
    }
    for c in 0..class_count {
        out.add_state(stg.state_name(representative[c]).to_string());
    }
    for c in 0..class_count {
        let rep = representative[c];
        for w in 0..symbols {
            let next = class[stg.next(rep, w as u64).expect("in range")];
            let output = stg.output(rep, w as u64).expect("in range");
            out.set_transition(c, w as u64, next, output);
        }
    }
    out.set_reset(class[stg.reset()]).expect("reset class exists");
    (out, class)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A machine with two redundant copies of each state of a 2-state
    /// toggler.
    fn redundant_toggler() -> Stg {
        let mut stg = Stg::new(1);
        let a0 = stg.add_state("a0");
        let a1 = stg.add_state("a1");
        let b0 = stg.add_state("b0");
        let b1 = stg.add_state("b1");
        // a0/b0 behave identically: on 1 go to (some copy of) state-1 and
        // output 0; on 0 stay.
        stg.set_transition(a0, 1, a1, 0);
        stg.set_transition(b0, 1, b1, 0);
        stg.set_transition(a0, 0, b0, 0);
        stg.set_transition(b0, 0, a0, 0);
        stg.set_transition(a1, 1, b0, 1);
        stg.set_transition(b1, 1, a0, 1);
        stg.set_transition(a1, 0, b1, 1);
        stg.set_transition(b1, 0, a1, 1);
        stg
    }

    #[test]
    fn merges_equivalent_states() {
        let stg = redundant_toggler();
        let (min, map) = minimize_states(&stg);
        assert_eq!(min.state_count(), 2);
        assert_eq!(map[0], map[2], "a0 and b0 equivalent");
        assert_eq!(map[1], map[3], "a1 and b1 equivalent");
    }

    #[test]
    fn minimized_machine_is_io_equivalent() {
        let stg = redundant_toggler();
        let (min, _) = minimize_states(&stg);
        let inputs: Vec<u64> = (0..64).map(|i| (i * 7 + 3) % 2).collect();
        let (_, out1) = stg.simulate(&inputs).unwrap();
        let (_, out2) = min.simulate(&inputs).unwrap();
        assert_eq!(out1, out2);
    }

    #[test]
    fn already_minimal_machine_unchanged() {
        let mut stg = Stg::new(1);
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        stg.set_transition(a, 1, b, 1);
        stg.set_transition(b, 1, a, 0);
        stg.set_transition(b, 0, b, 1);
        let (min, _) = minimize_states(&stg);
        assert_eq!(min.state_count(), 2);
    }

    #[test]
    fn distinguishes_by_deep_successor_behavior() {
        // Two states with identical outputs but successors that differ
        // only two steps later.
        let mut stg = Stg::new(1);
        let s = [stg.add_state("p"), stg.add_state("q"), stg.add_state("x"), stg.add_state("y")];
        // p -> x, q -> y (same outputs); x outputs 0, y outputs 1 on input 1.
        for w in 0..2u64 {
            stg.set_transition(s[0], w, s[2], 0);
            stg.set_transition(s[1], w, s[3], 0);
            stg.set_transition(s[2], w, s[2], 0);
            stg.set_transition(s[3], w, s[3], w);
        }
        let (min, map) = minimize_states(&stg);
        assert_ne!(map[s[0]], map[s[1]], "p and q must stay distinct");
        // p and x are equivalent (both emit 0 forever), so 3 classes remain.
        assert_eq!(min.state_count(), 3);
        assert_eq!(map[s[0]], map[s[2]]);
    }
}
