//! Synthesis of an encoded STG into a gate-level netlist.
//!
//! Next-state and output functions are built symbolically as BDDs over the
//! primary inputs and present-state lines, then mapped to multiplexer
//! networks (§III-H's direct translation). The state register uses
//! feedback flip-flops; reset is modeled through flip-flop initial values.

use hlpower_bdd::{bdd_to_mux_netlist, BddManager, BddRef};
use hlpower_netlist::{Bus, Netlist};

use crate::encode::Encoding;
use crate::stg::{FsmError, Stg};

/// A synthesized FSM circuit.
#[derive(Debug)]
pub struct FsmCircuit {
    /// The gate-level implementation.
    pub netlist: Netlist,
    /// Primary-input nodes (the machine's input word, LSB first).
    pub inputs: Bus,
    /// Present-state flip-flop outputs, LSB first.
    pub state: Bus,
    /// Output nodes (Mealy outputs, LSB first).
    pub outputs: Bus,
}

/// Synthesizes `stg` under `encoding` into a gate-level netlist.
///
/// State-register flip-flops are attributed to the `registers/clock` group
/// and the next-state/output logic to `control logic`, matching the
/// component classes used by the survey's Table I.
///
/// # Errors
///
/// Returns [`FsmError::InvalidEncoding`] if the encoding does not cover
/// every state, or [`FsmError::Empty`] for an empty machine.
pub fn synthesize(stg: &Stg, encoding: &Encoding) -> Result<FsmCircuit, FsmError> {
    if stg.state_count() == 0 {
        return Err(FsmError::Empty);
    }
    if encoding.codes().len() != stg.state_count() {
        return Err(FsmError::InvalidEncoding {
            reason: format!(
                "encoding covers {} states, machine has {}",
                encoding.codes().len(),
                stg.state_count()
            ),
        });
    }
    let in_bits = stg.input_bits();
    let st_bits = encoding.bits();
    let out_bits = stg.output_bits();

    let mut nl = Netlist::new();
    let inputs = nl.input_bus("in", in_bits);
    let reset_code = encoding.code(stg.reset());
    let state: Bus = nl.with_group("registers/clock", |nl| {
        (0..st_bits).map(|i| nl.dff_placeholder((reset_code >> i) & 1 == 1)).collect()
    });

    // Symbolic functions over variables: inputs at 0..in_bits, state at
    // in_bits..in_bits+st_bits.
    let mut m = BddManager::new(in_bits + st_bits);
    let mut next_fns: Vec<BddRef> = vec![BddRef::FALSE; st_bits];
    let mut out_fns: Vec<BddRef> = vec![BddRef::FALSE; out_bits];
    for s in 0..stg.state_count() {
        let code = encoding.code(s);
        // State-match literal product.
        let mut state_cube = BddRef::TRUE;
        for b in 0..st_bits {
            let lit = if (code >> b) & 1 == 1 {
                m.var((in_bits + b) as u32)
            } else {
                m.nvar((in_bits + b) as u32)
            };
            state_cube = m.and(state_cube, lit);
        }
        for w in 0..stg.symbol_count() as u64 {
            let next_code = encoding.code(stg.next(s, w).expect("in range"));
            let out_word = stg.output(s, w).expect("in range");
            if next_code == 0 && out_word == 0 {
                continue;
            }
            let mut cube = state_cube;
            for b in 0..in_bits {
                let lit = if (w >> b) & 1 == 1 { m.var(b as u32) } else { m.nvar(b as u32) };
                cube = m.and(cube, lit);
            }
            for (bit, f) in next_fns.iter_mut().enumerate() {
                if (next_code >> bit) & 1 == 1 {
                    *f = m.or(*f, cube);
                }
            }
            for (bit, f) in out_fns.iter_mut().enumerate() {
                if (out_word >> bit) & 1 == 1 {
                    *f = m.or(*f, cube);
                }
            }
        }
    }

    // Map to logic. Variable nodes: inputs then state lines.
    let mut var_nodes = inputs.clone();
    var_nodes.extend(state.iter().copied());
    let (next_nodes, outputs): (Bus, Bus) = nl.with_group("control logic", |nl| {
        let next_nodes: Bus =
            next_fns.iter().map(|&f| bdd_to_mux_netlist(&m, f, &var_nodes, nl)).collect();
        let outputs: Bus =
            out_fns.iter().map(|&f| bdd_to_mux_netlist(&m, f, &var_nodes, nl)).collect();
        (next_nodes, outputs)
    });
    for (q, d) in state.iter().zip(&next_nodes) {
        nl.connect_dff_d(*q, *d);
    }
    for (i, &o) in outputs.iter().enumerate() {
        nl.set_output(format!("out[{i}]"), o);
    }

    Ok(FsmCircuit { netlist: nl, inputs, state, outputs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoding;
    use crate::generators;
    use hlpower_netlist::{words::to_bits, ZeroDelaySim};

    /// Simulate the synthesized circuit against the STG reference.
    fn check_equivalence(stg: &Stg, enc: &Encoding, steps: usize, seed: u64) {
        let circuit = synthesize(stg, enc).unwrap();
        let mut sim = ZeroDelaySim::new(&circuit.netlist).unwrap();
        use hlpower_rng::Rng;
        let mut rng = Rng::seed_from_u64(seed);
        let words: Vec<u64> =
            (0..steps).map(|_| rng.gen_range(0..stg.symbol_count() as u64)).collect();
        let (_, expected_outputs) = stg.simulate(&words).unwrap();
        for (i, &w) in words.iter().enumerate() {
            sim.step(&to_bits(w, stg.input_bits())).unwrap();
            let got: u64 = hlpower_netlist::words::from_bits(&sim.output_values());
            assert_eq!(got, expected_outputs[i], "step {i} input {w}");
        }
    }

    #[test]
    fn toggler_synthesizes_correctly() {
        let mut stg = Stg::new(1);
        let s0 = stg.add_state("s0");
        let s1 = stg.add_state("s1");
        stg.set_transition(s0, 1, s1, 1);
        stg.set_transition(s1, 1, s0, 0);
        stg.set_transition(s1, 0, s1, 0);
        check_equivalence(&stg, &Encoding::binary(&stg), 50, 1);
    }

    #[test]
    fn random_machines_synthesize_correctly_under_all_encodings() {
        for seed in 0..3u64 {
            let stg = generators::random_stg(2, 6, 2, seed);
            for enc in [Encoding::binary(&stg), Encoding::gray(&stg), Encoding::one_hot(&stg)] {
                check_equivalence(&stg, &enc, 100, seed + 10);
            }
        }
    }

    #[test]
    fn reset_state_is_honored() {
        let mut stg = Stg::new(1);
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        stg.set_transition(a, 0, a, 0);
        stg.set_transition(a, 1, b, 0);
        stg.set_transition(b, 0, b, 1);
        stg.set_transition(b, 1, b, 1);
        stg.set_reset(b).unwrap();
        let enc = Encoding::binary(&stg);
        let circuit = synthesize(&stg, &enc).unwrap();
        let mut sim = ZeroDelaySim::new(&circuit.netlist).unwrap();
        sim.step(&[false]).unwrap();
        // From reset state b, input 0 outputs 1.
        assert_eq!(sim.output_values(), vec![true]);
    }

    #[test]
    fn encoding_mismatch_is_rejected() {
        let mut stg = Stg::new(1);
        stg.add_state("a");
        stg.add_state("b");
        let enc = Encoding::from_codes(vec![0], 1).unwrap();
        assert!(matches!(synthesize(&stg, &enc), Err(FsmError::InvalidEncoding { .. })));
    }

    #[test]
    fn state_register_width_matches_encoding() {
        let stg = generators::random_stg(1, 5, 1, 2);
        let one_hot = Encoding::one_hot(&stg);
        let c = synthesize(&stg, &one_hot).unwrap();
        assert_eq!(c.state.len(), 5);
        let bin = Encoding::binary(&stg);
        let c2 = synthesize(&stg, &bin).unwrap();
        assert_eq!(c2.state.len(), 3);
    }
}
