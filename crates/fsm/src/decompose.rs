//! FSM decomposition for selective clocking (survey §III-H, refs 85-87).
//!
//! A large machine is partitioned into two submachines connected through
//! wait states: only the submachine owning the current state is clocked,
//! so the partition's quality is measured by (a) how rarely control
//! crosses the cut (crossing transitions drive the heavier inter-machine
//! lines and wake the other half) and (b) how balanced the halves are
//! (the bigger the idle half, the more clock power a crossing-free cycle
//! saves).

use crate::markov::MarkovAnalysis;
use crate::stg::Stg;

/// A two-way partition of a machine's states.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Partition id (0 or 1) of every state.
    pub part_of: Vec<u8>,
    /// Steady-state probability that a cycle crosses the cut (both halves
    /// active: handoff through a wait state).
    pub crossing_probability: f64,
    /// Steady-state probability of residing in partition 0.
    pub residency: [f64; 2],
}

impl Decomposition {
    /// Expected fraction of total clock power saved by clocking only the
    /// active submachine, assuming clock power proportional to state count
    /// and full-cost cycles whenever the cut is crossed.
    pub fn clock_saving(&self, stg: &Stg) -> f64 {
        let n = stg.state_count() as f64;
        let size = [
            self.part_of.iter().filter(|&&p| p == 0).count() as f64 / n,
            self.part_of.iter().filter(|&&p| p == 1).count() as f64 / n,
        ];
        // While resident in part i (and not crossing), the other part's
        // clock is stopped.
        let stay = 1.0 - self.crossing_probability;
        stay * (self.residency[0] * size[1] + self.residency[1] * size[0])
    }
}

/// Greedy min-cut decomposition: seeded with the two states least likely
/// to co-occur, then grown by assigning each state to the side it
/// transitions with most (probability-weighted), followed by a
/// swap-improvement pass minimizing the crossing probability.
pub fn decompose(stg: &Stg, markov: &MarkovAnalysis) -> Decomposition {
    let n = stg.state_count();
    let q = markov.joint_transition_probs(stg);
    // Symmetric affinity between states.
    let aff = |a: usize, b: usize| q[a][b] + q[b][a];
    // Seeds: the pair with the least affinity among the most-probable
    // states.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        markov.state_probs[b].partial_cmp(&markov.state_probs[a]).expect("finite probabilities")
    });
    let top = &order[..n.min(6)];
    let mut seeds = (top[0], *top.last().expect("nonempty"));
    let mut best_aff = f64::INFINITY;
    for (i, &a) in top.iter().enumerate() {
        for &b in &top[i + 1..] {
            if aff(a, b) < best_aff {
                best_aff = aff(a, b);
                seeds = (a, b);
            }
        }
    }
    let mut part_of = vec![u8::MAX; n];
    part_of[seeds.0] = 0;
    part_of[seeds.1] = 1;
    // Grow: repeatedly place the unassigned state with the strongest pull.
    for _ in 0..n {
        let mut best: Option<(f64, usize, u8)> = None;
        for s in 0..n {
            if part_of[s] != u8::MAX {
                continue;
            }
            let mut pull = [0.0f64; 2];
            for t in 0..n {
                if part_of[t] == 0 {
                    pull[0] += aff(s, t);
                } else if part_of[t] == 1 {
                    pull[1] += aff(s, t);
                }
            }
            let side = if pull[0] >= pull[1] { 0u8 } else { 1u8 };
            let strength = pull[side as usize] - pull[1 - side as usize];
            if best.as_ref().is_none_or(|&(bs, _, _)| strength > bs) {
                best = Some((strength, s, side));
            }
        }
        match best {
            Some((_, s, side)) => part_of[s] = side,
            None => break,
        }
    }
    // Swap-improvement on the crossing probability.
    let crossing = |part_of: &[u8]| -> f64 {
        let mut c = 0.0;
        for a in 0..n {
            for b in 0..n {
                if part_of[a] != part_of[b] {
                    c += q[a][b];
                }
            }
        }
        c
    };
    let mut cur = crossing(&part_of);
    let mut improved = true;
    while improved {
        improved = false;
        for s in 0..n {
            // Never empty a partition.
            let my = part_of[s];
            if part_of.iter().filter(|&&p| p == my).count() <= 1 {
                continue;
            }
            part_of[s] = 1 - my;
            let c = crossing(&part_of);
            if c < cur - 1e-15 {
                cur = c;
                improved = true;
            } else {
                part_of[s] = my;
            }
        }
    }
    let mut residency = [0.0f64; 2];
    for s in 0..n {
        residency[part_of[s] as usize] += markov.state_probs[s];
    }
    Decomposition { part_of, crossing_probability: cur, residency }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Two loosely coupled rings: the natural cut is between them.
    fn two_rings(k: usize) -> Stg {
        let mut stg = Stg::new(1);
        for i in 0..2 * k {
            stg.add_state(format!("s{i}"));
        }
        for i in 0..k {
            // Ring A advances on both symbols; on input 1 at state 0 jump
            // to ring B.
            stg.set_transition(i, 0, (i + 1) % k, 0);
            stg.set_transition(i, 1, (i + 1) % k, 0);
            // Ring B.
            stg.set_transition(k + i, 0, k + (i + 1) % k, 1);
            stg.set_transition(k + i, 1, k + (i + 1) % k, 1);
        }
        stg.set_transition(0, 1, k, 0); // rare cross A -> B
        stg.set_transition(k, 1, 0, 1); // rare cross B -> A
        stg
    }

    #[test]
    fn finds_the_natural_cut() {
        let stg = two_rings(5);
        let m = MarkovAnalysis::with_input_distribution(&stg, &[0.9, 0.1]);
        let d = decompose(&stg, &m);
        // All of ring A in one part, all of ring B in the other.
        let a0 = d.part_of[0];
        for i in 0..5 {
            assert_eq!(d.part_of[i], a0, "ring A split");
            assert_eq!(d.part_of[5 + i], 1 - a0, "ring B split");
        }
        assert!(d.crossing_probability < 0.1, "{d:?}");
    }

    #[test]
    fn clock_saving_substantial_for_loose_coupling() {
        let stg = two_rings(6);
        let m = MarkovAnalysis::with_input_distribution(&stg, &[0.95, 0.05]);
        let d = decompose(&stg, &m);
        let saving = d.clock_saving(&stg);
        assert!(saving > 0.3, "saving {saving} ({d:?})");
    }

    #[test]
    fn partitions_are_nonempty_and_cover() {
        for seed in 0..5 {
            let stg = generators::random_stg(2, 12, 1, seed);
            let m = MarkovAnalysis::uniform(&stg);
            let d = decompose(&stg, &m);
            let zeros = d.part_of.iter().filter(|&&p| p == 0).count();
            assert!(zeros > 0 && zeros < 12, "degenerate partition");
            assert!(d.part_of.iter().all(|&p| p <= 1));
            assert!((d.residency[0] + d.residency[1] - 1.0).abs() < 1e-6);
            assert!((0.0..=1.0).contains(&d.crossing_probability));
        }
    }

    #[test]
    fn tight_coupling_gives_high_crossing() {
        // A fully connected machine has no good cut.
        let mut stg = Stg::new(2);
        for i in 0..4 {
            stg.add_state(format!("s{i}"));
        }
        for s in 0..4 {
            for w in 0..4u64 {
                stg.set_transition(s, w, (s + 1 + w as usize) % 4, 0);
            }
        }
        let m = MarkovAnalysis::uniform(&stg);
        let d = decompose(&stg, &m);
        assert!(d.crossing_probability > 0.3, "{d:?}");
    }
}
