//! KISS2 interchange format for FSMs — the format of the MCNC benchmark
//! suites the survey's encoding papers evaluated on.
//!
//! Supported subset: `.i/.o/.s/.p/.r` headers and transition lines
//! `<input> <state> <next> <output>` with explicit binary inputs/outputs
//! (`-` don't-cares in the input field expand to all matching symbols).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::stg::Stg;

/// Errors from KISS2 parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KissError {
    /// A header or transition line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// The file declares no transitions.
    Empty,
}

impl fmt::Display for KissError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KissError::Malformed { line, reason } => {
                write!(f, "KISS2 line {line}: {reason}")
            }
            KissError::Empty => write!(f, "KISS2 description has no transitions"),
        }
    }
}

impl Error for KissError {}

/// Parses a KISS2 description into an [`Stg`].
///
/// States are created in order of first appearance; the `.r` reset state
/// (or the first transition's source) becomes the reset. Transitions not
/// listed keep the default self-loop with zero output, so the machine is
/// completely specified.
///
/// # Errors
///
/// Returns [`KissError::Malformed`] for syntax errors or inconsistent
/// widths, [`KissError::Empty`] when no transitions are present.
pub fn parse_kiss2(text: &str) -> Result<Stg, KissError> {
    let mut input_bits: Option<usize> = None;
    let mut output_bits: Option<usize> = None;
    let mut reset_name: Option<String> = None;
    let mut transitions: Vec<(usize, String, String, String, String)> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = ln + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let key = parts.next().unwrap_or("");
            let val = parts.next();
            match key {
                "i" => {
                    input_bits = Some(parse_num(val, lineno)?);
                }
                "o" => {
                    output_bits = Some(parse_num(val, lineno)?);
                }
                "s" | "p" => { /* counts are advisory */ }
                "r" => {
                    reset_name = val.map(str::to_string);
                }
                "e" | "end" => break,
                other => {
                    return Err(KissError::Malformed {
                        line: lineno,
                        reason: format!("unknown directive .{other}"),
                    })
                }
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(KissError::Malformed {
                line: lineno,
                reason: format!("expected 4 fields, found {}", fields.len()),
            });
        }
        transitions.push((
            lineno,
            fields[0].to_string(),
            fields[1].to_string(),
            fields[2].to_string(),
            fields[3].to_string(),
        ));
    }
    if transitions.is_empty() {
        return Err(KissError::Empty);
    }
    let in_bits = input_bits.unwrap_or(transitions[0].1.len());
    let out_bits = output_bits.unwrap_or(transitions[0].4.len());
    let mut stg = Stg::with_outputs(in_bits, out_bits);
    let mut index: HashMap<String, usize> = HashMap::new();
    let state_of = |stg: &mut Stg, name: &str, index: &mut HashMap<String, usize>| {
        *index.entry(name.to_string()).or_insert_with(|| stg.add_state(name.to_string()))
    };
    for (lineno, in_pat, src, dst, out_pat) in &transitions {
        if in_pat.len() != in_bits {
            return Err(KissError::Malformed {
                line: *lineno,
                reason: format!("input pattern width {} != .i {in_bits}", in_pat.len()),
            });
        }
        if out_pat.len() != out_bits {
            return Err(KissError::Malformed {
                line: *lineno,
                reason: format!("output pattern width {} != .o {out_bits}", out_pat.len()),
            });
        }
        let s = state_of(&mut stg, src, &mut index);
        let d = state_of(&mut stg, dst, &mut index);
        let output = parse_bits(out_pat, *lineno)?;
        for word in expand_pattern(in_pat, *lineno)? {
            stg.set_transition(s, word, d, output);
        }
    }
    if let Some(name) = reset_name {
        if let Some(&s) = index.get(&name) {
            stg.set_reset(s).expect("state exists");
        }
    }
    Ok(stg)
}

fn parse_num(val: Option<&str>, line: usize) -> Result<usize, KissError> {
    val.and_then(|v| v.parse().ok())
        .ok_or_else(|| KissError::Malformed { line, reason: "expected a number".to_string() })
}

/// KISS2 patterns are MSB-first; returns the word with bit 0 = last char.
fn parse_bits(pat: &str, line: usize) -> Result<u64, KissError> {
    let mut v = 0u64;
    for c in pat.chars() {
        v = (v << 1)
            | match c {
                '0' | '-' => 0, // output don't-cares emit 0
                '1' => 1,
                other => {
                    return Err(KissError::Malformed {
                        line,
                        reason: format!("bad bit character '{other}'"),
                    })
                }
            };
    }
    Ok(v)
}

fn expand_pattern(pat: &str, line: usize) -> Result<Vec<u64>, KissError> {
    let mut words = vec![0u64];
    for c in pat.chars() {
        match c {
            '0' => {
                for w in &mut words {
                    *w <<= 1;
                }
            }
            '1' => {
                for w in &mut words {
                    *w = (*w << 1) | 1;
                }
            }
            '-' => {
                let mut doubled = Vec::with_capacity(words.len() * 2);
                for &w in &words {
                    doubled.push(w << 1);
                    doubled.push((w << 1) | 1);
                }
                words = doubled;
            }
            other => {
                return Err(KissError::Malformed {
                    line,
                    reason: format!("bad bit character '{other}'"),
                })
            }
        }
    }
    Ok(words)
}

/// Serializes an [`Stg`] to KISS2 (fully enumerated transitions).
pub fn to_kiss2(stg: &Stg) -> String {
    let mut out = String::new();
    out.push_str(&format!(".i {}\n", stg.input_bits()));
    out.push_str(&format!(".o {}\n", stg.output_bits()));
    out.push_str(&format!(".s {}\n", stg.state_count()));
    out.push_str(&format!(".p {}\n", stg.state_count() * stg.symbol_count()));
    out.push_str(&format!(".r {}\n", stg.state_name(stg.reset())));
    for s in 0..stg.state_count() {
        for w in 0..stg.symbol_count() as u64 {
            let next = stg.next(s, w).expect("in range");
            let output = stg.output(s, w).expect("in range");
            out.push_str(&format!(
                "{} {} {} {}\n",
                bit_string(w, stg.input_bits()),
                stg.state_name(s),
                stg.state_name(next),
                bit_string(output, stg.output_bits())
            ));
        }
    }
    out
}

fn bit_string(word: u64, bits: usize) -> String {
    (0..bits).rev().map(|b| if (word >> b) & 1 == 1 { '1' } else { '0' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    const SAMPLE: &str = "\
# a 2-state toggler
.i 1
.o 1
.s 2
.r off
1 off on 0
1 on off 1
0 off off 0
0 on on 1
.e
";

    #[test]
    fn parses_sample() {
        let stg = parse_kiss2(SAMPLE).unwrap();
        assert_eq!(stg.state_count(), 2);
        assert_eq!(stg.input_bits(), 1);
        assert_eq!(stg.state_name(stg.reset()), "off");
        let (states, outs) = stg.simulate(&[1, 1, 0]).unwrap();
        assert_eq!(states, vec![0, 1, 0, 0]);
        assert_eq!(outs, vec![0, 1, 0]);
    }

    #[test]
    fn dont_care_inputs_expand() {
        let text = "\
.i 2
.o 1
1- a b 1
0- a a 0
-- b a 0
";
        let stg = parse_kiss2(text).unwrap();
        // From a: inputs 10(2) and 11(3) go to b; 00,01 stay.
        assert_eq!(stg.next(0, 2).unwrap(), 1);
        assert_eq!(stg.next(0, 3).unwrap(), 1);
        assert_eq!(stg.next(0, 0).unwrap(), 0);
        assert_eq!(stg.next(1, 1).unwrap(), 0);
    }

    #[test]
    fn round_trip_preserves_behavior() {
        let stg = generators::random_stg(2, 9, 2, 5);
        let text = to_kiss2(&stg);
        let back = parse_kiss2(&text).unwrap();
        let inputs: Vec<u64> = (0..200).map(|i| (i * 7 + 1) % 4).collect();
        let (_, o1) = stg.simulate(&inputs).unwrap();
        let (_, o2) = back.simulate(&inputs).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(back.state_count(), stg.state_count());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_kiss2(".i 1\n.o 1\nbadline\n").unwrap_err();
        assert!(matches!(err, KissError::Malformed { line: 3, .. }));
        assert!(matches!(parse_kiss2(".i 2\n"), Err(KissError::Empty)));
        let err = parse_kiss2(".i 2\n.o 1\n1 a b 1\n").unwrap_err();
        assert!(matches!(err, KissError::Malformed { .. }), "width mismatch: {err}");
    }

    #[test]
    fn msb_first_bit_order() {
        let text = "\
.i 2
.o 2
10 a a 01
";
        let stg = parse_kiss2(text).unwrap();
        // Input pattern "10" = word 2; output "01" = word 1.
        assert_eq!(stg.output(0, 2).unwrap(), 1);
        assert_eq!(stg.output(0, 0).unwrap(), 0);
    }
}
