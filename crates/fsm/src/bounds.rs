//! Tyagi's entropic lower bounds on FSM switching (survey §II-B1, ref
//! \[13\]).
//!
//! For a sparse machine (transition-pair count `t <= 2.23 * T^1.72 /
//! sqrt(log T)` over `T` states) the expected Hamming distance per
//! transition is bounded below by
//!
//! ```text
//! sum_{i,j} p_ij H(s_i, s_j) >= h(p_ij) - 1.52 log T - 2.16 + 0.5 log(log T)
//! ```
//!
//! *regardless of the state encoding used*.

use crate::encode::Encoding;
use crate::markov::MarkovAnalysis;
use crate::stg::Stg;

/// The two sides of Tyagi's bound for a machine under an encoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TyagiBoundReport {
    /// Measured expected Hamming distance per cycle (left-hand side).
    pub expected_hamming: f64,
    /// The entropic lower bound (right-hand side; may be negative, in
    /// which case it is trivially satisfied).
    pub lower_bound: f64,
    /// Entropy of the steady-state joint transition distribution.
    pub transition_entropy: f64,
    /// Whether the machine satisfies the sparsity precondition.
    pub is_sparse: bool,
}

impl TyagiBoundReport {
    /// Whether the measured switching respects the bound.
    pub fn holds(&self) -> bool {
        self.expected_hamming >= self.lower_bound - 1e-9
    }
}

/// Evaluates Tyagi's entropic lower bound for `stg` under `encoding`,
/// using `markov` for steady-state transition probabilities.
pub fn tyagi_bound(stg: &Stg, markov: &MarkovAnalysis, encoding: &Encoding) -> TyagiBoundReport {
    let t_states = stg.state_count() as f64;
    let t_transitions = stg.transition_pair_count() as f64;
    let log_t = t_states.max(2.0).log2();
    let sparse_limit = 2.23 * t_states.powf(1.72) / log_t.sqrt();
    let h = markov.transition_entropy(stg);
    let lower_bound = h - 1.52 * log_t - 2.16 + 0.5 * log_t.max(1.0 + 1e-12).log2();
    TyagiBoundReport {
        expected_hamming: markov.expected_switching(stg, encoding),
        lower_bound,
        transition_entropy: h,
        is_sparse: t_transitions <= sparse_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::EncodingStrategy;
    use crate::generators;

    #[test]
    fn bound_holds_on_random_machines_for_every_encoding() {
        for seed in 0..8u64 {
            let stg = generators::random_stg(2, 24, 1, seed);
            let m = MarkovAnalysis::uniform(&stg);
            for strategy in [
                EncodingStrategy::Binary,
                EncodingStrategy::Gray,
                EncodingStrategy::OneHot,
                EncodingStrategy::Random(seed),
                EncodingStrategy::LowPower(seed),
            ] {
                let enc = Encoding::with_strategy(&stg, &m, strategy);
                let report = tyagi_bound(&stg, &m, &enc);
                assert!(
                    report.holds(),
                    "seed {seed} strategy {strategy:?}: H {} < bound {}",
                    report.expected_hamming,
                    report.lower_bound
                );
            }
        }
    }

    #[test]
    fn entropy_matches_markov() {
        let stg = generators::random_stg(2, 8, 1, 3);
        let m = MarkovAnalysis::uniform(&stg);
        let enc = Encoding::binary(&stg);
        let r = tyagi_bound(&stg, &m, &enc);
        assert!((r.transition_entropy - m.transition_entropy(&stg)).abs() < 1e-12);
    }

    #[test]
    fn sparsity_flag_reflects_transition_count() {
        // A fully-connected tiny machine is not sparse; a ring is.
        let mut ring = Stg::new(1);
        for i in 0..16 {
            ring.add_state(format!("s{i}"));
        }
        for i in 0..16 {
            ring.set_transition(i, 0, (i + 1) % 16, 0);
            ring.set_transition(i, 1, (i + 1) % 16, 0);
        }
        let m = MarkovAnalysis::uniform(&ring);
        let r = tyagi_bound(&ring, &m, &Encoding::binary(&ring));
        assert!(r.is_sparse);
    }
}
