//! FSM generators: seeded random machines and small hand-built controllers
//! used across the experiments.

use hlpower_rng::Rng;

use crate::stg::Stg;

/// A seeded random, completely specified Mealy machine with `states`
/// states, `input_bits`-bit inputs and `output_bits`-bit outputs.
///
/// Each (state, symbol) pair picks a next state with locality bias (nearby
/// indices preferred) so the machines are sparse in the Tyagi sense, like
/// real controllers.
pub fn random_stg(input_bits: usize, states: usize, output_bits: usize, seed: u64) -> Stg {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5f3759df);
    let mut stg = Stg::with_outputs(input_bits, output_bits);
    for i in 0..states {
        stg.add_state(format!("s{i}"));
    }
    let out_mask = if output_bits >= 64 { u64::MAX } else { (1u64 << output_bits) - 1 };
    for s in 0..states {
        for w in 0..(1u64 << input_bits) {
            // Locality-biased next state: usually within +-2 of s.
            let next = if rng.gen_bool(0.75) {
                let delta = rng.gen_range(-2i64..=2);
                ((s as i64 + delta).rem_euclid(states as i64)) as usize
            } else {
                rng.gen_range(0..states)
            };
            let output = rng.next_u64() & out_mask;
            stg.set_transition(s, w, next, output);
        }
    }
    stg
}

/// A reactive controller with a dominant idle (wait) state: it sits in
/// `idle` until a request bit arrives, walks through `work` states, and
/// returns. `idle_bias` controls how rarely requests arrive (probability
/// of staying idle per cycle under uniform inputs is roughly `idle_bias`).
/// This is the workload class where gated clocks (§III-I) shine.
pub fn reactive_controller(work_states: usize) -> Stg {
    // Input bit 0 = request; inputs are 1 bit.
    let mut stg = Stg::with_outputs(1, 1);
    let idle = stg.add_state("idle");
    let mut prev = idle;
    let mut work = Vec::new();
    for i in 0..work_states {
        let s = stg.add_state(format!("work{i}"));
        work.push(s);
        if i == 0 {
            stg.set_transition(idle, 1, s, 1);
        } else {
            stg.set_transition(prev, 0, s, 1);
            stg.set_transition(prev, 1, s, 1);
        }
        prev = s;
    }
    // Last work state returns to idle.
    if let Some(&last) = work.last() {
        stg.set_transition(last, 0, idle, 0);
        stg.set_transition(last, 1, idle, 0);
    }
    // idle on 0 self-loops (default), output 0.
    stg
}

/// The classic 1011 sequence detector (Mealy, overlapping).
pub fn sequence_detector() -> Stg {
    let mut stg = Stg::with_outputs(1, 1);
    let s0 = stg.add_state("s0"); // nothing matched
    let s1 = stg.add_state("s1"); // "1"
    let s2 = stg.add_state("s2"); // "10"
    let s3 = stg.add_state("s3"); // "101"
    stg.set_transition(s0, 0, s0, 0);
    stg.set_transition(s0, 1, s1, 0);
    stg.set_transition(s1, 0, s2, 0);
    stg.set_transition(s1, 1, s1, 0);
    stg.set_transition(s2, 0, s0, 0);
    stg.set_transition(s2, 1, s3, 0);
    stg.set_transition(s3, 0, s2, 0);
    stg.set_transition(s3, 1, s1, 1); // detected 1011
    stg
}

/// A traffic-light controller: two directions with green/yellow phases and
/// a sensor input that extends the green.
pub fn traffic_light() -> Stg {
    // States: NS-green, NS-yellow, EW-green, EW-yellow.
    // Input bit: cross-traffic sensor. Outputs: 2 bits encoding phase.
    let mut stg = Stg::with_outputs(1, 2);
    let nsg = stg.add_state("ns_green");
    let nsy = stg.add_state("ns_yellow");
    let ewg = stg.add_state("ew_green");
    let ewy = stg.add_state("ew_yellow");
    stg.set_transition(nsg, 0, nsg, 0); // no cross traffic: stay green
    stg.set_transition(nsg, 1, nsy, 0);
    stg.set_transition(nsy, 0, ewg, 1);
    stg.set_transition(nsy, 1, ewg, 1);
    stg.set_transition(ewg, 0, ewg, 2);
    stg.set_transition(ewg, 1, ewy, 2);
    stg.set_transition(ewy, 0, nsg, 3);
    stg.set_transition(ewy, 1, nsg, 3);
    stg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::MarkovAnalysis;

    #[test]
    fn random_is_reproducible() {
        let a = random_stg(2, 10, 2, 4);
        let b = random_stg(2, 10, 2, 4);
        assert_eq!(a, b);
        let c = random_stg(2, 10, 2, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn reactive_controller_is_mostly_idle() {
        let stg = reactive_controller(3);
        let m = MarkovAnalysis::with_input_distribution(&stg, &[0.95, 0.05]);
        assert!(m.state_probs[0] > 0.7, "idle prob = {}", m.state_probs[0]);
    }

    #[test]
    fn sequence_detector_detects() {
        let stg = sequence_detector();
        // Feed 1 0 1 1 0 1 1 -> detections at positions 3 and 6
        // (overlapping).
        let (_, outs) = stg.simulate(&[1, 0, 1, 1, 0, 1, 1]).unwrap();
        assert_eq!(outs, vec![0, 0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn traffic_light_cycles() {
        let stg = traffic_light();
        let (states, _) = stg.simulate(&[1, 1, 1, 1]).unwrap();
        assert_eq!(states, vec![0, 1, 2, 3, 0]);
    }
}
