//! Markov-chain analysis of STGs: steady-state state probabilities and
//! steady-state transition probabilities (survey refs 31, \[96\]).

use crate::encode::Encoding;
use crate::stg::Stg;

/// Steady-state analysis of an STG under a given input-symbol distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovAnalysis {
    /// Steady-state probability of each state.
    pub state_probs: Vec<f64>,
    /// Input-symbol distribution the analysis was run under.
    pub input_probs: Vec<f64>,
}

impl MarkovAnalysis {
    /// Analyzes the machine under uniformly distributed input symbols.
    pub fn uniform(stg: &Stg) -> Self {
        let n = stg.symbol_count();
        Self::with_input_distribution(stg, &vec![1.0 / n as f64; n])
    }

    /// Analyzes the machine under an explicit input-symbol distribution,
    /// solving the stationary equations exactly (Gaussian elimination on
    /// `pi (P - I) = 0` with the normalization row substituted in).
    ///
    /// # Panics
    ///
    /// Panics if `input_probs` has the wrong length or does not sum to 1
    /// within 1e-6.
    pub fn exact(stg: &Stg, input_probs: &[f64]) -> Self {
        assert_eq!(input_probs.len(), stg.symbol_count(), "one probability per input symbol");
        let n = stg.state_count();
        let mut p = vec![vec![0.0f64; n]; n];
        for s in 0..n {
            for (w, &pw) in input_probs.iter().enumerate() {
                let t = stg.next(s, w as u64).expect("state and symbol in range");
                p[s][t] += pw;
            }
        }
        // Build A = (P^T - I), replace the last equation by sum(pi) = 1.
        // Add a small damping toward uniform so periodic chains (which
        // have no unique stationary limit but a well-defined Cesaro
        // average) stay solvable; damping 1-eps perturbs probabilities by
        // O(eps).
        let damp = 1.0 - 1e-9;
        let mut a = vec![vec![0.0f64; n + 1]; n];
        for i in 0..n {
            for j in 0..n {
                a[i][j] = damp * p[j][i] - if i == j { 1.0 } else { 0.0 } + (1.0 - damp) / n as f64;
            }
        }
        for j in 0..n {
            a[n - 1][j] = 1.0;
        }
        a[n - 1][n] = 1.0;
        // Gaussian elimination with partial pivoting.
        for col in 0..n {
            let piv = (col..n)
                .max_by(|&x, &y| a[x][col].abs().partial_cmp(&a[y][col].abs()).expect("finite"))
                .expect("non-empty");
            a.swap(col, piv);
            let d = a[col][col];
            if d.abs() < 1e-300 {
                // Fall back to iteration for degenerate chains.
                return Self::with_input_distribution(stg, input_probs);
            }
            for row in 0..n {
                if row == col {
                    continue;
                }
                let f = a[row][col] / d;
                for k in col..=n {
                    a[row][k] -= f * a[col][k];
                }
            }
        }
        let mut pi: Vec<f64> = (0..n).map(|i| (a[i][n] / a[i][i]).max(0.0)).collect();
        let norm: f64 = pi.iter().sum();
        for x in &mut pi {
            *x /= norm;
        }
        MarkovAnalysis { state_probs: pi, input_probs: input_probs.to_vec() }
    }

    /// Analyzes the machine under an explicit input-symbol distribution
    /// (one probability per input word; must sum to ~1).
    ///
    /// # Panics
    ///
    /// Panics if `input_probs` has the wrong length or does not sum to 1
    /// within 1e-6.
    pub fn with_input_distribution(stg: &Stg, input_probs: &[f64]) -> Self {
        assert_eq!(input_probs.len(), stg.symbol_count(), "one probability per input symbol");
        let sum: f64 = input_probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "input distribution sums to {sum}");
        let n = stg.state_count();
        // Transition matrix P[s][t].
        let mut p = vec![vec![0.0f64; n]; n];
        for s in 0..n {
            for (w, &pw) in input_probs.iter().enumerate() {
                let t = stg.next(s, w as u64).expect("state and symbol in range");
                p[s][t] += pw;
            }
        }
        // Power iteration from the uniform distribution, with light damping
        // to guarantee convergence on periodic chains.
        let mut pi = vec![1.0 / n as f64; n];
        let damping = 0.995;
        for _ in 0..10_000 {
            let mut next = vec![(1.0 - damping) / n as f64; n];
            for s in 0..n {
                if pi[s] == 0.0 {
                    continue;
                }
                for t in 0..n {
                    if p[s][t] > 0.0 {
                        next[t] += damping * pi[s] * p[s][t];
                    }
                }
            }
            let delta: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            pi = next;
            if delta < 1e-12 {
                break;
            }
        }
        let norm: f64 = pi.iter().sum();
        for x in &mut pi {
            *x /= norm;
        }
        MarkovAnalysis { state_probs: pi, input_probs: input_probs.to_vec() }
    }

    /// Steady-state joint transition probabilities `q[s][t] = pi_s *
    /// P(s -> t)`.
    pub fn joint_transition_probs(&self, stg: &Stg) -> Vec<Vec<f64>> {
        let n = stg.state_count();
        let mut q = vec![vec![0.0f64; n]; n];
        for s in 0..n {
            for (w, &pw) in self.input_probs.iter().enumerate() {
                let t = stg.next(s, w as u64).expect("state and symbol in range");
                q[s][t] += self.state_probs[s] * pw;
            }
        }
        q
    }

    /// Expected Hamming distance switched on the state lines per cycle
    /// under an encoding: `sum_{s,t} q_st * H(code_s, code_t)` — the cost
    /// function of every low-power state-assignment algorithm in §III-H.
    pub fn expected_switching(&self, stg: &Stg, enc: &Encoding) -> f64 {
        let q = self.joint_transition_probs(stg);
        let mut e = 0.0;
        for (s, row) in q.iter().enumerate() {
            for (t, &p) in row.iter().enumerate() {
                if p > 0.0 {
                    e += p * enc.hamming(s, t) as f64;
                }
            }
        }
        e
    }

    /// Probability that the machine stays in the same state for a cycle
    /// (the idle probability exploited by clock gating, §III-I).
    pub fn self_loop_probability(&self, stg: &Stg) -> f64 {
        let q = self.joint_transition_probs(stg);
        (0..stg.state_count()).map(|s| q[s][s]).sum()
    }

    /// Entropy (bits) of the steady-state joint transition distribution —
    /// the `h(p_ij)` of Tyagi's bound.
    pub fn transition_entropy(&self, stg: &Stg) -> f64 {
        let q = self.joint_transition_probs(stg);
        let mut h = 0.0;
        for row in &q {
            for &p in row {
                if p > 0.0 {
                    h -= p * p.log2();
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Stg {
        let mut stg = Stg::new(1);
        for i in 0..n {
            stg.add_state(format!("s{i}"));
        }
        for i in 0..n {
            // Always advance regardless of input.
            stg.set_transition(i, 0, (i + 1) % n, 0);
            stg.set_transition(i, 1, (i + 1) % n, 0);
        }
        stg
    }

    #[test]
    fn ring_has_uniform_steady_state() {
        let stg = ring(5);
        let m = MarkovAnalysis::uniform(&stg);
        for &p in &m.state_probs {
            assert!((p - 0.2).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn absorbing_state_takes_all_mass() {
        let mut stg = Stg::new(1);
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        // a -> b on everything; b self-loops (default).
        stg.set_transition(a, 0, b, 0);
        stg.set_transition(a, 1, b, 0);
        let m = MarkovAnalysis::uniform(&stg);
        assert!(m.state_probs[b] > 0.95, "pi_b = {}", m.state_probs[b]);
    }

    #[test]
    fn exact_matches_power_iteration() {
        use crate::generators;
        for seed in 0..5 {
            let stg = generators::random_stg(2, 9, 1, seed);
            let dist = vec![0.25; 4];
            let it = MarkovAnalysis::with_input_distribution(&stg, &dist);
            let ex = MarkovAnalysis::exact(&stg, &dist);
            for (a, b) in it.state_probs.iter().zip(&ex.state_probs) {
                // The iterative solver carries a deliberate damping bias
                // of about (1 - 0.995); the exact solver does not.
                assert!((a - b).abs() < 0.01, "seed {seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn exact_solves_absorbing_chain_perfectly() {
        let mut stg = Stg::new(1);
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        stg.set_transition(a, 0, b, 0);
        stg.set_transition(a, 1, b, 0);
        let m = MarkovAnalysis::exact(&stg, &[0.5, 0.5]);
        assert!(m.state_probs[b] > 0.999_999, "pi_b = {}", m.state_probs[b]);
    }

    #[test]
    fn joint_probs_sum_to_one() {
        let stg = ring(4);
        let m = MarkovAnalysis::uniform(&stg);
        let q = m.joint_transition_probs(&stg);
        let total: f64 = q.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn switching_depends_on_encoding() {
        use crate::encode::Encoding;
        let stg = ring(4);
        let m = MarkovAnalysis::uniform(&stg);
        // Gray ring encoding: one bit flips per step.
        let gray = Encoding::from_codes(vec![0b00, 0b01, 0b11, 0b10], 2).unwrap();
        // Binary: 2 flips on 1->2 (01 -> 10) and 3->0 (11 -> 00).
        let bin = Encoding::from_codes(vec![0, 1, 2, 3], 2).unwrap();
        let eg = m.expected_switching(&stg, &gray);
        let eb = m.expected_switching(&stg, &bin);
        assert!((eg - 1.0).abs() < 1e-6, "gray ring switches exactly one bit");
        assert!(eb > eg);
    }

    #[test]
    fn self_loop_probability_of_idle_machine() {
        let mut stg = Stg::new(1);
        let idle = stg.add_state("idle");
        let run = stg.add_state("run");
        // Leave idle only on input 1; return immediately.
        stg.set_transition(idle, 1, run, 1);
        stg.set_transition(run, 0, idle, 0);
        stg.set_transition(run, 1, idle, 0);
        let m = MarkovAnalysis::uniform(&stg);
        let p = m.self_loop_probability(&stg);
        assert!(p > 0.2 && p < 0.8, "p = {p}");
    }

    #[test]
    fn transition_entropy_positive_for_branching() {
        let stg = ring(4);
        let m = MarkovAnalysis::uniform(&stg);
        // Deterministic ring: entropy equals log2(4) = 2 bits (4 equally
        // likely (s,t) pairs).
        assert!((m.transition_entropy(&stg) - 2.0).abs() < 1e-6);
    }
}
