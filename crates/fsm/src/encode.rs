//! State encoding: classic codes plus low-power hypercube embedding.
//!
//! The low-power strategies implement the idea common to the survey's
//! encoding references \[90\]–\[95\]: use steady-state transition probabilities
//! as edge costs and embed the STG into a hypercube so that high-probability
//! edges connect codes at small Hamming distance. `re_encode` runs the same
//! search seeded from an existing assignment (the "reencoding" problem for
//! already-encoded large machines).

use hlpower_rng::Rng;

use crate::markov::MarkovAnalysis;
use crate::stg::{FsmError, Stg};

/// How to assign state codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingStrategy {
    /// States numbered in index order (minimum-width binary).
    Binary,
    /// Binary-reflected Gray code over the state index.
    Gray,
    /// One flip-flop per state.
    OneHot,
    /// Random minimum-width assignment (seeded).
    Random(u64),
    /// Simulated-annealing hypercube embedding minimizing expected
    /// switching (seeded).
    LowPower(u64),
}

/// An assignment of binary codes to states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoding {
    codes: Vec<u64>,
    bits: usize,
}

impl Encoding {
    /// Builds an encoding from explicit codes.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::InvalidEncoding`] if codes are duplicated or do
    /// not fit in `bits`.
    pub fn from_codes(codes: Vec<u64>, bits: usize) -> Result<Self, FsmError> {
        let mut seen = std::collections::HashSet::new();
        for &c in &codes {
            if bits < 64 && c >= (1u64 << bits) {
                return Err(FsmError::InvalidEncoding {
                    reason: format!("code {c:#b} does not fit in {bits} bits"),
                });
            }
            if !seen.insert(c) {
                return Err(FsmError::InvalidEncoding { reason: format!("duplicate code {c:#b}") });
            }
        }
        Ok(Encoding { codes, bits })
    }

    /// Minimum-width binary encoding by state index.
    pub fn binary(stg: &Stg) -> Self {
        let bits = min_bits(stg.state_count());
        Encoding { codes: (0..stg.state_count() as u64).collect(), bits }
    }

    /// Binary-reflected Gray code by state index.
    pub fn gray(stg: &Stg) -> Self {
        let bits = min_bits(stg.state_count());
        Encoding { codes: (0..stg.state_count() as u64).map(|i| i ^ (i >> 1)).collect(), bits }
    }

    /// One-hot encoding.
    pub fn one_hot(stg: &Stg) -> Self {
        Encoding {
            codes: (0..stg.state_count()).map(|i| 1u64 << i).collect(),
            bits: stg.state_count(),
        }
    }

    /// Random minimum-width assignment.
    pub fn random(stg: &Stg, seed: u64) -> Self {
        let bits = min_bits(stg.state_count());
        let mut rng = Rng::seed_from_u64(seed);
        let mut pool: Vec<u64> = (0..(1u64 << bits)).collect();
        // Fisher-Yates shuffle, take the first `n`.
        for i in (1..pool.len()).rev() {
            let j = rng.gen_range(0..=i);
            pool.swap(i, j);
        }
        Encoding { codes: pool[..stg.state_count()].to_vec(), bits }
    }

    /// Builds an encoding with the given strategy (low-power strategies use
    /// the supplied Markov analysis as the cost model).
    pub fn with_strategy(stg: &Stg, markov: &MarkovAnalysis, strategy: EncodingStrategy) -> Self {
        match strategy {
            EncodingStrategy::Binary => Encoding::binary(stg),
            EncodingStrategy::Gray => Encoding::gray(stg),
            EncodingStrategy::OneHot => Encoding::one_hot(stg),
            EncodingStrategy::Random(seed) => Encoding::random(stg, seed),
            EncodingStrategy::LowPower(seed) => Encoding::binary(stg).re_encode(stg, markov, seed),
        }
    }

    /// Low-power re-encoding: simulated annealing over code swaps starting
    /// from this encoding, minimizing [`MarkovAnalysis::expected_switching`].
    /// Only minimum-width (non-one-hot) encodings are searched; the code
    /// width is preserved.
    pub fn re_encode(&self, stg: &Stg, markov: &MarkovAnalysis, seed: u64) -> Encoding {
        let mut rng = Rng::seed_from_u64(seed);
        let q = markov.joint_transition_probs(stg);
        let n = stg.state_count();
        // Candidate code pool: all codes of this width (swap with unused
        // codes is allowed, equivalent to moving a state to a free vertex).
        let width = self.bits;
        let pool_size = if width >= 63 { u64::MAX } else { 1u64 << width };
        let mut codes = self.codes.clone();
        let cost = |codes: &[u64]| -> f64 {
            let mut e = 0.0;
            for (s, row) in q.iter().enumerate() {
                for (t, &p) in row.iter().enumerate() {
                    if p > 0.0 && s != t {
                        e += p * (codes[s] ^ codes[t]).count_ones() as f64;
                    }
                }
            }
            e
        };
        let mut cur_cost = cost(&codes);
        let mut best = codes.clone();
        let mut best_cost = cur_cost;
        let iters = 4000.max(200 * n);
        for it in 0..iters {
            let temp = 1.0 * (1.0 - it as f64 / iters as f64) + 1e-3;
            let i = rng.gen_range(0..n);
            let old_i = codes[i];
            // Either swap with another state or move to a free code.
            let use_free = pool_size > n as u64 && rng.gen_bool(0.3);
            let (j, old_j) = if use_free {
                (usize::MAX, 0)
            } else {
                let mut j = rng.gen_range(0..n);
                while j == i {
                    j = rng.gen_range(0..n);
                }
                (j, codes[j])
            };
            if use_free {
                let candidate = rng.gen_range(0..pool_size);
                if codes.contains(&candidate) {
                    continue;
                }
                codes[i] = candidate;
            } else {
                codes[i] = old_j;
                codes[j] = old_i;
            }
            let new_cost = cost(&codes);
            let accept = new_cost < cur_cost
                || rng.gen_bool(((cur_cost - new_cost) / temp).exp().clamp(0.0, 1.0));
            if accept {
                cur_cost = new_cost;
                if new_cost < best_cost {
                    best_cost = new_cost;
                    best = codes.clone();
                }
            } else {
                codes[i] = old_i;
                if !use_free {
                    codes[j] = old_j;
                }
            }
        }
        Encoding { codes: best, bits: width }
    }

    /// Code of a state.
    pub fn code(&self, state: usize) -> u64 {
        self.codes[state]
    }

    /// All codes, indexed by state.
    pub fn codes(&self) -> &[u64] {
        &self.codes
    }

    /// Code width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Hamming distance between two states' codes.
    pub fn hamming(&self, a: usize, b: usize) -> u32 {
        (self.codes[a] ^ self.codes[b]).count_ones()
    }
}

/// Bits needed to number `n` states.
pub(crate) fn min_bits(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn min_bits_is_ceil_log2() {
        assert_eq!(min_bits(1), 1);
        assert_eq!(min_bits(2), 1);
        assert_eq!(min_bits(3), 2);
        assert_eq!(min_bits(4), 2);
        assert_eq!(min_bits(5), 3);
        assert_eq!(min_bits(16), 4);
        assert_eq!(min_bits(17), 5);
    }

    #[test]
    fn classic_codes_are_valid() {
        let stg = generators::random_stg(3, 12, 2, 0);
        for enc in [Encoding::binary(&stg), Encoding::gray(&stg), Encoding::one_hot(&stg)] {
            let mut seen = std::collections::HashSet::new();
            for s in 0..stg.state_count() {
                assert!(seen.insert(enc.code(s)), "duplicate code");
            }
        }
    }

    #[test]
    fn from_codes_rejects_duplicates_and_overflow() {
        assert!(Encoding::from_codes(vec![0, 1, 1], 2).is_err());
        assert!(Encoding::from_codes(vec![0, 4], 2).is_err());
        assert!(Encoding::from_codes(vec![0, 3], 2).is_ok());
    }

    #[test]
    fn low_power_beats_random_on_random_machines() {
        let mut wins = 0;
        for seed in 0..5u64 {
            let stg = generators::random_stg(2, 16, 2, seed);
            let m = MarkovAnalysis::uniform(&stg);
            let rand_enc = Encoding::random(&stg, seed + 100);
            let lp = Encoding::with_strategy(&stg, &m, EncodingStrategy::LowPower(seed));
            let er = m.expected_switching(&stg, &rand_enc);
            let el = m.expected_switching(&stg, &lp);
            if el <= er {
                wins += 1;
            }
        }
        assert!(wins >= 4, "low-power encoding won only {wins}/5 trials");
    }

    #[test]
    fn re_encode_never_worsens_best_cost() {
        let stg = generators::random_stg(2, 10, 1, 7);
        let m = MarkovAnalysis::uniform(&stg);
        let start = Encoding::binary(&stg);
        let improved = start.re_encode(&stg, &m, 3);
        assert!(m.expected_switching(&stg, &improved) <= m.expected_switching(&stg, &start) + 1e-9);
        assert_eq!(improved.bits(), start.bits());
    }
}
