//! State transition graph representation.

use std::error::Error;
use std::fmt;

/// Errors produced by FSM construction and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsmError {
    /// A state index was out of range.
    UnknownState {
        /// The offending index.
        state: usize,
        /// Number of states in the machine.
        count: usize,
    },
    /// An input word exceeded the machine's input width.
    InputOutOfRange {
        /// The offending input word.
        input: u64,
        /// The machine's input bit width.
        width: usize,
    },
    /// The machine has no states.
    Empty,
    /// An encoding does not cover every state or assigns duplicate codes.
    InvalidEncoding {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::UnknownState { state, count } => {
                write!(f, "state index {state} out of range (machine has {count} states)")
            }
            FsmError::InputOutOfRange { input, width } => {
                write!(f, "input word {input} exceeds {width}-bit input width")
            }
            FsmError::Empty => write!(f, "machine has no states"),
            FsmError::InvalidEncoding { reason } => write!(f, "invalid encoding: {reason}"),
        }
    }
}

impl Error for FsmError {}

/// One transition entry: next state and Mealy output word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Edge {
    pub next: usize,
    pub output: u64,
}

/// A completely specified, deterministic Mealy machine with `2^input_bits`
/// explicit input symbols.
///
/// States are added with [`add_state`](Stg::add_state); unset transitions
/// default to self-loops with zero output, keeping the machine completely
/// specified at all times (the representation the survey's symbolic
/// encoding algorithms assume).
#[derive(Debug, Clone, PartialEq)]
pub struct Stg {
    input_bits: usize,
    output_bits: usize,
    names: Vec<String>,
    /// `edges[state][input_word]`.
    edges: Vec<Vec<Edge>>,
    reset: usize,
}

impl Stg {
    /// Creates an empty machine with the given input bit width and a
    /// single-bit output.
    pub fn new(input_bits: usize) -> Self {
        Stg::with_outputs(input_bits, 1)
    }

    /// Creates an empty machine with explicit input and output bit widths.
    ///
    /// # Panics
    ///
    /// Panics if `input_bits > 16` (the explicit-symbol representation
    /// would explode).
    pub fn with_outputs(input_bits: usize, output_bits: usize) -> Self {
        assert!(input_bits <= 16, "explicit STG limited to 16 input bits");
        Stg { input_bits, output_bits, names: Vec::new(), edges: Vec::new(), reset: 0 }
    }

    /// Adds a state (initially self-looping on all inputs with zero
    /// output); returns its index.
    pub fn add_state(&mut self, name: impl Into<String>) -> usize {
        let idx = self.names.len();
        self.names.push(name.into());
        self.edges.push(vec![Edge { next: idx, output: 0 }; 1 << self.input_bits]);
        idx
    }

    /// Sets the transition out of `state` on `input` to `(next, output)`.
    ///
    /// # Panics
    ///
    /// Panics if `state`/`next` are out of range or `input` exceeds the
    /// input width (construction-time programming errors).
    pub fn set_transition(&mut self, state: usize, input: u64, next: usize, output: u64) {
        assert!(state < self.names.len(), "state {state} out of range");
        assert!(next < self.names.len(), "next state {next} out of range");
        assert!(input < (1 << self.input_bits) as u64, "input {input} out of range");
        self.edges[state][input as usize] = Edge { next, output };
    }

    /// Sets the reset (initial) state.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::UnknownState`] if the index is out of range.
    pub fn set_reset(&mut self, state: usize) -> Result<(), FsmError> {
        if state >= self.names.len() {
            return Err(FsmError::UnknownState { state, count: self.names.len() });
        }
        self.reset = state;
        Ok(())
    }

    /// The reset state.
    pub fn reset(&self) -> usize {
        self.reset
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.names.len()
    }

    /// Input bit width.
    pub fn input_bits(&self) -> usize {
        self.input_bits
    }

    /// Output bit width.
    pub fn output_bits(&self) -> usize {
        self.output_bits
    }

    /// Number of input symbols (`2^input_bits`).
    pub fn symbol_count(&self) -> usize {
        1 << self.input_bits
    }

    /// A state's name.
    pub fn state_name(&self, state: usize) -> &str {
        &self.names[state]
    }

    /// Next state from `state` on `input`.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::UnknownState`] / [`FsmError::InputOutOfRange`]
    /// for bad arguments.
    pub fn next(&self, state: usize, input: u64) -> Result<usize, FsmError> {
        self.check(state, input)?;
        Ok(self.edges[state][input as usize].next)
    }

    /// Mealy output from `state` on `input`.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::UnknownState`] / [`FsmError::InputOutOfRange`]
    /// for bad arguments.
    pub fn output(&self, state: usize, input: u64) -> Result<u64, FsmError> {
        self.check(state, input)?;
        Ok(self.edges[state][input as usize].output)
    }

    fn check(&self, state: usize, input: u64) -> Result<(), FsmError> {
        if state >= self.names.len() {
            return Err(FsmError::UnknownState { state, count: self.names.len() });
        }
        if input >= (1u64 << self.input_bits) {
            return Err(FsmError::InputOutOfRange { input, width: self.input_bits });
        }
        Ok(())
    }

    /// Number of distinct (state, next-state) pairs with at least one
    /// transition — the `t` of Tyagi's sparsity condition.
    pub fn transition_pair_count(&self) -> usize {
        let mut pairs = std::collections::HashSet::new();
        for (s, row) in self.edges.iter().enumerate() {
            for e in row {
                pairs.insert((s, e.next));
            }
        }
        pairs.len()
    }

    /// Simulates the machine over an input-word sequence from reset,
    /// returning the visited state sequence (including the initial state)
    /// and the emitted outputs.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::InputOutOfRange`] if any word exceeds the input
    /// width.
    pub fn simulate(&self, inputs: &[u64]) -> Result<(Vec<usize>, Vec<u64>), FsmError> {
        let mut states = Vec::with_capacity(inputs.len() + 1);
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut cur = self.reset;
        states.push(cur);
        for &w in inputs {
            outputs.push(self.output(cur, w)?);
            cur = self.next(cur, w)?;
            states.push(cur);
        }
        Ok((states, outputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle_machine() -> Stg {
        // Two states; input bit 1 toggles, 0 holds. Output = state index.
        let mut stg = Stg::new(1);
        let s0 = stg.add_state("s0");
        let s1 = stg.add_state("s1");
        stg.set_transition(s0, 1, s1, 0);
        stg.set_transition(s1, 1, s0, 1);
        stg.set_transition(s0, 0, s0, 0);
        stg.set_transition(s1, 0, s1, 1);
        stg
    }

    #[test]
    fn defaults_are_self_loops() {
        let mut stg = Stg::new(2);
        let s = stg.add_state("only");
        for w in 0..4 {
            assert_eq!(stg.next(s, w).unwrap(), s);
            assert_eq!(stg.output(s, w).unwrap(), 0);
        }
    }

    #[test]
    fn simulate_toggles() {
        let stg = toggle_machine();
        let (states, outputs) = stg.simulate(&[1, 1, 0, 1]).unwrap();
        assert_eq!(states, vec![0, 1, 0, 0, 1]);
        assert_eq!(outputs, vec![0, 1, 0, 0]);
    }

    #[test]
    fn errors_are_reported() {
        let stg = toggle_machine();
        assert!(matches!(stg.next(5, 0), Err(FsmError::UnknownState { .. })));
        assert!(matches!(stg.next(0, 2), Err(FsmError::InputOutOfRange { .. })));
        let mut stg2 = toggle_machine();
        assert!(stg2.set_reset(9).is_err());
    }

    #[test]
    fn transition_pairs_counted_once() {
        let stg = toggle_machine();
        // pairs: (0,1),(1,0),(0,0),(1,1) = 4
        assert_eq!(stg.transition_pair_count(), 4);
    }
}
