//! Finite-state-machine substrate: state transition graphs, Markov-chain
//! steady-state analysis, state minimization, low-power state encoding,
//! entropic bounds (Tyagi, survey reference 13), and synthesis of encoded
//! machines into gate-level netlists via BDD-extracted next-state logic
//! (survey §III-H).
//!
//! # Example
//!
//! ```
//! use hlpower_fsm::{Stg, Encoding, MarkovAnalysis};
//!
//! // A 4-state up/down counter controlled by one input bit.
//! let mut stg = Stg::new(1);
//! for s in 0..4 { stg.add_state(format!("s{s}")); }
//! for s in 0..4u64 {
//!     stg.set_transition(s as usize, 0, ((s + 1) % 4) as usize, s & 1);
//!     stg.set_transition(s as usize, 1, ((s + 3) % 4) as usize, s & 1);
//! }
//! let markov = MarkovAnalysis::uniform(&stg);
//! let enc = Encoding::binary(&stg);
//! let activity = markov.expected_switching(&stg, &enc);
//! assert!(activity > 0.0);
//! ```

#![warn(missing_docs)]
// Matrix- and table-style numerics read more clearly with explicit index
// loops; silence clippy's iterator-style suggestion for them.
#![allow(clippy::needless_range_loop)]

mod bounds;
pub mod decompose;
mod encode;
pub mod generators;
pub mod kiss;
mod markov;
mod minimize;
mod stg;
mod synth;

pub use bounds::{tyagi_bound, TyagiBoundReport};
pub use encode::{Encoding, EncodingStrategy};
pub use markov::MarkovAnalysis;
pub use minimize::minimize_states;
pub use stg::{FsmError, Stg};
pub use synth::{synthesize, FsmCircuit};
