//! Property-based tests: minimization preserves observable behavior,
//! synthesis is I/O-equivalent to the STG, and Markov/encoding invariants
//! hold on random machines. Runs on the in-tree [`hlpower_rng::check`]
//! harness.

use hlpower_fsm::kiss::{parse_kiss2, to_kiss2};
use hlpower_fsm::{generators, minimize_states, synthesize, tyagi_bound, Encoding, MarkovAnalysis};
use hlpower_netlist::{words, ZeroDelaySim};
use hlpower_rng::check::Check;
use hlpower_rng::Rng;

fn random_inputs(rng: &mut Rng, max_len: usize) -> Vec<u64> {
    let len = rng.gen_range(1usize..max_len);
    (0..len).map(|_| rng.gen_range(0u64..4)).collect()
}

/// Minimization never grows the machine and preserves the output
/// sequence on random input words.
#[test]
fn minimize_preserves_io() {
    Check::new("minimize_preserves_io").cases(32).run(|rng| {
        let seed = rng.gen_range(0u64..500);
        let states = rng.gen_range(2usize..14);
        let inputs = random_inputs(rng, 120);
        let stg = generators::random_stg(2, states, 2, seed);
        let (min, _) = minimize_states(&stg);
        assert!(min.state_count() <= stg.state_count());
        let (_, out1) = stg.simulate(&inputs).expect("in range");
        let (_, out2) = min.simulate(&inputs).expect("in range");
        assert_eq!(out1, out2);
    });
}

/// Synthesized netlists are sequentially equivalent to the STG.
#[test]
fn synthesis_is_io_equivalent() {
    Check::new("synthesis_is_io_equivalent").cases(32).run(|rng| {
        let seed = rng.gen_range(0u64..200);
        let inputs = random_inputs(rng, 60);
        let stg = generators::random_stg(2, 5, 2, seed);
        let enc = Encoding::binary(&stg);
        let circuit = synthesize(&stg, &enc).expect("valid");
        let mut sim = ZeroDelaySim::new(&circuit.netlist).expect("acyclic");
        let (_, expected) = stg.simulate(&inputs).expect("in range");
        for (i, &w) in inputs.iter().enumerate() {
            sim.step(&words::to_bits(w, 2)).expect("width");
            let got = words::from_bits(&sim.output_values());
            assert_eq!(got, expected[i], "step {}", i);
        }
    });
}

/// Steady-state probabilities form a distribution and joint transition
/// probabilities sum to one.
#[test]
fn markov_invariants() {
    Check::new("markov_invariants").cases(32).run(|rng| {
        let seed = rng.gen_range(0u64..500);
        let states = rng.gen_range(2usize..20);
        let stg = generators::random_stg(2, states, 1, seed);
        let m = MarkovAnalysis::uniform(&stg);
        let total: f64 = m.state_probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(m.state_probs.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
        let q: f64 = m.joint_transition_probs(&stg).iter().flatten().sum();
        assert!((q - 1.0).abs() < 1e-6);
        let sl = m.self_loop_probability(&stg);
        assert!((0.0..=1.0 + 1e-9).contains(&sl));
    });
}

/// Every stock encoding assigns distinct codes, and expected switching
/// is nonnegative and at most the code width.
#[test]
fn encoding_invariants() {
    Check::new("encoding_invariants").cases(32).run(|rng| {
        let seed = rng.gen_range(0u64..300);
        let states = rng.gen_range(2usize..16);
        let stg = generators::random_stg(1, states, 1, seed);
        let m = MarkovAnalysis::uniform(&stg);
        for enc in [
            Encoding::binary(&stg),
            Encoding::gray(&stg),
            Encoding::one_hot(&stg),
            Encoding::random(&stg, seed),
        ] {
            let mut seen = std::collections::HashSet::new();
            for s in 0..states {
                assert!(seen.insert(enc.code(s)), "duplicate code");
            }
            let e = m.expected_switching(&stg, &enc);
            assert!(e >= 0.0);
            assert!(e <= enc.bits() as f64 + 1e-9);
        }
    });
}

/// Tyagi's bound holds on random machines for random encodings.
#[test]
fn tyagi_bound_holds() {
    Check::new("tyagi_bound_holds").cases(32).run(|rng| {
        let seed = rng.gen_range(0u64..300);
        let states = rng.gen_range(4usize..24);
        let stg = generators::random_stg(2, states, 1, seed);
        let m = MarkovAnalysis::uniform(&stg);
        let enc = Encoding::random(&stg, seed ^ 0xABCD);
        assert!(tyagi_bound(&stg, &m, &enc).holds());
    });
}

/// KISS2 serialization round-trips machine behavior for any random
/// machine and any input sequence.
#[test]
fn kiss2_round_trip() {
    Check::new("kiss2_round_trip").cases(32).run(|rng| {
        let seed = rng.gen_range(0u64..300);
        let states = rng.gen_range(1usize..12);
        let inputs = random_inputs(rng, 80);
        let stg = generators::random_stg(2, states, 2, seed);
        let text = to_kiss2(&stg);
        let back = parse_kiss2(&text).expect("well-formed output");
        assert_eq!(back.state_count(), stg.state_count());
        let (_, o1) = stg.simulate(&inputs).expect("in range");
        let (_, o2) = back.simulate(&inputs).expect("in range");
        assert_eq!(o1, o2);
    });
}

/// Low-power re-encoding never increases the cost metric it optimizes.
#[test]
fn reencoding_monotone() {
    Check::new("reencoding_monotone").cases(32).run(|rng| {
        let seed = rng.gen_range(0u64..100);
        let stg = generators::random_stg(2, 10, 1, seed);
        let m = MarkovAnalysis::uniform(&stg);
        let start = Encoding::binary(&stg);
        let improved = start.re_encode(&stg, &m, seed);
        assert!(m.expected_switching(&stg, &improved) <= m.expected_switching(&stg, &start) + 1e-9);
    });
}
