//! Property-based tests for the estimation stack: regression numerics,
//! entropy bounds, and Quine-McCluskey cover invariants. Runs on the
//! in-tree [`hlpower_rng::check`] harness.

use std::collections::BTreeSet;

use hlpower_estimate::complexity::{essential_primes, greedy_cover, prime_implicants};
use hlpower_estimate::entropy::{binary_entropy, mean_bit_entropy, word_entropy};
use hlpower_estimate::stats::{least_squares, mean, rss, StreamStats};
use hlpower_rng::check::Check;

/// Least squares exactly recovers noiseless linear models.
#[test]
fn least_squares_recovers_models() {
    Check::new("least_squares_recovers_models").cases(48).run(|rng| {
        let c0 = rng.gen_range(-10.0..10.0);
        let c1 = rng.gen_range(-10.0..10.0);
        let c2 = rng.gen_range(-10.0..10.0);
        let mut s = rng.gen_range(0u64..1000);
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let rows: Vec<Vec<f64>> = (0..40).map(|_| vec![next(), next(), 1.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| c0 * r[0] + c1 * r[1] + c2).collect();
        let coefs = least_squares(&rows, &y).expect("well-posed");
        assert!((coefs[0] - c0).abs() < 1e-6);
        assert!((coefs[1] - c1).abs() < 1e-6);
        assert!((coefs[2] - c2).abs() < 1e-5);
        assert!(rss(&rows, &y, &coefs) < 1e-9);
    });
}

/// Binary entropy is bounded by 1 bit and symmetric around 1/2.
#[test]
fn binary_entropy_properties() {
    Check::new("binary_entropy_properties").cases(48).run(|rng| {
        let p = rng.gen_range(0.0..1.0);
        let h = binary_entropy(p);
        assert!((0.0..=1.0 + 1e-12).contains(&h));
        assert!((h - binary_entropy(1.0 - p)).abs() < 1e-9);
    });
}

/// Word entropy is at most the sum of bit entropies (independence
/// bound) and at most log2 of the sample count.
#[test]
fn word_entropy_bounds() {
    Check::new("word_entropy_bounds").cases(48).run(|rng| {
        let len = rng.gen_range(4usize..200);
        let vectors: Vec<Vec<bool>> = (0..len)
            .map(|_| {
                let w = rng.gen_range(0u64..16);
                (0..4).map(|i| (w >> i) & 1 == 1).collect()
            })
            .collect();
        let h = word_entropy(&vectors);
        let stats = StreamStats::collect(&vectors);
        let bit_sum = mean_bit_entropy(&stats) * 4.0;
        assert!(h <= bit_sum + 1e-9, "{h} > {bit_sum}");
        assert!(h <= (vectors.len() as f64).log2() + 1e-9);
        assert!(h >= -1e-12);
    });
}

/// Stream statistics are valid probabilities, and mean activity of an
/// iid stream is bounded by half its entropy (the §II-B1 bound).
#[test]
fn activity_entropy_bound() {
    Check::new("activity_entropy_bound").cases(48).run(|rng| {
        let len = rng.gen_range(100usize..400);
        let vectors: Vec<Vec<bool>> = (0..len)
            .map(|_| {
                let w = rng.gen_range(0u64..256);
                (0..8).map(|i| (w >> i) & 1 == 1).collect()
            })
            .collect();
        let stats = StreamStats::collect(&vectors);
        for (&p, &a) in stats.bit_probs.iter().zip(&stats.bit_activities) {
            assert!((0.0..=1.0).contains(&p));
            assert!((0.0..=1.0).contains(&a));
        }
        // iid-sampled words: empirical activity <= h/2 + sampling slack.
        let h = mean_bit_entropy(&stats);
        assert!(stats.mean_activity() <= h / 2.0 + 0.1);
    });
}

/// Quine-McCluskey invariants: primes cover the on-set exactly,
/// essential primes are a subset, and the greedy cover is sound and
/// complete.
#[test]
fn qm_cover_invariants() {
    Check::new("qm_cover_invariants").cases(48).run(|rng| {
        let target = rng.gen_range(1usize..40);
        let mut on_bits = BTreeSet::new();
        while on_bits.len() < target {
            on_bits.insert(rng.gen_range(0u32..64));
        }
        let on: Vec<u32> = on_bits.into_iter().collect();
        let n = 6;
        let primes = prime_implicants(n, &on);
        for m in 0..(1u32 << n) {
            let covered = primes.iter().any(|p| p.covers(m));
            assert_eq!(covered, on.contains(&m), "prime cover wrong at {}", m);
        }
        let ess = essential_primes(n, &on, &primes);
        for e in &ess {
            assert!(primes.contains(e));
        }
        let cover = greedy_cover(n, &on);
        for m in 0..(1u32 << n) {
            let covered = cover.iter().any(|p| p.covers(m));
            assert_eq!(covered, on.contains(&m), "greedy cover wrong at {}", m);
        }
        assert!(cover.len() <= on.len());
    });
}

/// The mean helper matches the definition.
#[test]
fn mean_matches_definition() {
    Check::new("mean_matches_definition").cases(48).run(|rng| {
        let len = rng.gen_range(1usize..50);
        let xs: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let m = mean(&xs);
        let expect = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m - expect).abs() < 1e-9);
    });
}
