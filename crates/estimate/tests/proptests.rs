//! Property-based tests for the estimation stack: regression numerics,
//! entropy bounds, and Quine-McCluskey cover invariants.

use hlpower_estimate::complexity::{essential_primes, greedy_cover, prime_implicants};
use hlpower_estimate::entropy::{binary_entropy, mean_bit_entropy, word_entropy};
use hlpower_estimate::stats::{least_squares, mean, rss, StreamStats};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Least squares exactly recovers noiseless linear models.
    #[test]
    fn least_squares_recovers_models(
        c0 in -10.0f64..10.0, c1 in -10.0f64..10.0, c2 in -10.0f64..10.0,
        seed in 0u64..1000,
    ) {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let rows: Vec<Vec<f64>> = (0..40).map(|_| vec![next(), next(), 1.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| c0 * r[0] + c1 * r[1] + c2).collect();
        let coefs = least_squares(&rows, &y).expect("well-posed");
        prop_assert!((coefs[0] - c0).abs() < 1e-6);
        prop_assert!((coefs[1] - c1).abs() < 1e-6);
        prop_assert!((coefs[2] - c2).abs() < 1e-5);
        prop_assert!(rss(&rows, &y, &coefs) < 1e-9);
    }

    /// Binary entropy is bounded by 1 bit and symmetric around 1/2.
    #[test]
    fn binary_entropy_properties(p in 0.0f64..1.0) {
        let h = binary_entropy(p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        prop_assert!((h - binary_entropy(1.0 - p)).abs() < 1e-9);
    }

    /// Word entropy is at most the sum of bit entropies (independence
    /// bound) and at most log2 of the sample count.
    #[test]
    fn word_entropy_bounds(words in proptest::collection::vec(0u64..16, 4..200)) {
        let vectors: Vec<Vec<bool>> = words
            .iter()
            .map(|&w| (0..4).map(|i| (w >> i) & 1 == 1).collect())
            .collect();
        let h = word_entropy(&vectors);
        let stats = StreamStats::collect(&vectors);
        let bit_sum = mean_bit_entropy(&stats) * 4.0;
        prop_assert!(h <= bit_sum + 1e-9, "{h} > {bit_sum}");
        prop_assert!(h <= (vectors.len() as f64).log2() + 1e-9);
        prop_assert!(h >= -1e-12);
    }

    /// Stream statistics are valid probabilities, and mean activity of an
    /// iid stream is bounded by half its entropy (the §II-B1 bound).
    #[test]
    fn activity_entropy_bound(words in proptest::collection::vec(0u64..256, 100..400)) {
        let vectors: Vec<Vec<bool>> = words
            .iter()
            .map(|&w| (0..8).map(|i| (w >> i) & 1 == 1).collect())
            .collect();
        let stats = StreamStats::collect(&vectors);
        for (&p, &a) in stats.bit_probs.iter().zip(&stats.bit_activities) {
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!((0.0..=1.0).contains(&a));
        }
        // iid-sampled words: empirical activity <= h/2 + sampling slack.
        let h = mean_bit_entropy(&stats);
        prop_assert!(stats.mean_activity() <= h / 2.0 + 0.1);
    }

    /// Quine-McCluskey invariants: primes cover the on-set exactly,
    /// essential primes are a subset, and the greedy cover is sound and
    /// complete.
    #[test]
    fn qm_cover_invariants(on_bits in proptest::collection::btree_set(0u32..64, 1..40)) {
        let on: Vec<u32> = on_bits.into_iter().collect();
        let n = 6;
        let primes = prime_implicants(n, &on);
        for m in 0..(1u32 << n) {
            let covered = primes.iter().any(|p| p.covers(m));
            prop_assert_eq!(covered, on.contains(&m), "prime cover wrong at {}", m);
        }
        let ess = essential_primes(n, &on, &primes);
        for e in &ess {
            prop_assert!(primes.contains(e));
        }
        let cover = greedy_cover(n, &on);
        for m in 0..(1u32 << n) {
            let covered = cover.iter().any(|p| p.covers(m));
            prop_assert_eq!(covered, on.contains(&m), "greedy cover wrong at {}", m);
        }
        prop_assert!(cover.len() <= on.len());
    }

    /// The mean helper matches the definition.
    #[test]
    fn mean_matches_definition(xs in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let m = mean(&xs);
        let expect = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((m - expect).abs() < 1e-9);
    }
}
