//! Complexity-based power models (survey §II-B2): gate-equivalent "chip
//! estimation", the Nemani–Najm linear-measure area model over essential
//! prime implicants, and the Landman–Rabaey controller model.

use hlpower_fsm::{Encoding, MarkovAnalysis, Stg};

use crate::stats::least_squares;

// ---------------------------------------------------------------------
// Quine–McCluskey machinery (the survey's models are defined over
// essential primes of single-output functions).
// ---------------------------------------------------------------------

/// A cube over `n` variables: `mask` bits are cared-for positions, `value`
/// their polarities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    /// Care mask (1 = literal present).
    pub mask: u32,
    /// Literal polarities on cared positions.
    pub value: u32,
}

impl Cube {
    /// Number of literals in the cube.
    pub fn literals(self) -> u32 {
        self.mask.count_ones()
    }

    /// Whether the cube covers a minterm.
    pub fn covers(self, minterm: u32) -> bool {
        (minterm & self.mask) == self.value
    }

    /// Number of minterms covered over `n` variables.
    pub fn coverage(self, n: u32) -> u64 {
        1u64 << (n - self.literals())
    }
}

/// All prime implicants of the on-set `minterms` over `n` variables
/// (classic Quine–McCluskey; feasible for `n <= 14`).
///
/// # Panics
///
/// Panics if `n > 14`.
pub fn prime_implicants(n: u32, minterms: &[u32]) -> Vec<Cube> {
    assert!(n <= 14, "Quine-McCluskey limited to 14 variables");
    let full_mask = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut current: Vec<Cube> =
        minterms.iter().map(|&m| Cube { mask: full_mask, value: m & full_mask }).collect();
    current.sort();
    current.dedup();
    let mut primes: Vec<Cube> = Vec::new();
    while !current.is_empty() {
        let mut combined_flag = vec![false; current.len()];
        let mut next: Vec<Cube> = Vec::new();
        for i in 0..current.len() {
            for j in i + 1..current.len() {
                let (a, b) = (current[i], current[j]);
                if a.mask != b.mask {
                    continue;
                }
                let diff = a.value ^ b.value;
                if diff.count_ones() == 1 {
                    combined_flag[i] = true;
                    combined_flag[j] = true;
                    next.push(Cube { mask: a.mask & !diff, value: a.value & !diff });
                }
            }
        }
        for (i, &c) in current.iter().enumerate() {
            if !combined_flag[i] {
                primes.push(c);
            }
        }
        next.sort();
        next.dedup();
        current = next;
    }
    primes.sort();
    primes.dedup();
    primes
}

/// The essential prime implicants: primes that are the unique cover of at
/// least one on-set minterm.
pub fn essential_primes(n: u32, minterms: &[u32], primes: &[Cube]) -> Vec<Cube> {
    let _ = n;
    let mut essential = Vec::new();
    for &m in minterms {
        let covering: Vec<&Cube> = primes.iter().filter(|p| p.covers(m)).collect();
        if covering.len() == 1 && !essential.contains(covering[0]) {
            essential.push(*covering[0]);
        }
    }
    essential
}

/// A greedy minimum-cover two-level "optimization" (the substitute for the
/// survey's SIS runs): essential primes first, then largest-coverage
/// primes until the on-set is covered. Returns the chosen cover.
pub fn greedy_cover(n: u32, minterms: &[u32]) -> Vec<Cube> {
    let primes = prime_implicants(n, minterms);
    let mut cover = essential_primes(n, minterms, &primes);
    let mut uncovered: Vec<u32> =
        minterms.iter().copied().filter(|&m| !cover.iter().any(|c| c.covers(m))).collect();
    while !uncovered.is_empty() {
        let best = primes
            .iter()
            .max_by_key(|p| uncovered.iter().filter(|&&m| p.covers(m)).count())
            .copied()
            .expect("primes cover all minterms");
        cover.push(best);
        uncovered.retain(|&m| !best.covers(m));
    }
    cover
}

/// Two-level implementation cost of a cover: literals plus cubes (a
/// standard gate-count proxy for a PLA/AND-OR network).
pub fn cover_cost(cover: &[Cube]) -> f64 {
    cover.iter().map(|c| c.literals() as f64).sum::<f64>() + cover.len() as f64
}

// ---------------------------------------------------------------------
// Nemani–Najm linear measure.
// ---------------------------------------------------------------------

/// The Nemani–Najm "linear measure" of one set (on-set or off-set):
/// `C(set) = sum_i c_i p_i`, where the `c_i` are the distinct literal
/// counts of the essential primes and `p_i` the probability mass of
/// minterms covered by essential primes of that literal count but by none
/// with fewer literals (i.e., none of any larger cube size).
pub fn linear_measure(n: u32, minterms: &[u32]) -> f64 {
    if minterms.is_empty() {
        return 0.0;
    }
    let primes = prime_implicants(n, minterms);
    let essential = essential_primes(n, minterms, &primes);
    if essential.is_empty() {
        // Fall back to the full prime set (completely cyclic covers).
        return linear_measure_over(n, minterms, &primes);
    }
    linear_measure_over(n, minterms, &essential)
}

fn linear_measure_over(n: u32, minterms: &[u32], cubes: &[Cube]) -> f64 {
    let total = 2f64.powi(n as i32);
    // Distinct literal counts, ascending (fewest literals = largest cube
    // first).
    let mut sizes: Vec<u32> = cubes.iter().map(|c| c.literals()).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut measure = 0.0;
    let mut claimed: Vec<u32> = Vec::new();
    for &lit in &sizes {
        let layer: Vec<&Cube> = cubes.iter().filter(|c| c.literals() == lit).collect();
        let newly: Vec<u32> = minterms
            .iter()
            .copied()
            .filter(|&m| !claimed.contains(&m) && layer.iter().any(|c| c.covers(m)))
            .collect();
        measure += lit as f64 * newly.len() as f64 / total;
        claimed.extend(newly);
    }
    measure
}

/// Combined area-complexity measure `C(f) = (C1(f) + C0(f)) / 2` over the
/// on-set and off-set.
pub fn area_complexity(n: u32, on_set: &[u32]) -> f64 {
    let full: Vec<u32> = (0..(1u32 << n)).collect();
    let off_set: Vec<u32> = full.into_iter().filter(|m| !on_set.contains(m)).collect();
    (linear_measure(n, on_set) + linear_measure(n, &off_set)) / 2.0
}

/// The exponential regression `A(f) ≈ a * exp(b * C(f))` the Nemani–Najm
/// paper fits between optimized area and the complexity measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaRegression {
    /// Multiplicative constant.
    pub a: f64,
    /// Exponent slope.
    pub b: f64,
}

impl AreaRegression {
    /// Fits `ln A = ln a + b C` by least squares over (complexity, area)
    /// samples with positive areas.
    pub fn fit(samples: &[(f64, f64)]) -> AreaRegression {
        let rows: Vec<Vec<f64>> =
            samples.iter().filter(|s| s.1 > 0.0).map(|&(c, _)| vec![c, 1.0]).collect();
        let ys: Vec<f64> = samples.iter().filter(|s| s.1 > 0.0).map(|&(_, a)| a.ln()).collect();
        match least_squares(&rows, &ys) {
            Some(coefs) => AreaRegression { a: coefs[1].exp(), b: coefs[0] },
            None => AreaRegression { a: 1.0, b: 0.0 },
        }
    }

    /// Predicted area for a complexity value.
    pub fn predict(&self, complexity: f64) -> f64 {
        self.a * (self.b * complexity).exp()
    }
}

// ---------------------------------------------------------------------
// Chip estimation system (gate-equivalent) model.
// ---------------------------------------------------------------------

/// The gate-equivalent "chip estimation system" parameters (survey ref
/// \[14\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipEstimationModel {
    /// Average internal energy per equivalent gate per transition, in
    /// femtojoules.
    pub energy_gate_fj: f64,
    /// Average capacitive load per equivalent gate, in femtofarads.
    pub c_load_ff: f64,
    /// Supply voltage, in volts.
    pub vdd: f64,
    /// Clock frequency, in megahertz.
    pub clock_mhz: f64,
}

impl ChipEstimationModel {
    /// `Power = f * N * (Energy_gate + 0.5 V^2 C_load) * E_gate`, in
    /// microwatts, for `gate_equivalents` equivalent gates at average
    /// output activity `e_gate` (transitions per gate per cycle).
    pub fn power_uw(&self, gate_equivalents: f64, e_gate: f64) -> f64 {
        let f_hz = self.clock_mhz * 1e6;
        let energy_fj = self.energy_gate_fj + 0.5 * self.vdd * self.vdd * self.c_load_ff;
        f_hz * gate_equivalents * energy_fj * 1e-15 * e_gate * 1e6
    }
}

// ---------------------------------------------------------------------
// Landman–Rabaey controller model.
// ---------------------------------------------------------------------

/// The §II-B2 FSM controller power model `Power = 0.5 V^2 f (N_I C_I E_I
/// + N_O C_O E_O) N_M` with regression-fitted capacitance coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerModel {
    /// Input-side regression capacitance, in femtofarads.
    pub c_i_ff: f64,
    /// Output-side regression capacitance, in femtofarads.
    pub c_o_ff: f64,
}

/// The structural/activity features the controller model consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerFeatures {
    /// External inputs plus state lines.
    pub n_i: f64,
    /// External outputs plus state lines.
    pub n_o: f64,
    /// Mean switching activity on input-side lines.
    pub e_i: f64,
    /// Mean switching activity on output-side lines.
    pub e_o: f64,
    /// Minterm count of the machine's combined next-state/output cover.
    pub n_m: f64,
}

/// Extracts controller features from an STG under an encoding, using the
/// Markov steady state for line activities and the explicit transition
/// table for the minterm count.
pub fn controller_features(
    stg: &Stg,
    markov: &MarkovAnalysis,
    encoding: &Encoding,
) -> ControllerFeatures {
    let state_bits = encoding.bits() as f64;
    let n_i = stg.input_bits() as f64 + state_bits;
    let n_o = stg.output_bits() as f64 + state_bits;
    // State-line activity per line.
    let state_act = markov.expected_switching(stg, encoding) / state_bits.max(1.0);
    // Input lines toggle like random symbols (uniform input model).
    let e_i = (0.5 * stg.input_bits() as f64 + state_act * state_bits) / n_i;
    // Output-line activity: expected output-word Hamming under the
    // steady state.
    let mut out_act = 0.0;
    let mut prev_weighted = 0.0;
    for s in 0..stg.state_count() {
        for w in 0..stg.symbol_count() as u64 {
            let p = markov.state_probs[s] * markov.input_probs[w as usize];
            let o = stg.output(s, w).expect("in range");
            // Approximate consecutive-output switching by the expected
            // Hamming weight variation: toggle each output bit with
            // probability 2 q (1-q), estimated from the bit's marginal.
            prev_weighted += p * o.count_ones() as f64;
        }
    }
    let out_bits = stg.output_bits() as f64;
    let q = (prev_weighted / out_bits.max(1.0)).clamp(0.0, 1.0);
    out_act += 2.0 * q * (1.0 - q);
    let e_o = (out_act * out_bits + state_act * state_bits) / n_o;
    // Minterm count: (state, input) pairs producing any asserted
    // next-state or output bit.
    let mut n_m = 0usize;
    for s in 0..stg.state_count() {
        for w in 0..stg.symbol_count() as u64 {
            let next = encoding.code(stg.next(s, w).expect("in range"));
            let out = stg.output(s, w).expect("in range");
            if next != 0 || out != 0 {
                n_m += 1;
            }
        }
    }
    ControllerFeatures { n_i, n_o, e_i, e_o, n_m: n_m as f64 }
}

impl ControllerModel {
    /// Fits the coefficients by least squares over (features, measured
    /// power in microwatts) samples from previously "designed" (i.e.,
    /// synthesized and simulated) controllers.
    pub fn fit(samples: &[(ControllerFeatures, f64)], vdd: f64, clock_mhz: f64) -> ControllerModel {
        let f_hz = clock_mhz * 1e6;
        let scale = 0.5 * vdd * vdd * f_hz * 1e-15 * 1e6;
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|(ft, _)| vec![scale * ft.n_i * ft.e_i * ft.n_m, scale * ft.n_o * ft.e_o * ft.n_m])
            .collect();
        let ys: Vec<f64> = samples.iter().map(|&(_, p)| p).collect();
        // The two columns are often nearly collinear (controllers with
        // symmetric input/output line counts); when the unconstrained fit
        // turns a coefficient negative, refit on the other column alone
        // instead of clamping (clamping a collinear pair wrecks the fit).
        match least_squares(&rows, &ys) {
            Some(c) if c[0] >= 0.0 && c[1] >= 0.0 => ControllerModel { c_i_ff: c[0], c_o_ff: c[1] },
            Some(c) => {
                let keep = if c[0] < 0.0 { 1 } else { 0 };
                let single: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[keep]]).collect();
                let coef = least_squares(&single, &ys).map_or(10.0, |v| v[0].max(0.0));
                if keep == 0 {
                    ControllerModel { c_i_ff: coef, c_o_ff: 0.0 }
                } else {
                    ControllerModel { c_i_ff: 0.0, c_o_ff: coef }
                }
            }
            None => ControllerModel { c_i_ff: 10.0, c_o_ff: 10.0 },
        }
    }

    /// Predicted controller power, in microwatts.
    pub fn predict_uw(&self, ft: &ControllerFeatures, vdd: f64, clock_mhz: f64) -> f64 {
        let f_hz = clock_mhz * 1e6;
        0.5 * vdd
            * vdd
            * f_hz
            * (ft.n_i * self.c_i_ff * ft.e_i + ft.n_o * self.c_o_ff * ft.e_o)
            * ft.n_m
            * 1e-15
            * 1e6
    }
}

/// A seeded random single-output function with on-set density `p`.
pub fn random_function(n: u32, p: f64, seed: u64) -> Vec<u32> {
    use hlpower_rng::Rng;
    let mut rng = Rng::seed_from_u64(seed);
    (0..(1u32 << n)).filter(|_| rng.gen_bool(p)).collect()
}

/// Gate-count proxy for the optimized area of a single-output function
/// (greedy two-level cover cost).
pub fn optimized_area(n: u32, on_set: &[u32]) -> f64 {
    if on_set.is_empty() {
        return 0.0;
    }
    cover_cost(&greedy_cover(n, on_set))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qm_finds_textbook_primes() {
        // f(a,b,c) = on-set {0,1,2,5,6,7}: classic example with primes
        // a'b', b'c, a'c', bc', ab, ac.
        let primes = prime_implicants(3, &[0, 1, 2, 5, 6, 7]);
        assert_eq!(primes.len(), 6);
        for p in &primes {
            assert_eq!(p.literals(), 2);
        }
    }

    #[test]
    fn qm_full_cube() {
        // Tautology: single prime with no literals.
        let primes = prime_implicants(2, &[0, 1, 2, 3]);
        assert_eq!(primes, vec![Cube { mask: 0, value: 0 }]);
        assert_eq!(primes[0].coverage(2), 4);
    }

    #[test]
    fn essential_primes_identified() {
        // f = ab + cd over 4 vars: both products are essential.
        let on: Vec<u32> = (0..16u32).filter(|m| (m & 3) == 3 || (m & 12) == 12).collect();
        let primes = prime_implicants(4, &on);
        let ess = essential_primes(4, &on, &primes);
        assert_eq!(ess.len(), 2);
        for e in &ess {
            assert_eq!(e.literals(), 2);
        }
    }

    #[test]
    fn greedy_cover_covers_everything() {
        let on = random_function(6, 0.4, 9);
        let cover = greedy_cover(6, &on);
        for &m in &on {
            assert!(cover.iter().any(|c| c.covers(m)), "minterm {m} uncovered");
        }
        // And covers nothing outside the on-set.
        for m in 0..(1u32 << 6) {
            if !on.contains(&m) {
                assert!(!cover.iter().any(|c| c.covers(m)), "off minterm {m} covered");
            }
        }
    }

    #[test]
    fn linear_measure_ranks_simplicity() {
        // A single big cube is less complex than scattered minterms.
        let simple: Vec<u32> = (0..16u32).filter(|m| m & 8 == 8).collect(); // f = a
        let scattered = vec![0u32, 3, 5, 6, 9, 10, 12, 15]; // parity: worst case
        let c_simple = area_complexity(4, &simple);
        let c_scattered = area_complexity(4, &scattered);
        assert!(c_simple < c_scattered, "{c_simple} vs {c_scattered}");
    }

    #[test]
    fn area_regression_is_monotone_in_complexity() {
        // Build samples across on-set densities; fit; check the curve is
        // increasing when b > 0.
        let mut samples = Vec::new();
        for (i, p) in [0.05, 0.15, 0.3, 0.5].iter().enumerate() {
            for seed in 0..6u64 {
                let on = random_function(6, *p, seed * 31 + i as u64);
                if on.is_empty() {
                    continue;
                }
                samples.push((area_complexity(6, &on), optimized_area(6, &on)));
            }
        }
        let reg = AreaRegression::fit(&samples);
        assert!(reg.b > 0.0, "area grows with complexity (b = {})", reg.b);
        assert!(reg.predict(3.0) > reg.predict(1.0));
    }

    #[test]
    fn chip_estimation_scales_linearly() {
        let m =
            ChipEstimationModel { energy_gate_fj: 4.0, c_load_ff: 12.0, vdd: 3.3, clock_mhz: 50.0 };
        let p1 = m.power_uw(1000.0, 0.2);
        let p2 = m.power_uw(2000.0, 0.2);
        let p3 = m.power_uw(1000.0, 0.4);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
        assert!((p3 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn controller_model_fits_and_predicts() {
        use hlpower_fsm::generators;
        // Synthetic training: power proportional to the true formula with
        // C_I = 30, C_O = 18 plus noise-free evaluation.
        let truth = ControllerModel { c_i_ff: 30.0, c_o_ff: 18.0 };
        let mut samples = Vec::new();
        for seed in 0..8u64 {
            let stg = generators::random_stg(2, 8 + seed as usize, 2, seed);
            let m = MarkovAnalysis::uniform(&stg);
            let enc = Encoding::binary(&stg);
            let ft = controller_features(&stg, &m, &enc);
            samples.push((ft, truth.predict_uw(&ft, 3.3, 50.0)));
        }
        let fitted = ControllerModel::fit(&samples, 3.3, 50.0);
        assert!((fitted.c_i_ff - 30.0).abs() < 1.0, "C_I = {}", fitted.c_i_ff);
        assert!((fitted.c_o_ff - 18.0).abs() < 1.0, "C_O = {}", fitted.c_o_ff);
    }
}
