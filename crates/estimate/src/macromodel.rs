//! Regression-based power macro-models (survey §II-C1).
//!
//! A [`ModuleHarness`] wraps an RT-level library component (a gate-level
//! netlist whose inputs are grouped into operand buses) and produces
//! per-cycle `(features, energy)` records under a training stream — step 1
//! of the survey's macro-modeling flow. The macro-model kinds span the
//! survey's accuracy/cost ladder:
//!
//! * **PFA** — power-factor approximation: one constant per activation.
//! * **DBT** — Landman–Rabaey dual-bit-type model: separate capacitance
//!   coefficients for the random low-order ("white noise") bits and for
//!   the four sign-transition classes of the correlated high-order bits.
//! * **Bitwise** — one regression capacitance per input pin.
//! * **InputOutput** — mean input and output activities (`C_I E_I + C_O
//!   E_O`).
//! * **Table3d** — the Gupta–Najm three-dimensional lookup table over
//!   (input probability, input activity, output activity).
//! * **Stepwise** — F-test forward-selected feature subset (Wu et al.).

use std::error::Error;
use std::fmt;

use hlpower_netlist::{gen, BlockSim64, Library, Netlist, NetlistError, ZeroDelaySim, LANES};
use hlpower_rng::par;

use crate::stats::{least_squares, stepwise_select, StreamStats};

/// Errors from macro-model construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MacroModelError {
    /// Operand widths do not sum to the netlist's input count.
    OperandMismatch {
        /// Sum of declared operand widths.
        declared: usize,
        /// Netlist primary inputs.
        actual: usize,
    },
    /// The training stream was too short to fit the model.
    NotEnoughData {
        /// Number of cycles provided.
        cycles: usize,
    },
    /// The underlying netlist is invalid.
    Netlist(NetlistError),
}

impl fmt::Display for MacroModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacroModelError::OperandMismatch { declared, actual } => {
                write!(f, "operand widths sum to {declared}, netlist has {actual} inputs")
            }
            MacroModelError::NotEnoughData { cycles } => {
                write!(f, "training stream too short ({cycles} cycles)")
            }
            MacroModelError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for MacroModelError {}

impl From<NetlistError> for MacroModelError {
    fn from(e: NetlistError) -> Self {
        MacroModelError::Netlist(e)
    }
}

/// One simulated cycle of a module: the macro-model features and the
/// gate-level reference energy.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleRecord {
    /// Mean input signal value (fraction of 1 bits).
    pub in_prob: f64,
    /// Mean input bit activity this cycle (fraction of pins toggling).
    pub in_act: f64,
    /// Mean (zero-delay) output bit activity this cycle.
    pub out_act: f64,
    /// Per-input-pin toggle indicators (0/1).
    pub pin_toggles: Vec<f64>,
    /// Per-operand white-noise-region mean activity.
    pub operand_u_act: Vec<f64>,
    /// Per-operand sign-transition class (0 = `++`, 1 = `+-`, 2 = `-+`,
    /// 3 = `--`).
    pub operand_sign_class: Vec<usize>,
    /// Reference energy this cycle, in femtojoules.
    pub energy_fj: f64,
}

/// An RT-level library module instrumented for macro-model
/// characterization.
#[derive(Debug)]
pub struct ModuleHarness {
    netlist: Netlist,
    lib: Library,
    operand_widths: Vec<usize>,
    /// Per-operand boundary between white-noise and sign regions (bit
    /// index of the first sign bit), set by training-stream analysis.
    breakpoints: Vec<usize>,
    energy_per_toggle: Vec<f64>,
}

impl ModuleHarness {
    /// Wraps a netlist whose inputs are grouped into operands of the given
    /// widths (in input-declaration order).
    ///
    /// # Errors
    ///
    /// Returns [`MacroModelError::OperandMismatch`] if widths do not sum
    /// to the input count, or a netlist error for cyclic modules.
    pub fn new(
        netlist: Netlist,
        lib: Library,
        operand_widths: Vec<usize>,
    ) -> Result<Self, MacroModelError> {
        let total: usize = operand_widths.iter().sum();
        if total != netlist.input_count() {
            return Err(MacroModelError::OperandMismatch {
                declared: total,
                actual: netlist.input_count(),
            });
        }
        netlist.topo_order()?;
        let caps = netlist.load_caps_ff(&lib);
        let energy_per_toggle = netlist
            .node_ids()
            .map(|id| {
                let mut e = lib.switching_energy_fj(caps[id.index()]);
                if let hlpower_netlist::NodeKind::Gate { kind, .. } = netlist.kind(id) {
                    e += lib.cell(*kind).internal_energy_fj;
                }
                e
            })
            .collect();
        let breakpoints = operand_widths.to_vec();
        Ok(ModuleHarness { netlist, lib, operand_widths, breakpoints, energy_per_toggle })
    }

    /// A ripple-carry adder module with two `width`-bit operands.
    pub fn adder(width: usize, lib: Library) -> Self {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", width);
        let b = nl.input_bus("b", width);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        ModuleHarness::new(nl, lib, vec![width, width]).expect("widths match by construction")
    }

    /// An array multiplier module with two `width`-bit operands.
    pub fn multiplier(width: usize, lib: Library) -> Self {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", width);
        let b = nl.input_bus("b", width);
        let p = gen::array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        ModuleHarness::new(nl, lib, vec![width, width]).expect("widths match by construction")
    }

    /// The wrapped netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The library the module is characterized under.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// Detects per-operand dual-bit-type breakpoints from a stream's
    /// per-bit activities: the sign region is the contiguous run of
    /// high-order bits whose activity falls below the midpoint between the
    /// most and least active bit of the operand.
    pub fn detect_breakpoints(&mut self, vectors: &[Vec<bool>]) {
        let stats = StreamStats::collect(vectors);
        let mut offset = 0;
        let mut bps = Vec::with_capacity(self.operand_widths.len());
        for &w in &self.operand_widths {
            let acts = &stats.bit_activities[offset..offset + w];
            let max = acts.iter().cloned().fold(0.0f64, f64::max);
            let min = acts.iter().cloned().fold(1.0f64, f64::min);
            let threshold = (max + min) / 2.0;
            let mut bp = w;
            for i in (0..w).rev() {
                if acts[i] < threshold - 1e-12 {
                    bp = i;
                } else {
                    break;
                }
            }
            bps.push(bp);
            offset += w;
        }
        self.breakpoints = bps;
    }

    /// Simulates the module cycle by cycle, producing one record per
    /// cycle after the first.
    ///
    /// Purely combinational modules (every module the built-in harnesses
    /// construct) run on the time-packed [`BlockSim64`] kernel — one
    /// network evaluation per 64 cycles — and sequential modules fall back
    /// to the scalar simulator. Both paths produce bit-identical records:
    /// packed toggles are exact, and per-cycle energies accumulate in the
    /// same node-ascending f64 order as the scalar sum.
    ///
    /// # Errors
    ///
    /// Returns a netlist error on width mismatches.
    pub fn trace(
        &self,
        stream: impl IntoIterator<Item = Vec<bool>>,
    ) -> Result<Vec<CycleRecord>, MacroModelError> {
        if self.netlist.dffs().is_empty() {
            self.trace_packed(stream)
        } else {
            self.trace_scalar(stream)
        }
    }

    /// Scalar reference implementation of [`trace`](Self::trace).
    fn trace_scalar(
        &self,
        stream: impl IntoIterator<Item = Vec<bool>>,
    ) -> Result<Vec<CycleRecord>, MacroModelError> {
        let mut sim = ZeroDelaySim::new(&self.netlist)?;
        let mut records = Vec::new();
        let mut prev_in: Option<Vec<bool>> = None;
        let mut prev_out: Option<Vec<bool>> = None;
        for v in stream {
            sim.step(&v)?;
            let out = sim.output_values();
            let act = sim.take_activity();
            if let (Some(pi), Some(po)) = (&prev_in, &prev_out) {
                let energy_fj: f64 = act
                    .toggles
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| t as f64 * self.energy_per_toggle[i])
                    .sum();
                records.push(self.make_record(&v, pi, &out, po, energy_fj));
            }
            prev_in = Some(v);
            prev_out = Some(out);
        }
        Ok(records)
    }

    /// Time-packed implementation of [`trace`](Self::trace) for
    /// combinational modules: 64 consecutive cycles per evaluated block.
    fn trace_packed(
        &self,
        stream: impl IntoIterator<Item = Vec<bool>>,
    ) -> Result<Vec<CycleRecord>, MacroModelError> {
        let width = self.netlist.input_count();
        let out_nodes: Vec<_> = self.netlist.outputs().iter().map(|&(_, n)| n).collect();
        let mut bs = BlockSim64::new(&self.netlist)?;
        let mut records = Vec::new();
        let mut it = stream.into_iter();
        let mut prev_in: Option<Vec<bool>> = None;
        let mut prev_out: Option<Vec<bool>> = None;
        loop {
            let mut block: Vec<Vec<bool>> = Vec::with_capacity(LANES);
            while block.len() < LANES {
                match it.next() {
                    Some(v) => {
                        if v.len() != width {
                            return Err(NetlistError::InputWidthMismatch {
                                got: v.len(),
                                expected: width,
                            }
                            .into());
                        }
                        block.push(v);
                    }
                    None => break,
                }
            }
            if block.is_empty() {
                break;
            }
            let valid = block.len();
            let mut words = vec![0u64; width];
            for (c, v) in block.iter().enumerate() {
                for (i, &b) in v.iter().enumerate() {
                    words[i] |= (b as u64) << c;
                }
            }
            bs.eval_block(&words, valid)?;
            // Scatter per-cycle energies node-major: nodes ascend exactly
            // like the scalar per-cycle sum, and skipped zero-toggle terms
            // contribute `+ 0.0`, so each cycle's f64 total is bitwise
            // identical to the scalar path.
            let mut energies = [0.0f64; LANES];
            for idx in 0..self.netlist.node_count() {
                let mut d = bs.diff_word_at(idx);
                while d != 0 {
                    let c = d.trailing_zeros() as usize;
                    energies[c] += self.energy_per_toggle[idx];
                    d &= d - 1;
                }
            }
            let out_words: Vec<u64> = out_nodes.iter().map(|&n| bs.value_word(n)).collect();
            for (c, v) in block.into_iter().enumerate() {
                let out: Vec<bool> = out_words.iter().map(|w| (w >> c) & 1 == 1).collect();
                if let (Some(pi), Some(po)) = (&prev_in, &prev_out) {
                    records.push(self.make_record(&v, pi, &out, po, energies[c]));
                }
                prev_in = Some(v);
                prev_out = Some(out);
            }
            if valid < LANES {
                break;
            }
        }
        Ok(records)
    }

    /// Builds one cycle's record from raw vectors — shared by the scalar
    /// and packed trace paths so their feature math cannot drift apart.
    fn make_record(
        &self,
        v: &[bool],
        pi: &[bool],
        out: &[bool],
        po: &[bool],
        energy_fj: f64,
    ) -> CycleRecord {
        let n = v.len() as f64;
        let in_prob = v.iter().filter(|&&b| b).count() as f64 / n;
        let pin_toggles: Vec<f64> = v.iter().zip(pi).map(|(a, b)| (a != b) as u8 as f64).collect();
        let in_act = pin_toggles.iter().sum::<f64>() / n;
        let out_act =
            out.iter().zip(po).filter(|(a, b)| a != b).count() as f64 / out.len().max(1) as f64;
        let mut operand_u_act = Vec::with_capacity(self.operand_widths.len());
        let mut operand_sign_class = Vec::with_capacity(self.operand_widths.len());
        let mut offset = 0;
        for (oi, &w) in self.operand_widths.iter().enumerate() {
            let bp = self.breakpoints[oi].min(w);
            let u_bits = bp.max(1);
            let u_act =
                pin_toggles[offset..offset + bp.max(1).min(w)].iter().sum::<f64>() / u_bits as f64;
            operand_u_act.push(u_act);
            let prev_sign = pi[offset + w - 1];
            let cur_sign = v[offset + w - 1];
            operand_sign_class.push(match (prev_sign, cur_sign) {
                (false, false) => 0,
                (false, true) => 1,
                (true, false) => 2,
                (true, true) => 3,
            });
            offset += w;
        }
        CycleRecord {
            in_prob,
            in_act,
            out_act,
            pin_toggles,
            operand_u_act,
            operand_sign_class,
            energy_fj,
        }
    }
}

/// The macro-model families of §II-C1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacroModelKind {
    /// Power-factor approximation (constant per activation).
    Pfa,
    /// Dual-bit-type (Landman–Rabaey).
    DualBitType,
    /// Per-input-pin bitwise regression.
    Bitwise,
    /// Input–output activity model.
    InputOutput,
    /// Three-dimensional lookup table (Gupta–Najm).
    Table3d,
    /// Stepwise F-test-selected regression (Wu et al.).
    Stepwise,
}

/// A fitted macro-model.
#[derive(Debug, Clone)]
pub struct TrainedMacroModel {
    /// The model family.
    pub kind: MacroModelKind,
    coefs: Vec<f64>,
    selected: Vec<usize>,
    table: Vec<f64>,
    table_counts: Vec<u64>,
    grid: usize,
    fallback: f64,
    n_operands: usize,
}

/// Accuracy of a macro-model on a validation stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroModelAccuracy {
    /// `|mean(pred) - mean(true)| / mean(true)` — average-power error.
    pub average_error: f64,
    /// `mean(|pred_t - true_t|) / mean(true)` — cycle-power error.
    pub cycle_error: f64,
    /// Mean reference energy per cycle, in femtojoules.
    pub reference_mean_fj: f64,
}

fn stepwise_features(r: &CycleRecord) -> Vec<f64> {
    let mut f = vec![
        r.in_prob,
        r.in_act,
        r.out_act,
        r.in_act * r.in_act,
        r.in_prob * r.in_act,
        r.in_act * r.out_act,
    ];
    f.extend(r.operand_u_act.iter().copied());
    f.push(1.0);
    f
}

impl TrainedMacroModel {
    /// Fits a model of the given kind to training records.
    ///
    /// # Errors
    ///
    /// Returns [`MacroModelError::NotEnoughData`] for streams shorter
    /// than 8 usable cycles.
    pub fn fit(
        kind: MacroModelKind,
        records: &[CycleRecord],
    ) -> Result<TrainedMacroModel, MacroModelError> {
        if records.len() < 8 {
            return Err(MacroModelError::NotEnoughData { cycles: records.len() });
        }
        let y: Vec<f64> = records.iter().map(|r| r.energy_fj).collect();
        let n_operands = records[0].operand_u_act.len();
        let mean_y = y.iter().sum::<f64>() / y.len() as f64;
        let mut model = TrainedMacroModel {
            kind,
            coefs: Vec::new(),
            selected: Vec::new(),
            table: Vec::new(),
            table_counts: Vec::new(),
            grid: 5,
            fallback: mean_y,
            n_operands,
        };
        match kind {
            MacroModelKind::Pfa => {
                model.coefs = vec![mean_y];
            }
            MacroModelKind::DualBitType => {
                let rows: Vec<Vec<f64>> = records.iter().map(|r| model.dbt_row(r)).collect();
                model.coefs = least_squares(&rows, &y).unwrap_or(vec![0.0; 6]);
            }
            MacroModelKind::Bitwise => {
                let rows: Vec<Vec<f64>> = records
                    .iter()
                    .map(|r| {
                        let mut row = r.pin_toggles.clone();
                        row.push(1.0);
                        row
                    })
                    .collect();
                model.coefs =
                    least_squares(&rows, &y).unwrap_or(vec![0.0; records[0].pin_toggles.len() + 1]);
            }
            MacroModelKind::InputOutput => {
                let rows: Vec<Vec<f64>> =
                    records.iter().map(|r| vec![r.in_act, r.out_act, 1.0]).collect();
                model.coefs = least_squares(&rows, &y).unwrap_or(vec![0.0, 0.0, mean_y]);
            }
            MacroModelKind::Table3d => {
                let g = model.grid;
                model.table = vec![0.0; g * g * g];
                model.table_counts = vec![0; g * g * g];
                for r in records {
                    let idx = model.cell_index(r);
                    model.table[idx] += r.energy_fj;
                    model.table_counts[idx] += 1;
                }
                for i in 0..model.table.len() {
                    if model.table_counts[i] > 0 {
                        model.table[i] /= model.table_counts[i] as f64;
                    }
                }
            }
            MacroModelKind::Stepwise => {
                let rows: Vec<Vec<f64>> = records.iter().map(stepwise_features).collect();
                let selected = stepwise_select(&rows, &y, 4.0);
                let sub: Vec<Vec<f64>> =
                    rows.iter().map(|r| selected.iter().map(|&c| r[c]).collect()).collect();
                model.coefs = least_squares(&sub, &y).unwrap_or(vec![mean_y]);
                model.selected = selected;
            }
        }
        Ok(model)
    }

    /// Fits one model per kind in `kinds`, sharding the independent
    /// regressions across the scoped worker pool ([`hlpower_rng::par`]).
    ///
    /// This is the training-sweep form used by the accuracy-ladder
    /// experiments: each kind's fit reads the shared records and writes
    /// only its own model, so the sweep parallelizes without changing any
    /// result — the returned vector (in `kinds` order) is identical to
    /// calling [`TrainedMacroModel::fit`] in a loop, at any thread count.
    pub fn fit_sweep(
        kinds: &[MacroModelKind],
        records: &[CycleRecord],
    ) -> Vec<Result<TrainedMacroModel, MacroModelError>> {
        hlpower_obs::metrics::EST_MACRO_FITS.add(kinds.len() as u64);
        par::map(kinds, |_, &kind| TrainedMacroModel::fit(kind, records))
    }

    fn dbt_row(&self, r: &CycleRecord) -> Vec<f64> {
        // [sum(n_u * u_act), per-sign-class counts x4, 1]
        let mut row = vec![0.0; 6];
        for (oi, &u) in r.operand_u_act.iter().enumerate() {
            row[0] += u;
            row[1 + r.operand_sign_class[oi]] += 1.0;
        }
        row[5] = 1.0;
        row
    }

    fn cell_index(&self, r: &CycleRecord) -> usize {
        let g = self.grid;
        let bin = |x: f64| ((x * g as f64) as usize).min(g - 1);
        (bin(r.in_prob) * g + bin(r.in_act)) * g + bin(r.out_act)
    }

    /// Number of selected stepwise features (0 for other kinds).
    pub fn selected_feature_count(&self) -> usize {
        self.selected.len()
    }

    /// Predicts one cycle's energy, in femtojoules.
    pub fn predict_cycle_fj(&self, r: &CycleRecord) -> f64 {
        let dot =
            |coefs: &[f64], row: &[f64]| -> f64 { coefs.iter().zip(row).map(|(c, x)| c * x).sum() };
        let _ = self.n_operands;
        match self.kind {
            MacroModelKind::Pfa => self.coefs[0],
            MacroModelKind::DualBitType => dot(&self.coefs, &self.dbt_row(r)),
            MacroModelKind::Bitwise => {
                let mut row = r.pin_toggles.clone();
                row.push(1.0);
                dot(&self.coefs, &row)
            }
            MacroModelKind::InputOutput => dot(&self.coefs, &[r.in_act, r.out_act, 1.0]),
            MacroModelKind::Table3d => {
                let idx = self.cell_index(r);
                if self.table_counts[idx] > 0 {
                    self.table[idx]
                } else {
                    self.fallback
                }
            }
            MacroModelKind::Stepwise => {
                let row = stepwise_features(r);
                let sub: Vec<f64> = self.selected.iter().map(|&c| row[c]).collect();
                dot(&self.coefs, &sub)
            }
        }
    }

    /// Evaluates the model against reference records.
    pub fn accuracy(&self, records: &[CycleRecord]) -> MacroModelAccuracy {
        let mean_true =
            records.iter().map(|r| r.energy_fj).sum::<f64>() / records.len().max(1) as f64;
        let mean_pred = records.iter().map(|r| self.predict_cycle_fj(r)).sum::<f64>()
            / records.len().max(1) as f64;
        let cycle_abs =
            records.iter().map(|r| (self.predict_cycle_fj(r) - r.energy_fj).abs()).sum::<f64>()
                / records.len().max(1) as f64;
        MacroModelAccuracy {
            average_error: (mean_pred - mean_true).abs() / mean_true.max(1e-12),
            cycle_error: cycle_abs / mean_true.max(1e-12),
            reference_mean_fj: mean_true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_netlist::streams;

    fn adder_harness() -> ModuleHarness {
        ModuleHarness::adder(8, Library::default())
    }

    fn op_stream(seed: u64, width: usize, n: usize) -> Vec<Vec<bool>> {
        streams::random(seed, width * 2).take(n).collect()
    }

    #[test]
    fn operand_mismatch_rejected() {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 4);
        nl.output_bus("y", &a);
        let err = ModuleHarness::new(nl, Library::default(), vec![8]).unwrap_err();
        assert!(matches!(err, MacroModelError::OperandMismatch { declared: 8, actual: 4 }));
    }

    #[test]
    fn packed_trace_is_bit_identical_to_scalar_trace() {
        // Combinational modules route through the time-packed kernel;
        // every record field, including the f64 energies, must match the
        // scalar reference bitwise. Use a stream length that exercises a
        // partial final block (257 = 4 * 64 + 1).
        for h in [
            ModuleHarness::adder(8, Library::default()),
            ModuleHarness::multiplier(5, Library::default()),
        ] {
            let w = h.netlist().input_count();
            let vectors: Vec<Vec<bool>> = streams::random(31, w).take(257).collect();
            let packed = h.trace(vectors.clone()).unwrap();
            let scalar = h.trace_scalar(vectors).unwrap();
            assert_eq!(packed.len(), scalar.len());
            for (p, s) in packed.iter().zip(&scalar) {
                assert_eq!(p, s);
                assert_eq!(p.energy_fj.to_bits(), s.energy_fj.to_bits());
            }
        }
    }

    #[test]
    fn trace_produces_energy_records() {
        let h = adder_harness();
        let recs = h.trace(op_stream(1, 8, 200)).unwrap();
        assert_eq!(recs.len(), 199);
        assert!(recs.iter().all(|r| r.energy_fj >= 0.0));
        assert!(recs.iter().any(|r| r.energy_fj > 0.0));
    }

    #[test]
    fn frozen_inputs_give_zero_energy() {
        let h = adder_harness();
        let recs = h.trace(std::iter::repeat_n(vec![true; 16], 20)).unwrap();
        for r in recs {
            assert_eq!(r.energy_fj, 0.0);
            assert_eq!(r.in_act, 0.0);
        }
    }

    #[test]
    fn pfa_predicts_average_but_not_cycles() {
        let h = adder_harness();
        let train = h.trace(op_stream(2, 8, 1500)).unwrap();
        let model = TrainedMacroModel::fit(MacroModelKind::Pfa, &train).unwrap();
        let test = h.trace(op_stream(3, 8, 1500)).unwrap();
        let acc = model.accuracy(&test);
        assert!(acc.average_error < 0.05, "avg error {:?}", acc);
        assert!(acc.cycle_error > acc.average_error, "cycle error must dominate");
    }

    #[test]
    fn pfa_fails_on_data_dependency() {
        // The survey's PFA weakness: one operand held constant halves the
        // real power, but PFA predicts the training average.
        let h = adder_harness();
        let train = h.trace(op_stream(4, 8, 1500)).unwrap();
        let model = TrainedMacroModel::fit(MacroModelKind::Pfa, &train).unwrap();
        let frozen =
            streams::zip_concat(streams::constant_word(1, 8), streams::random(5, 8)).take(1500);
        let test = h.trace(frozen).unwrap();
        let acc = model.accuracy(&test);
        assert!(acc.average_error > 0.25, "PFA should be badly biased: {acc:?}");
    }

    #[test]
    fn bitwise_handles_data_dependency() {
        let h = adder_harness();
        let train = h.trace(op_stream(6, 8, 2500)).unwrap();
        let model = TrainedMacroModel::fit(MacroModelKind::Bitwise, &train).unwrap();
        let frozen =
            streams::zip_concat(streams::constant_word(1, 8), streams::random(7, 8)).take(1500);
        let test = h.trace(frozen).unwrap();
        let acc = model.accuracy(&test);
        // The pin-level model adapts to the frozen operand far better than
        // the constant model does on the same data.
        let pfa = TrainedMacroModel::fit(MacroModelKind::Pfa, &train).unwrap();
        let acc_pfa = pfa.accuracy(&test);
        assert!(acc.average_error < 0.20, "bitwise adapts: {acc:?}");
        assert!(acc.average_error < acc_pfa.average_error / 2.0, "{acc:?} vs {acc_pfa:?}");
    }

    #[test]
    fn input_output_beats_input_only_on_multiplier() {
        // Deep logic nesting: output activity carries real information.
        let h = ModuleHarness::multiplier(6, Library::default());
        let train: Vec<Vec<bool>> = streams::signed_walk(8, 12, 60).take(2500).collect();
        let recs = h.trace(train.clone()).unwrap();
        let io = TrainedMacroModel::fit(MacroModelKind::InputOutput, &recs).unwrap();
        let pfa = TrainedMacroModel::fit(MacroModelKind::Pfa, &recs).unwrap();
        let test: Vec<Vec<bool>> = streams::signed_walk(9, 12, 400).take(1500).collect();
        let trecs = h.trace(test).unwrap();
        let acc_io = io.accuracy(&trecs);
        let acc_pfa = pfa.accuracy(&trecs);
        assert!(acc_io.cycle_error < acc_pfa.cycle_error, "io {acc_io:?} vs pfa {acc_pfa:?}");
    }

    #[test]
    fn dbt_breakpoint_detection() {
        let mut h = adder_harness();
        let sw: Vec<Vec<bool>> =
            streams::zip_concat(streams::signed_walk(10, 8, 3), streams::signed_walk(11, 8, 3))
                .take(3000)
                .collect();
        h.detect_breakpoints(&sw);
        // Slow walks have several correlated sign bits: breakpoint below
        // the full width.
        assert!(h.breakpoints.iter().all(|&bp| bp < 8), "breakpoints {:?}", h.breakpoints);
        assert!(h.breakpoints.iter().all(|&bp| bp >= 1));
    }

    #[test]
    fn dbt_beats_pfa_on_signed_data() {
        let mut h = adder_harness();
        let train: Vec<Vec<bool>> =
            streams::zip_concat(streams::signed_walk(12, 8, 4), streams::signed_walk(13, 8, 4))
                .take(3000)
                .collect();
        h.detect_breakpoints(&train);
        let recs = h.trace(train).unwrap();
        let dbt = TrainedMacroModel::fit(MacroModelKind::DualBitType, &recs).unwrap();
        let pfa = TrainedMacroModel::fit(MacroModelKind::Pfa, &recs).unwrap();
        let test: Vec<Vec<bool>> =
            streams::zip_concat(streams::signed_walk(14, 8, 10), streams::signed_walk(15, 8, 10))
                .take(2000)
                .collect();
        let trecs = h.trace(test).unwrap();
        assert!(
            dbt.accuracy(&trecs).cycle_error < pfa.accuracy(&trecs).cycle_error,
            "dbt {:?} vs pfa {:?}",
            dbt.accuracy(&trecs),
            pfa.accuracy(&trecs)
        );
    }

    #[test]
    fn table3d_average_accuracy() {
        let h = adder_harness();
        let train = h.trace(op_stream(16, 8, 4000)).unwrap();
        let model = TrainedMacroModel::fit(MacroModelKind::Table3d, &train).unwrap();
        let test = h.trace(op_stream(17, 8, 1500)).unwrap();
        let acc = model.accuracy(&test);
        assert!(acc.average_error < 0.06, "{acc:?}");
    }

    #[test]
    fn stepwise_selects_few_informative_features() {
        let h = adder_harness();
        let train = h.trace(op_stream(18, 8, 2500)).unwrap();
        let model = TrainedMacroModel::fit(MacroModelKind::Stepwise, &train).unwrap();
        assert!(model.selected_feature_count() >= 1);
        // A small subset of the 9 candidate variables suffices (the survey
        // quotes ~8 variables for accurate module models).
        assert!(model.selected_feature_count() <= 9);
        let test = h.trace(op_stream(19, 8, 1000)).unwrap();
        let acc = model.accuracy(&test);
        assert!(acc.average_error < 0.1, "{acc:?}");
    }

    #[test]
    fn fit_sweep_matches_serial_fits() {
        let h = adder_harness();
        let train = h.trace(op_stream(21, 8, 1200)).unwrap();
        let kinds = [
            MacroModelKind::Pfa,
            MacroModelKind::DualBitType,
            MacroModelKind::Bitwise,
            MacroModelKind::InputOutput,
            MacroModelKind::Table3d,
            MacroModelKind::Stepwise,
        ];
        let sweep = TrainedMacroModel::fit_sweep(&kinds, &train);
        assert_eq!(sweep.len(), kinds.len());
        let probe = &train[17];
        for (kind, fitted) in kinds.iter().zip(&sweep) {
            let serial = TrainedMacroModel::fit(*kind, &train).unwrap();
            let parallel = fitted.as_ref().unwrap();
            assert_eq!(parallel.kind, *kind);
            // Same training data, same regression -> bit-identical predictions.
            assert_eq!(parallel.predict_cycle_fj(probe), serial.predict_cycle_fj(probe));
        }
    }

    #[test]
    fn not_enough_data_is_reported() {
        let h = adder_harness();
        let recs = h.trace(op_stream(20, 8, 5)).unwrap();
        assert!(matches!(
            TrainedMacroModel::fit(MacroModelKind::Pfa, &recs),
            Err(MacroModelError::NotEnoughData { .. })
        ));
    }
}
