//! The Liu–Svensson parametric on-chip memory power model (survey §II-C1,
//! reference 42).
//!
//! A `2^n`-word SRAM organized as `2^(n-k)` rows by `2^k` columns
//! dissipates, per access:
//!
//! 1. cell-array precharge/evaluate: `0.5 * V * V_swing * 2^k * (C_int +
//!    2^(n-k) * C_tr)` — every cell on the selected row drives bit or
//!    bit-bar;
//! 2. row decoder switching;
//! 3. word-line drive for the selected row;
//! 4. column-select multiplexing;
//! 5. sense amplifiers and read-out inverters.
//!
//! The column split `k` trades bit-line capacitance (tall arrays, small
//! `k`) against word-line and column-mux capacitance (wide arrays, large
//! `k`); the model exposes the whole curve and its optimum.

/// Electrical parameters of the memory model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Supply voltage, in volts.
    pub vdd: f64,
    /// Bit-line voltage swing, in volts (often reduced for reads).
    pub v_swing: f64,
    /// Wiring-related row capacitance per memory cell, in femtofarads.
    pub c_int_ff: f64,
    /// Drain capacitance one cell presents to its bit line, in femtofarads.
    pub c_tr_ff: f64,
    /// Capacitance per row-decoder node, in femtofarads.
    pub c_decode_ff: f64,
    /// Word-line capacitance per cell on the row, in femtofarads.
    pub c_wordline_ff: f64,
    /// Column-select capacitance per column, in femtofarads.
    pub c_colsel_ff: f64,
    /// Sense-amplifier + readout energy per accessed word bit, in
    /// femtojoules.
    pub e_sense_fj: f64,
    /// Word width in bits.
    pub word_bits: u32,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            vdd: 3.3,
            v_swing: 0.6,
            c_int_ff: 1.8,
            c_tr_ff: 1.1,
            c_decode_ff: 9.0,
            c_wordline_ff: 2.2,
            c_colsel_ff: 6.0,
            e_sense_fj: 45.0,
            word_bits: 16,
        }
    }
}

/// Per-access energy breakdown of one organization, in femtojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryAccessEnergy {
    /// log2 of the total word count.
    pub n: u32,
    /// log2 of the column count.
    pub k: u32,
    /// Cell-array (bit-line) energy.
    pub cell_array_fj: f64,
    /// Row-decoder energy.
    pub decoder_fj: f64,
    /// Word-line drive energy.
    pub wordline_fj: f64,
    /// Column-select energy.
    pub column_select_fj: f64,
    /// Sense amplifier + readout energy.
    pub sense_fj: f64,
}

impl MemoryAccessEnergy {
    /// Total energy per access, in femtojoules.
    pub fn total_fj(&self) -> f64 {
        self.cell_array_fj
            + self.decoder_fj
            + self.wordline_fj
            + self.column_select_fj
            + self.sense_fj
    }
}

impl MemoryModel {
    /// Energy of one access to a `2^n`-word array with `2^k` columns.
    ///
    /// # Panics
    ///
    /// Panics if `k > n` or `n > 30`.
    pub fn access_energy(&self, n: u32, k: u32) -> MemoryAccessEnergy {
        assert!(k <= n, "column split k={k} exceeds address bits n={n}");
        assert!(n <= 30, "model capped at 2^30 words");
        let cols = 2f64.powi(k as i32) * self.word_bits as f64;
        let rows = 2f64.powi((n - k) as i32);
        // (1) bit lines: every cell on the selected row swings its bit line
        // through V_swing; line capacitance is wiring plus one drain per
        // row.
        let cell_array_fj =
            0.5 * self.vdd * self.v_swing * cols * (self.c_int_ff + rows * self.c_tr_ff);
        // (2) decoder: ~log2(rows) stages of fanout (n-k) each switching.
        let decoder_fj =
            0.5 * self.vdd * self.vdd * self.c_decode_ff * (n - k) as f64 * rows.log2().max(1.0);
        // (3) word line: full-swing across all columns of the row.
        let wordline_fj = 0.5 * self.vdd * self.vdd * self.c_wordline_ff * cols;
        // (4) column select: one-of-2^k mux per output bit.
        let column_select_fj = 0.5 * self.vdd * self.vdd * self.c_colsel_ff * 2f64.powi(k as i32);
        // (5) sense amps on the accessed word.
        let sense_fj = self.e_sense_fj * self.word_bits as f64;
        MemoryAccessEnergy {
            n,
            k,
            cell_array_fj,
            decoder_fj,
            wordline_fj,
            column_select_fj,
            sense_fj,
        }
    }

    /// The per-access energy curve over all feasible column splits.
    pub fn energy_curve(&self, n: u32) -> Vec<MemoryAccessEnergy> {
        (0..=n).map(|k| self.access_energy(n, k)).collect()
    }

    /// The column split minimizing per-access energy.
    pub fn optimal_split(&self, n: u32) -> MemoryAccessEnergy {
        self.energy_curve(n)
            .into_iter()
            .min_by(|a, b| a.total_fj().partial_cmp(&b.total_fj()).expect("finite"))
            .expect("n >= 0 yields at least one organization")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_memories_cost_more_per_access() {
        let m = MemoryModel::default();
        let e10 = m.optimal_split(10).total_fj();
        let e14 = m.optimal_split(14).total_fj();
        let e18 = m.optimal_split(18).total_fj();
        assert!(e10 < e14 && e14 < e18);
    }

    #[test]
    fn optimum_is_interior_for_large_arrays() {
        // Extreme organizations (single column / single row) waste energy
        // on bit lines or word lines respectively; the optimum balances.
        let m = MemoryModel::default();
        let n = 16;
        let best = m.optimal_split(n);
        assert!(best.k > 0 && best.k < n, "optimal k = {}", best.k);
        let tall = m.access_energy(n, 0).total_fj();
        let wide = m.access_energy(n, n).total_fj();
        assert!(best.total_fj() < tall);
        assert!(best.total_fj() < wide);
    }

    #[test]
    fn cell_array_term_matches_formula() {
        let m = MemoryModel::default();
        let e = m.access_energy(12, 4);
        let cols = 16.0 * m.word_bits as f64;
        let rows = 256.0;
        let expect = 0.5 * m.vdd * m.v_swing * cols * (m.c_int_ff + rows * m.c_tr_ff);
        assert!((e.cell_array_fj - expect).abs() < 1e-9);
    }

    #[test]
    fn reduced_swing_cuts_bitline_energy_linearly() {
        let hi = MemoryModel::default();
        let mut lo = hi;
        lo.v_swing = hi.v_swing / 2.0;
        let a = hi.access_energy(14, 5);
        let b = lo.access_energy(14, 5);
        assert!((a.cell_array_fj / b.cell_array_fj - 2.0).abs() < 1e-9);
        assert_eq!(a.sense_fj, b.sense_fj);
    }

    #[test]
    #[should_panic(expected = "column split")]
    fn k_beyond_n_panics() {
        MemoryModel::default().access_energy(8, 9);
    }
}
