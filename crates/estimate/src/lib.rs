//! High-level power estimation models (survey §II).
//!
//! Four families, each validated against gate-level simulation from
//! [`hlpower_netlist`]:
//!
//! * [`entropy`] — information-theoretic models (§II-B1): stream entropies,
//!   the Marculescu and Nemani–Najm average-line-entropy formulas, the
//!   Cheng–Agrawal and Ferrandi total-capacitance estimates.
//! * [`complexity`] — complexity-based models (§II-B2): gate-equivalent
//!   "chip estimation", the Nemani–Najm linear-measure area model over
//!   essential prime implicants (via Quine–McCluskey), the Landman–Rabaey
//!   controller model.
//! * [`macromodel`] — regression macro-models (§II-C1): power-factor
//!   approximation, dual-bit-type, bitwise, input–output, 3-D table, and
//!   stepwise F-test variable selection.
//! * [`sampling`] — sampling-based co-simulation (§II-C2): census, sampler
//!   and adaptive (ratio-estimator) macro-modeling.
//! * [`memory`] — the Liu–Svensson parametric on-chip memory power model
//!   (§II-C1, reference 42).
//!
//! Shared numerics (least squares, F statistics, stream statistics) live
//! in [`stats`].

#![warn(missing_docs)]
// Matrix- and table-style numerics read more clearly with explicit index
// loops; silence clippy's iterator-style suggestion for them.
#![allow(clippy::needless_range_loop)]

pub mod complexity;
pub mod entropy;
pub mod macromodel;
pub mod memory;
pub mod sampling;
pub mod stats;

pub use macromodel::{MacroModelKind, ModuleHarness, TrainedMacroModel};
