//! Information-theoretic power estimation (survey §II-B1).
//!
//! Entropy measures of the applied vector streams bound and approximate
//! switching activity: under temporal independence the average switching
//! activity of a line is at most half its entropy, so `Power ≈ 0.5 V^2 f
//! C_tot E_avg` with `E_avg ≈ h_avg / 2`. The module provides the bit- and
//! word-level stream entropies, the Marculescu closed-form and the
//! Nemani–Najm form for the average line entropy, and the Cheng–Agrawal
//! and Ferrandi total-capacitance estimates (the latter regression-fitted
//! over the BDD sizes of a circuit family).

use std::collections::HashMap;

use hlpower_bdd::build_output_bdds;
use hlpower_netlist::{Library, Netlist, NetlistError, ZeroDelaySim};

use crate::stats::{least_squares, StreamStats};

/// Binary entropy of a probability.
pub fn binary_entropy(p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.log2();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).log2();
    }
    h
}

/// Average per-bit entropy of a stream (the independence upper bound `h =
/// -sum(q log q + (1-q) log(1-q)) / n` used for estimation).
pub fn mean_bit_entropy(stats: &StreamStats) -> f64 {
    if stats.bit_probs.is_empty() {
        return 0.0;
    }
    stats.bit_probs.iter().map(|&q| binary_entropy(q)).sum::<f64>() / stats.bit_probs.len() as f64
}

/// Exact word-level entropy of a stream of vectors (feasible for modest
/// widths/lengths; used to show the bit-level form is an upper bound).
pub fn word_entropy(vectors: &[Vec<bool>]) -> f64 {
    if vectors.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<&[bool], usize> = HashMap::new();
    for v in vectors {
        *counts.entry(v.as_slice()).or_default() += 1;
    }
    let n = vectors.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Marculescu et al. closed-form average line entropy for a linear gate
/// distribution between `n` inputs and `m` outputs, from the average
/// input/output bit entropies.
///
/// Degenerates gracefully when `h_in == h_out` (the formula's `ln(h_in /
/// h_out)` singularity) by returning the mean of the two entropies.
pub fn marculescu_avg_entropy(n: usize, m: usize, h_in: f64, h_out: f64) -> f64 {
    let n = n as f64;
    let m = m as f64;
    if h_in <= 0.0 || h_out <= 0.0 {
        return 0.0;
    }
    let ratio = h_in / h_out;
    let l = ratio.ln();
    if l.abs() < 1e-9 {
        return 0.5 * (h_in + h_out);
    }
    let term = 1.0 - (m / n) * (h_out / h_in) - (1.0 - m / n) * (1.0 - h_out / h_in) / l;
    (2.0 * n * h_in) / ((n + m) * l) * term
}

/// Nemani–Najm average line entropy from average *sectional* (word-level)
/// entropies, approximated in practice by sums of bit-level entropies.
pub fn nemani_najm_avg_entropy(n: usize, m: usize, h_in_total: f64, h_out_total: f64) -> f64 {
    2.0 / (3.0 * (n + m) as f64) * (h_in_total + h_out_total)
}

/// Cheng–Agrawal total-capacitance (gate-complexity) estimate `C_tot =
/// (m/n) 2^n h_out`, in equivalent-gate units. Known to be pessimistic
/// for large `n`.
pub fn cheng_agrawal_ctot(n: usize, m: usize, h_out: f64) -> f64 {
    (m as f64 / n as f64) * 2f64.powi(n as i32) * h_out
}

/// Ferrandi et al. BDD-size capacitance model `C_tot = alpha (m/n) N
/// h_out + beta` with regression-fitted coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FerrandiModel {
    /// Slope coefficient.
    pub alpha: f64,
    /// Intercept.
    pub beta: f64,
}

impl FerrandiModel {
    /// Predicted total capacitance for a circuit with `n` inputs, `m`
    /// outputs, shared-BDD node count `node_count`, and mean output bit
    /// entropy `h_out`.
    pub fn predict(&self, n: usize, m: usize, node_count: usize, h_out: f64) -> f64 {
        self.alpha * (m as f64 / n as f64) * node_count as f64 * h_out + self.beta
    }

    /// Fits the model over a family of circuits: for each, the shared BDD
    /// node count and output entropy are measured, and the "actual" total
    /// capacitance comes from the netlist under the library.
    ///
    /// # Errors
    ///
    /// Returns an error if any circuit is cyclic.
    pub fn fit(circuits: &[(&Netlist, f64)], lib: &Library) -> Result<FerrandiModel, NetlistError> {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for &(nl, h_out) in circuits {
            let (m, roots) = build_output_bdds(nl)?;
            let nodes = m.node_count_many(&roots);
            let x =
                (nl.outputs().len() as f64 / nl.input_count().max(1) as f64) * nodes as f64 * h_out;
            rows.push(vec![x, 1.0]);
            ys.push(nl.load_caps_ff(lib).iter().sum::<f64>());
        }
        let coefs = least_squares(&rows, &ys).unwrap_or(vec![1.0, 0.0]);
        Ok(FerrandiModel { alpha: coefs[0], beta: coefs[1] })
    }
}

/// An entropy-based power estimate for a circuit under a given input
/// stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntropyEstimate {
    /// Mean input bit entropy.
    pub h_in: f64,
    /// Mean output bit entropy (from fast functional simulation).
    pub h_out: f64,
    /// Average line entropy (Marculescu form).
    pub h_avg_marculescu: f64,
    /// Average line entropy (Nemani–Najm form).
    pub h_avg_nemani_najm: f64,
    /// Total capacitance used, in femtofarads.
    pub c_tot_ff: f64,
    /// Estimated average power (Marculescu h_avg), in microwatts.
    pub power_uw_marculescu: f64,
    /// Estimated average power (Nemani–Najm h_avg), in microwatts.
    pub power_uw_nemani_najm: f64,
}

/// Produces the §II-B1 estimate: collect input entropy from the stream,
/// run a *functional* (fast) simulation to get output entropy, take
/// `C_tot` from the netlist structure, and set `E_avg = h_avg / 2`.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists or
/// [`NetlistError::EmptyStream`] for an empty stream.
pub fn entropy_power_estimate(
    netlist: &Netlist,
    lib: &Library,
    stream: impl IntoIterator<Item = Vec<bool>>,
) -> Result<EntropyEstimate, NetlistError> {
    let vectors: Vec<Vec<bool>> = stream.into_iter().collect();
    if vectors.is_empty() {
        return Err(NetlistError::EmptyStream);
    }
    let mut sim = ZeroDelaySim::new(netlist)?;
    let mut out_vectors = Vec::with_capacity(vectors.len());
    for v in &vectors {
        sim.step(v)?;
        out_vectors.push(sim.output_values());
    }
    let in_stats = StreamStats::collect(&vectors);
    let out_stats = StreamStats::collect(&out_vectors);
    let h_in = mean_bit_entropy(&in_stats);
    let h_out = mean_bit_entropy(&out_stats);
    let n = netlist.input_count();
    let m = netlist.outputs().len();
    let h_avg_m = marculescu_avg_entropy(n, m, h_in, h_out).clamp(0.0, 1.0);
    let h_avg_nn = nemani_najm_avg_entropy(n, m, h_in * n as f64, h_out * m as f64).clamp(0.0, 1.0);
    let c_tot_ff: f64 = netlist.load_caps_ff(lib).iter().sum();
    let f_hz = lib.clock_mhz * 1e6;
    let to_uw =
        |h_avg: f64| 0.5 * lib.vdd * lib.vdd * f_hz * (c_tot_ff * 1e-15) * (h_avg / 2.0) * 1e6;
    Ok(EntropyEstimate {
        h_in,
        h_out,
        h_avg_marculescu: h_avg_m,
        h_avg_nemani_najm: h_avg_nn,
        c_tot_ff,
        power_uw_marculescu: to_uw(h_avg_m),
        power_uw_nemani_najm: to_uw(h_avg_nn),
    })
}

/// An empirically precharacterized entropy transfer function for a
/// library module: `h_out = g(h_in)` sampled by sweeping biased input
/// streams and interpolated piecewise-linearly (§II-B1's "empirical
/// entropy propagation techniques for precharacterized library modules").
///
/// Once characterized, output entropies — and hence `h_avg` and power —
/// can be estimated for *new* input statistics without re-simulating the
/// module.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropyMap {
    /// Sampled (h_in, h_out) points, ascending in h_in.
    points: Vec<(f64, f64)>,
}

impl EntropyMap {
    /// Characterizes a module by driving it with iid biased streams across
    /// a sweep of input-bit probabilities and recording the mean output
    /// bit entropy at each input entropy.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic modules.
    pub fn characterize(
        netlist: &Netlist,
        cycles_per_point: usize,
        seed: u64,
    ) -> Result<EntropyMap, NetlistError> {
        let mut sim = ZeroDelaySim::new(netlist)?;
        let mut points = Vec::new();
        for (i, &p) in [0.5, 0.6, 0.7, 0.8, 0.9, 0.96, 0.99].iter().enumerate() {
            let vectors: Vec<Vec<bool>> =
                hlpower_netlist::streams::biased(seed + i as u64, netlist.input_count(), p)
                    .take(cycles_per_point)
                    .collect();
            let mut out_vectors = Vec::with_capacity(vectors.len());
            for v in &vectors {
                sim.step(v)?;
                out_vectors.push(sim.output_values());
            }
            let h_in = mean_bit_entropy(&StreamStats::collect(&vectors));
            let h_out = mean_bit_entropy(&StreamStats::collect(&out_vectors));
            points.push((h_in, h_out));
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite entropies"));
        Ok(EntropyMap { points })
    }

    /// Predicted output bit entropy for a given input bit entropy
    /// (piecewise-linear interpolation, clamped at the sampled range).
    pub fn predict(&self, h_in: f64) -> f64 {
        let pts = &self.points;
        if pts.is_empty() {
            return 0.0;
        }
        if h_in <= pts[0].0 {
            return pts[0].1;
        }
        if h_in >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            if h_in >= w[0].0 && h_in <= w[1].0 {
                let t = (h_in - w[0].0) / (w[1].0 - w[0].0).max(1e-12);
                return w[0].1 + t * (w[1].1 - w[0].1);
            }
        }
        pts[pts.len() - 1].1
    }

    /// The sampled characterization points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower_netlist::{gen, streams};

    #[test]
    fn binary_entropy_extremes() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(binary_entropy(0.1) < binary_entropy(0.3));
    }

    #[test]
    fn bit_entropy_upper_bounds_word_entropy_per_bit() {
        // Correlated bits: word entropy strictly below the independence
        // bound.
        let vectors: Vec<Vec<bool>> =
            (0..512).map(|i| vec![i % 2 == 0, i % 2 == 0, i % 4 < 2]).collect();
        let stats = StreamStats::collect(&vectors);
        let bit_h_total: f64 = stats.bit_probs.iter().map(|&p| binary_entropy(p)).sum();
        let word_h = word_entropy(&vectors);
        assert!(word_h <= bit_h_total + 1e-9, "{word_h} vs {bit_h_total}");
        assert!(word_h < bit_h_total - 0.5, "correlation should show");
    }

    #[test]
    fn switching_bounded_by_half_entropy_random_stream() {
        // For an iid stream with p=0.9: activity 2p(1-p)=0.18, entropy
        // h(0.9)=0.469, bound h/2 = 0.234 >= 0.18.
        let vectors: Vec<Vec<bool>> = streams::biased(3, 16, 0.9).take(4000).collect();
        let s = StreamStats::collect(&vectors);
        assert!(s.mean_activity() <= mean_bit_entropy(&s) / 2.0 + 0.01);
    }

    #[test]
    fn marculescu_degenerate_case() {
        let h = marculescu_avg_entropy(8, 8, 0.9, 0.9);
        assert!((h - 0.9).abs() < 1e-9);
    }

    #[test]
    fn marculescu_interpolates_between_entropies() {
        let h = marculescu_avg_entropy(16, 4, 1.0, 0.3);
        assert!(h > 0.3 && h < 1.0, "h = {h}");
    }

    #[test]
    fn cheng_agrawal_grows_exponentially() {
        assert!(cheng_agrawal_ctot(16, 8, 0.9) > 100.0 * cheng_agrawal_ctot(8, 8, 0.9));
    }

    #[test]
    fn entropy_estimate_tracks_simulated_power() {
        // The headline §II-B1 check: the entropy estimate lands within a
        // small factor of gate-level simulation on an adder.
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        let lib = Library::default();
        let est =
            entropy_power_estimate(&nl, &lib, streams::random(5, nl.input_count()).take(3000))
                .unwrap();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let act = sim.run(streams::random(5, nl.input_count()).take(3000)).expect("width matches");
        let truth = act.power(&nl, &lib).net_power_uw;
        for est_p in [est.power_uw_marculescu, est.power_uw_nemani_najm] {
            let ratio = est_p / truth;
            assert!((0.2..5.0).contains(&ratio), "ratio {ratio} (est {est_p}, truth {truth})");
        }
    }

    #[test]
    fn low_entropy_stream_lowers_estimate() {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        let lib = Library::default();
        let hi = entropy_power_estimate(&nl, &lib, streams::random(1, 16).take(2000)).unwrap();
        let lo =
            entropy_power_estimate(&nl, &lib, streams::biased(1, 16, 0.97).take(2000)).unwrap();
        assert!(lo.power_uw_marculescu < hi.power_uw_marculescu);
        assert!(lo.h_in < hi.h_in);
    }

    #[test]
    fn ferrandi_model_fits_circuit_family() {
        let lib = Library::default();
        let mut family = Vec::new();
        for bits in 2..7usize {
            let mut nl = Netlist::new();
            let a = nl.input_bus("a", bits);
            let b = nl.input_bus("b", bits);
            let c0 = nl.constant(false);
            let s = gen::ripple_adder(&mut nl, &a, &b, c0);
            nl.output_bus("s", &s);
            family.push(nl);
        }
        let with_h: Vec<(&Netlist, f64)> = family.iter().map(|nl| (nl, 0.95)).collect();
        let model = FerrandiModel::fit(&with_h, &lib).unwrap();
        // The fitted model should predict the family's capacitances with
        // bounded relative error.
        for nl in &family {
            let (m, roots) = build_output_bdds(nl).unwrap();
            let nodes = m.node_count_many(&roots);
            let pred = model.predict(nl.input_count(), nl.outputs().len(), nodes, 0.95);
            let actual: f64 = nl.load_caps_ff(&lib).iter().sum();
            let rel = (pred - actual).abs() / actual;
            assert!(rel < 0.35, "rel {rel} (pred {pred:.0}, actual {actual:.0})");
        }
    }

    #[test]
    fn entropy_map_predicts_unseen_bias() {
        // Characterize an adder, then predict h_out for a bias not in the
        // sweep and compare with direct simulation.
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 6);
        let b = nl.input_bus("b", 6);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        let map = EntropyMap::characterize(&nl, 3000, 1).unwrap();
        assert!(map.points().len() >= 5);
        // Probe bias p = 0.75 (between sweep points 0.7 and 0.8).
        let probe: Vec<Vec<bool>> = streams::biased(99, 12, 0.75).take(4000).collect();
        let mut sim = ZeroDelaySim::new(&nl).unwrap();
        let mut outs = Vec::new();
        for v in &probe {
            sim.step(v).unwrap();
            outs.push(sim.output_values());
        }
        let h_in = mean_bit_entropy(&StreamStats::collect(&probe));
        let h_out_true = mean_bit_entropy(&StreamStats::collect(&outs));
        let h_out_pred = map.predict(h_in);
        assert!(
            (h_out_pred - h_out_true).abs() < 0.05,
            "pred {h_out_pred:.3} vs true {h_out_true:.3}"
        );
    }

    #[test]
    fn entropy_map_is_monotone_for_adders() {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 5);
        let b = nl.input_bus("b", 5);
        let c0 = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &a, &b, c0);
        nl.output_bus("s", &s);
        let map = EntropyMap::characterize(&nl, 2000, 2).unwrap();
        // Higher input entropy never reduces the adder's output entropy.
        for w in map.points().windows(2) {
            assert!(w[1].1 >= w[0].1 - 0.03, "{:?}", map.points());
        }
        // Clamping beyond the sampled range.
        assert_eq!(map.predict(-1.0), map.points()[0].1);
        assert_eq!(map.predict(99.0), map.points()[map.points().len() - 1].1);
    }

    #[test]
    fn empty_stream_is_error() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        nl.set_output("y", a);
        let lib = Library::default();
        let err = entropy_power_estimate(&nl, &lib, Vec::<Vec<bool>>::new());
        assert!(matches!(err, Err(NetlistError::EmptyStream)));
    }
}
