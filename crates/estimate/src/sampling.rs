//! Sampling-based co-simulation macro-modeling (survey §II-C2):
//! census, sampler, and adaptive (ratio-estimator) macro-modeling.
//!
//! A behavioral simulation feeds a module; a power co-simulator evaluates
//! its macro-model either on every cycle (*census*), on a pre-selected
//! random sample of cycles (*sampler*, Hsieh et al.), or with a ratio
//! regression estimator that calibrates the macro-model against a small
//! number of true gate-level-simulated cycles (*adaptive*). Costs are
//! reported as work units so the survey's ~50x sampler speedup and the
//! census-vs-adaptive bias numbers can be reproduced.
//!
//! The gate-level reference traces consumed here come from
//! [`ModuleHarness::trace`], which runs combinational modules on the
//! time-packed 64-cycle [`hlpower_netlist::BlockSim64`] kernel; the
//! records (and thus every co-simulation result) are bit-identical to the
//! scalar simulator's, just cheaper to produce.

use hlpower_obs::metrics as obs;
use hlpower_rng::{par, Rng};

use crate::macromodel::{CycleRecord, MacroModelError, ModuleHarness, TrainedMacroModel};
use crate::stats::mean;

/// Evaluates the macro-model over every record, sharded across the worker
/// pool in contiguous slices. Slicing only changes *where* each
/// prediction is computed, never its value or its position, so the
/// returned vector is identical for any thread count.
fn predict_all(model: &TrainedMacroModel, records: &[CycleRecord]) -> Vec<f64> {
    obs::EST_MACRO_PREDICTIONS.add(records.len() as u64);
    par::map_slices(par::num_threads(), records, |slice| {
        slice.iter().map(|r| model.predict_cycle_fj(r)).collect()
    })
}

/// The co-simulation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CosimStrategy {
    /// Evaluate the macro-model every cycle.
    Census,
    /// Evaluate only on `samples` pre-selected groups of at least 30
    /// cycles (to keep sample means near-normal).
    Sampler {
        /// Number of sample groups.
        groups: usize,
        /// Cycles per group (>= 30 per the survey's normality note).
        group_size: usize,
    },
    /// Census macro-modeling plus a ratio estimator calibrated on
    /// `gate_cycles` gate-level-simulated cycles.
    Adaptive {
        /// Cycles simulated at gate level for calibration.
        gate_cycles: usize,
    },
}

/// Result of one co-simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosimResult {
    /// Estimated mean energy per cycle, in femtojoules.
    pub estimate_fj: f64,
    /// True gate-level mean energy per cycle, in femtojoules.
    pub reference_fj: f64,
    /// Macro-model evaluations performed.
    pub model_evals: u64,
    /// Gate-level cycles simulated (the expensive operation).
    pub gate_cycles: u64,
    /// Relative estimation error.
    pub error: f64,
}

impl CosimResult {
    /// Work units: macro-model evaluations plus a 20x premium for each
    /// gate-level cycle (gate simulation is orders of magnitude slower
    /// than evaluating a macro-model equation).
    pub fn cost(&self) -> f64 {
        self.model_evals as f64 + 20.0 * self.gate_cycles as f64
    }
}

/// Runs a power co-simulation of `harness` under `records` (a full
/// behavioral trace with gate-level reference energies; the reference is
/// only *consulted* where the strategy legitimately simulates at gate
/// level).
///
/// # Errors
///
/// Returns [`MacroModelError::NotEnoughData`] if the trace is shorter
/// than the strategy's sampling requirements.
pub fn cosimulate(
    model: &TrainedMacroModel,
    records: &[CycleRecord],
    strategy: CosimStrategy,
    seed: u64,
) -> Result<CosimResult, MacroModelError> {
    if records.is_empty() {
        return Err(MacroModelError::NotEnoughData { cycles: 0 });
    }
    obs::EST_COSIM_RUNS.inc();
    let _span =
        hlpower_obs::trace::span_dyn("estimate", || format!("estimate.cosim:{}cyc", records.len()));
    let reference = mean(&records.iter().map(|r| r.energy_fj).collect::<Vec<_>>());
    let (estimate, model_evals, gate_cycles) = match strategy {
        CosimStrategy::Census => {
            let preds = predict_all(model, records);
            (mean(&preds), records.len() as u64, 0)
        }
        CosimStrategy::Sampler { groups, group_size } => {
            let need = groups * group_size;
            if records.len() < need {
                return Err(MacroModelError::NotEnoughData { cycles: records.len() });
            }
            // Group start positions are drawn serially from the seed (so
            // the sample is independent of parallelism); the groups are
            // then evaluated across the worker pool and their means
            // reassembled in draw order.
            obs::EST_SAMPLER_GROUPS.add(groups as u64);
            let mut rng = Rng::seed_from_u64(seed);
            let starts: Vec<usize> =
                (0..groups).map(|_| rng.gen_range(0..records.len() - group_size)).collect();
            let group_means = par::map(&starts, |_, &start| {
                let preds: Vec<f64> = records[start..start + group_size]
                    .iter()
                    .map(|r| model.predict_cycle_fj(r))
                    .collect();
                mean(&preds)
            });
            let evals = (groups * group_size) as u64;
            (mean(&group_means), evals, 0)
        }
        CosimStrategy::Adaptive { gate_cycles } => {
            if records.len() < gate_cycles || gate_cycles == 0 {
                return Err(MacroModelError::NotEnoughData { cycles: records.len() });
            }
            let mut rng = Rng::seed_from_u64(seed);
            // Calibration subsample: the gate-level power is *measured* on
            // these cycles (they come from the reference trace, which is
            // exactly what a gate-level simulator would produce). The
            // classic ratio estimator divides the summed measurements by
            // the summed predictions, which has lower variance than the
            // mean of per-cycle ratios.
            let mut true_sum = 0.0;
            let mut pred_sum = 0.0;
            for _ in 0..gate_cycles {
                let i = rng.gen_range(0..records.len());
                true_sum += records[i].energy_fj;
                pred_sum += model.predict_cycle_fj(&records[i]);
            }
            let r = true_sum / pred_sum.max(1e-9);
            let preds = predict_all(model, records);
            (r * mean(&preds), records.len() as u64, gate_cycles as u64)
        }
    };
    Ok(CosimResult {
        estimate_fj: estimate,
        reference_fj: reference,
        model_evals,
        gate_cycles,
        error: (estimate - reference).abs() / reference.max(1e-12),
    })
}

/// Convenience: full §II-C2 experiment on one module. The model is
/// trained on `training`, then co-simulated over `application` with all
/// three strategies; returns `(census, sampler, adaptive)`.
///
/// # Errors
///
/// Propagates harness and data-size errors.
pub fn cosim_experiment(
    harness: &ModuleHarness,
    model: &TrainedMacroModel,
    application: impl IntoIterator<Item = Vec<bool>>,
    seed: u64,
) -> Result<(CosimResult, CosimResult, CosimResult), MacroModelError> {
    let records = harness.trace(application)?;
    let census = cosimulate(model, &records, CosimStrategy::Census, seed)?;
    let groups = (records.len() / 1500).max(4);
    let sampler =
        cosimulate(model, &records, CosimStrategy::Sampler { groups, group_size: 30 }, seed)?;
    let adaptive = cosimulate(model, &records, CosimStrategy::Adaptive { gate_cycles: 60 }, seed)?;
    Ok((census, sampler, adaptive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macromodel::MacroModelKind;
    use hlpower_netlist::{streams, Library};

    fn setup() -> (ModuleHarness, TrainedMacroModel, Vec<CycleRecord>) {
        let h = ModuleHarness::adder(8, Library::default());
        let train = h.trace(streams::random(1, 16).take(2000)).unwrap();
        let model = TrainedMacroModel::fit(MacroModelKind::InputOutput, &train).unwrap();
        let app = h.trace(streams::random(2, 16).take(6000)).unwrap();
        (h, model, app)
    }

    #[test]
    fn census_matches_reference_on_in_distribution_data() {
        let (_, model, app) = setup();
        let r = cosimulate(&model, &app, CosimStrategy::Census, 1).unwrap();
        assert!(r.error < 0.05, "{r:?}");
        assert_eq!(r.model_evals, app.len() as u64);
        assert_eq!(r.gate_cycles, 0);
    }

    #[test]
    fn sampler_is_much_cheaper_with_small_error() {
        let (_, model, app) = setup();
        let census = cosimulate(&model, &app, CosimStrategy::Census, 1).unwrap();
        let sampler =
            cosimulate(&model, &app, CosimStrategy::Sampler { groups: 4, group_size: 30 }, 7)
                .unwrap();
        let speedup = census.cost() / sampler.cost();
        assert!(speedup > 20.0, "speedup {speedup}");
        // Sampler vs census estimates agree within a few percent.
        let gap = (sampler.estimate_fj - census.estimate_fj).abs() / census.estimate_fj;
        assert!(gap < 0.08, "gap {gap}");
    }

    #[test]
    fn adaptive_removes_training_bias() {
        // Train on pseudorandom data, apply to correlated data: the static
        // model is biased; the ratio estimator fixes it.
        let h = ModuleHarness::adder(8, Library::default());
        let train = h.trace(streams::random(3, 16).take(2000)).unwrap();
        let model = TrainedMacroModel::fit(MacroModelKind::Pfa, &train).unwrap();
        let app = h.trace(streams::correlated(4, 16, 0.15).take(6000)).unwrap();
        let census = cosimulate(&model, &app, CosimStrategy::Census, 1).unwrap();
        let adaptive =
            cosimulate(&model, &app, CosimStrategy::Adaptive { gate_cycles: 400 }, 2).unwrap();
        assert!(census.error > 0.2, "census should be biased: {census:?}");
        assert!(adaptive.error < 0.10, "adaptive should fix it: {adaptive:?}");
    }

    #[test]
    fn strategies_validate_data_sizes() {
        let (_, model, app) = setup();
        assert!(cosimulate(
            &model,
            &app[..10],
            CosimStrategy::Sampler { groups: 5, group_size: 30 },
            1
        )
        .is_err());
        assert!(cosimulate(&model, &[], CosimStrategy::Census, 1).is_err());
    }

    #[test]
    fn experiment_wrapper_runs_all_three() {
        let h = ModuleHarness::adder(8, Library::default());
        let train = h.trace(streams::random(5, 16).take(2000)).unwrap();
        let model = TrainedMacroModel::fit(MacroModelKind::InputOutput, &train).unwrap();
        let (census, sampler, adaptive) =
            cosim_experiment(&h, &model, streams::random(6, 16).take(6000), 9).unwrap();
        assert!(census.cost() > sampler.cost());
        assert!(adaptive.gate_cycles > 0);
    }
}
