//! Shared statistics: least-squares regression, F tests, confidence
//! intervals, and bit-stream statistics.

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (0 for fewer than two points).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Normal-approximation confidence half-width of the mean at multiplier
/// `z`.
pub fn ci_half_width(xs: &[f64], z: f64) -> f64 {
    if xs.len() < 2 {
        return f64::INFINITY;
    }
    z * (variance(xs) / xs.len() as f64).sqrt()
}

/// Ordinary least squares: solves `min ||X b - y||` via the normal
/// equations with partial-pivot Gaussian elimination (plus a tiny ridge
/// for rank safety). `rows` are the feature vectors (all the same
/// length).
///
/// Returns the coefficient vector, or `None` when there is no data or the
/// rows are inconsistent in length.
pub fn least_squares(rows: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    if rows.is_empty() || rows.len() != y.len() {
        return None;
    }
    let p = rows[0].len();
    if p == 0 || rows.iter().any(|r| r.len() != p) {
        return None;
    }
    // Normal equations: (X'X + eps I) b = X'y.
    let mut a = vec![vec![0.0f64; p + 1]; p];
    for (r, &yi) in rows.iter().zip(y) {
        for i in 0..p {
            for j in 0..p {
                a[i][j] += r[i] * r[j];
            }
            a[i][p] += r[i] * yi;
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += 1e-9;
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..p {
        let pivot = (col..p)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite"))
            .expect("non-empty range");
        a.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-30 {
            return None;
        }
        for row in col + 1..p {
            let f = a[row][col] / diag;
            for k in col..=p {
                a[row][k] -= f * a[col][k];
            }
        }
    }
    let mut b = vec![0.0f64; p];
    for i in (0..p).rev() {
        let mut s = a[i][p];
        for j in i + 1..p {
            s -= a[i][j] * b[j];
        }
        b[i] = s / a[i][i];
    }
    Some(b)
}

/// Residual sum of squares of a fitted linear model.
pub fn rss(rows: &[Vec<f64>], y: &[f64], coefs: &[f64]) -> f64 {
    rows.iter()
        .zip(y)
        .map(|(r, &yi)| {
            let pred: f64 = r.iter().zip(coefs).map(|(x, c)| x * c).sum();
            (yi - pred).powi(2)
        })
        .sum()
}

/// Partial F statistic for adding `extra` parameters: `F = ((rss_small -
/// rss_big) / extra) / (rss_big / (n - p_big))`. Large values mean the
/// extra variables explain real variance (the `F*` test of the Wu
/// macro-model construction).
pub fn f_statistic(rss_small: f64, rss_big: f64, extra: usize, n: usize, p_big: usize) -> f64 {
    if n <= p_big || extra == 0 {
        return 0.0;
    }
    let denom = rss_big / (n - p_big) as f64;
    if denom <= 0.0 {
        return f64::INFINITY;
    }
    ((rss_small - rss_big) / extra as f64) / denom
}

/// Forward stepwise variable selection with an F-to-enter threshold.
/// Returns the selected column indices (always at least one if any column
/// helps; an intercept column should be included by the caller).
pub fn stepwise_select(rows: &[Vec<f64>], y: &[f64], f_enter: f64) -> Vec<usize> {
    let p = rows.first().map_or(0, |r| r.len());
    let n = rows.len();
    let mut selected: Vec<usize> = Vec::new();
    let mut current_rss = y.iter().map(|v| v * v).sum::<f64>();
    loop {
        let mut best: Option<(f64, usize, f64)> = None; // (F, col, new_rss)
        for col in 0..p {
            if selected.contains(&col) {
                continue;
            }
            let mut cols = selected.clone();
            cols.push(col);
            let sub: Vec<Vec<f64>> =
                rows.iter().map(|r| cols.iter().map(|&c| r[c]).collect()).collect();
            let Some(coefs) = least_squares(&sub, y) else { continue };
            let new_rss = rss(&sub, y, &coefs);
            let f = f_statistic(current_rss, new_rss, 1, n, cols.len());
            if best.as_ref().is_none_or(|(bf, _, _)| f > *bf) {
                best = Some((f, col, new_rss));
            }
        }
        match best {
            Some((f, col, new_rss)) if f > f_enter => {
                selected.push(col);
                current_rss = new_rss;
            }
            _ => break,
        }
    }
    selected
}

/// Per-bit signal statistics of a bit-vector stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Probability of each bit being 1.
    pub bit_probs: Vec<f64>,
    /// Toggle probability of each bit.
    pub bit_activities: Vec<f64>,
    /// Number of vectors observed.
    pub samples: usize,
}

impl StreamStats {
    /// Collects statistics from a stream of equal-width vectors.
    ///
    /// # Panics
    ///
    /// Panics if vectors disagree in width.
    pub fn collect<'a>(vectors: impl IntoIterator<Item = &'a Vec<bool>>) -> StreamStats {
        let mut it = vectors.into_iter();
        let Some(first) = it.next() else {
            return StreamStats { bit_probs: Vec::new(), bit_activities: Vec::new(), samples: 0 };
        };
        let w = first.len();
        let mut ones = vec![0u64; w];
        let mut toggles = vec![0u64; w];
        let mut prev = first.clone();
        let mut n = 1usize;
        for (i, &b) in first.iter().enumerate() {
            ones[i] += b as u64;
        }
        for v in it {
            assert_eq!(v.len(), w, "stream width changed");
            for i in 0..w {
                ones[i] += v[i] as u64;
                toggles[i] += (v[i] != prev[i]) as u64;
            }
            prev = v.clone();
            n += 1;
        }
        StreamStats {
            bit_probs: ones.iter().map(|&o| o as f64 / n as f64).collect(),
            bit_activities: toggles
                .iter()
                .map(|&t| if n > 1 { t as f64 / (n - 1) as f64 } else { 0.0 })
                .collect(),
            samples: n,
        }
    }

    /// Mean bit probability.
    pub fn mean_prob(&self) -> f64 {
        mean(&self.bit_probs)
    }

    /// Mean bit activity (toggle probability).
    pub fn mean_activity(&self) -> f64 {
        mean(&self.bit_activities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn least_squares_recovers_exact_coefficients() {
        // y = 2 x0 - 3 x1 + 1 (intercept as third column).
        let rows: Vec<Vec<f64>> =
            (0..20).map(|i| vec![i as f64, (i * i % 7) as f64, 1.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 1.0).collect();
        let b = least_squares(&rows, &y).unwrap();
        assert!((b[0] - 2.0).abs() < 1e-6);
        assert!((b[1] + 3.0).abs() < 1e-6);
        assert!((b[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn least_squares_rejects_bad_shapes() {
        assert!(least_squares(&[], &[]).is_none());
        assert!(least_squares(&[vec![1.0]], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn f_statistic_flags_useful_variables() {
        // y depends strongly on x0, not on noise column x1.
        let rows: Vec<Vec<f64>> =
            (0..50).map(|i| vec![i as f64, ((i * 37) % 11) as f64, 1.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 5.0 * r[0] + 0.5).collect();
        let selected = stepwise_select(&rows, &y, 4.0);
        assert!(selected.contains(&0));
        assert!(!selected.contains(&1));
    }

    #[test]
    fn stream_stats_on_alternating_bits() {
        let vectors: Vec<Vec<bool>> = (0..100).map(|i| vec![i % 2 == 0, true]).collect();
        let s = StreamStats::collect(&vectors);
        assert!((s.bit_probs[0] - 0.5).abs() < 0.01);
        assert!((s.bit_activities[0] - 1.0).abs() < 1e-12);
        assert_eq!(s.bit_activities[1], 0.0);
        assert_eq!(s.bit_probs[1], 1.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small: Vec<f64> = (0..10).map(|i| (i % 3) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 3) as f64).collect();
        assert!(ci_half_width(&large, 1.96) < ci_half_width(&small, 1.96));
    }
}
