//! Criterion bench for §III-G: codec throughput on each stream family.

use criterion::{criterion_group, criterion_main, Criterion};
use hlpower::optimize::buscode::*;

fn bench(c: &mut Criterion) {
    let width = 20;
    let seq = traces::sequential(0x1000, 4000);
    let rnd = traces::random(1, width, 4000);
    let emb = traces::embedded(3, 4000);
    let beach = BeachCode::train(width, &emb[..2000], 8);
    let mut g = c.benchmark_group("buscode");
    g.sample_size(20);
    g.bench_function("bus_invert_random", |b| {
        b.iter(|| {
            transitions_per_word(
                Box::new(BusInvert::new(width)),
                Box::new(BusInvert::new(width)),
                std::hint::black_box(&rnd),
            )
        })
    });
    g.bench_function("t0_sequential", |b| {
        b.iter(|| {
            transitions_per_word(
                Box::new(T0Code::new(width)),
                Box::new(T0Code::new(width)),
                std::hint::black_box(&seq),
            )
        })
    });
    g.bench_function("working_zone_interleaved", |b| {
        let ila = traces::interleaved_arrays(2, 3, 4000);
        b.iter(|| {
            transitions_per_word(
                Box::new(WorkingZone::new(width, 4, 10)),
                Box::new(WorkingZone::new(width, 4, 10)),
                std::hint::black_box(&ila),
            )
        })
    });
    g.bench_function("beach_embedded", |b| {
        b.iter(|| {
            transitions_per_word(
                Box::new(beach.clone()),
                Box::new(beach.clone()),
                std::hint::black_box(&emb),
            )
        })
    });
    g.bench_function("beach_training", |b| {
        b.iter(|| BeachCode::train(width, std::hint::black_box(&emb[..2000]), 8))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
