//! Timing bench for §III-G: codec throughput on each stream family.

use hlpower::optimize::buscode::*;
use std::hint::black_box;

fn main() {
    let width = 20;
    let seq = traces::sequential(0x1000, 4000);
    let rnd = traces::random(1, width, 4000);
    let emb = traces::embedded(3, 4000);
    let beach = BeachCode::train(width, &emb[..2000], 8);
    let mut g = hlpower_bench::timing::group("buscode");
    g.bench_function("bus_invert_random", || {
        transitions_per_word(
            Box::new(BusInvert::new(width)),
            Box::new(BusInvert::new(width)),
            black_box(&rnd),
        )
    });
    g.bench_function("t0_sequential", || {
        transitions_per_word(
            Box::new(T0Code::new(width)),
            Box::new(T0Code::new(width)),
            black_box(&seq),
        )
    });
    let ila = traces::interleaved_arrays(2, 3, 4000);
    g.bench_function("working_zone_interleaved", || {
        transitions_per_word(
            Box::new(WorkingZone::new(width, 4, 10)),
            Box::new(WorkingZone::new(width, 4, 10)),
            black_box(&ila),
        )
    });
    g.bench_function("beach_embedded", || {
        transitions_per_word(Box::new(beach.clone()), Box::new(beach.clone()), black_box(&emb))
    });
    g.bench_function("beach_training", || BeachCode::train(width, black_box(&emb[..2000]), 8));
    g.finish();
}
