//! Timing bench for the Table I flow: RTL capacitance estimation of the
//! FIR before/after constant-multiplication conversion.

use hlpower::cdfg::{rtl, transform};
use std::hint::black_box;

fn main() {
    let costs = rtl::RtlCosts::default();
    let taps = [9i64, 23, 51, 89, 119, 131, 119, 89, 51, 23, 9];
    let before = transform::fir_cdfg(&taps, 16);
    let after = transform::strength_reduce_const_mults(&before);
    let mut g = hlpower_bench::timing::group("table1");
    g.bench_function("estimate_before", || rtl::quick_estimate(black_box(&before), 1, &costs));
    g.bench_function("estimate_after", || rtl::quick_estimate(black_box(&after), 1, &costs));
    g.bench_function("strength_reduce", || {
        transform::strength_reduce_const_mults(black_box(&before))
    });
    g.finish();
}
