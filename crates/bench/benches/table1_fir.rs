//! Criterion bench for the Table I flow: RTL capacitance estimation of the
//! FIR before/after constant-multiplication conversion.

use criterion::{criterion_group, criterion_main, Criterion};
use hlpower::cdfg::{rtl, transform};

fn bench(c: &mut Criterion) {
    let costs = rtl::RtlCosts::default();
    let taps = [9i64, 23, 51, 89, 119, 131, 119, 89, 51, 23, 9];
    let before = transform::fir_cdfg(&taps, 16);
    let after = transform::strength_reduce_const_mults(&before);
    let mut g = c.benchmark_group("table1");
    g.sample_size(20);
    g.bench_function("estimate_before", |b| {
        b.iter(|| rtl::quick_estimate(std::hint::black_box(&before), 1, &costs))
    });
    g.bench_function("estimate_after", |b| {
        b.iter(|| rtl::quick_estimate(std::hint::black_box(&after), 1, &costs))
    });
    g.bench_function("strength_reduce", |b| {
        b.iter(|| transform::strength_reduce_const_mults(std::hint::black_box(&before)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
