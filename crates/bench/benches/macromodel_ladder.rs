//! Timing bench for §II-C1: macro-model evaluation vs gate-level
//! simulation per cycle (the evaluation-overhead axis of the ladder).

use hlpower::estimate::{MacroModelKind, ModuleHarness, TrainedMacroModel};
use hlpower::netlist::{streams, Library};
use std::hint::black_box;

fn main() {
    let h = ModuleHarness::adder(8, Library::default());
    let records = h.trace(streams::random(1, 16).take(1000)).expect("widths");
    let models: Vec<(MacroModelKind, TrainedMacroModel)> = [
        MacroModelKind::Pfa,
        MacroModelKind::Bitwise,
        MacroModelKind::InputOutput,
        MacroModelKind::Table3d,
    ]
    .into_iter()
    .map(|k| (k, TrainedMacroModel::fit(k, &records).expect("data")))
    .collect();
    let mut g = hlpower_bench::timing::group("macromodel");
    for (kind, model) in &models {
        g.bench_function(&format!("predict_{kind:?}"), || {
            records.iter().map(|r| model.predict_cycle_fj(black_box(r))).sum::<f64>()
        });
    }
    g.bench_function("gate_level_trace_1000", || {
        h.trace(streams::random(2, 16).take(1000)).expect("widths")
    });
    g.finish();
}
