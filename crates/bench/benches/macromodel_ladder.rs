//! Criterion bench for §II-C1: macro-model evaluation vs gate-level
//! simulation per cycle (the evaluation-overhead axis of the ladder).

use criterion::{criterion_group, criterion_main, Criterion};
use hlpower::estimate::{MacroModelKind, ModuleHarness, TrainedMacroModel};
use hlpower::netlist::{streams, Library};

fn bench(c: &mut Criterion) {
    let h = ModuleHarness::adder(8, Library::default());
    let records = h.trace(streams::random(1, 16).take(1000)).expect("widths");
    let models: Vec<(MacroModelKind, TrainedMacroModel)> = [
        MacroModelKind::Pfa,
        MacroModelKind::Bitwise,
        MacroModelKind::InputOutput,
        MacroModelKind::Table3d,
    ]
    .into_iter()
    .map(|k| (k, TrainedMacroModel::fit(k, &records).expect("data")))
    .collect();
    let mut g = c.benchmark_group("macromodel");
    g.sample_size(20);
    for (kind, model) in &models {
        g.bench_function(format!("predict_{kind:?}"), |b| {
            b.iter(|| {
                records
                    .iter()
                    .map(|r| model.predict_cycle_fj(std::hint::black_box(r)))
                    .sum::<f64>()
            })
        });
    }
    g.bench_function("gate_level_trace_1000", |b| {
        b.iter(|| h.trace(streams::random(2, 16).take(1000)).expect("widths"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
