//! Timing bench for §III-I: precomputation analysis and guarded-
//! evaluation candidate search.

use hlpower::netlist::Library;
use hlpower::optimize::{guard, precompute};
use std::hint::black_box;

fn main() {
    let lib = Library::default();
    let block = precompute::comparator_block(8);
    let mux = guard::guarded_mux_example(8);
    let mut g = hlpower_bench::timing::group("shutdown_logic");
    g.bench_function("precompute_rank_subsets_k2", || {
        precompute::rank_subsets(black_box(&block), 2).expect("acyclic")
    });
    g.bench_function("guard_find_candidates", || {
        guard::find_candidates(black_box(&mux), &lib, 6).expect("acyclic")
    });
    g.finish();
}
