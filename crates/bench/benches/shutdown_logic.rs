//! Criterion bench for §III-I: precomputation analysis and guarded-
//! evaluation candidate search.

use criterion::{criterion_group, criterion_main, Criterion};
use hlpower::netlist::Library;
use hlpower::optimize::{guard, precompute};

fn bench(c: &mut Criterion) {
    let lib = Library::default();
    let block = precompute::comparator_block(8);
    let mux = guard::guarded_mux_example(8);
    let mut g = c.benchmark_group("shutdown_logic");
    g.sample_size(10);
    g.bench_function("precompute_rank_subsets_k2", |b| {
        b.iter(|| precompute::rank_subsets(std::hint::black_box(&block), 2).expect("acyclic"))
    });
    g.bench_function("guard_find_candidates", |b| {
        b.iter(|| guard::find_candidates(std::hint::black_box(&mux), &lib, 6).expect("acyclic"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
