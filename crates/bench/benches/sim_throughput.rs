//! Scalar-vs-packed simulation throughput experiment.
//!
//! Runs the seeded Monte-Carlo power engine on a 16-bit array multiplier
//! twice over the exact same fixed workload — once with the scalar
//! [`McKernel::Scalar`] kernel and once with the bit-parallel 64-lane
//! [`McKernel::Packed64`] kernel — verifies that both produce the same
//! power estimate to the bit, and reports wall time, effective gate
//! evaluations per second, and the packed/scalar speedup.
//!
//! The result is archived as `results/BENCH_sim.json` (at the workspace
//! root, like the experiment dumps). Exits non-zero if the packed kernel
//! is not faster than the scalar one, so CI catches a throughput
//! regression in the compiled kernel.
//!
//! Default is a quick smoke workload; `HLPOWER_BENCH_FULL=1` (or
//! `--features criterion`) runs the longer measurement used for the
//! recorded numbers.

use std::hint::black_box;
use std::time::Instant;

use hlpower::netlist::{
    gen, monte_carlo_power_seeded_threads_kernel, streams, Library, McKernel, MonteCarloOptions,
    MonteCarloResult, Netlist,
};
use hlpower_bench::json;

/// Where the dump lands: the workspace-root `results/` directory
/// (benches run with the package directory as cwd, so a relative
/// `results/` would end up inside `crates/bench/`).
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_sim.json");

fn full_mode() -> bool {
    cfg!(feature = "criterion") || std::env::var_os("HLPOWER_BENCH_FULL").is_some()
}

fn mult16() -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", 16);
    let b = nl.input_bus("b", 16);
    let p = gen::array_multiplier(&mut nl, &a, &b);
    nl.output_bus("p", &p);
    nl
}

/// Runs the fixed Monte-Carlo workload once with `kernel` and returns
/// `(result, seconds)`. `target_relative_error: 0.0` disables the
/// stopping rule, so both kernels simulate exactly the same
/// `max_batches * batch_cycles` lane-cycles.
fn run(
    nl: &Netlist,
    lib: &Library,
    opts: &MonteCarloOptions,
    kernel: McKernel,
) -> (MonteCarloResult, f64) {
    let w = nl.input_count();
    let t = Instant::now();
    let result = monte_carlo_power_seeded_threads_kernel(
        nl,
        lib,
        |rng| streams::random_rng(rng, w),
        2024,
        opts,
        1,
        kernel,
    )
    .expect("acyclic multiplier");
    let seconds = t.elapsed().as_secs_f64();
    (black_box(result), seconds)
}

fn main() {
    let full = full_mode();
    let (batch_cycles, max_batches, reps) = if full { (200, 256, 5) } else { (50, 128, 3) };
    let opts = MonteCarloOptions {
        batch_cycles,
        max_batches,
        target_relative_error: 0.0, // fixed workload: never stop early
        z: 1.96,
    };
    let nl = mult16();
    let lib = Library::default();
    // One effective gate evaluation = one gate on one cycle of one batch,
    // identical for both kernels by construction (fixed workload).
    let gate_evals = (nl.gate_count() * batch_cycles * max_batches) as f64;

    println!(
        "sim_throughput: 16-bit array multiplier, {} gates, {} batches x {} cycles, {} reps ({} mode)",
        nl.gate_count(),
        max_batches,
        batch_cycles,
        reps,
        if full { "full" } else { "smoke" }
    );

    let mut scalar_s = f64::INFINITY;
    let mut packed_s = f64::INFINITY;
    let mut scalar_res = None;
    let mut packed_res = None;
    for _ in 0..reps {
        let (r, s) = run(&nl, &lib, &opts, McKernel::Scalar);
        scalar_s = scalar_s.min(s);
        scalar_res = Some(r);
        let (r, s) = run(&nl, &lib, &opts, McKernel::Packed64);
        packed_s = packed_s.min(s);
        packed_res = Some(r);
    }
    let (scalar_res, packed_res) = (scalar_res.unwrap(), packed_res.unwrap());

    // The determinism contract: the packed kernel is a reorganization of
    // the same computation, so the estimates agree to the last bit.
    assert_eq!(
        scalar_res.power_uw.to_bits(),
        packed_res.power_uw.to_bits(),
        "packed kernel diverged from scalar kernel: {} vs {} uW",
        scalar_res.power_uw,
        packed_res.power_uw
    );
    assert_eq!(scalar_res.batches, packed_res.batches);
    assert_eq!(scalar_res.cycles, packed_res.cycles);

    let speedup = scalar_s / packed_s;
    println!(
        "  scalar   {:>10.1} ms  {:>12.3e} gate-evals/s",
        scalar_s * 1e3,
        gate_evals / scalar_s
    );
    println!(
        "  packed64 {:>10.1} ms  {:>12.3e} gate-evals/s",
        packed_s * 1e3,
        gate_evals / packed_s
    );
    println!("  speedup  {speedup:>10.2}x  (power {:.3} uW, bit-identical)", packed_res.power_uw);

    let report = json!({
        "id": "BENCH_sim",
        "title": "Scalar vs bit-parallel 64-lane Monte-Carlo throughput",
        "mode": if full { "full" } else { "smoke" },
        "circuit": {
            "name": "array_multiplier_16",
            "gates": nl.gate_count() as i64,
            "inputs": nl.input_count() as i64,
        },
        "workload": {
            "batch_cycles": batch_cycles as i64,
            "max_batches": max_batches as i64,
            "threads": 1,
            "seed": 2024,
            "reps": reps as i64,
        },
        "scalar": {
            "seconds": scalar_s,
            "gate_evals_per_sec": gate_evals / scalar_s,
        },
        "packed64": {
            "seconds": packed_s,
            "gate_evals_per_sec": gate_evals / packed_s,
        },
        "speedup": speedup,
        "power_uw": packed_res.power_uw,
        "results_bit_identical": true,
    });
    if let Err(e) = std::fs::write(OUT_PATH, report.pretty() + "\n") {
        eprintln!("warning: could not write {OUT_PATH}: {e}");
    } else {
        println!("  dump written to results/BENCH_sim.json");
    }

    assert!(
        speedup > 1.0,
        "packed 64-lane kernel ({packed_s:.3}s) is not faster than scalar ({scalar_s:.3}s)"
    );
}
