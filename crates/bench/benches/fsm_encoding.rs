//! Criterion bench for §III-H: encoding search cost and quality metric.

use criterion::{criterion_group, criterion_main, Criterion};
use hlpower::fsm::{generators, Encoding, MarkovAnalysis};

fn bench(c: &mut Criterion) {
    let stg = generators::random_stg(2, 16, 2, 7);
    let markov = MarkovAnalysis::uniform(&stg);
    let binary = Encoding::binary(&stg);
    let mut g = c.benchmark_group("fsm_encoding");
    g.sample_size(10);
    g.bench_function("markov_analysis", |b| {
        b.iter(|| MarkovAnalysis::uniform(std::hint::black_box(&stg)))
    });
    g.bench_function("expected_switching", |b| {
        b.iter(|| markov.expected_switching(std::hint::black_box(&stg), &binary))
    });
    g.bench_function("low_power_reencode", |b| {
        b.iter(|| binary.re_encode(std::hint::black_box(&stg), &markov, 3))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
