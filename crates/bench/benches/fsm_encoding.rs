//! Timing bench for §III-H: encoding search cost and quality metric.

use hlpower::fsm::{generators, Encoding, MarkovAnalysis};
use std::hint::black_box;

fn main() {
    let stg = generators::random_stg(2, 16, 2, 7);
    let markov = MarkovAnalysis::uniform(&stg);
    let binary = Encoding::binary(&stg);
    let mut g = hlpower_bench::timing::group("fsm_encoding");
    g.bench_function("markov_analysis", || MarkovAnalysis::uniform(black_box(&stg)));
    g.bench_function("expected_switching", || markov.expected_switching(black_box(&stg), &binary));
    g.bench_function("low_power_reencode", || binary.re_encode(black_box(&stg), &markov, 3));
    g.finish();
}
