//! Wide-word kernel throughput experiment: 64 vs 256 vs 512 lanes.
//!
//! Runs the seeded Monte-Carlo power engine on a 16-bit array multiplier
//! over the exact same fixed workload with each packed kernel width
//! ([`McKernel::Packed64`], [`McKernel::Packed256`],
//! [`McKernel::Packed512`]), verifies that all three produce the same
//! power estimate to the bit (the scalar-vs-packed leg of that contract
//! is gated by `sim_throughput`), and reports wall time, effective gate
//! evaluations per second, and per-width speedups together with the
//! runtime-detected SIMD level the settle loop ran at.
//!
//! The result is archived as `results/BENCH_wide.json` (at the workspace
//! root, like the experiment dumps). Exits non-zero if the 256-lane
//! kernel is not faster than the 64-lane one on this workload, so CI
//! catches a regression in the wide-word generalization.
//!
//! Default is a quick smoke workload; `HLPOWER_BENCH_FULL=1` (or
//! `--features criterion`) runs the longer measurement used for the
//! recorded numbers.

use std::hint::black_box;
use std::time::Instant;

use hlpower::netlist::{
    gen, monte_carlo_power_seeded_threads_kernel, simd_level, streams, Library, McKernel,
    MonteCarloOptions, MonteCarloResult, Netlist,
};
use hlpower_bench::json;

/// Where the dump lands: the workspace-root `results/` directory
/// (benches run with the package directory as cwd, so a relative
/// `results/` would end up inside `crates/bench/`).
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_wide.json");

fn full_mode() -> bool {
    cfg!(feature = "criterion") || std::env::var_os("HLPOWER_BENCH_FULL").is_some()
}

fn mult16() -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", 16);
    let b = nl.input_bus("b", 16);
    let p = gen::array_multiplier(&mut nl, &a, &b);
    nl.output_bus("p", &p);
    nl
}

/// Runs the fixed Monte-Carlo workload once with `kernel` and returns
/// `(result, seconds)`. `target_relative_error: 0.0` disables the
/// stopping rule, so every width simulates exactly the same
/// `max_batches * batch_cycles` lane-cycles.
fn run(
    nl: &Netlist,
    lib: &Library,
    opts: &MonteCarloOptions,
    kernel: McKernel,
) -> (MonteCarloResult, f64) {
    let w = nl.input_count();
    let t = Instant::now();
    let result = monte_carlo_power_seeded_threads_kernel(
        nl,
        lib,
        |rng| streams::random_rng(rng, w),
        2026,
        opts,
        1,
        kernel,
    )
    .expect("acyclic multiplier");
    let seconds = t.elapsed().as_secs_f64();
    (black_box(result), seconds)
}

fn main() {
    let full = full_mode();
    let (batch_cycles, max_batches, reps) = if full { (100, 2048, 5) } else { (40, 1024, 3) };
    let opts = MonteCarloOptions {
        batch_cycles,
        max_batches,
        target_relative_error: 0.0, // fixed workload: never stop early
        z: 1.96,
    };
    let nl = mult16();
    let lib = Library::default();
    // One effective gate evaluation = one gate on one cycle of one batch,
    // identical at every width by construction (fixed workload).
    let gate_evals = (nl.gate_count() * batch_cycles * max_batches) as f64;

    println!(
        "wide_throughput: 16-bit array multiplier, {} gates, {} batches x {} cycles, {} reps \
         ({} mode, simd level {:?})",
        nl.gate_count(),
        max_batches,
        batch_cycles,
        reps,
        if full { "full" } else { "smoke" },
        simd_level(),
    );

    let widths = [
        ("packed64", McKernel::Packed64),
        ("packed256", McKernel::Packed256),
        ("packed512", McKernel::Packed512),
    ];
    let mut seconds = [f64::INFINITY; 3];
    let mut results: [Option<MonteCarloResult>; 3] = [None, None, None];
    for _ in 0..reps {
        for (i, &(_, kernel)) in widths.iter().enumerate() {
            let (r, s) = run(&nl, &lib, &opts, kernel);
            seconds[i] = seconds[i].min(s);
            results[i] = Some(r);
        }
    }
    let results: Vec<MonteCarloResult> = results.into_iter().map(Option::unwrap).collect();

    // The determinism contract: every width is a reorganization of the
    // same computation, so the estimates agree to the last bit.
    for (i, &(name, _)) in widths.iter().enumerate().skip(1) {
        assert_eq!(
            results[0].power_uw.to_bits(),
            results[i].power_uw.to_bits(),
            "{name} kernel diverged from packed64: {} vs {} uW",
            results[i].power_uw,
            results[0].power_uw
        );
        assert_eq!(results[0].batches, results[i].batches, "{name} batch count diverged");
        assert_eq!(results[0].cycles, results[i].cycles, "{name} cycle count diverged");
    }

    for (i, &(name, _)) in widths.iter().enumerate() {
        println!(
            "  {name:<9} {:>10.1} ms  {:>12.3e} gate-evals/s  ({:.2}x vs 64-lane)",
            seconds[i] * 1e3,
            gate_evals / seconds[i],
            seconds[0] / seconds[i],
        );
    }

    let speedup_256 = seconds[0] / seconds[1];
    let speedup_512 = seconds[0] / seconds[2];
    let report = json!({
        "id": "BENCH_wide",
        "title": "Wide-word packed Monte-Carlo throughput: 64 vs 256 vs 512 lanes",
        "mode": if full { "full" } else { "smoke" },
        "simd_level": format!("{:?}", simd_level()),
        "circuit": {
            "name": "array_multiplier_16",
            "gates": nl.gate_count() as i64,
            "inputs": nl.input_count() as i64,
        },
        "workload": {
            "batch_cycles": batch_cycles as i64,
            "max_batches": max_batches as i64,
            "threads": 1,
            "seed": 2026,
            "reps": reps as i64,
        },
        "packed64": {
            "seconds": seconds[0],
            "gate_evals_per_sec": gate_evals / seconds[0],
        },
        "packed256": {
            "seconds": seconds[1],
            "gate_evals_per_sec": gate_evals / seconds[1],
            "speedup_vs_64": speedup_256,
        },
        "packed512": {
            "seconds": seconds[2],
            "gate_evals_per_sec": gate_evals / seconds[2],
            "speedup_vs_64": speedup_512,
        },
        "power_uw": results[0].power_uw,
        "results_bit_identical": true,
    });
    if let Err(e) = std::fs::write(OUT_PATH, report.pretty() + "\n") {
        eprintln!("warning: could not write {OUT_PATH}: {e}");
    } else {
        println!("  dump written to results/BENCH_wide.json");
    }

    assert!(
        speedup_256 > 1.0,
        "256-lane kernel ({:.3}s) is not faster than the 64-lane kernel ({:.3}s)",
        seconds[1],
        seconds[0]
    );
}
