//! Timing bench for §II-B1: the entropy estimator vs full simulation —
//! the speed gap is the estimator's reason to exist.

use hlpower::estimate::entropy;
use hlpower::netlist::{gen, streams, Library, Netlist, ZeroDelaySim};
use std::hint::black_box;

fn adder(width: usize) -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", width);
    let b = nl.input_bus("b", width);
    let zero = nl.constant(false);
    let s = gen::ripple_adder(&mut nl, &a, &b, zero);
    nl.output_bus("s", &s);
    nl
}

fn main() {
    let lib = Library::default();
    let nl = adder(12);
    let mut g = hlpower_bench::timing::group("entropy");
    g.bench_function("entropy_estimate_500", || {
        entropy::entropy_power_estimate(
            black_box(&nl),
            &lib,
            streams::random(3, nl.input_count()).take(500),
        )
        .expect("acyclic")
    });
    g.bench_function("full_simulation_5000", || {
        let mut sim = ZeroDelaySim::new(black_box(&nl)).expect("acyclic");
        let act = sim.run(streams::random(3, nl.input_count()).take(5000)).expect("width matches");
        act.power(&nl, &lib).total_power_uw()
    });
    g.finish();
}
