//! Timing bench for the BDD package, including the ITE memo-cache
//! ablation called out in DESIGN.md.

use hlpower::bdd::{build_output_bdds, BddManager};
use hlpower::netlist::{gen, Netlist};
use std::hint::black_box;

/// A 16-stage carry chain: heavily reconvergent, so the ITE memo cache is
/// load-bearing (the DESIGN.md cache ablation).
fn carry_chain(m: &mut BddManager, n: u32) -> hlpower::bdd::BddRef {
    let mut carry = m.constant(false);
    for i in 0..n {
        let a = m.var(2 * i);
        let b = m.var(2 * i + 1);
        let ab = m.and(a, b);
        let axb = m.xor(a, b);
        let t = m.and(axb, carry);
        carry = m.or(ab, t);
    }
    carry
}

fn main() {
    let mut g = hlpower_bench::timing::group("bdd");
    g.bench_function("carry16_with_cache", || {
        let mut m = BddManager::new(32);
        carry_chain(&mut m, 16)
    });
    // Without memoization the chain cost grows geometrically; 12 stages
    // already shows the blow-up while keeping the bench runnable (16
    // stages take seconds per build uncached vs ~100 us cached).
    g.bench_function("carry12_without_cache", || {
        let mut m = BddManager::new(32);
        m.set_cache_enabled(false);
        carry_chain(&mut m, 12)
    });
    g.bench_function("carry12_with_cache", || {
        let mut m = BddManager::new(32);
        carry_chain(&mut m, 12)
    });
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", 8);
    let bbus = nl.input_bus("b", 8);
    let zero = nl.constant(false);
    let s = gen::ripple_adder(&mut nl, &a, &bbus, zero);
    nl.output_bus("s", &s);
    g.bench_function("extract_adder8", || build_output_bdds(black_box(&nl)).expect("acyclic"));
    let (m, roots) = build_output_bdds(&nl).expect("acyclic");
    g.bench_function("sift_adder8", || m.sift(black_box(&roots)));
    g.finish();
}
