//! Optimize-pass candidate-scoring throughput: incremental vs from-scratch.
//!
//! The optimize passes were converted from clone-and-fully-resimulate
//! candidate scoring to a record-once / dirty-cone-replay engine
//! ([`GuardScorer`], [`rewrite_gates`]' internal `IncrementalSim` loop).
//! This bench measures that conversion on the two searches with the
//! largest candidate pools:
//!
//! - **guard**: every candidate from [`guard::find_candidates`] on the
//!   guarded-mux example is scored twice — once with the historical
//!   from-scratch [`guard::evaluate`] (full scalar replay per candidate)
//!   and once through a [`guard::GuardScorer`] (one packed recording,
//!   then a dirty-region replay per candidate). Both paths are asserted
//!   bit-identical per candidate before any timing is trusted.
//! - **rewrite**: [`rewrite::rewrite_gates`] on the De Morgan example.
//!   Its loop shares one recording across candidates, so per-candidate
//!   wall time at this scale is dominated by fixed costs both engines
//!   pay; the leg is therefore gated on the deterministic replay-work
//!   ratio — nodes actually re-evaluated across every candidate's dirty
//!   cone against the `candidates_tried * node_count` a full replay per
//!   candidate (the pre-conversion scorer) would have evaluated.
//!
//! The result is archived as `results/BENCH_opt.json` (at the workspace
//! root, like the experiment dumps). Exits non-zero if incremental guard
//! scoring is not faster than from-scratch, if the rewrite replay-work
//! ratio is not above 1, and — in full mode — if the guard search is not
//! at least 10x faster, so CI catches a regression in the incremental
//! engine.
//!
//! Default is a quick smoke workload; `HLPOWER_BENCH_FULL=1` (or
//! `--features criterion`) runs the longer measurement used for the
//! recorded numbers.

use std::hint::black_box;
use std::time::Instant;

use hlpower::netlist::{streams, Library};
use hlpower::optimize::{guard, rewrite};
use hlpower_bench::json;

/// Where the dump lands: the workspace-root `results/` directory
/// (benches run with the package directory as cwd, so a relative
/// `results/` would end up inside `crates/bench/`).
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_opt.json");

fn full_mode() -> bool {
    cfg!(feature = "criterion") || std::env::var_os("HLPOWER_BENCH_FULL").is_some()
}

/// Minimum wall time over `reps` runs of `f`.
fn min_seconds(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let full = full_mode();
    let (width, cycles, max_targets, reps) = if full { (12, 4096, 24, 5) } else { (8, 512, 8, 3) };
    let lib = Library::default();

    // --- Guard search: score the same candidates both ways. ---
    let nl = guard::guarded_mux_example(width);
    let stream: Vec<Vec<bool>> = streams::random(2026, nl.input_count()).take(cycles).collect();
    let candidates = guard::find_candidates(&nl, &lib, max_targets).expect("acyclic example");
    assert!(!candidates.is_empty(), "guard example produced no candidates");

    println!(
        "opt_throughput: guarded mux width {width}, {} gates, {} candidates, {cycles} cycles, \
         {reps} reps ({} mode)",
        nl.gate_count(),
        candidates.len(),
        if full { "full" } else { "smoke" },
    );

    // Correctness first: every candidate's (base, guarded, ok) triple must
    // agree to the bit between the two scorers.
    let scratch_scores: Vec<(f64, f64, bool)> = candidates
        .iter()
        .map(|c| guard::evaluate(&nl, &lib, c, &stream).expect("acyclic example"))
        .collect();
    {
        let mut scorer = guard::GuardScorer::new(&nl, &lib, &stream).expect("acyclic example");
        for (c, s) in candidates.iter().zip(&scratch_scores) {
            let (base, guarded, ok) = scorer.score(c);
            assert_eq!(base.to_bits(), s.0.to_bits(), "baseline energy diverged");
            assert_eq!(
                guarded.to_bits(),
                s.1.to_bits(),
                "guarded energy diverged on target {:?}",
                c.target
            );
            assert_eq!(ok, s.2, "correctness bit diverged on target {:?}", c.target);
        }
    }

    // From-scratch leg: the historical path, one full scalar replay pair
    // per candidate.
    let sec_scratch = min_seconds(reps, || {
        for c in &candidates {
            black_box(guard::evaluate(&nl, &lib, c, &stream).expect("acyclic example"));
        }
    });
    // Incremental leg: recording construction is part of the search cost,
    // so it stays inside the timed region.
    let sec_inc = min_seconds(reps, || {
        let mut scorer = guard::GuardScorer::new(&nl, &lib, &stream).expect("acyclic example");
        for c in &candidates {
            black_box(scorer.score(c));
        }
    });
    let n = candidates.len() as f64;
    let guard_speedup = sec_scratch / sec_inc;
    println!(
        "  guard from-scratch {:>10.1} ms  {:>10.1} candidates/s",
        sec_scratch * 1e3,
        n / sec_scratch
    );
    println!(
        "  guard incremental  {:>10.1} ms  {:>10.1} candidates/s  ({guard_speedup:.1}x)",
        sec_inc * 1e3,
        n / sec_inc
    );

    // --- Rewrite search: wall time is reported, but the CI gate is the
    // deterministic replay-work ratio (dirty-cone nodes re-evaluated vs
    // the full-replay-per-candidate equivalent the old scorer paid). ---
    let rw_bits = if full { 10 } else { 6 };
    let rw = rewrite::demorgan_example(rw_bits);
    let rw_stream: Vec<Vec<bool>> = streams::random(97, rw.input_count()).take(cycles).collect();
    let opts = rewrite::RewriteOptions::default();
    let mut outcome = None;
    let sec_rw = min_seconds(reps, || {
        outcome = Some(black_box(
            rewrite::rewrite_gates(&rw, &lib, &rw_stream, &opts).expect("acyclic example"),
        ));
    });
    let outcome = outcome.expect("reps >= 1");
    let tried = outcome.candidates_tried.max(1) as f64;
    let full_replay_nodes = outcome.candidates_tried * rw.node_count();
    let work_ratio = full_replay_nodes as f64 / outcome.cone_nodes_resimmed.max(1) as f64;
    println!(
        "  rewrite: {} candidates ({} accepted) in {:.1} ms ({:.1} candidates/s)",
        outcome.candidates_tried,
        outcome.steps.len(),
        sec_rw * 1e3,
        tried / sec_rw
    );
    println!(
        "  rewrite replay work: {} cone nodes vs {} full-replay equivalent ({work_ratio:.1}x \
         less)",
        outcome.cone_nodes_resimmed, full_replay_nodes
    );

    let report = json!({
        "id": "BENCH_opt",
        "title": "Optimize candidate-scoring throughput: incremental vs from-scratch",
        "mode": if full { "full" } else { "smoke" },
        "guard": {
            "circuit": "guarded_mux_example",
            "width": width as i64,
            "gates": nl.gate_count() as i64,
            "cycles": cycles as i64,
            "candidates": candidates.len() as i64,
            "from_scratch_seconds": sec_scratch,
            "incremental_seconds": sec_inc,
            "from_scratch_candidates_per_sec": n / sec_scratch,
            "incremental_candidates_per_sec": n / sec_inc,
            "speedup": guard_speedup,
            "bit_identical": true,
        },
        "rewrite": {
            "circuit": "demorgan_example",
            "bits": rw_bits as i64,
            "gates": rw.gate_count() as i64,
            "cycles": cycles as i64,
            "candidates_tried": outcome.candidates_tried as i64,
            "accepted": outcome.steps.len() as i64,
            "cone_nodes_resimmed": outcome.cone_nodes_resimmed as i64,
            "full_replay_equivalent_nodes": full_replay_nodes as i64,
            "replay_work_ratio": work_ratio,
            "incremental_seconds": sec_rw,
            "incremental_candidates_per_sec": tried / sec_rw,
        },
    });
    if let Err(e) = std::fs::write(OUT_PATH, report.pretty() + "\n") {
        eprintln!("warning: could not write {OUT_PATH}: {e}");
    } else {
        println!("  dump written to results/BENCH_opt.json");
    }

    assert!(
        guard_speedup > 1.0,
        "incremental guard scoring ({sec_inc:.4}s) is not faster than from-scratch \
         ({sec_scratch:.4}s)"
    );
    assert!(
        work_ratio > 1.0,
        "rewrite dirty-cone replay ({} nodes) did no less work than full replays per candidate \
         ({full_replay_nodes} nodes)",
        outcome.cone_nodes_resimmed
    );
    if full {
        assert!(
            guard_speedup >= 10.0,
            "full-mode guard speedup {guard_speedup:.1}x is below the 10x acceptance bar"
        );
    }
}
