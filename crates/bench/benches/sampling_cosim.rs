//! Timing bench for §II-C2: census vs sampler vs adaptive work.

use hlpower::estimate::sampling::{cosimulate, CosimStrategy};
use hlpower::estimate::{MacroModelKind, ModuleHarness, TrainedMacroModel};
use hlpower::netlist::{streams, Library};
use std::hint::black_box;

fn main() {
    let h = ModuleHarness::adder(8, Library::default());
    let train = h.trace(streams::random(1, 16).take(1000)).expect("widths");
    let model = TrainedMacroModel::fit(MacroModelKind::InputOutput, &train).expect("data");
    let app = h.trace(streams::random(2, 16).take(6000)).expect("widths");
    let mut g = hlpower_bench::timing::group("cosim");
    g.bench_function("census", || cosimulate(&model, black_box(&app), CosimStrategy::Census, 1));
    g.bench_function("sampler", || {
        cosimulate(&model, black_box(&app), CosimStrategy::Sampler { groups: 4, group_size: 30 }, 2)
    });
    g.bench_function("adaptive", || {
        cosimulate(&model, black_box(&app), CosimStrategy::Adaptive { gate_cycles: 100 }, 3)
    });
    g.finish();
}
