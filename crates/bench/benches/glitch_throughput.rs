//! Scalar-vs-packed *timed* (glitch-capturing) simulation throughput.
//!
//! Runs the seeded glitch-power Monte-Carlo engine on a 16-bit array
//! multiplier twice over the exact same fixed workload — once with the
//! scalar [`TimedKernel::Scalar`] heap-based event simulator and once
//! with the bit-parallel 64-lane [`TimedKernel::Packed64`] time-wheel
//! kernel — verifies that both produce the same glitch-aware power
//! estimate to the bit, and reports wall time, effective lane-cycles per
//! second, and the packed/scalar speedup.
//!
//! The result is archived as `results/BENCH_glitch.json` (at the
//! workspace root, like the experiment dumps). Exits non-zero if the
//! packed kernel is not faster than the scalar one or the results
//! diverge, so CI catches both a throughput regression and a determinism
//! break in the timed kernel.
//!
//! Default is a quick smoke workload; `HLPOWER_BENCH_FULL=1` (or
//! `--features criterion`) runs the longer measurement used for the
//! recorded numbers.

use std::hint::black_box;
use std::time::Instant;

use hlpower::netlist::{
    gen, monte_carlo_glitch_power_seeded_threads_kernel, streams, Library, MonteCarloOptions,
    MonteCarloResult, Netlist, TimedKernel,
};
use hlpower_bench::json;

/// Where the dump lands: the workspace-root `results/` directory
/// (benches run with the package directory as cwd, so a relative
/// `results/` would end up inside `crates/bench/`).
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_glitch.json");

fn full_mode() -> bool {
    cfg!(feature = "criterion") || std::env::var_os("HLPOWER_BENCH_FULL").is_some()
}

fn mult16() -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", 16);
    let b = nl.input_bus("b", 16);
    let p = gen::array_multiplier(&mut nl, &a, &b);
    nl.output_bus("p", &p);
    nl
}

/// Runs the fixed glitch Monte-Carlo workload once with `kernel` and
/// returns `(result, seconds)`. `target_relative_error: 0.0` disables the
/// stopping rule, so both kernels simulate exactly the same
/// `max_batches * batch_cycles` lane-cycles under the transport-delay
/// model.
fn run(
    nl: &Netlist,
    lib: &Library,
    opts: &MonteCarloOptions,
    kernel: TimedKernel,
) -> (MonteCarloResult, f64) {
    let w = nl.input_count();
    let t = Instant::now();
    let result = monte_carlo_glitch_power_seeded_threads_kernel(
        nl,
        lib,
        |rng| streams::random_rng(rng, w),
        2024,
        opts,
        1,
        kernel,
    )
    .expect("acyclic multiplier");
    let seconds = t.elapsed().as_secs_f64();
    (black_box(result), seconds)
}

fn main() {
    let full = full_mode();
    let (batch_cycles, max_batches, reps) = if full { (60, 256, 3) } else { (20, 64, 2) };
    let opts = MonteCarloOptions {
        batch_cycles,
        max_batches,
        target_relative_error: 0.0, // fixed workload: never stop early
        z: 1.96,
    };
    let nl = mult16();
    let lib = Library::default();
    // One lane-cycle = one clock cycle of one batch under the timed
    // model, identical for both kernels by construction (fixed workload).
    let lane_cycles = (batch_cycles * max_batches) as f64;

    println!(
        "glitch_throughput: 16-bit array multiplier, {} gates, {} batches x {} cycles, {} reps ({} mode)",
        nl.gate_count(),
        max_batches,
        batch_cycles,
        reps,
        if full { "full" } else { "smoke" }
    );

    let mut scalar_s = f64::INFINITY;
    let mut packed_s = f64::INFINITY;
    let mut scalar_res = None;
    let mut packed_res = None;
    for _ in 0..reps {
        let (r, s) = run(&nl, &lib, &opts, TimedKernel::Scalar);
        scalar_s = scalar_s.min(s);
        scalar_res = Some(r);
        let (r, s) = run(&nl, &lib, &opts, TimedKernel::Packed64);
        packed_s = packed_s.min(s);
        packed_res = Some(r);
    }
    let (scalar_res, packed_res) = (scalar_res.unwrap(), packed_res.unwrap());

    // The determinism contract: the packed time-wheel kernel is a
    // reorganization of the same event computation, so the glitch-aware
    // estimates agree to the last bit.
    assert_eq!(
        scalar_res.power_uw.to_bits(),
        packed_res.power_uw.to_bits(),
        "packed timed kernel diverged from scalar event sim: {} vs {} uW",
        scalar_res.power_uw,
        packed_res.power_uw
    );
    assert_eq!(scalar_res.batches, packed_res.batches);
    assert_eq!(scalar_res.cycles, packed_res.cycles);

    let speedup = scalar_s / packed_s;
    println!(
        "  scalar   {:>10.1} ms  {:>12.3e} lane-cycles/s",
        scalar_s * 1e3,
        lane_cycles / scalar_s
    );
    println!(
        "  packed64 {:>10.1} ms  {:>12.3e} lane-cycles/s",
        packed_s * 1e3,
        lane_cycles / packed_s
    );
    println!("  speedup  {speedup:>10.2}x  (power {:.3} uW, bit-identical)", packed_res.power_uw);

    let report = json!({
        "id": "BENCH_glitch",
        "title": "Scalar vs bit-parallel 64-lane timed (glitch) simulation throughput",
        "mode": if full { "full" } else { "smoke" },
        "circuit": {
            "name": "array_multiplier_16",
            "gates": nl.gate_count() as i64,
            "inputs": nl.input_count() as i64,
        },
        "workload": {
            "batch_cycles": batch_cycles as i64,
            "max_batches": max_batches as i64,
            "threads": 1,
            "seed": 2024,
            "reps": reps as i64,
        },
        "scalar": {
            "seconds": scalar_s,
            "lane_cycles_per_sec": lane_cycles / scalar_s,
        },
        "packed64": {
            "seconds": packed_s,
            "lane_cycles_per_sec": lane_cycles / packed_s,
        },
        "speedup": speedup,
        "power_uw": packed_res.power_uw,
        "results_bit_identical": true,
    });
    if let Err(e) = std::fs::write(OUT_PATH, report.pretty() + "\n") {
        eprintln!("warning: could not write {OUT_PATH}: {e}");
    } else {
        println!("  dump written to results/BENCH_glitch.json");
    }

    assert!(
        speedup > 1.0,
        "packed 64-lane timed kernel ({packed_s:.3}s) is not faster than scalar ({scalar_s:.3}s)"
    );
}
