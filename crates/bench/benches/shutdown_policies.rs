//! Criterion bench for the Fig. 3 / §III-B shutdown-policy simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use hlpower::optimize::shutdown::{self, policies::*};

fn bench(c: &mut Criterion) {
    let device = shutdown::DeviceModel::default();
    let workload = shutdown::bursty_workload(42, 2000);
    let mut g = c.benchmark_group("shutdown");
    g.sample_size(20);
    g.bench_function("static_timeout", |b| {
        b.iter(|| {
            let mut p = StaticTimeout { timeout: 2.0 * device.breakeven() };
            shutdown::simulate(&mut p, &device, std::hint::black_box(&workload))
        })
    });
    g.bench_function("srivastava_regression", |b| {
        b.iter(|| {
            let mut p = SrivastavaRegression::new(&device, 64);
            shutdown::simulate(&mut p, &device, std::hint::black_box(&workload))
        })
    });
    g.bench_function("hwang_wu", |b| {
        b.iter(|| {
            let mut p = HwangWu::new(&device, 0.5, true);
            shutdown::simulate(&mut p, &device, std::hint::black_box(&workload))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
