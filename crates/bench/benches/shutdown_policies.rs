//! Timing bench for the Fig. 3 / §III-B shutdown-policy simulations.

use hlpower::optimize::shutdown::{self, policies::*};
use std::hint::black_box;

fn main() {
    let device = shutdown::DeviceModel::default();
    let workload = shutdown::bursty_workload(42, 2000);
    let mut g = hlpower_bench::timing::group("shutdown");
    g.bench_function("static_timeout", || {
        let mut p = StaticTimeout { timeout: 2.0 * device.breakeven() };
        shutdown::simulate(&mut p, &device, black_box(&workload))
    });
    g.bench_function("srivastava_regression", || {
        let mut p = SrivastavaRegression::new(&device, 64);
        shutdown::simulate(&mut p, &device, black_box(&workload))
    });
    g.bench_function("hwang_wu", || {
        let mut p = HwangWu::new(&device, 0.5, true);
        shutdown::simulate(&mut p, &device, black_box(&workload))
    });
    g.finish();
}
