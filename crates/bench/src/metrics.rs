//! The `repro --metrics` smoke run: exercises every instrumented
//! subsystem, snapshots the metric registry, and checks that no required
//! counter stayed at zero.
//!
//! This exists so CI can verify the observability layer end-to-end: the
//! smoke run drives the zero-delay simulator, the event-driven simulator,
//! the BDD manager (including a sifting pass), the Monte-Carlo engine,
//! and the scoped worker pool; the resulting snapshot is printed as a
//! human-readable summary and archived as bench-style JSON under
//! `results/metrics.json`.

use hlpower::bdd::build_output_bdds;
use hlpower::estimate::ModuleHarness;
use hlpower::netlist::{
    gen, monte_carlo_power_seeded_threads, streams, timed_activity, EventDrivenSim, Library,
    MonteCarloOptions, Netlist, TimedKernel, ZeroDelaySim,
};
use hlpower::optimize::rewrite::{demorgan_example, rewrite_gates, RewriteOptions};
use hlpower_obs::metrics;
use hlpower_obs::report::Snapshot;

/// Counters that the smoke run must leave nonzero, as `(section, name)`
/// pairs. One per instrumented subsystem — if any of these reads zero the
/// instrumentation regressed (or the smoke run stopped covering it).
pub const REQUIRED_NONZERO: &[(&str, &str)] = &[
    ("sim_zero_delay", "steps"),
    ("sim_zero_delay", "gate_evals"),
    ("sim_packed", "steps"),
    ("sim_packed", "gate_evals"),
    ("sim_packed", "lane_cycles"),
    ("sim_packed", "toggles"),
    ("sim_packed", "blocks"),
    ("sim_event", "steps"),
    ("sim_event", "events"),
    ("sim_event", "queue_depth"),
    ("sim_ev_packed", "steps"),
    ("sim_ev_packed", "events"),
    ("sim_ev_packed", "lane_cycles"),
    ("sim_ev_packed", "transitions"),
    ("sim_ev_packed", "glitches"),
    ("sim_incremental", "records"),
    ("sim_incremental", "resims"),
    ("sim_incremental", "cone_nodes"),
    ("sim_incremental", "reused_nodes"),
    ("opt_search", "candidates_evaluated"),
    ("opt_search", "candidates_accepted"),
    ("opt_search", "cone_size"),
    ("opt_search", "resim_words"),
    ("bdd", "ite_calls"),
    ("bdd", "nodes_created"),
    ("bdd", "sift_rounds"),
    ("bdd", "unique_chain_len"),
    ("monte_carlo", "runs"),
    ("monte_carlo", "batches"),
    ("monte_carlo", "cycles"),
    ("monte_carlo", "batch_ns"),
    ("monte_carlo", "ci_half_width_nw"),
    ("pool", "tasks"),
    ("pool", "jobs"),
];

fn adder(bits: usize) -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", bits);
    let b = nl.input_bus("b", bits);
    let c0 = nl.constant(false);
    let s = gen::ripple_adder(&mut nl, &a, &b, c0);
    nl.output_bus("s", &s);
    nl
}

/// Exercises every instrumented subsystem once and returns the resulting
/// metric snapshot.
///
/// The run is small (a few hundred cycles on 8-bit adders plus one BDD
/// sift on a 6-variable function) — enough to make every counter in
/// [`REQUIRED_NONZERO`] move without noticeably extending CI.
pub fn run_smoke() -> Snapshot {
    let lib = Library::default();

    // Zero-delay simulator.
    let nl = adder(8);
    let mut zd = ZeroDelaySim::new(&nl).expect("acyclic adder");
    zd.run(streams::random(11, nl.input_count()).take(300)).expect("width matches");

    // Event-driven simulator (captures glitches on the carry chain).
    let mut ev = EventDrivenSim::new(&nl, &lib).expect("acyclic adder");
    ev.run(streams::random(13, nl.input_count()).take(200)).expect("width matches");

    // Packed timed kernel (the 64-lane time-wheel glitch simulator).
    let stream: Vec<Vec<bool>> = streams::random(19, nl.input_count()).take(150).collect();
    timed_activity(&nl, &lib, &stream, TimedKernel::Packed64).expect("width matches");

    // BDD manager + sifting on the interleaved-AND function, whose size is
    // order-sensitive (so the sift actually moves variables).
    let mut bnl = Netlist::new();
    let xs: Vec<_> = (0..6).map(|i| bnl.input(format!("x{i}"))).collect();
    let t1 = bnl.and([xs[0], xs[3]]);
    let t2 = bnl.and([xs[1], xs[4]]);
    let t3 = bnl.and([xs[2], xs[5]]);
    let y = bnl.or([t1, t2, t3]);
    bnl.set_output("y", y);
    let (m, roots) = build_output_bdds(&bnl).expect("acyclic function");
    m.sift(&roots);

    // Monte-Carlo engine on two workers (drives the pool's parallel path
    // and, through the default kernel, the lane-parallel packed simulator).
    let w = nl.input_count();
    monte_carlo_power_seeded_threads(
        &nl,
        &lib,
        |rng| streams::random_rng(rng, w),
        42,
        &MonteCarloOptions { batch_cycles: 100, max_batches: 192, ..Default::default() },
        2,
    )
    .expect("smoke Monte-Carlo run");

    // Macro-model characterization trace (drives the time-packed
    // combinational kernel: `sim_packed.blocks`).
    let harness = ModuleHarness::adder(8, Library::default());
    harness.trace(streams::random(17, 16).take(130)).expect("smoke trace");

    // Dirty-cone incremental re-simulation, via the rewrite pass that is
    // its canonical consumer (drives record + resim + commit, so all four
    // `sim_incremental` counters move).
    let rnl = demorgan_example(4);
    let rstream: Vec<Vec<bool>> = streams::random(23, rnl.input_count()).take(128).collect();
    let rewritten = rewrite_gates(&rnl, &lib, &rstream, &RewriteOptions::default())
        .expect("smoke rewrite pass");
    assert!(rewritten.optimized_uw <= rewritten.baseline_uw);

    metrics::snapshot()
}

/// Returns the `section.name` paths from [`REQUIRED_NONZERO`] whose
/// counters are zero (or missing) in `snap`. Empty means the smoke check
/// passed.
pub fn zero_counters(snap: &Snapshot) -> Vec<String> {
    REQUIRED_NONZERO
        .iter()
        .filter(|(section, name)| snap.count(section, name).unwrap_or(0) == 0)
        .map(|(section, name)| format!("{section}.{name}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_moves_every_required_counter() {
        let snap = run_smoke();
        let zeros = zero_counters(&snap);
        assert!(zeros.is_empty(), "counters stuck at zero: {zeros:?}");
    }

    #[test]
    fn smoke_snapshot_serializes() {
        let snap = run_smoke();
        let json = snap.to_json_pretty();
        assert!(json.contains("\"monte_carlo\""));
        assert!(json.contains("\"pool\""));
        assert!(!snap.render_text().is_empty());
    }
}
