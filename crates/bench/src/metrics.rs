//! The `repro --metrics` smoke run: exercises every instrumented
//! subsystem, snapshots the metric registry, and checks that no required
//! counter stayed at zero.
//!
//! This exists so CI can verify the observability layer end-to-end: the
//! smoke run drives the zero-delay simulator, the event-driven simulator,
//! the BDD manager (including a sifting pass), the Monte-Carlo engine,
//! the scoped worker pool, the macro-model fit/predict/co-simulation
//! path, and an in-process estimation server (blocking, streamed,
//! cache-hit, error, and keep-alive requests); the resulting snapshot is
//! printed as a human-readable summary and archived as bench-style JSON
//! under `results/metrics.json`.
//!
//! Coverage is **derived from the registry itself**: every `Count`,
//! `Nanos`, and `Hist` entry of [`Snapshot::sections`] must be nonzero
//! after the smoke run unless it is explicitly allowlisted in
//! [`ALLOWED_ZERO`] — so adding a new instrumented counter automatically
//! extends the gate, and forgetting to exercise it fails CI instead of
//! silently shipping dead instrumentation.

use std::io::Write;
use std::net::TcpStream;

use hlpower::bdd::build_output_bdds;
use hlpower::estimate::sampling::{cosimulate, CosimStrategy};
use hlpower::estimate::{MacroModelKind, ModuleHarness, TrainedMacroModel};
use hlpower::netlist::{
    gen, monte_carlo_power_seeded_threads, streams, timed_activity, EventDrivenSim, Library,
    MonteCarloOptions, Netlist, TimedKernel, ZeroDelaySim,
};
use hlpower::optimize::rewrite::{demorgan_example, rewrite_gates, RewriteOptions};
use hlpower_obs::json::escaped;
use hlpower_obs::metrics;
use hlpower_obs::report::{Snapshot, Value};
use hlpower_serve::{client, Server, ServerConfig};

/// Registry entries that may legitimately read zero after a healthy smoke
/// run, as `(section, name)` pairs — all timing-dependent or
/// failure-path counters:
///
/// * `monte_carlo.discarded_batches` — only moves when the stop rule
///   truncates a speculative wave, which depends on scheduling.
/// * `pool.idle_ns` — zero when workers finish in lockstep.
/// * `serve.cache_evictions` — the smoke never overflows the kernel cache.
/// * `trace.*` — drop counters; zero is the *healthy* reading.
pub const ALLOWED_ZERO: &[(&str, &str)] = &[
    ("monte_carlo", "discarded_batches"),
    ("pool", "idle_ns"),
    ("serve", "cache_evictions"),
    ("trace", "dropped"),
    ("trace", "ring_dropped"),
    ("trace", "sink_dropped"),
];

fn adder(bits: usize) -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", bits);
    let b = nl.input_bus("b", bits);
    let c0 = nl.constant(false);
    let s = gen::ripple_adder(&mut nl, &a, &b, c0);
    nl.output_bus("s", &s);
    nl
}

fn estimate_body(src: &str, stream: bool) -> String {
    format!(
        "{{\"netlist\": {}, \"seed\": 7, \"stream\": {stream}, \"options\": \
         {{\"batch_cycles\": 15, \"max_batches\": 100, \"target_relative_error\": 0.0, \
         \"z\": 1.96}}}}",
        escaped(src)
    )
}

/// Drives the estimation server end to end: blocking and streamed
/// estimates, a cache hit, a malformed request, and a keep-alive
/// connection serving two requests — every `serve`/`serve_stage` counter
/// moves.
fn smoke_server() {
    let config = ServerConfig { access_log: None, slow_ms: None, ..ServerConfig::default() };
    let server = Server::start(config).expect("start estimation server");
    let addr = server.addr().to_string();
    let verilog = include_str!("../../../examples/gray_counter4.v");

    let first = client::request(&addr, "POST", "/estimate", Some(&estimate_body(verilog, false)))
        .expect("blocking estimate");
    assert_eq!(first.status, 200, "{}", first.body);
    // Same netlist again: must hit the kernel cache.
    let second = client::request(&addr, "POST", "/estimate", Some(&estimate_body(verilog, false)))
        .expect("cache-hit estimate");
    assert_eq!(second.status, 200, "{}", second.body);
    // Streamed: 100 batches at 64 lanes/round means several rounds, so
    // interim updates flow.
    let streamed = client::request(&addr, "POST", "/estimate", Some(&estimate_body(verilog, true)))
        .expect("streamed estimate");
    assert_eq!(streamed.status, 200, "{}", streamed.body);
    // Malformed JSON: a structured 400, driving `serve.requests_err`.
    let bad = client::request(&addr, "POST", "/estimate", Some("{\"netlist\": "))
        .expect("malformed estimate");
    assert_eq!(bad.status, 400, "{}", bad.body);
    // Two requests over one keep-alive connection, driving
    // `serve.connections_reused`.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone socket"));
    for _ in 0..2 {
        stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: smoke\r\n\r\n").expect("write");
        stream.flush().expect("flush");
        let resp = client::read_response(&mut reader).expect("keep-alive response");
        assert_eq!(resp.status, 200);
    }
    drop(stream);
    server.stop();
}

/// Exercises every instrumented subsystem once and returns the resulting
/// metric snapshot.
///
/// The run is small (a few hundred cycles on 8-bit adders, one BDD sift
/// on a 6-variable function, a handful of server requests on an
/// ephemeral port) — enough to make every non-allowlisted counter move
/// without noticeably extending CI.
pub fn run_smoke() -> Snapshot {
    let lib = Library::default();

    // Zero-delay simulator.
    let nl = adder(8);
    let mut zd = ZeroDelaySim::new(&nl).expect("acyclic adder");
    zd.run(streams::random(11, nl.input_count()).take(300)).expect("width matches");

    // Event-driven simulator (captures glitches on the carry chain).
    let mut ev = EventDrivenSim::new(&nl, &lib).expect("acyclic adder");
    ev.run(streams::random(13, nl.input_count()).take(200)).expect("width matches");

    // Packed timed kernel (the 64-lane time-wheel glitch simulator).
    let stream: Vec<Vec<bool>> = streams::random(19, nl.input_count()).take(150).collect();
    timed_activity(&nl, &lib, &stream, TimedKernel::Packed64).expect("width matches");

    // BDD manager + sifting on the interleaved-AND function, whose size is
    // order-sensitive (so the sift actually moves variables).
    let mut bnl = Netlist::new();
    let xs: Vec<_> = (0..6).map(|i| bnl.input(format!("x{i}"))).collect();
    let t1 = bnl.and([xs[0], xs[3]]);
    let t2 = bnl.and([xs[1], xs[4]]);
    let t3 = bnl.and([xs[2], xs[5]]);
    let y = bnl.or([t1, t2, t3]);
    bnl.set_output("y", y);
    let (m, roots) = build_output_bdds(&bnl).expect("acyclic function");
    m.sift(&roots);

    // Monte-Carlo engine on two workers (drives the pool's parallel path
    // and, through the default kernel, the lane-parallel packed simulator).
    let w = nl.input_count();
    monte_carlo_power_seeded_threads(
        &nl,
        &lib,
        |rng| streams::random_rng(rng, w),
        42,
        &MonteCarloOptions { batch_cycles: 100, max_batches: 192, ..Default::default() },
        2,
    )
    .expect("smoke Monte-Carlo run");

    // Macro-model characterization trace (drives the time-packed
    // combinational kernel: `sim_packed.blocks`), then the regression
    // fit, census prediction, and sampler co-simulation (the `estimate`
    // section: fits, predictions, cosim runs, sampler groups).
    let harness = ModuleHarness::adder(8, Library::default());
    let records = harness.trace(streams::random(17, 16).take(130)).expect("smoke trace");
    let model = TrainedMacroModel::fit_sweep(&[MacroModelKind::Bitwise], &records)
        .pop()
        .expect("one fit")
        .expect("bitwise fit");
    cosimulate(&model, &records, CosimStrategy::Census, 5).expect("census cosim");
    cosimulate(&model, &records, CosimStrategy::Sampler { groups: 4, group_size: 30 }, 5)
        .expect("sampler cosim");

    // Dirty-cone incremental re-simulation, via the rewrite pass that is
    // its canonical consumer (drives record + resim + commit, so all four
    // `sim_incremental` counters move).
    let rnl = demorgan_example(4);
    let rstream: Vec<Vec<bool>> = streams::random(23, rnl.input_count()).take(128).collect();
    let rewritten = rewrite_gates(&rnl, &lib, &rstream, &RewriteOptions::default())
        .expect("smoke rewrite pass");
    assert!(rewritten.optimized_uw <= rewritten.baseline_uw);

    // The estimation server (the `serve` and `serve_stage` sections).
    smoke_server();

    metrics::snapshot()
}

/// Returns the `section.name` paths of registry entries that are zero
/// (counters/nanos at 0, histograms with no samples) in `snap` and not
/// excused by [`ALLOWED_ZERO`]. Gauges and series are skipped — gauges
/// legitimately return to zero at quiesce, and series are baselines, not
/// activity. Empty means the smoke check passed.
pub fn zero_counters(snap: &Snapshot) -> Vec<String> {
    let mut zeros = Vec::new();
    for section in &snap.sections {
        for (name, value) in &section.entries {
            if ALLOWED_ZERO.contains(&(section.name, name)) {
                continue;
            }
            let stuck = match value {
                Value::Count(n) | Value::Nanos(n) => *n == 0,
                Value::Hist(h) => h.count == 0,
                Value::Float(_) | Value::Gauge(_) | Value::Series(_) => false,
            };
            if stuck {
                zeros.push(format!("{}.{}", section.name, name));
            }
        }
    }
    zeros
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_moves_every_registry_counter() {
        let snap = run_smoke();
        let zeros = zero_counters(&snap);
        assert!(zeros.is_empty(), "counters stuck at zero: {zeros:?}");
    }

    #[test]
    fn allowlist_only_names_real_registry_entries() {
        // A typo'd or stale allowlist entry would silently widen the
        // gate; pin every pair to an existing (section, name).
        let snap = metrics::snapshot();
        for (section, name) in ALLOWED_ZERO {
            let found = snap
                .sections
                .iter()
                .find(|s| s.name == *section)
                .is_some_and(|s| s.entries.iter().any(|(n, _)| n == name));
            assert!(found, "ALLOWED_ZERO names unknown entry {section}.{name}");
        }
    }

    #[test]
    fn smoke_snapshot_serializes() {
        let snap = run_smoke();
        let json = snap.to_json_pretty();
        assert!(json.contains("\"monte_carlo\""));
        assert!(json.contains("\"pool\""));
        assert!(json.contains("\"serve_stage\""));
        assert!(!snap.render_text().is_empty());
    }
}
