//! Experiment result container, rendering, and a minimal hand-rolled JSON
//! emitter.
//!
//! The emitter replaces the external `serde`/`serde_json` dependency so
//! the workspace builds offline. It supports exactly what the experiment
//! dumps need: null, booleans, integers, finite floats, strings, arrays,
//! and insertion-ordered objects, pretty-printed with two-space indents.
//! Construction goes through the [`json!`](crate::json) macro, which
//! keeps the `serde_json::json!` call-site syntax used throughout
//! `experiments/`.

use std::fmt::Write as _;

use hlpower_obs::json::{escape_into as write_escaped, write_f64};

/// A JSON value (insertion-ordered objects, `f64` numbers).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact rather than routed through `f64`).
    Int(i128),
    /// A floating-point number; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; pairs keep insertion order (no sorting, no dedup).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Serializes with two-space indentation (the `serde_json`
    /// `to_string_pretty` look, so existing `results/*.json` diffs stay
    /// readable).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json {
                Json::Int(v as i128)
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<&String> for Json {
    fn from(v: &String) -> Json {
        Json::Str(v.clone())
    }
}

impl From<&&str> for Json {
    fn from(v: &&str) -> Json {
        Json::Str((*v).to_string())
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<()> for Json {
    fn from(_: ()) -> Json {
        Json::Null
    }
}

/// Builds a [`Json`] value with `serde_json::json!`-style syntax.
///
/// Supported shapes: `json!(expr)`, `json!({ "key": value, ... })` with
/// nested object/array literals or arbitrary expressions as values, and
/// `json!([ item, ... ])` with expression items.
#[macro_export]
macro_rules! json {
    (null) => { $crate::report::Json::Null };
    ({}) => { $crate::report::Json::Object(Vec::new()) };
    ({ $($body:tt)+ }) => {{
        let mut pairs: Vec<(String, $crate::report::Json)> = Vec::new();
        $crate::json_object_body!(pairs; $($body)+);
        $crate::report::Json::Object(pairs)
    }};
    ([ $($item:expr),* $(,)? ]) => {
        $crate::report::Json::Array(vec![ $( $crate::report::Json::from($item) ),* ])
    };
    ($other:expr) => { $crate::report::Json::from($other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs,
/// recursing into `{...}` and `[...]` value literals.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_body {
    ($pairs:ident;) => {};
    ($pairs:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $pairs.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_object_body!($pairs; $($rest)*);
    };
    ($pairs:ident; $key:literal : { $($inner:tt)* } $(,)?) => {
        $pairs.push(($key.to_string(), $crate::json!({ $($inner)* })));
    };
    ($pairs:ident; $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $pairs.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_object_body!($pairs; $($rest)*);
    };
    ($pairs:ident; $key:literal : [ $($inner:tt)* ] $(,)?) => {
        $pairs.push(($key.to_string(), $crate::json!([ $($inner)* ])));
    };
    ($pairs:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $pairs.push(($key.to_string(), $crate::report::Json::from($value)));
        $crate::json_object_body!($pairs; $($rest)*);
    };
    ($pairs:ident; $key:literal : $value:expr) => {
        $pairs.push(($key.to_string(), $crate::report::Json::from($value)));
    };
}

/// One reproduced table/figure/claim.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (matches DESIGN.md's index).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// What the paper reports.
    pub paper: &'static str,
    /// Rendered result lines.
    pub lines: Vec<String>,
    /// Machine-readable measurements.
    pub json: Json,
}

impl ExperimentResult {
    /// Prints the experiment block to stdout.
    pub fn print(&self) {
        println!("\n=== [{}] {} ===", self.id, self.title);
        println!("paper: {}", self.paper);
        for l in &self.lines {
            println!("  {l}");
        }
    }

    /// The full machine-readable dump (metadata plus measurements).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("id".to_string(), Json::from(self.id)),
            ("title".to_string(), Json::from(self.title)),
            ("paper".to_string(), Json::from(self.paper)),
            ("lines".to_string(), Json::from(self.lines.clone())),
            ("json".to_string(), self.json.clone()),
        ])
    }

    /// Writes the JSON dump under `results/`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self) -> std::io::Result<()> {
        std::fs::create_dir_all("results")?;
        let path = format!("results/{}.json", self.id);
        std::fs::write(path, self.to_json().pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::from(true).pretty(), "true");
        assert_eq!(Json::from(42u64).pretty(), "42");
        assert_eq!(Json::from(-7i64).pretty(), "-7");
        assert_eq!(Json::from(1.5).pretty(), "1.5");
        assert_eq!(Json::from(2.0).pretty(), "2.0");
        assert_eq!(Json::from(f64::NAN).pretty(), "null");
        assert_eq!(Json::from(f64::INFINITY).pretty(), "null");
        assert_eq!(Json::from(f64::NEG_INFINITY).pretty(), "null");
        assert_eq!(Json::from("hi \"there\"\n").pretty(), "\"hi \\\"there\\\"\\n\"");
    }

    #[test]
    fn non_finite_floats_nest_as_null_and_stay_parseable() {
        let v = json!({
            "ratio": f64::NAN,
            "bound": f64::INFINITY,
            "series": vec![1.0, f64::NEG_INFINITY],
        });
        let text = v.pretty();
        assert!(text.contains("\"ratio\": null"), "{text}");
        assert!(text.contains("\"bound\": null"), "{text}");
        hlpower_obs::json::parse(&text).expect("emitted JSON is valid");
    }

    #[test]
    fn escaped_identifier_names_survive_emission() {
        // Verilog escaped identifiers may contain quotes and backslashes;
        // such names must not corrupt the JSON dump.
        let name = "\\gate\"0\\ ";
        let text = json!({ "node": name }).pretty();
        let back = hlpower_obs::json::parse(&text).expect("valid JSON");
        assert_eq!(back.get("node").and_then(hlpower_obs::json::Value::as_str), Some(name));
    }

    #[test]
    fn macro_builds_nested_structures() {
        let rows = vec![json!({"a": 1u64}), json!({"a": 2u64})];
        let v = json!({
            "name": "adder",
            "ratio": 4.0 / 2.0,
            "nested": {"x": 1u64, "y": [1u64, 2, 3]},
            "rows": rows,
        });
        let text = v.pretty();
        assert!(text.contains("\"name\": \"adder\""));
        assert!(text.contains("\"ratio\": 2.0"));
        assert!(text.contains("\"x\": 1"));
        let reparse_guard: Json = v; // structure, not text, is the contract
        if let Json::Object(pairs) = reparse_guard {
            assert_eq!(pairs.len(), 4);
            assert_eq!(pairs[0].0, "name");
            assert!(matches!(pairs[3].1, Json::Array(ref a) if a.len() == 2));
        } else {
            panic!("expected object");
        }
    }

    #[test]
    fn empty_containers_and_arrays() {
        assert_eq!(json!({}).pretty(), "{}");
        assert_eq!(Json::Array(Vec::new()).pretty(), "[]");
        let arr = json!([1u64, 2, 3]);
        assert_eq!(arr.pretty(), "[\n  1,\n  2,\n  3\n]");
    }

    #[test]
    fn experiment_result_round_trip_shape() {
        let r = ExperimentResult {
            id: "T0",
            title: "test",
            paper: "claim",
            lines: vec!["line one".to_string()],
            json: json!({"k": 1u64}),
        };
        let text = r.to_json().pretty();
        assert!(text.starts_with("{\n  \"id\": \"T0\""));
        assert!(text.contains("\"lines\": [\n    \"line one\"\n  ]"));
        assert!(text.contains("\"k\": 1"));
    }
}
