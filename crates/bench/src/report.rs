//! Experiment result container and rendering.

use serde::Serialize;

/// One reproduced table/figure/claim.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Experiment id (matches DESIGN.md's index).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// What the paper reports.
    pub paper: &'static str,
    /// Rendered result lines.
    pub lines: Vec<String>,
    /// Machine-readable measurements.
    pub json: serde_json::Value,
}

impl ExperimentResult {
    /// Prints the experiment block to stdout.
    pub fn print(&self) {
        println!("\n=== [{}] {} ===", self.id, self.title);
        println!("paper: {}", self.paper);
        for l in &self.lines {
            println!("  {l}");
        }
    }

    /// Writes the JSON dump under `results/`.
    pub fn write_json(&self) -> std::io::Result<()> {
        std::fs::create_dir_all("results")?;
        let path = format!("results/{}.json", self.id);
        std::fs::write(path, serde_json::to_string_pretty(self).expect("serializable"))
    }
}
