//! `repro` — regenerates every table, figure, and quantitative claim of
//! the survey (see DESIGN.md's experiment index).
//!
//! ```text
//! repro --all            # run everything (in parallel across the pool)
//! repro --table1 --fig2  # run selected experiments
//! repro --list           # list experiment ids
//! repro --metrics        # instrumentation smoke + results/metrics.json
//! repro --profile        # power-attribution profiler -> results/profile/
//! repro --ingest f.v ... # ingest external netlists -> results/ingest/
//! repro --serve          # estimation server (HLPOWER_SERVE_ADDR)
//! ```
//!
//! Each experiment prints a human-readable block and writes
//! `results/<id>.json` for EXPERIMENTS.md regeneration. Unknown flags are
//! an error: the flag list is printed and the exit status is non-zero.
//!
//! Setting `HLPOWER_TRACE=<path>` enables span tracing for the whole run
//! and writes a Chrome trace-event JSON (Perfetto-loadable) to `<path>`
//! on exit; the export is validated with the in-tree parser and any
//! ring-buffer drop makes the run fail.
//!
//! Experiments are independent, so selected runners are fanned out across
//! the scoped worker pool (`HLPOWER_THREADS` overrides the width); output
//! blocks are printed in registry order once all runners finish, so the
//! rendered report is byte-identical at any thread count.

use hlpower::obs::trace;
use hlpower_bench::report::ExperimentResult;
use hlpower_bench::{experiments, ingest, metrics, profile};
use hlpower_rng::par;

type Runner = fn() -> ExperimentResult;

fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    use experiments::*;
    vec![
        ("--table1", "T1: Table I FIR capacitance breakdown", hls::table1 as Runner),
        ("--fig4", "F4F5: polynomial restructuring (also --fig5)", hls::figs_4_5),
        ("--pm-sched", "S3D: Monteiro power-management scheduling", hls::pm_scheduling),
        ("--allocate", "S3E: activity-aware allocation", hls::allocation),
        ("--multivolt", "S3F: multiple supply-voltage scheduling", hls::multivoltage),
        ("--tiwari", "S2A-1: Tiwari instruction-level model", software::tiwari),
        (
            "--profile-synthesis",
            "S2A-2: profile-driven program synthesis",
            software::profile_synthesis,
        ),
        ("--coldsched", "S3A: cold scheduling", software::cold_scheduling),
        ("--fig2", "F2: memory-access optimization", software::fig2_memopt),
        (
            "--memory",
            "S2C-M: Liu-Svensson memory model + hierarchy exploration",
            software::memory_exploration,
        ),
        ("--entropy", "S2B-1: information-theoretic estimation", estimation::entropy_models),
        ("--tyagi", "S2B-1T: Tyagi FSM bound", estimation::tyagi),
        ("--complexity", "S2B-2: area-complexity regression", estimation::complexity),
        ("--macromodel", "S2C-1: macro-model accuracy ladder", estimation::macromodel_ladder),
        ("--sampling", "S2C-2: census/sampler/adaptive co-simulation", estimation::sampling_cosim),
        ("--precomp", "F6: precomputation", logic::precomputation),
        ("--clockgate", "F7: gated clocks", logic::gated_clocks),
        ("--guard", "F8: guarded evaluation", logic::guarded_evaluation),
        ("--retime", "F9: low-power retiming", logic::retiming),
        ("--balance", "F9-B: glitch minimization by path balancing", logic::path_balancing),
        ("--fsm-encode", "S3H: FSM state encoding", logic::fsm_encoding),
        (
            "--fsm-decompose",
            "S3H-D: FSM decomposition / selective clocking",
            logic::fsm_decomposition,
        ),
        ("--shutdown", "F3: predictive shutdown policies", system::shutdown_policies),
        ("--buscode", "S3G: bus encoding", system::bus_encoding),
    ]
}

fn print_flag_list(registry: &[(&str, &str, Runner)]) {
    for (flag, desc, _) in registry {
        println!("{flag:<22} {desc}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = registry();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("repro — regenerate the survey's tables and figures\n");
        println!(
            "usage: repro [--all] [--list] [--metrics] [--profile] [--ingest files...] [flags...]\n"
        );
        println!("--metrics runs an instrumentation smoke pass and dumps the");
        println!("accumulated counters to results/metrics.json.");
        println!("--profile runs the power-attribution profiler over the generator");
        println!("suite and writes hotspot reports under results/profile/.");
        println!("--ingest parses external netlists (.nl, structural Verilog, or");
        println!("EDIF 2.0.0; see docs/FORMATS.md), runs the differential battery");
        println!("on each, and writes reports under results/ingest/.");
        println!("--serve runs the estimation server (docs/SERVER.md) until a");
        println!("POST /shutdown arrives; HLPOWER_SERVE_ADDR sets the bind address");
        println!("(default 127.0.0.1:0) and HLPOWER_SERVE_ADDR_FILE, if set,");
        println!("receives the bound address for ephemeral-port discovery.");
        println!("HLPOWER_TRACE=<path> records spans and writes a Chrome trace.\n");
        print_flag_list(&registry);
        return;
    }
    if args.iter().any(|a| a == "--list") {
        print_flag_list(&registry);
        return;
    }
    // Opt into span tracing before any work runs so generator builds,
    // kernel compiles, and pool jobs are all captured.
    let trace_path = trace::env_path();
    if trace_path.is_some() {
        trace::set_enabled(true);
    }
    // Reject unknown flags loudly instead of silently ignoring them: a
    // typo like `--tabel1` must not report "experiments complete".
    // Bare (non-`--`) arguments are netlist files, valid only with
    // --ingest.
    let want_ingest = args.iter().any(|a| a == "--ingest");
    let known = |a: &str| {
        a == "--all"
            || a == "--fig5"
            || a == "--metrics"
            || a == "--profile"
            || a == "--ingest"
            || a == "--serve"
            || (want_ingest && !a.starts_with("--"))
            || registry.iter().any(|(flag, _, _)| a == *flag)
    };
    let unknown: Vec<&String> = args.iter().filter(|a| !known(a)).collect();
    if !unknown.is_empty() {
        for a in &unknown {
            eprintln!("error: unknown flag `{a}`");
        }
        eprintln!("\navailable experiments:");
        print_flag_list(&registry);
        std::process::exit(2);
    }
    let run_all = args.iter().any(|a| a == "--all");
    let want_metrics = args.iter().any(|a| a == "--metrics");
    let want_profile = args.iter().any(|a| a == "--profile");
    let want_serve = args.iter().any(|a| a == "--serve");
    let ingest_files: Vec<String> = args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
    if want_ingest && ingest_files.is_empty() {
        eprintln!("error: --ingest needs at least one netlist file");
        std::process::exit(2);
    }
    let selected: Vec<&(&str, &str, Runner)> = registry
        .iter()
        .filter(|(flag, _, _)| {
            let aliased = *flag == "--fig4" && args.iter().any(|a| a == "--fig5");
            run_all || args.iter().any(|a| a == *flag) || aliased
        })
        .collect();
    if selected.is_empty() && !want_metrics && !want_profile && !want_ingest && !want_serve {
        eprintln!("no experiment matched; try --list");
        std::process::exit(2);
    }
    // Fan the independent experiments out across the pool; print and dump
    // in registry order afterwards so the report is deterministic.
    let results = par::map(&selected, |_, (_, _, runner)| runner());
    let mut failures = 0;
    for result in &results {
        result.print();
        if let Err(e) = result.write_json() {
            eprintln!("warning: could not write results/{}.json: {e}", result.id);
            failures += 1;
        }
    }
    if !results.is_empty() {
        println!("\n{} experiment(s) complete; JSON dumps under results/", results.len());
    }
    if want_metrics {
        // Make sure every instrumented subsystem has moved (experiments
        // alone may not touch all of them), then dump the accumulated
        // metrics — experiment work and smoke work combined.
        metrics::run_smoke();
        let snap = hlpower::obs::metrics::snapshot();
        println!("\n== metrics ({}) ==", snap.schema);
        print!("{}", snap.render_text());
        if let Err(e) = std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write("results/metrics.json", snap.to_json_pretty()))
        {
            eprintln!("warning: could not write results/metrics.json: {e}");
            failures += 1;
        } else {
            println!("\nmetrics dump written to results/metrics.json");
        }
        let zeros = metrics::zero_counters(&snap);
        if !zeros.is_empty() {
            for z in &zeros {
                eprintln!("error: instrumented counter `{z}` is zero after the smoke run");
            }
            failures += 1;
        }
    }
    if want_profile {
        let outcomes = profile::run_profile();
        for o in &outcomes {
            o.print();
            if let Err(e) = &o.reconcile {
                eprintln!("error: {}: attribution does not reconcile: {e}", o.name);
                failures += 1;
            }
            if let Err(e) = o.write_files() {
                eprintln!("warning: could not write results/profile/{}.*: {e}", o.name);
                failures += 1;
            }
        }
        println!(
            "\n{} circuit(s) profiled; hotspot reports under results/profile/",
            outcomes.len()
        );
    }
    if want_ingest {
        let outcomes = ingest::run_ingest(&ingest_files);
        for o in &outcomes {
            o.print();
            if !o.ok() {
                eprintln!("error: {}: ingestion checks failed", o.path);
                failures += 1;
            }
            if o.netlist.is_ok() {
                if let Err(e) = o.write_files() {
                    eprintln!("warning: could not write results/ingest/{}.json: {e}", o.stem);
                    failures += 1;
                }
            }
        }
        println!("\n{} netlist(s) ingested; reports under results/ingest/", outcomes.len());
    }
    // The estimation server runs last (it blocks until POST /shutdown),
    // so `repro --metrics --serve` surfaces the smoke counters live.
    if want_serve {
        let addr =
            std::env::var("HLPOWER_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:0".to_string());
        let config = hlpower_serve::ServerConfig { addr, ..Default::default() };
        match hlpower_serve::Server::start(config) {
            Ok(server) => {
                let bound = server.addr();
                println!("repro: serving estimates on {bound} (POST /shutdown to stop)");
                if let Ok(path) = std::env::var("HLPOWER_SERVE_ADDR_FILE") {
                    if let Err(e) = std::fs::write(&path, bound.to_string()) {
                        eprintln!("warning: could not write {path}: {e}");
                        failures += 1;
                    }
                }
                server.join();
                println!("repro: estimation server stopped");
            }
            Err(e) => {
                eprintln!("error: could not start estimation server: {e}");
                failures += 1;
            }
        }
    }
    // Export the span trace last so every subsystem's spans are in it.
    // A failed export, an invalid trace, or any ring-buffer drop fails
    // the run: a silently truncated trace would masquerade as a quiet one.
    if let Some(path) = trace_path {
        match trace::write_chrome_json(&path) {
            Ok(n) => {
                let text = std::fs::read_to_string(&path).unwrap_or_default();
                match trace::parse_chrome_trace(&text) {
                    Ok(parsed) if parsed.len() == n => {
                        println!("trace: {n} span(s) written to {}", path);
                    }
                    Ok(parsed) => {
                        eprintln!(
                            "error: trace round-trip mismatch: wrote {n}, parsed {}",
                            parsed.len()
                        );
                        failures += 1;
                    }
                    Err(e) => {
                        eprintln!("error: exported trace is not valid Chrome JSON: {e}");
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("error: could not write trace to {}: {e}", path);
                failures += 1;
            }
        }
        let dropped = trace::dropped();
        if dropped > 0 {
            eprintln!("error: {dropped} trace event(s) dropped (ring/sink overflow)");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
