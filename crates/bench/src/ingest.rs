//! The `repro --ingest <files...>` pipeline: external netlists through
//! the full estimation stack.
//!
//! Each file is format-sniffed ([`hlpower::netlist::sniff_format`]) and
//! parsed by the matching front-end, then driven through the same
//! machinery the generator suite uses — and, crucially, through the
//! *differential* harnesses, so an ingested circuit gets the same
//! cross-checking the in-tree circuits get:
//!
//! * packed 64-lane [`Sim64`] vs 64 independent scalar
//!   [`ZeroDelaySim`] runs (bit-identical, lane by lane);
//! * timed (glitch-capturing) [`timed_activity`] on the scalar vs the
//!   packed kernel (bit-identical records);
//! * seeded Monte-Carlo power on the scalar vs packed kernel
//!   (bit-identical estimates);
//! * Monte-Carlo vs the BDD-exact expected power (combinational
//!   circuits with few inputs);
//! * power attribution reconciled against the switched-capacitance
//!   report (≤ 1e-9 relative);
//! * a Verilog emit→parse round trip that must reproduce the netlist
//!   structurally with bit-identical packed activity.
//!
//! Results are printed per file and dumped to
//! `results/ingest/<stem>.json`; any parse error or failed check makes
//! `repro` exit non-zero.

use hlpower::bdd::build_node_bdds;
use hlpower::netlist::timed_activity;
use hlpower::netlist::{
    attribute, emit_verilog, ingest_str, monte_carlo_power_seeded_threads_kernel, parse_verilog,
    sniff_format, streams, structurally_equivalent, Activity, Library, McKernel, MonteCarloOptions,
    Netlist, Sim64, SourceFormat, TimedKernel, ZeroDelaySim, LANES,
};
use hlpower_rng::Rng;

use crate::json;
use crate::profile::packed_activity;
use crate::report::Json;

/// Cycles per lane for the functional differential check.
const DIFF_CYCLES: usize = 64;

/// Cycles for the single-stream timed (glitch) differential check.
const TIMED_CYCLES: usize = 96;

/// Root seed for every ingest check (fixed, so outcomes are
/// deterministic and the CI smoke cannot flake).
const INGEST_SEED: u64 = 0x1997;

/// Input-count ceiling for the BDD-exact cross-check.
const BDD_MAX_INPUTS: usize = 18;

/// One named pass/fail check of the differential battery.
pub struct Check {
    /// Short stable identifier (also the JSON key).
    pub name: &'static str,
    /// `Ok(())`, `Err(reason)`, or skipped with a reason.
    pub result: Result<(), String>,
    /// `Some(reason)` when the check did not apply to this circuit.
    pub skipped: Option<String>,
}

impl Check {
    fn ran(name: &'static str, result: Result<(), String>) -> Check {
        Check { name, result, skipped: None }
    }

    fn skip(name: &'static str, why: String) -> Check {
        Check { name, result: Ok(()), skipped: Some(why) }
    }
}

/// The outcome of ingesting one file.
pub struct IngestOutcome {
    /// The path as given on the command line.
    pub path: String,
    /// File stem used for `results/ingest/<stem>.json`.
    pub stem: String,
    /// Detected source format (`None` when the file could not be read).
    pub format: Option<SourceFormat>,
    /// `Err` is the read or parse error, rendered.
    pub netlist: Result<Netlist, String>,
    /// The differential battery (empty when parsing failed).
    pub checks: Vec<Check>,
    /// Estimated average power of the packed-kernel run, µW.
    pub power_uw: Option<f64>,
}

impl IngestOutcome {
    /// `true` when the file parsed and every check passed.
    pub fn ok(&self) -> bool {
        self.netlist.is_ok() && self.checks.iter().all(|c| c.result.is_ok())
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> Json {
        let checks = Json::Object(
            self.checks
                .iter()
                .map(|c| {
                    (
                        c.name.to_string(),
                        json!({
                            "ok": c.result.is_ok(),
                            "skipped": c.skipped.clone().map(Json::from).unwrap_or(Json::Null),
                            "error": c.result.clone().err().map(Json::from).unwrap_or(Json::Null),
                        }),
                    )
                })
                .collect(),
        );
        let stats = match &self.netlist {
            Ok(nl) => json!({
                "nodes": nl.node_count(),
                "inputs": nl.input_count(),
                "outputs": nl.outputs().len(),
                "gates": nl.gate_count(),
                "dffs": nl.dffs().len(),
                "logic_depth": nl.logic_depth().unwrap_or(0),
            }),
            Err(_) => Json::Null,
        };
        json!({
            "file": &self.path,
            "format": self.format.map(|f| Json::from(f.name())).unwrap_or(Json::Null),
            "parsed": self.netlist.is_ok(),
            "parse_error": self.netlist.as_ref().err().map(Json::from).unwrap_or(Json::Null),
            "ok": self.ok(),
            "stats": stats,
            "power_uw": self.power_uw.map(Json::from).unwrap_or(Json::Null),
            "checks": checks,
        })
    }

    /// Writes `results/ingest/<stem>.json`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_files(&self) -> std::io::Result<()> {
        std::fs::create_dir_all("results/ingest")?;
        std::fs::write(format!("results/ingest/{}.json", self.stem), self.to_json().pretty())
    }

    /// Prints the per-file block to stdout.
    pub fn print(&self) {
        let fmt = self.format.map(|f| f.name()).unwrap_or("?");
        match &self.netlist {
            Err(e) => {
                println!("\n== ingest: {} ({fmt}) ==", self.path);
                println!("  PARSE FAILED: {e}");
            }
            Ok(nl) => {
                println!(
                    "\n== ingest: {} ({fmt}: {} inputs, {} gates, {} dffs, {} outputs) ==",
                    self.path,
                    nl.input_count(),
                    nl.gate_count(),
                    nl.dffs().len(),
                    nl.outputs().len()
                );
                if let Some(p) = self.power_uw {
                    println!("  estimated power {p:.3} uW over {} packed cycles", {
                        crate::profile::PROFILE_CYCLES * LANES
                    });
                }
                for c in &self.checks {
                    match (&c.result, &c.skipped) {
                        (_, Some(why)) => println!("  {:<26} skipped ({why})", c.name),
                        (Ok(()), None) => println!("  {:<26} ok", c.name),
                        (Err(e), None) => println!("  {:<26} FAILED: {e}", c.name),
                    }
                }
            }
        }
    }
}

/// Packed [`Sim64`] vs 64 scalar [`ZeroDelaySim`] runs, lane by lane.
fn check_scalar_vs_packed(nl: &Netlist) -> Result<(), String> {
    let w = nl.input_count();
    let root = Rng::seed_from_u64(INGEST_SEED);
    let scalar: Vec<Activity> = (0..LANES)
        .map(|l| {
            let mut sim = ZeroDelaySim::new(nl).map_err(|e| e.to_string())?;
            for v in streams::random_rng(root.split(l as u64), w).take(DIFF_CYCLES) {
                sim.step(&v).map_err(|e| e.to_string())?;
            }
            Ok(sim.take_activity())
        })
        .collect::<Result<_, String>>()?;
    let mut sim = Sim64::new(nl).map_err(|e| e.to_string())?;
    let mut lanes: Vec<_> =
        (0..LANES).map(|l| streams::random_rng(root.split(l as u64), w)).collect();
    let mut words = vec![0u64; w];
    for _ in 0..DIFF_CYCLES {
        words.iter_mut().for_each(|word| *word = 0);
        for (l, lane) in lanes.iter_mut().enumerate() {
            let v = lane.next().expect("infinite stream");
            for (word, bit) in words.iter_mut().zip(&v) {
                *word |= u64::from(*bit) << l;
            }
        }
        sim.step(&words).map_err(|e| e.to_string())?;
    }
    let packed = sim.take_lane_activities();
    for (l, (s, p)) in scalar.iter().zip(&packed).enumerate() {
        if s != p {
            return Err(format!("lane {l} diverged between scalar and packed simulation"));
        }
    }
    Ok(())
}

/// Timed (glitch-capturing) profiler on the scalar vs packed kernel.
fn check_timed_kernels(nl: &Netlist, lib: &Library) -> Result<(), String> {
    let stream: Vec<Vec<bool>> =
        streams::random(INGEST_SEED, nl.input_count()).take(TIMED_CYCLES).collect();
    let scalar =
        timed_activity(nl, lib, &stream, TimedKernel::Scalar).map_err(|e| e.to_string())?;
    let packed =
        timed_activity(nl, lib, &stream, TimedKernel::Packed64).map_err(|e| e.to_string())?;
    if scalar != packed {
        return Err("timed activity diverged between scalar and packed kernels".to_string());
    }
    Ok(())
}

/// Seeded Monte-Carlo power on the scalar vs packed kernel.
fn check_mc_kernels(nl: &Netlist, lib: &Library) -> Result<(f64, f64), String> {
    let w = nl.input_count();
    let opts = MonteCarloOptions {
        batch_cycles: 60,
        max_batches: 60,
        target_relative_error: 0.01,
        z: 1.96,
    };
    let run = |kernel: McKernel| {
        monte_carlo_power_seeded_threads_kernel(
            nl,
            lib,
            |rng| streams::random_rng(rng, w),
            INGEST_SEED,
            &opts,
            1,
            kernel,
        )
        .map_err(|e| e.to_string())
    };
    let scalar = run(McKernel::Scalar)?;
    let packed = run(McKernel::Packed64)?;
    if scalar.power_uw.to_bits() != packed.power_uw.to_bits()
        || scalar.half_width_uw.to_bits() != packed.half_width_uw.to_bits()
    {
        return Err(format!(
            "Monte-Carlo kernels diverged: scalar {} uW vs packed {} uW",
            scalar.power_uw, packed.power_uw
        ));
    }
    Ok((scalar.power_uw, scalar.half_width_uw))
}

/// Monte-Carlo vs the BDD-exact expected power (`2p(1-p)` transition
/// densities through the standard accounting).
fn check_mc_vs_exact(nl: &Netlist, lib: &Library, mc: (f64, f64)) -> Result<(), String> {
    const EXACT_CYCLES: u64 = 1 << 40;
    let (m, map) = build_node_bdds(nl).map_err(|e| e.to_string())?;
    let mut act = Activity { toggles: vec![0; nl.node_count()], cycles: EXACT_CYCLES };
    for id in nl.node_ids() {
        if let Some(&f) = map.get(&id) {
            let p = m.sat_fraction(f);
            let density = 2.0 * p * (1.0 - p);
            act.toggles[id.index()] = (density * EXACT_CYCLES as f64).round() as u64;
        }
    }
    let exact = act.power(nl, lib).total_power_uw();
    let (power, half_width) = mc;
    // Deterministic seed, so this is a regression gate, not a statistical
    // assertion; 3x the reported CI half-width leaves generous room.
    let tol = 3.0 * half_width + 1e-9 * exact.abs();
    if (power - exact).abs() > tol {
        return Err(format!(
            "Monte-Carlo {power:.6} uW vs BDD-exact {exact:.6} uW (tolerance {tol:.6})"
        ));
    }
    Ok(())
}

/// Attribution reconciles with the switched-capacitance power report.
fn check_attribution(nl: &Netlist, lib: &Library, act: &Activity) -> Result<(), String> {
    let power = act.power(nl, lib);
    attribute(nl, lib, act).reconcile(&power)
}

/// Verilog emit→parse round trip: structural equality plus bit-identical
/// packed activity.
fn check_roundtrip(nl: &Netlist, act: &Activity) -> Result<(), String> {
    let emitted = emit_verilog(nl, "ingested");
    let back = parse_verilog(&emitted).map_err(|e| format!("re-parse failed: {e}"))?;
    structurally_equivalent(nl, &back)?;
    let back_act = packed_activity(&back);
    if act.toggles != back_act.toggles || act.cycles != back_act.cycles {
        return Err("packed activity diverged across the round trip".to_string());
    }
    Ok(())
}

/// `true` when every primary input sits at the front of the node arena
/// (the layout all front-ends produce; the round-trip check needs it).
fn inputs_first(nl: &Netlist) -> bool {
    nl.inputs().iter().enumerate().all(|(i, id)| id.index() == i)
}

/// Ingests one already-read file.
fn ingest_source(path: &str, src: &str) -> IngestOutcome {
    let stem = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "netlist".to_string());
    let format = sniff_format(Some(path), src);
    let nl = match ingest_str(src, format) {
        Ok(nl) => nl,
        Err(e) => {
            return IngestOutcome {
                path: path.to_string(),
                stem,
                format: Some(format),
                netlist: Err(e.to_string()),
                checks: Vec::new(),
                power_uw: None,
            }
        }
    };

    let lib = Library::default();
    let act = packed_activity(&nl);
    let power_uw = Some(act.power(&nl, &lib).total_power_uw());

    let mut checks = Vec::new();
    checks.push(Check::ran("scalar-vs-packed", check_scalar_vs_packed(&nl)));
    checks.push(Check::ran("timed-scalar-vs-packed", check_timed_kernels(&nl, &lib)));
    let mc = check_mc_kernels(&nl, &lib);
    checks.push(Check::ran("mc-kernel-equivalence", mc.as_ref().map(|_| ()).map_err(Clone::clone)));
    match mc {
        Ok(est) if nl.dffs().is_empty() && nl.input_count() <= BDD_MAX_INPUTS => {
            checks.push(Check::ran("mc-vs-bdd-exact", check_mc_vs_exact(&nl, &lib, est)));
        }
        Ok(_) => {
            let why = if nl.dffs().is_empty() {
                format!("more than {BDD_MAX_INPUTS} inputs")
            } else {
                "sequential circuit".to_string()
            };
            checks.push(Check::skip("mc-vs-bdd-exact", why));
        }
        Err(_) => checks.push(Check::skip("mc-vs-bdd-exact", "Monte-Carlo failed".to_string())),
    }
    checks.push(Check::ran("attribution-reconcile", check_attribution(&nl, &lib, &act)));
    if inputs_first(&nl) {
        checks.push(Check::ran("verilog-roundtrip", check_roundtrip(&nl, &act)));
    } else {
        checks.push(Check::skip(
            "verilog-roundtrip",
            "inputs are not contiguous at the arena start".to_string(),
        ));
    }

    IngestOutcome {
        path: path.to_string(),
        stem,
        format: Some(format),
        netlist: Ok(nl),
        checks,
        power_uw,
    }
}

/// Runs the ingestion pipeline over each file path.
pub fn run_ingest(paths: &[String]) -> Vec<IngestOutcome> {
    paths
        .iter()
        .map(|path| match std::fs::read_to_string(path) {
            Ok(src) => ingest_source(path, &src),
            Err(e) => IngestOutcome {
                path: path.clone(),
                stem: std::path::Path::new(path)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "netlist".to_string()),
                format: None,
                netlist: Err(format!("could not read file: {e}")),
                checks: Vec::new(),
                power_uw: None,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlpower::netlist::gen;

    #[test]
    fn generator_circuits_pass_the_battery_via_verilog() {
        // Emit a generator circuit to Verilog, ingest it from source, and
        // require the whole differential battery to pass.
        let mut suite = gen::benchmark_suite();
        let (_, nl) = suite.remove(0); // ripple_adder
        let src = emit_verilog(&nl, "ripple");
        let outcome = ingest_source("ripple.v", &src);
        assert!(outcome.netlist.is_ok(), "{:?}", outcome.netlist.as_ref().err());
        for c in &outcome.checks {
            assert!(c.result.is_ok(), "{}: {:?}", c.name, c.result);
        }
        assert!(outcome.ok());
        let json = outcome.to_json().pretty();
        assert!(json.contains("\"ok\": true"), "{json}");
    }

    #[test]
    fn parse_failures_surface_in_the_outcome() {
        let outcome = ingest_source("bad.v", "module m (a;\nendmodule\n");
        assert!(!outcome.ok());
        let err = outcome.netlist.as_ref().err().expect("parse error");
        assert!(err.contains("line 1"), "{err}");
    }
}
