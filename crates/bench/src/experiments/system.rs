//! System-level experiments: predictive shutdown (Fig. 3 / §III-B) and
//! bus encoding (§III-G).

use crate::json;
use hlpower::optimize::buscode::{
    self, traces, BeachCode, BusCodec, BusInvert, GrayCode, T0BusInvert, T0Code, Unencoded,
    WorkingZone,
};
use hlpower::optimize::shutdown::{self, policies::*};
use hlpower::sw::{workloads, Machine, MachineConfig};

use crate::report::ExperimentResult;

/// Fig. 3 + §III-B: shutdown policies on a bursty event workload.
pub fn shutdown_policies() -> ExperimentResult {
    let device = shutdown::DeviceModel::default();
    let workload = shutdown::bursty_workload(42, 6000);
    let bound = shutdown::improvement_upper_bound(&workload);
    let mut lines = vec![format!(
        "workload: 6000 episodes, improvement bound 1 + T_I/T_A = {bound:.1}x, break-even {:.1}",
        device.breakeven()
    )];
    let mut rows = Vec::new();
    let mut run = |name: &'static str, policy: &mut dyn ShutdownPolicy| {
        let r = shutdown::simulate(policy, &device, &workload);
        lines.push(format!(
            "{name:<24} power {:>6.3}  improvement {:>5.1}x  delay penalty {:>5.2}%  shutdowns {:>4.0}%",
            r.average_power,
            r.improvement,
            100.0 * r.performance_penalty,
            100.0 * r.shutdown_fraction
        ));
        rows.push(json!({"policy": name, "power": r.average_power,
                          "improvement": r.improvement,
                          "penalty": r.performance_penalty}));
    };
    run("always-on", &mut AlwaysOn);
    run("static 1x break-even", &mut StaticTimeout { timeout: device.breakeven() });
    run("static 4x break-even", &mut StaticTimeout { timeout: 4.0 * device.breakeven() });
    run("Srivastava threshold", &mut SrivastavaThreshold { active_threshold: 1.0 });
    run("Srivastava regression", &mut SrivastavaRegression::new(&device, 64));
    run("Hwang-Wu", &mut HwangWu::new(&device, 0.5, false));
    run("Hwang-Wu + prewakeup", &mut HwangWu::new(&device, 0.5, true));
    run("oracle", &mut Oracle::new(&device, &workload));
    ExperimentResult {
        id: "F3",
        title: "Shutdown policies (Fig. 3, Srivastava, Hwang-Wu)",
        paper:
            "predictive shutdown up to ~38x improvement at ~3% performance cost on X-server traces",
        lines,
        json: json!({"bound": bound, "policies": rows}),
    }
}

/// §III-G: bus encoding across stream families.
pub fn bus_encoding() -> ExperimentResult {
    const WIDTH: usize = 20;
    // A real program-counter trace from the architectural simulator (the
    // §III-G observation that processor addresses are often consecutive).
    let pc_trace: Vec<u64> = {
        let mut m = Machine::new(MachineConfig::default());
        let stats = m.run(&workloads::fir(64, 8), 100_000_000).expect("halts");
        stats.trace.iter().map(|&pc| pc as u64).collect()
    };
    let stream_sets: Vec<(&str, Vec<u64>)> = vec![
        ("random data", traces::random(1, WIDTH, 6000)),
        ("sequential", traces::sequential(0x1000, 6000)),
        ("interleaved arrays", traces::interleaved_arrays(2, 3, 6000)),
        ("embedded trace", traces::embedded(3, 6000)),
        ("program counter", pc_trace),
    ];
    let mut lines = vec![format!(
        "{:<20} {:>10} {:>10} {:>7} {:>7} {:>7} {:>12} {:>7}",
        "stream (trans/word)",
        "unencoded",
        "businvert",
        "gray",
        "t0",
        "t0+bi",
        "workingzone",
        "beach"
    )];
    let mut rows = Vec::new();
    for (name, words) in &stream_sets {
        let train: Vec<u64> = words.iter().take(3000).copied().collect();
        let beach = BeachCode::train(WIDTH, &train, 8);
        let pairs: Vec<(Box<dyn BusCodec>, Box<dyn BusCodec>)> = vec![
            (Box::new(Unencoded::new(WIDTH)), Box::new(Unencoded::new(WIDTH))),
            (Box::new(BusInvert::new(WIDTH)), Box::new(BusInvert::new(WIDTH))),
            (Box::new(GrayCode::new(WIDTH)), Box::new(GrayCode::new(WIDTH))),
            (Box::new(T0Code::new(WIDTH)), Box::new(T0Code::new(WIDTH))),
            (Box::new(T0BusInvert::new(WIDTH)), Box::new(T0BusInvert::new(WIDTH))),
            (Box::new(WorkingZone::new(WIDTH, 4, 10)), Box::new(WorkingZone::new(WIDTH, 4, 10))),
            (Box::new(beach.clone()), Box::new(beach)),
        ];
        let mut cells = Vec::new();
        for (enc, dec) in pairs {
            cells.push(buscode::transitions_per_word(enc, dec, words));
        }
        lines.push(format!(
            "{name:<20} {:>10.3} {:>10.3} {:>7.3} {:>7.3} {:>7.3} {:>12.3} {:>7.3}",
            cells[0], cells[1], cells[2], cells[3], cells[4], cells[5], cells[6]
        ));
        rows.push(json!({"stream": name, "unencoded": cells[0], "bus_invert": cells[1],
                          "gray": cells[2], "t0": cells[3], "t0_bus_invert": cells[4],
                          "working_zone": cells[5], "beach": cells[6]}));
    }
    ExperimentResult {
        id: "S3G",
        title: "Bus encoding across stream families",
        paper: "Bus-Invert <= N/2 on random; Gray -> 1 and T0 -> 0 on sequences; Working-Zone on interleaves; Beach on embedded traces",
        lines,
        json: json!(rows),
    }
}
