//! Estimation-model experiments: entropy models, Tyagi bounds,
//! complexity models, the macro-model accuracy ladder, and sampling-based
//! co-simulation.

use crate::json;
use hlpower::estimate::complexity::{
    area_complexity, optimized_area, random_function, AreaRegression,
};
use hlpower::estimate::entropy::{self, cheng_agrawal_ctot, FerrandiModel};
use hlpower::estimate::sampling::{cosimulate, CosimStrategy};
use hlpower::estimate::{MacroModelKind, ModuleHarness, TrainedMacroModel};
use hlpower::fsm::{generators, tyagi_bound, Encoding, EncodingStrategy, MarkovAnalysis};
use hlpower::netlist::{gen, streams, Library, Netlist, ZeroDelaySim};

use crate::report::ExperimentResult;

fn adder(width: usize) -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", width);
    let b = nl.input_bus("b", width);
    let zero = nl.constant(false);
    let s = gen::ripple_adder(&mut nl, &a, &b, zero);
    nl.output_bus("s", &s);
    nl
}

/// §II-B1: entropy-based power estimates vs gate-level simulation, and
/// the capacitance models' pessimism.
pub fn entropy_models() -> ExperimentResult {
    let lib = Library::default();
    let mut lines = Vec::new();
    let mut rows = Vec::new();
    for (name, nl) in [
        ("adder-8", adder(8)),
        ("adder-12", adder(12)),
        ("multiplier-5", {
            let mut nl = Netlist::new();
            let a = nl.input_bus("a", 5);
            let b = nl.input_bus("b", 5);
            let p = gen::array_multiplier(&mut nl, &a, &b);
            nl.output_bus("p", &p);
            nl
        }),
        ("random-logic", {
            let mut nl = Netlist::new();
            gen::random_logic(&mut nl, 5, 12, 80, 6);
            nl
        }),
    ] {
        let n = nl.input_count();
        let est = entropy::entropy_power_estimate(&nl, &lib, streams::random(3, n).take(3000))
            .expect("acyclic");
        let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
        let act = sim.run(streams::random(3, n).take(3000)).expect("width matches");
        let truth = act.power(&nl, &lib).net_power_uw;
        lines.push(format!(
            "{name:<13} sim {truth:>8.1} uW | Marculescu {:>8.1} uW ({:+.0}%) | Nemani-Najm {:>8.1} uW ({:+.0}%)",
            est.power_uw_marculescu,
            100.0 * (est.power_uw_marculescu / truth - 1.0),
            est.power_uw_nemani_najm,
            100.0 * (est.power_uw_nemani_najm / truth - 1.0)
        ));
        rows.push(json!({"circuit": name, "sim_uw": truth,
                          "marculescu_uw": est.power_uw_marculescu,
                          "nemani_najm_uw": est.power_uw_nemani_najm}));
    }
    // Capacitance models: Cheng-Agrawal pessimism vs the Ferrandi fit.
    let family: Vec<Netlist> = (3..8).map(adder).collect();
    let with_h: Vec<(&Netlist, f64)> = family.iter().map(|nl| (nl, 0.95)).collect();
    let ferrandi = FerrandiModel::fit(&with_h, &lib).expect("acyclic family");
    let probe = adder(10);
    let actual: f64 = probe.load_caps_ff(&lib).iter().sum();
    let (m, roots) = hlpower::bdd::build_output_bdds(&probe).expect("acyclic");
    let nodes = m.node_count_many(&roots);
    let f_pred = ferrandi.predict(probe.input_count(), probe.outputs().len(), nodes, 0.95);
    let ca = cheng_agrawal_ctot(probe.input_count(), probe.outputs().len(), 0.95);
    lines.push(format!(
        "C_tot of a 10-bit adder: actual {actual:.0} fF, Ferrandi {f_pred:.0} fF ({:.1}x), Cheng-Agrawal {ca:.2e} gate-equivalents (pessimistic blow-up)",
        f_pred / actual
    ));
    ExperimentResult {
        id: "S2B-1",
        title: "Information-theoretic power estimation",
        paper: "entropy-based h_avg with E_avg ~ h/2 gives quick estimates; Cheng-Agrawal C_tot is too pessimistic for large n; Ferrandi's BDD-size model fixes it",
        lines,
        json: json!({"circuits": rows, "ferrandi_ratio": f_pred / actual}),
    }
}

/// §II-B1: Tyagi's entropic lower bound on FSM switching.
pub fn tyagi() -> ExperimentResult {
    let mut lines = Vec::new();
    let mut rows = Vec::new();
    let mut holds = 0usize;
    let mut total = 0usize;
    for seed in 0..6u64 {
        let stg = generators::random_stg(2, 20, 1, seed);
        let markov = MarkovAnalysis::uniform(&stg);
        for strategy in
            [EncodingStrategy::Binary, EncodingStrategy::OneHot, EncodingStrategy::LowPower(seed)]
        {
            let enc = Encoding::with_strategy(&stg, &markov, strategy);
            let r = tyagi_bound(&stg, &markov, &enc);
            total += 1;
            if r.holds() {
                holds += 1;
            }
            if seed == 0 {
                lines.push(format!(
                    "seed 0 {strategy:?}: E[H] {:.3} >= bound {:.3} (h = {:.2} bits, sparse = {})",
                    r.expected_hamming, r.lower_bound, r.transition_entropy, r.is_sparse
                ));
            }
            rows.push(json!({"seed": seed, "strategy": format!("{strategy:?}"),
                              "expected_hamming": r.expected_hamming,
                              "lower_bound": r.lower_bound, "holds": r.holds()}));
        }
    }
    lines.push(format!("bound held in {holds}/{total} (machine x encoding) combinations"));
    ExperimentResult {
        id: "S2B-1T",
        title: "Tyagi entropic lower bound on FSM switching",
        paper: "sum p_ij H(s_i,s_j) >= h(p_ij) - 1.52 log T - 2.16 + 0.5 log log T, any encoding",
        lines,
        json: json!(rows),
    }
}

/// §II-B2: Nemani-Najm area regression and its exponential shape.
pub fn complexity() -> ExperimentResult {
    let mut samples = Vec::new();
    // 24 seeds per density: below ~64 functions the fitted correlation
    // swings by +-0.2 between draws; at 96 it is stable to ~0.01.
    for (i, p) in [0.05, 0.15, 0.3, 0.5].iter().enumerate() {
        for seed in 0..24u64 {
            let on = random_function(7, *p, seed * 37 + i as u64);
            if on.is_empty() {
                continue;
            }
            samples.push((area_complexity(7, &on), optimized_area(7, &on)));
        }
    }
    let reg = AreaRegression::fit(&samples);
    // Correlation of predicted vs actual (rank agreement proxy).
    let mean_a: f64 = samples.iter().map(|s| s.1).sum::<f64>() / samples.len() as f64;
    let mut num = 0.0;
    let mut den_p = 0.0;
    let mut den_a = 0.0;
    let mean_p: f64 = samples.iter().map(|s| reg.predict(s.0)).sum::<f64>() / samples.len() as f64;
    for &(c, a) in &samples {
        let p = reg.predict(c);
        num += (p - mean_p) * (a - mean_a);
        den_p += (p - mean_p).powi(2);
        den_a += (a - mean_a).powi(2);
    }
    let corr = num / (den_p.sqrt() * den_a.sqrt()).max(1e-12);
    let lines = vec![
        format!(
            "fit A = {:.2} * exp({:.2} C) over {} random 7-input functions",
            reg.a,
            reg.b,
            samples.len()
        ),
        format!("prediction/actual correlation r = {corr:.2} (exponential family, b > 0)"),
    ];
    ExperimentResult {
        id: "S2B-2",
        title: "Nemani-Najm linear-measure area regression",
        paper: "optimized area follows exponential regression curves in the complexity measure",
        lines,
        json: json!({"a": reg.a, "b": reg.b, "correlation": corr}),
    }
}

/// §II-C1: the macro-model accuracy ladder.
pub fn macromodel_ladder() -> ExperimentResult {
    let lib = Library::default();
    let mut h = ModuleHarness::adder(8, lib);
    // Training: mixed random + signed data, as a characterization flow
    // would use; validation on held-out signed data (the regime that
    // separates the models).
    let train: Vec<Vec<bool>> =
        streams::zip_concat(streams::signed_walk(1, 8, 6), streams::signed_walk(2, 8, 6))
            .take(4000)
            .collect();
    h.detect_breakpoints(&train);
    let records = h.trace(train).expect("widths");
    let test: Vec<Vec<bool>> =
        streams::zip_concat(streams::signed_walk(7, 8, 12), streams::signed_walk(8, 8, 12))
            .take(2500)
            .collect();
    let test_records = h.trace(test).expect("widths");
    let mut lines = vec![format!("{:<12} {:>12} {:>12}", "model", "avg error", "cycle error")];
    let mut rows = Vec::new();
    let kinds = [
        MacroModelKind::Pfa,
        MacroModelKind::DualBitType,
        MacroModelKind::Bitwise,
        MacroModelKind::InputOutput,
        MacroModelKind::Table3d,
        MacroModelKind::Stepwise,
    ];
    // The six regressions are independent: train them across the worker
    // pool (identical results at any thread count).
    let sweep = TrainedMacroModel::fit_sweep(&kinds, &records);
    for (kind, fitted) in kinds.into_iter().zip(sweep) {
        let model = fitted.expect("enough data");
        let acc = model.accuracy(&test_records);
        lines.push(format!(
            "{:<12} {:>11.1}% {:>11.1}%",
            format!("{kind:?}"),
            100.0 * acc.average_error,
            100.0 * acc.cycle_error
        ));
        rows.push(json!({"model": format!("{kind:?}"),
                          "avg_error": acc.average_error,
                          "cycle_error": acc.cycle_error}));
    }
    lines.push(
        "paper's Qiu et al. figures: ~5-10% average error, 10-20% cycle error for good models"
            .to_string(),
    );
    ExperimentResult {
        id: "S2C-1",
        title: "Regression macro-model accuracy ladder",
        paper: "PFA < DBT < bitwise/input-output < 3D-table in fidelity; ~5-10% avg, 10-20% cycle error",
        lines,
        json: json!(rows),
    }
}

/// §II-C2: census vs sampler vs adaptive co-simulation.
pub fn sampling_cosim() -> ExperimentResult {
    let h = ModuleHarness::adder(8, Library::default());
    let train = h.trace(streams::random(1, 16).take(2000)).expect("widths");
    let pfa = TrainedMacroModel::fit(MacroModelKind::Pfa, &train).expect("data");
    let io = TrainedMacroModel::fit(MacroModelKind::InputOutput, &train).expect("data");
    // In-distribution application: sampler's home turf.
    let app_random = h.trace(streams::random(9, 16).take(12_000)).expect("widths");
    let census = cosimulate(&io, &app_random, CosimStrategy::Census, 1).expect("data");
    let sampler =
        cosimulate(&io, &app_random, CosimStrategy::Sampler { groups: 8, group_size: 30 }, 2)
            .expect("data");
    // Out-of-distribution application: adaptive's home turf.
    let app_corr = h.trace(streams::correlated(4, 16, 0.15).take(12_000)).expect("widths");
    let census_biased = cosimulate(&pfa, &app_corr, CosimStrategy::Census, 3).expect("data");
    let adaptive =
        cosimulate(&pfa, &app_corr, CosimStrategy::Adaptive { gate_cycles: 400 }, 4).expect("data");
    let speedup = census.cost() / sampler.cost();
    let mut lines = vec![
        format!(
            "sampler: {:.0}x cheaper than census ({} vs {} work units), estimate gap {:.2}%",
            speedup,
            sampler.cost(),
            census.cost(),
            100.0 * (sampler.estimate_fj - census.estimate_fj).abs() / census.estimate_fj
        ),
        format!(
            "training bias: census (pseudorandom-trained PFA on correlated data) errs {:.1}%",
            100.0 * census_biased.error
        ),
        format!(
            "adaptive ratio estimator ({} gate-level cycles) errs {:.1}%",
            adaptive.gate_cycles,
            100.0 * adaptive.error
        ),
    ];
    // Sample-size ablation (the >= 30-units-per-group normality rule):
    // mean |gap| vs census across seeds, per group count.
    lines.push("sampler sample-size ablation (mean gap vs census over 10 seeds):".to_string());
    let mut ablation = Vec::new();
    for groups in [1usize, 2, 4, 8, 16] {
        let mut gaps = Vec::new();
        for seed in 0..10u64 {
            let s = cosimulate(
                &io,
                &app_random,
                CosimStrategy::Sampler { groups, group_size: 30 },
                seed,
            )
            .expect("data");
            gaps.push((s.estimate_fj - census.estimate_fj).abs() / census.estimate_fj);
        }
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        lines.push(format!(
            "  {groups:>2} groups x 30 cycles: mean gap {:.2}%, cost {:>5.0} work units",
            100.0 * mean_gap,
            (groups * 30) as f64
        ));
        ablation.push(json!({"groups": groups, "mean_gap": mean_gap}));
    }
    ExperimentResult {
        id: "S2C-2",
        title: "Sampling-based co-simulation (census / sampler / adaptive)",
        paper: "sampler ~50x cheaper at ~1% error; census bias ~30% fixed to ~5% by adaptive",
        lines,
        json: json!({
            "sampler_speedup": speedup,
            "sampler_gap": (sampler.estimate_fj - census.estimate_fj).abs() / census.estimate_fj,
            "census_bias": census_biased.error,
            "adaptive_error": adaptive.error,
            "sample_size_ablation": ablation,
        }),
    }
}
