//! Software-level experiments: Tiwari model accuracy, profile-driven
//! program synthesis, cold scheduling, and the Fig. 2 memory optimization.

use crate::json;
use hlpower::estimate::memory::MemoryModel;
use hlpower::sw::{
    coldsched, memopt, synthesis, tiwari, workloads, CacheConfig, Machine, MachineConfig,
};

use crate::report::ExperimentResult;

/// §II-A: Tiwari instruction-level power model accuracy.
pub fn tiwari() -> ExperimentResult {
    let config = MachineConfig::default();
    let model = tiwari::characterize(&config);
    let mut lines = vec![format!(
        "base costs (pJ): alu {:.1}, mul {:.1}, load {:.1}, store {:.1}, branch {:.1}, jump {:.1}, nop {:.1}",
        model.base_cost_pj[0], model.base_cost_pj[1], model.base_cost_pj[2],
        model.base_cost_pj[3], model.base_cost_pj[4], model.base_cost_pj[5],
        model.base_cost_pj[6]
    )];
    let mut rows = Vec::new();
    for (name, p) in [
        ("stream-sum", workloads::stream_sum(256)),
        ("matmul-8", workloads::matmul(8)),
        ("bubble-sort", workloads::bubble_sort(48, 1)),
        ("fir-64x8", workloads::fir(64, 8)),
    ] {
        let (reference, predicted, rel) = model.validate(&config, &p, 100_000_000).expect("halts");
        lines.push(format!(
            "{name:<12} reference {reference:>9.0} pJ, model {predicted:>9.0} pJ, error {:.1}%",
            100.0 * rel
        ));
        rows.push(json!({"workload": name, "reference_pj": reference,
                          "predicted_pj": predicted, "rel_error": rel}));
    }
    ExperimentResult {
        id: "S2A-1",
        title: "Tiwari instruction-level power model",
        paper: "Energy = sum BC_i N_i + sum SC_ij N_ij + sum OC_k, characterized from measurements",
        lines,
        json: json!(rows),
    }
}

/// §II-A: profile-driven program synthesis (Hsieh).
pub fn profile_synthesis() -> ExperimentResult {
    let config = MachineConfig::default();
    let mut lines = Vec::new();
    let mut rows = Vec::new();
    for (name, p) in [
        ("matmul-12", workloads::matmul(12)),
        ("fir-128x12", workloads::fir(128, 12)),
        ("sort-96", workloads::bubble_sort(96, 2)),
    ] {
        let (reference, synth, speedup, err) =
            synthesis::profile_synthesis_experiment(&p, &config, 9).expect("halts");
        lines.push(format!(
            "{name:<11} {} cycles -> {} cycles ({speedup:.0}x shorter), power/cycle error {:.1}%, profile distance {:.3}",
            reference.cycles,
            synth.cycles,
            100.0 * err,
            synth.target.distance(&synth.achieved)
        ));
        rows.push(json!({"workload": name, "reference_cycles": reference.cycles,
                          "synthesized_cycles": synth.cycles, "speedup": speedup,
                          "power_error": err}));
    }
    lines.push(
        "note: the paper's 3-5 orders of magnitude come from replacing RT-level simulation of \
         billions of cycles; the ratio here scales linearly with the reference trace length"
            .to_string(),
    );
    ExperimentResult {
        id: "S2A-2",
        title: "Profile-driven program synthesis",
        paper: "3-5 orders of magnitude simulation-time reduction with negligible error (Pentium)",
        lines,
        json: json!(rows),
    }
}

/// §III-A: cold scheduling of basic blocks.
pub fn cold_scheduling() -> ExperimentResult {
    use hlpower::sw::{Instr, Reg};
    use hlpower_rng::Rng;
    let mut lines = Vec::new();
    let mut total_before = 0u64;
    let mut total_after = 0u64;
    for seed in 0..10u64 {
        let mut rng = Rng::seed_from_u64(seed * 3 + 1);
        let block: Vec<Instr> = (0..24)
            .map(|_| {
                let d = Reg(rng.gen_range(1..16));
                let a = Reg(rng.gen_range(1..16));
                let b = Reg(rng.gen_range(1..16));
                match rng.gen_range(0..5) {
                    0 => Instr::Add(d, a, b),
                    1 => Instr::Xor(d, a, b),
                    2 => Instr::Mul(d, a, b),
                    3 => Instr::Addi(d, a, rng.gen_range(-100..100)),
                    _ => Instr::Shli(d, a, rng.gen_range(0..8)),
                }
            })
            .collect();
        let r = coldsched::cold_schedule(&block);
        total_before += r.transitions_before;
        total_after += r.transitions_after;
    }
    let reduction = 100.0 * (1.0 - total_after as f64 / total_before as f64);
    lines.push(format!(
        "10 random 24-instruction blocks: {total_before} -> {total_after} bus transitions ({reduction:.1}% reduction)"
    ));
    ExperimentResult {
        id: "S3A",
        title: "Cold scheduling (Su et al.)",
        paper: "reordering instructions by power cost reduces instruction-bus transitions",
        lines,
        json: json!({"before": total_before, "after": total_after, "reduction_pct": reduction}),
    }
}

/// Fig. 2: memory-access optimization.
pub fn fig2_memopt() -> ExperimentResult {
    let config = MachineConfig::default();
    let (before, after) = memopt::compare(512, &config).expect("halts");
    let lines = vec![
        format!(
            "two-loop: {} data accesses, {:.0} pJ, {} cycles",
            before.daccesses, before.energy_pj, before.cycles
        ),
        format!(
            "fused:    {} data accesses, {:.0} pJ, {} cycles",
            after.daccesses, after.energy_pj, after.cycles
        ),
        format!(
            "the intermediate array's {} re-reads become register accesses ({:.1}% energy saved)",
            before.daccesses - after.daccesses,
            100.0 * (1.0 - after.energy_pj / before.energy_pj)
        ),
    ];
    ExperimentResult {
        id: "F2",
        title: "Fig. 2: scalar replacement of an intermediate array",
        paper: "2n memory accesses for the intermediate array become register accesses",
        lines,
        json: json!({
            "accesses_before": before.daccesses, "accesses_after": after.daccesses,
            "energy_before_pj": before.energy_pj, "energy_after_pj": after.energy_pj,
        }),
    }
}

/// §II-C1 (reference 42) + §III-A (Catthoor): the Liu-Svensson memory model
/// and memory-hierarchy exploration. The model's per-access energy grows
/// with capacity, so there is an energy-optimal cache size for each
/// workload: big enough to kill misses, no bigger.
pub fn memory_exploration() -> ExperimentResult {
    let mem = MemoryModel::default();
    let mut lines = vec!["Liu-Svensson organization sweep (2^14 words):".to_string()];
    let mut org_rows = Vec::new();
    for e in mem.energy_curve(14).iter().step_by(2) {
        lines.push(format!(
            "  {} rows x {} cols: array {:.0} + decode {:.0} + wordline {:.0} + colsel {:.0} + sense {:.0} = {:.0} fJ/access",
            1 << (e.n - e.k),
            1 << e.k,
            e.cell_array_fj,
            e.decoder_fj,
            e.wordline_fj,
            e.column_select_fj,
            e.sense_fj,
            e.total_fj()
        ));
        org_rows.push(json!({"rows": 1u64 << (e.n - e.k), "cols": 1u64 << e.k,
                              "total_fj": e.total_fj()}));
    }
    let best = mem.optimal_split(14);
    lines.push(format!(
        "optimal organization: {} rows x {} columns ({:.0} fJ/access)",
        1 << (best.n - best.k),
        1 << best.k,
        best.total_fj()
    ));

    // Hierarchy exploration: sweep the D-cache size for a streaming FIR
    // workload; per-access energy from the memory model, off-chip misses
    // cost a fixed large energy.
    lines.push(String::new());
    lines.push("cache-size exploration (fir 96x8, off-chip miss = 30 pJ):".to_string());
    let off_chip_fj = 30_000.0;
    let mut sweep = Vec::new();
    let mut best_cfg: Option<(usize, f64)> = None;
    for sets in [4usize, 8, 16, 32, 64, 128, 256] {
        let cfg = MachineConfig {
            dcache: CacheConfig { sets, ways: 2, block_words: 4 },
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg);
        m.set_trace_limit(0);
        let stats = m.run(&workloads::fir(96, 8), 100_000_000).expect("halts");
        // Cache words = sets * ways * block; per-access energy from the
        // optimal organization of that capacity.
        let words = (sets * 2 * 4) as f64;
        let n = words.log2().ceil() as u32;
        let e_access = mem.optimal_split(n.max(4)).total_fj();
        let energy = stats.daccesses as f64 * e_access + stats.dmisses as f64 * off_chip_fj;
        lines.push(format!(
            "  {sets:>4} sets ({:>5} words): miss rate {:>5.1}%, {:.0} fJ/access, memory energy {:.0} pJ",
            words,
            100.0 * stats.dmiss_rate(),
            e_access,
            energy / 1000.0
        ));
        sweep.push(json!({"sets": sets, "miss_rate": stats.dmiss_rate(),
                           "energy_pj": energy / 1000.0}));
        if best_cfg.is_none_or(|(_, e)| energy < e) {
            best_cfg = Some((sets, energy));
        }
    }
    let (best_sets, _) = best_cfg.expect("swept at least one size");
    lines.push(format!(
        "energy-optimal cache: {best_sets} sets — large caches pay per-access energy for hits they no longer need"
    ));
    ExperimentResult {
        id: "S2C-M",
        title: "Liu-Svensson memory model + hierarchy exploration",
        paper: "parametric memory power model; organize data so the cheap hierarchy levels are optimally utilized",
        lines,
        json: json!({"organizations": org_rows, "cache_sweep": sweep, "optimal_sets": best_sets}),
    }
}
