//! High-level-synthesis experiments: Table I, Figs. 4/5, Monteiro
//! power-management scheduling, activity-aware allocation, and multiple
//! supply-voltage scheduling.

use std::collections::HashMap;

use crate::json;
use hlpower::cdfg::{allocate, multivolt, profile, rtl, schedule, transform, Cdfg, Delays};

use crate::report::ExperimentResult;

/// The 11-tap FIR coefficient set used for Table I.
pub const TAPS: [i64; 11] = [9, 23, 51, 89, 119, 131, 119, 89, 51, 23, 9];

fn table1_breakdown(g: &Cdfg, seed: u64) -> (rtl::RtlBreakdown, usize, usize) {
    let delays = Delays::default();
    let mut limits = HashMap::new();
    limits.insert("mul", 2usize);
    limits.insert("add", 2usize);
    limits.insert("sub", 2usize);
    let sched = schedule::list_schedule(g, &delays, &limits);
    let pairs = allocate::allocation_pairs(g);
    let prof = profile::profile(g, profile::correlated_stream(g, seed, 600, 250), &pairs)
        .expect("stream binds inputs");
    let costs = rtl::RtlCosts::default();
    let binding = allocate::allocate(
        g,
        &delays,
        &sched,
        &prof,
        &costs,
        allocate::AllocationStrategy::ActivityAware,
    );
    let b = rtl::estimate(g, &delays, &sched, Some(&binding), &prof, &costs);
    (b, binding.unit_count(), binding.register_count())
}

/// Table I: FIR switched capacitance before/after constant-multiplication
/// conversion.
pub fn table1() -> ExperimentResult {
    let before_g = transform::fir_cdfg(&TAPS, 16);
    let after_g = transform::strength_reduce_const_mults(&before_g);
    let (b, bu, br) = table1_breakdown(&before_g, 11);
    let (a, au, ar) = table1_breakdown(&after_g, 11);
    let mut lines = vec![format!(
        "{:<18} {:>12} {:>8} | {:>12} {:>8}",
        "Component", "before (pF)", "%", "after (pF)", "%"
    )];
    for ((name, bpf, bpct), (_, apf, apct)) in b.rows().into_iter().zip(a.rows()) {
        lines.push(format!("{name:<18} {bpf:>12.2} {bpct:>7.2}% | {apf:>12.2} {apct:>7.2}%"));
    }
    lines.push(format!(
        "{:<18} {:>12.2} {:>8} | {:>12.2} {:>8}",
        "Total",
        b.total_pf(),
        "100%",
        a.total_pf(),
        "100%"
    ));
    lines.push(format!(
        "execution-unit ratio {:.1}x (paper 7.9x), total ratio {:.2}x (paper 2.65x)",
        b.execution_units_pf / a.execution_units_pf,
        b.total_pf() / a.total_pf()
    ));
    lines.push(format!("units {bu} -> {au}, registers {br} -> {ar}"));
    ExperimentResult {
        id: "T1",
        title: "Table I: Tap FIR capacitance before/after constant-mult conversion",
        paper:
            "exec units 739.65->93.07 pF (7.9x), total 1141.36->430.36 pF (2.65x), control rises",
        lines,
        json: json!({
            "before": {"exec": b.execution_units_pf, "regs": b.registers_clock_pf,
                        "ctrl": b.control_logic_pf, "wire": b.interconnect_pf, "total": b.total_pf()},
            "after": {"exec": a.execution_units_pf, "regs": a.registers_clock_pf,
                       "ctrl": a.control_logic_pf, "wire": a.interconnect_pf, "total": a.total_pf()},
            "exec_ratio": b.execution_units_pf / a.execution_units_pf,
            "total_ratio": b.total_pf() / a.total_pf(),
        }),
    }
}

/// Figs. 4 and 5: polynomial-evaluation restructuring.
pub fn figs_4_5() -> ExperimentResult {
    let delays = Delays::unit();
    let mut lines = Vec::new();
    let mut rows = Vec::new();
    for degree in [2usize, 3] {
        for (label, g) in [
            ("direct", transform::polynomial_direct(degree, 16)),
            ("Horner", transform::polynomial_horner(degree, 16)),
        ] {
            let counts = g.op_counts();
            let sched = schedule::asap(&g, &delays);
            let usage = schedule::resource_usage(&g, &delays, &sched);
            lines.push(format!(
                "degree {degree} {label:<7}: {} mult + {} add ops, ASAP needs {} multipliers / {} adders, critical path {} steps",
                counts.get("mul").copied().unwrap_or(0),
                counts.get("add").copied().unwrap_or(0),
                usage.get("mul").copied().unwrap_or(0),
                usage.get("add").copied().unwrap_or(0),
                sched.makespan
            ));
            rows.push(json!({
                "degree": degree, "form": label,
                "mul_ops": counts.get("mul").copied().unwrap_or(0),
                "add_ops": counts.get("add").copied().unwrap_or(0),
                "mul_units": usage.get("mul").copied().unwrap_or(0),
                "critical_path": sched.makespan,
            }));
        }
    }
    ExperimentResult {
        id: "F4F5",
        title: "Figs. 4/5: polynomial evaluation restructuring",
        paper:
            "2nd order: 2add+2mul cp3 -> 2add+1mul cp3; 3rd order: 3add+4mul cp4 -> 3add+2mul cp5",
        lines,
        json: json!(rows),
    }
}

/// §III-D: Monteiro power-management scheduling.
pub fn pm_scheduling() -> ExperimentResult {
    // A branchy CDFG: two expensive alternatives selected by a cheap
    // comparison, twice over.
    let mut g = Cdfg::new(16);
    let ins: Vec<_> = (0..8).map(|i| g.input(format!("x{i}"))).collect();
    let sel1 = g.lt(ins[0], ins[1]);
    let m1 = g.mul(ins[2], ins[3]);
    let a1 = g.add(ins[2], ins[3]);
    let y1 = g.mux(sel1, a1, m1);
    let sel2 = g.lt(ins[4], ins[5]);
    let m2 = g.mul(ins[6], ins[7]);
    let a2 = g.sub(ins[6], ins[7]);
    let y2 = g.mux(sel2, a2, m2);
    let y = g.add(y1, y2);
    g.output("y", y);
    let delays = Delays::default();
    let base = schedule::asap(&g, &delays);
    let strict = schedule::power_managed_schedule(&g, &delays, None);
    let relaxed = schedule::power_managed_schedule(&g, &delays, Some(base.makespan + 1));
    let lines = vec![
        format!("unconstrained makespan: {} steps", base.makespan),
        format!("no latency slack: {} manageable muxes", strict.manageable_muxes.len()),
        format!(
            "one extra step:  {} manageable muxes, expected ops disabled {:.0}% (makespan {})",
            relaxed.manageable_muxes.len(),
            100.0 * relaxed.expected_disabled_ops(0.5),
            relaxed.schedule.makespan
        ),
    ];
    ExperimentResult {
        id: "S3D",
        title: "Monteiro scheduling for power management",
        paper: "serializing control before mux branches lets unselected units shut down",
        lines,
        json: json!({
            "makespan": base.makespan,
            "manageable_strict": strict.manageable_muxes.len(),
            "manageable_relaxed": relaxed.manageable_muxes.len(),
            "disabled_fraction": relaxed.expected_disabled_ops(0.5),
        }),
    }
}

/// §III-E: activity-aware allocation savings over activity-blind.
///
/// Two multiply-accumulate channels share a pool of two multipliers: one
/// channel processes a slowly varying (sensor-like) signal, the other
/// random data. The activity-aware binder keeps each channel's products
/// on its own multiplier, so consecutive operands stay correlated; the
/// capacitance-only binder interleaves the channels and pays full-swing
/// switching at every hand-off — the §III-E effect.
pub fn allocation() -> ExperimentResult {
    use hlpower_rng::Rng;
    let mut savings = Vec::new();
    let mut lines = Vec::new();
    for seed in 0..6u64 {
        let taps = 4usize;
        let mut g = Cdfg::new(12);
        let l_in: Vec<_> = (0..taps).map(|i| g.input(format!("l{i}"))).collect();
        let r_in: Vec<_> = (0..taps).map(|i| g.input(format!("r{i}"))).collect();
        let c = g.constant(5);
        // Two serial MAC chains: the adds serialize, so the multiplies
        // spread over time and the binder has real channel choices.
        let mut lacc = None;
        let mut racc = None;
        for i in 0..taps {
            let lm = g.mul(l_in[i], c);
            let rm = g.mul(r_in[i], c);
            lacc = Some(match lacc {
                None => lm,
                Some(p) => g.add(p, lm),
            });
            racc = Some(match racc {
                None => rm,
                Some(p) => g.add(p, rm),
            });
        }
        let y = g.add(lacc.expect("taps > 0"), racc.expect("taps > 0"));
        g.output("y", y);
        let delays = Delays::default();
        let mut limits = HashMap::new();
        limits.insert("mul", 2usize);
        limits.insert("add", 2usize);
        let sched = schedule::list_schedule(&g, &delays, &limits);
        // Channel L: mean-reverting sensor signal; channel R: random data.
        let stream: Vec<HashMap<String, i64>> = {
            let mut rng = Rng::seed_from_u64(seed);
            let mut x: i64 = 0;
            (0..800)
                .map(|_| {
                    x = (x * 7) / 8 + rng.gen_range(-20i64..=20);
                    let mut m = HashMap::new();
                    for (i, _) in l_in.iter().enumerate() {
                        m.insert(format!("l{i}"), x + i as i64);
                    }
                    for (i, _) in r_in.iter().enumerate() {
                        m.insert(format!("r{i}"), rng.gen_range(-2048..2048));
                    }
                    m
                })
                .collect()
        };
        let pairs = allocate::allocation_pairs(&g);
        let prof = profile::profile(&g, stream, &pairs).expect("stream binds inputs");
        let costs = rtl::RtlCosts::default();
        let aware = allocate::allocate(
            &g,
            &delays,
            &sched,
            &prof,
            &costs,
            allocate::AllocationStrategy::ActivityAware,
        );
        let blind = allocate::allocate(
            &g,
            &delays,
            &sched,
            &prof,
            &costs,
            allocate::AllocationStrategy::CapacitanceOnly,
        );
        let ca = allocate::binding_switched_cap_ff(&g, &aware, &prof, &costs);
        let cb = allocate::binding_switched_cap_ff(&g, &blind, &prof, &costs);
        let saving = 100.0 * (1.0 - ca / cb);
        savings.push(saving);
        lines.push(format!(
            "seed {seed}: blind {cb:.0} fF -> aware {ca:.0} fF ({saving:.1}% saved)"
        ));
    }
    let min = savings.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = savings.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    lines.push(format!("savings range {min:.1}%..{max:.1}% (paper: 5%..33%)"));
    ExperimentResult {
        id: "S3E",
        title: "Raghunathan-Jha activity-aware allocation",
        paper: "power savings between 5 and 33% versus activity-blind allocation",
        lines,
        json: json!({"savings_percent": savings}),
    }
}

/// §III-F: multiple supply-voltage scheduling.
pub fn multivoltage() -> ExperimentResult {
    let delays = Delays::default();
    let model = multivolt::VoltageModel::default();
    let costs = rtl::RtlCosts::default();
    let levels = [3.3, 2.4, 1.8];
    let mut lines = Vec::new();
    let mut rows = Vec::new();
    for (name, g) in [
        ("horner-2", transform::polynomial_horner(2, 16)),
        ("horner-3", transform::polynomial_horner(3, 16)),
        ("mac-tree", {
            let mut g = Cdfg::new(16);
            let a = g.input("a");
            let b = g.input("b");
            let c = g.input("c");
            let d = g.input("d");
            let m1 = g.mul(a, b);
            let m2 = g.mul(m1, c);
            let s = g.add(c, d);
            let y = g.add(m2, s);
            g.output("y", y);
            g
        }),
    ] {
        let tight = multivolt::single_supply_latency(&g, &delays, &model, 3.3, 3.3);
        let baseline = multivolt::single_supply_energy_fj(&g, &costs, 3.3);
        for slack in [1.0, 1.5, 2.5] {
            match multivolt::schedule_voltages(&g, &delays, &costs, &levels, &model, tight * slack)
            {
                Ok(va) => {
                    let saving = 100.0 * (1.0 - va.energy_fj / baseline);
                    lines.push(format!(
                        "{name:<9} slack {slack:.1}x: energy {:.0} fJ vs {baseline:.0} fJ single-supply ({saving:.1}% saved, {} shifters)",
                        va.energy_fj, va.shifters
                    ));
                    rows.push(json!({"graph": name, "slack": slack, "saving_pct": saving,
                                      "shifters": va.shifters}));
                }
                Err(e) => lines.push(format!("{name:<9} slack {slack:.1}x: {e}")),
            }
        }
    }
    ExperimentResult {
        id: "S3F",
        title: "Chang-Pedram multiple supply-voltage scheduling",
        paper: "off-critical-path modules at reduced supplies cut energy at limited cost",
        lines,
        json: json!(rows),
    }
}
