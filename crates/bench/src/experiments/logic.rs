//! Logic-level experiments: precomputation, gated clocks, guarded
//! evaluation, low-power retiming, and FSM state encoding.

use crate::json;
use hlpower::fsm::decompose::decompose;
use hlpower::fsm::{generators, Encoding, EncodingStrategy, MarkovAnalysis, Stg};
use hlpower::netlist::{gen, streams, Library, Netlist};
use hlpower::optimize::{balance, clockgate, guard, precompute, retime};

use crate::report::ExperimentResult;

/// §III-I / Fig. 6: precomputation.
pub fn precomputation() -> ExperimentResult {
    let lib = Library::default();
    let mut lines = Vec::new();
    let mut rows = Vec::new();
    for width in [6usize, 8, 10] {
        let block = precompute::comparator_block(width);
        let stream: Vec<Vec<bool>> = streams::random(width as u64, 2 * width).take(2500).collect();
        let ranked = precompute::rank_subsets(&block, 2).expect("acyclic");
        let best = &ranked[0];
        let outcome = precompute::evaluate(&block, 2, &stream, &lib).expect("acyclic");
        lines.push(format!(
            "{width}-bit comparator: MSB predictor {:?} shuts down {:.0}% of cycles, power {:.0} -> {:.0} uW ({:.1}% saved)",
            best.subset,
            100.0 * best.shutdown_probability,
            outcome.baseline_uw,
            outcome.optimized_uw,
            100.0 * outcome.saving()
        ));
        rows.push(json!({"width": width, "shutdown_prob": best.shutdown_probability,
                          "saving": outcome.saving()}));
    }
    ExperimentResult {
        id: "F6",
        title: "Precomputation (Fig. 6) on magnitude comparators",
        paper: "predictors g1 = forall f, g0 = forall !f disable the block when they assert",
        lines,
        json: json!(rows),
    }
}

/// §III-I / Fig. 7: gated clocks.
pub fn gated_clocks() -> ExperimentResult {
    let lib = Library::default();
    let mut lines = Vec::new();
    let mut rows = Vec::new();
    for (name, work_states, p_req) in
        [("mostly-idle", 8usize, 0.05f64), ("moderately busy", 8, 0.3), ("saturated", 8, 0.9)]
    {
        let stg = generators::reactive_controller(work_states);
        let enc = Encoding::one_hot(&stg);
        let o = clockgate::evaluate(&stg, &enc, &lib, 4000, 7, p_req).expect("valid");
        lines.push(format!(
            "{name:<16} (req p={p_req}): gated {:>4.0}% of cycles, {:.1} -> {:.1} uW ({:+.1}% saving)",
            100.0 * o.gated_fraction,
            o.baseline_uw,
            o.gated_uw,
            100.0 * o.saving()
        ));
        rows.push(json!({"scenario": name, "request_prob": p_req,
                          "gated_fraction": o.gated_fraction, "saving": o.saving()}));
    }
    lines.push("gating pays off exactly when the machine is mostly idle (Fig. 7's regime)".into());
    ExperimentResult {
        id: "F7",
        title: "Gated clocks (Fig. 7) on reactive controllers",
        paper: "stopping the clock in self-loop cycles saves clock/register power minus Fa cost",
        lines,
        json: json!(rows),
    }
}

/// §III-I / Fig. 8: guarded evaluation.
pub fn guarded_evaluation() -> ExperimentResult {
    let lib = Library::default();
    let mut lines = Vec::new();
    let mut rows = Vec::new();
    for width in [6usize, 8, 10] {
        let nl = guard::guarded_mux_example(width);
        let candidates = guard::find_candidates(&nl, &lib, 8).expect("acyclic");
        let stream: Vec<Vec<bool>> =
            streams::random(width as u64 + 1, nl.input_count()).take(2000).collect();
        let best = &candidates[0];
        let (base, guarded, ok) = guard::evaluate(&nl, &lib, best, &stream).expect("acyclic");
        lines.push(format!(
            "width {width}: {} candidates; best guard p={:.2} over a {}-gate cone: energy {:.0} -> {:.0} fJ ({:.1}% saved, outputs {})",
            candidates.len(),
            best.guard_probability,
            best.cone.len(),
            base,
            guarded,
            100.0 * (1.0 - guarded / base),
            if ok { "correct" } else { "CORRUPTED" }
        ));
        rows.push(json!({"width": width, "candidates": candidates.len(),
                          "saving": 1.0 - guarded / base, "correct": ok}));
    }
    ExperimentResult {
        id: "F8",
        title: "Guarded evaluation (Fig. 8) via observability don't-cares",
        paper: "existing signals implying ODCs latch idle cones without resynthesis",
        lines,
        json: json!(rows),
    }
}

/// §III-J / Fig. 9: low-power retiming.
pub fn retiming() -> ExperimentResult {
    let lib = Library::default();
    let mut lines = Vec::new();
    let mut rows = Vec::new();
    for width in [4usize, 5, 6] {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", width);
        let b = nl.input_bus("b", width);
        let p = gen::array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        let stream: Vec<Vec<bool>> = streams::random(3, 2 * width).take(300).collect();
        let o = retime::low_power_retime(&nl, &lib, &stream, 4).expect("acyclic");
        lines.push(format!(
            "{width}x{width} multiplier (glitch fraction {:.0}%): output-registered {:.0} uW, best mid-cone cut {:.0} uW ({:.1}% saved at t={:.0} ps)",
            100.0 * o.baseline_glitch_fraction,
            o.baseline_uw,
            o.best_uw,
            100.0 * o.saving(),
            o.best_threshold_ps
        ));
        rows.push(json!({"width": width, "glitch_fraction": o.baseline_glitch_fraction,
                          "saving": o.saving()}));
    }
    ExperimentResult {
        id: "F9",
        title: "Low-power retiming (Fig. 9) of glitchy multipliers",
        paper: "registers at high-glitch outputs filter spurious transitions: E_g C_R + E_R C_L < E_g C_L",
        lines,
        json: json!(rows),
    }
}

/// §III-I companion (reference 109): glitch minimization by path
/// balancing.
pub fn path_balancing() -> ExperimentResult {
    let lib = Library::default();
    let mut lines = Vec::new();
    let mut rows = Vec::new();
    for width in [4usize, 5, 6] {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", width);
        let b = nl.input_bus("b", width);
        let p = gen::array_multiplier(&mut nl, &a, &b);
        nl.output_bus("p", &p);
        let stream: Vec<Vec<bool>> = streams::random(5, 2 * width).take(250).collect();
        // Sweep selectivity: pad only the glitchiest gates, short chains.
        let mut best: Option<balance::BalanceOutcome> = None;
        for (min_glitches, max_chain) in [(2u64, 8usize), (20, 3), (60, 2), (120, 2)] {
            let opts = balance::BalanceOptions {
                tolerance_ps: 60.0,
                min_glitches,
                max_chain,
                ..balance::BalanceOptions::default()
            };
            let o = balance::balance_paths(&nl, &lib, &stream, &opts).expect("acyclic");
            if best.as_ref().is_none_or(|b| o.balanced_uw < b.balanced_uw) {
                best = Some(o);
            }
        }
        let o = best.expect("swept at least one setting");
        lines.push(format!(
            "{width}x{width} multiplier: {} buffers added, glitch fraction {:.0}% -> {:.0}%, power {:.0} -> {:.0} uW ({:+.1}%)",
            o.buffers_added,
            100.0 * o.glitch_fraction_before,
            100.0 * o.glitch_fraction_after,
            o.baseline_uw,
            o.balanced_uw,
            100.0 * o.saving()
        ));
        rows.push(json!({"width": width, "buffers": o.buffers_added,
                          "glitch_before": o.glitch_fraction_before,
                          "glitch_after": o.glitch_fraction_after,
                          "saving": o.saving()}));
    }
    // The winning regime: a skewed parity chain driving a heavy load.
    // 3000 cycles: shorter streams leave the saving estimate inside its
    // own noise band (the per-cycle saving is ~1-3% of total power).
    let nl = balance::skewed_parity_example(8, 8);
    let stream: Vec<Vec<bool>> = streams::random(4, 8).take(3000).collect();
    let o = balance::balance_paths(&nl, &lib, &stream, &balance::BalanceOptions::default())
        .expect("acyclic");
    lines.push(format!(
        "skewed parity -> heavy load: {} buffers, glitch {:.0}% -> {:.0}%, power {:.0} -> {:.0} uW ({:+.1}%)",
        o.buffers_added,
        100.0 * o.glitch_fraction_before,
        100.0 * o.glitch_fraction_after,
        o.baseline_uw,
        o.balanced_uw,
        100.0 * o.saving()
    ));
    rows.push(json!({"circuit": "skewed_parity", "buffers": o.buffers_added,
                      "saving": o.saving()}));
    lines.push(
        "buffers cost capacitance: balancing loses on ripple arrays (long chains needed) and \
         wins where a few buffers stop glitches from reaching heavy loads — the same \
         arithmetic as Fig. 9's registers"
            .to_string(),
    );
    ExperimentResult {
        id: "F9-B",
        title: "Glitch minimization by path balancing (reference 109)",
        paper: "RT-level transformations reduce glitching in the steering/functional logic",
        lines,
        json: json!(rows),
    }
}

/// §III-H: FSM decomposition into selectively clocked submachines.
pub fn fsm_decomposition() -> ExperimentResult {
    let mut lines = Vec::new();
    let mut rows = Vec::new();
    // Two loosely coupled phases of a protocol controller plus random
    // machines for contrast.
    let two_phase = |k: usize| -> Stg {
        let mut stg = Stg::new(1);
        for i in 0..2 * k {
            stg.add_state(format!("s{i}"));
        }
        for i in 0..k {
            stg.set_transition(i, 0, (i + 1) % k, 0);
            stg.set_transition(i, 1, (i + 1) % k, 0);
            stg.set_transition(k + i, 0, k + (i + 1) % k, 1);
            stg.set_transition(k + i, 1, k + (i + 1) % k, 1);
        }
        stg.set_transition(0, 1, k, 0);
        stg.set_transition(k, 1, 0, 1);
        stg
    };
    let mut cases: Vec<(String, Stg, Vec<f64>)> = vec![
        ("two-phase-12".into(), two_phase(6), vec![0.9, 0.1]),
        ("two-phase-16".into(), two_phase(8), vec![0.95, 0.05]),
    ];
    for seed in 0..2u64 {
        cases.push((
            format!("random-{seed}"),
            generators::random_stg(1, 12, 1, seed),
            vec![0.5, 0.5],
        ));
    }
    for (name, stg, dist) in &cases {
        let m = MarkovAnalysis::with_input_distribution(stg, dist);
        let d = decompose(stg, &m);
        lines.push(format!(
            "{name:<14} cut crossing p={:.3}, residency {:.2}/{:.2}, clock saving {:.0}%",
            d.crossing_probability,
            d.residency[0],
            d.residency[1],
            100.0 * d.clock_saving(stg)
        ));
        rows.push(json!({"machine": name, "crossing": d.crossing_probability,
                          "clock_saving": d.clock_saving(stg)}));
    }
    lines.push(
        "loosely coupled machines decompose with rare cut crossings; only the active          submachine is clocked (refs 85-87)"
            .to_string(),
    );
    ExperimentResult {
        id: "S3H-D",
        title: "FSM decomposition with selective clocking",
        paper: "decomposition yields interconnected FSMs; shutdown applies since one is active at a time",
        lines,
        json: json!(rows),
    }
}

/// §III-H: FSM state-encoding comparison.
pub fn fsm_encoding() -> ExperimentResult {
    let mut lines = vec![format!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "machine", "binary", "gray", "one-hot", "random", "low-power"
    )];
    let mut rows = Vec::new();
    let mut machines: Vec<(String, hlpower::fsm::Stg)> = vec![
        ("seq-det".into(), generators::sequence_detector()),
        ("traffic".into(), generators::traffic_light()),
        ("reactive".into(), generators::reactive_controller(6)),
    ];
    for seed in 0..3u64 {
        machines.push((format!("rand-{seed}"), generators::random_stg(2, 16, 2, seed)));
    }
    for (name, stg) in &machines {
        let markov = MarkovAnalysis::uniform(stg);
        let mut cells = Vec::new();
        for strategy in [
            EncodingStrategy::Binary,
            EncodingStrategy::Gray,
            EncodingStrategy::OneHot,
            EncodingStrategy::Random(7),
            EncodingStrategy::LowPower(7),
        ] {
            let enc = Encoding::with_strategy(stg, &markov, strategy);
            cells.push(markov.expected_switching(stg, &enc));
        }
        lines.push(format!(
            "{name:<8} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>9.3}",
            cells[0], cells[1], cells[2], cells[3], cells[4]
        ));
        rows.push(json!({"machine": name, "binary": cells[0], "gray": cells[1],
                          "one_hot": cells[2], "random": cells[3], "low_power": cells[4]}));
    }
    lines.push("metric: expected state-line Hamming switching per cycle (steady state)".into());
    ExperimentResult {
        id: "S3H",
        title: "Low-power FSM state encoding",
        paper: "probability-weighted hypercube embedding beats fixed codes on switching",
        lines,
        json: json!(rows),
    }
}
