//! One module per experiment family; each function reproduces one table,
//! figure, or quantitative claim of the survey.

pub mod estimation;
pub mod hls;
pub mod logic;
pub mod software;
pub mod system;
