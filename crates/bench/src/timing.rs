//! A minimal wall-clock timing harness for the `benches/` targets (the
//! in-tree replacement for the external `criterion` dependency).
//!
//! Usage mirrors the criterion subset the benches used:
//!
//! ```no_run
//! let mut g = hlpower_bench::timing::group("table1");
//! g.bench_function("estimate", || 2 + 2);
//! g.finish();
//! ```
//!
//! Each benchmark is calibrated so one measurement lasts a target wall
//! time, then several samples are taken and the median per-iteration time
//! reported. Two effort levels:
//!
//! * default — quick mode: short calibration, few samples; suitable as a
//!   CI smoke test.
//! * `--features criterion` or `HLPOWER_BENCH_FULL=1` — full mode: longer
//!   measurements, more samples, tighter medians.
//!
//! Setting `HLPOWER_BENCH_METRICS=1` additionally prints, after each
//! benchmark, the per-iteration deltas of every instrumented counter the
//! measured closure moved (see `hlpower-obs`) — e.g. ITE calls per
//! iteration for the BDD benches.

use std::hint::black_box;
use std::time::{Duration, Instant};

use hlpower_obs::metrics;
use hlpower_obs::report::Value;

fn full_mode() -> bool {
    cfg!(feature = "criterion") || std::env::var_os("HLPOWER_BENCH_FULL").is_some()
}

fn metrics_mode() -> bool {
    std::env::var_os("HLPOWER_BENCH_METRICS").is_some()
}

/// A named group of related benchmarks (prints a header, aligns rows).
pub struct Group {
    name: String,
    rows: usize,
}

/// Starts a benchmark group named `name`.
pub fn group(name: &str) -> Group {
    Group { name: name.to_string(), rows: 0 }
}

impl Group {
    /// Measures `f`, reporting the median per-iteration time.
    ///
    /// The closure's return value is passed through
    /// [`std::hint::black_box`] so the computation cannot be optimized
    /// away.
    pub fn bench_function<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) {
        if self.rows == 0 {
            println!("group {}", self.name);
        }
        self.rows += 1;
        let (sample_time, samples) = if full_mode() {
            (Duration::from_millis(300), 20)
        } else {
            (Duration::from_millis(30), 5)
        };
        // Calibrate: how many iterations fit in one sample window?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let baseline = metrics_mode().then(metrics::snapshot);
        let mut total_iters = 0u64;
        let mut per_iter_ns: Vec<f64> = (0..samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                total_iters += iters;
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        if let Some(baseline) = baseline {
            print_counter_deltas(&metrics::snapshot().delta(&baseline), total_iters);
        }
        per_iter_ns.sort_by(f64::total_cmp);
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let (lo, hi) = (per_iter_ns[0], per_iter_ns[per_iter_ns.len() - 1]);
        println!(
            "  {name:<28} {:>12}/iter  (range {} .. {}, {iters} iters x {samples} samples)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi)
        );
    }

    /// Ends the group (prints a trailing blank line for readability).
    pub fn finish(self) {
        println!();
    }
}

/// Prints the nonzero integer counter deltas of a measured closure,
/// normalized per iteration (`HLPOWER_BENCH_METRICS=1` mode).
fn print_counter_deltas(delta: &hlpower_obs::report::Snapshot, iters: u64) {
    let iters = iters.max(1);
    for section in &delta.sections {
        for (name, value) in &section.entries {
            if let Value::Count(n) = value {
                if *n > 0 {
                    println!(
                        "      {:<32} {:>14.1}/iter",
                        format!("{}.{name}", section.name),
                        *n as f64 / iters as f64
                    );
                }
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}
