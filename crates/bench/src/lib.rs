//! # hlpower-bench — reproduction harness for the survey's experiments
//!
//! Library side of the `repro` binary: the experiment registry's building
//! blocks ([`experiments`]), the result container and in-tree JSON
//! emitter ([`report`]), and the wall-clock timing harness used by the
//! `benches/` targets ([`timing`]).
//!
//! Everything here is dependency-free: JSON emission is hand-rolled (see
//! [`report::Json`]) and timing uses `std::time` directly, so `cargo
//! build`/`cargo bench` need no network access.

#![warn(missing_docs)]

pub mod experiments;
pub mod ingest;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod timing;
