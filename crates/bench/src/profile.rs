//! The `repro --profile` power-attribution profiler.
//!
//! Runs the packed 64-lane kernel over the generator benchmark suite,
//! attributes every femtojoule of each run to its node / bus / power
//! group ([`hlpower::netlist::attribute`]), cross-checks the attribution
//! totals against the switched-capacitance [`PowerReport`] of the same
//! activity (hard failure on any mismatch beyond 1e-9 relative), and
//! dumps per-circuit hotspot reports under `results/profile/`:
//!
//! * `results/profile/<circuit>.json` — top-N gates, per-group and
//!   per-bus rollups, totals, and the reconciliation verdict;
//! * `results/profile/<circuit>.folded` — the same attribution in
//!   collapsed-stack format, ready for standard flamegraph tooling.

use hlpower::netlist::{
    attribute, gen, streams, Activity, AttributionReport, Library, Netlist, PowerReport, Sim64,
    LANES,
};
use hlpower_rng::Rng;

use crate::json;
use crate::report::Json;

/// Cycles simulated per lane (so each circuit sees `64 × PROFILE_CYCLES`
/// stimulus vectors in total).
pub const PROFILE_CYCLES: usize = 256;

/// Root seed for the 64 split stimulus streams.
pub const PROFILE_SEED: u64 = 0x0DAC_1997;

/// Hotspot entries kept in the JSON dump (the `.folded` file always
/// carries every toggling node).
pub const TOP_N: usize = 10;

/// The profiler's verdict for one benchmark circuit.
pub struct ProfileOutcome {
    /// Circuit name (also the `results/profile/` file stem).
    pub name: &'static str,
    /// The full per-node attribution.
    pub report: AttributionReport,
    /// The aggregate power report of the same activity.
    pub power: PowerReport,
    /// `Err` describes the first reconciliation mismatch, if any.
    pub reconcile: Result<(), String>,
}

/// Runs the packed kernel over one circuit: 64 lanes, each fed an
/// independent split stream, merged into a single [`Activity`]. Shared
/// with the `--ingest` pipeline so external netlists are profiled under
/// exactly the stimulus the generator suite sees.
pub fn packed_activity(nl: &Netlist) -> Activity {
    let width = nl.input_count();
    let mut sim = Sim64::new(nl).expect("benchmark circuits are acyclic");
    let root = Rng::seed_from_u64(PROFILE_SEED);
    let mut lanes: Vec<_> =
        (0..LANES as u64).map(|l| streams::random_rng(root.split(l), width)).collect();
    let mut words = vec![0u64; width];
    for _ in 0..PROFILE_CYCLES {
        words.iter_mut().for_each(|w| *w = 0);
        for (l, lane) in lanes.iter_mut().enumerate() {
            let vector = lane.next().expect("stimulus streams are infinite");
            for (i, &bit) in vector.iter().enumerate() {
                if bit {
                    words[i] |= 1u64 << l;
                }
            }
        }
        sim.step(&words).expect("stream width matches the input count");
    }
    sim.take_activity()
}

/// Profiles every circuit in [`gen::benchmark_suite`].
pub fn run_profile() -> Vec<ProfileOutcome> {
    let lib = Library::default();
    gen::benchmark_suite()
        .into_iter()
        .map(|(name, nl)| {
            let act = packed_activity(&nl);
            let power = act.power(&nl, &lib);
            let report = attribute(&nl, &lib, &act);
            let reconcile = report.reconcile(&power);
            ProfileOutcome { name, report, power, reconcile }
        })
        .collect()
}

fn rollup_json(
    rollups: &std::collections::BTreeMap<String, hlpower::netlist::RollupEntry>,
) -> Json {
    Json::Object(
        rollups
            .iter()
            .map(|(name, r)| {
                (
                    name.clone(),
                    json!({
                        "nodes": r.nodes,
                        "toggles": r.toggles,
                        "switched_cap_ff": r.switched_cap_ff,
                        "energy_fj": r.energy_fj,
                    }),
                )
            })
            .collect(),
    )
}

impl ProfileOutcome {
    /// The machine-readable hotspot report.
    pub fn to_json(&self) -> Json {
        let top = Json::Array(
            self.report
                .top_n(TOP_N)
                .iter()
                .map(|n| {
                    json!({
                        "label": &n.label,
                        "group": &n.group,
                        "bus": n.bus.clone().map(Json::from).unwrap_or(Json::Null),
                        "toggles": n.toggles,
                        "switched_cap_ff": n.switched_cap_ff,
                        "energy_fj": n.energy_fj,
                    })
                })
                .collect(),
        );
        json!({
            "circuit": self.name,
            "cycles": self.report.cycles,
            "reconciled": self.reconcile.is_ok(),
            "reconcile_error": self.reconcile.clone().err().map(Json::from).unwrap_or(Json::Null),
            "totals": {
                "switched_cap_pf": self.report.total_switched_cap_pf(),
                "energy_fj": self.report.total_energy_fj,
                "power_uw": self.power.total_power_uw(),
            },
            "clock": {
                "energy_fj": self.report.clock_energy_fj,
                "switched_cap_ff": self.report.clock_switched_cap_ff,
            },
            "hot_nodes": self.report.nodes.len(),
            "top": top,
            "by_group": rollup_json(&self.report.by_group),
            "by_bus": rollup_json(&self.report.by_bus),
        })
    }

    /// Writes `results/profile/<name>.json` and `<name>.folded`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_files(&self) -> std::io::Result<()> {
        std::fs::create_dir_all("results/profile")?;
        std::fs::write(format!("results/profile/{}.json", self.name), self.to_json().pretty())?;
        std::fs::write(
            format!("results/profile/{}.folded", self.name),
            self.report.collapsed_stacks(),
        )
    }

    /// Prints the circuit's hotspot block to stdout.
    pub fn print(&self) {
        println!(
            "\n== profile: {} ({} cycles, {:.3} pF switched, {:.2} uW) ==",
            self.name,
            self.report.cycles,
            self.report.total_switched_cap_pf(),
            self.power.total_power_uw()
        );
        match &self.reconcile {
            Ok(()) => println!("  attribution reconciles with the power report (<= 1e-9 rel)"),
            Err(e) => println!("  RECONCILIATION FAILED: {e}"),
        }
        for n in self.report.top_n(5) {
            println!(
                "  {:<24} {:>10} toggles {:>12.1} fJ  [{}]",
                n.label, n.toggles, n.energy_fj, n.group
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_circuit_reconciles() {
        for o in run_profile() {
            assert!(o.reconcile.is_ok(), "{}: {:?}", o.name, o.reconcile);
            assert!(o.report.total_energy_fj > 0.0, "{}: no energy attributed", o.name);
            assert!(!o.report.nodes.is_empty(), "{}: no hot nodes", o.name);
        }
    }

    #[test]
    fn profile_json_and_stacks_are_well_formed() {
        let outcomes = run_profile();
        let o = &outcomes[0];
        let text = o.to_json().pretty();
        assert!(text.contains("\"reconciled\": true"));
        assert!(text.contains("\"by_group\""));
        let stacks = o.report.collapsed_stacks();
        for line in stacks.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack<space>count");
            assert_eq!(stack.split(';').count(), 3, "bad frame depth: {line}");
            count.parse::<u64>().expect("integer sample count");
        }
    }

    #[test]
    fn packed_profile_activity_is_deterministic() {
        let (_, nl) = gen::benchmark_suite().remove(0);
        let a = packed_activity(&nl);
        let b = packed_activity(&nl);
        assert_eq!(a.toggles, b.toggles);
        assert_eq!(a.cycles, b.cycles);
    }
}
