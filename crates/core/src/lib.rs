//! # hlpower — High-Level Power Modeling, Estimation, and Optimization
//!
//! A from-scratch Rust reproduction of the survey by Macii, Pedram, and
//! Somenzi (DAC 1997 tutorial / IEEE TCAD 1998): every estimation model
//! and optimization technique the survey covers, implemented on top of
//! substrates built in this workspace — a gate-level netlist simulator, a
//! BDD package, an FSM/STG toolkit, a CDFG high-level-synthesis layer, and
//! a small RISC architectural simulator.
//!
//! The survey's Fig. 1 design flow hinges on a *design improvement loop*:
//! at each abstraction level, a power estimator ranks candidate design
//! options so the best can be taken before descending. The [`explore`]
//! module provides that loop as a small generic API; everything else is
//! re-exported from the implementation crates:
//!
//! | Module | Survey section | Contents |
//! |---|---|---|
//! | [`netlist`] | ground truth | gates, simulators, power accounting |
//! | [`bdd`] | §III-H tooling | ROBDDs, ZDDs, netlist bridges |
//! | [`fsm`] | §II-B1, §III-H | STGs, Markov analysis, encoding, synthesis |
//! | [`cdfg`] | §III-C..F | scheduling, allocation, transformations, RTL model |
//! | [`sw`] | §II-A, §III-A | RISC simulator, Tiwari model, cold scheduling |
//! | [`estimate`] | §II | entropy, complexity, macro-models, sampling |
//! | [`optimize`] | §III | bus codes, shutdown, precomputation, gating, guarding, retiming |
//! | [`obs`] | telemetry | counters, timers, metric snapshots (`repro --metrics`) |
//!
//! # Quickstart
//!
//! Rank two implementations of an FIR filter by estimated switched
//! capacitance (the Table I experiment in miniature):
//!
//! ```
//! use hlpower::cdfg::{rtl, transform};
//! use hlpower::explore::{rank, Candidate};
//!
//! let costs = rtl::RtlCosts::default();
//! let direct = transform::fir_cdfg(&[7, 13, 7], 16);
//! let reduced = transform::strength_reduce_const_mults(&direct);
//! let ranked = rank(vec![
//!     Candidate::new("constant multipliers", rtl::quick_estimate(&direct, 1, &costs).total_pf()),
//!     Candidate::new("shift-add (CSD)", rtl::quick_estimate(&reduced, 1, &costs).total_pf()),
//! ]);
//! assert_eq!(ranked[0].name, "shift-add (CSD)");
//! ```

#![warn(missing_docs)]

pub use hlpower_bdd as bdd;
pub use hlpower_cdfg as cdfg;
pub use hlpower_estimate as estimate;
pub use hlpower_fsm as fsm;
pub use hlpower_netlist as netlist;
pub use hlpower_obs as obs;
pub use hlpower_opt as optimize;
pub use hlpower_sw as sw;

pub mod explore;
