//! The Fig. 1 "design improvement loop": rank candidate design options by
//! an estimated power cost, track the decision trail across abstraction
//! levels, and report the final selection.

use std::fmt;

/// A candidate design option with an estimated power cost (any consistent
/// unit — microwatts, picofarads per cycle, femtojoules).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Human-readable option name.
    pub name: String,
    /// Estimated cost (lower is better).
    pub cost: f64,
}

impl Candidate {
    /// Creates a candidate.
    pub fn new(name: impl Into<String>, cost: f64) -> Self {
        Candidate { name: name.into(), cost }
    }
}

/// Sorts candidates ascending by cost (best first). NaN costs sort last.
pub fn rank(mut candidates: Vec<Candidate>) -> Vec<Candidate> {
    candidates.sort_by(|a, b| {
        a.cost.partial_cmp(&b.cost).unwrap_or_else(|| a.cost.is_nan().cmp(&b.cost.is_nan()))
    });
    candidates
}

/// One decision taken in the design improvement loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Abstraction level / loop stage label (e.g. "behavioral",
    /// "scheduling", "bus encoding").
    pub stage: String,
    /// All options considered, ranked best first.
    pub ranked: Vec<Candidate>,
}

impl Decision {
    /// The winning option.
    ///
    /// # Panics
    ///
    /// Panics if the decision has no candidates.
    pub fn winner(&self) -> &Candidate {
        self.ranked.first().expect("decision must have candidates")
    }

    /// The ratio of the worst to the best candidate's cost (how much the
    /// feedback loop mattered at this stage).
    pub fn spread(&self) -> f64 {
        match (self.ranked.first(), self.ranked.last()) {
            (Some(best), Some(worst)) if best.cost > 0.0 => worst.cost / best.cost,
            _ => 1.0,
        }
    }
}

/// A level-by-level record of the design improvement loop (Fig. 1): each
/// stage ranks its options with a power estimator and commits the winner
/// before descending to the next abstraction level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DesignLoop {
    decisions: Vec<Decision>,
}

impl DesignLoop {
    /// Starts an empty loop record.
    pub fn new() -> Self {
        DesignLoop::default()
    }

    /// Ranks the candidates for a stage, records the decision, and
    /// returns the winner's name.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn decide(&mut self, stage: impl Into<String>, candidates: Vec<Candidate>) -> String {
        assert!(!candidates.is_empty(), "a design decision needs at least one option");
        let ranked = rank(candidates);
        let winner = ranked[0].name.clone();
        self.decisions.push(Decision { stage: stage.into(), ranked });
        winner
    }

    /// All decisions, in the order they were taken.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Product of per-stage spreads: a rough factor of how much power the
    /// level-by-level feedback saved versus worst-case choices.
    pub fn cumulative_spread(&self) -> f64 {
        self.decisions.iter().map(Decision::spread).product()
    }
}

impl fmt::Display for DesignLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.decisions {
            writeln!(
                f,
                "[{}] -> {} (cost {:.3}, spread {:.2}x over {} options)",
                d.stage,
                d.winner().name,
                d.winner().cost,
                d.spread(),
                d.ranked.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_orders_by_cost() {
        let r = rank(vec![
            Candidate::new("b", 2.0),
            Candidate::new("a", 1.0),
            Candidate::new("c", 3.0),
        ]);
        let names: Vec<&str> = r.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn nan_costs_rank_last() {
        let r = rank(vec![Candidate::new("nan", f64::NAN), Candidate::new("ok", 5.0)]);
        assert_eq!(r[0].name, "ok");
    }

    #[test]
    fn loop_records_decisions_and_spread() {
        let mut dl = DesignLoop::new();
        let w1 =
            dl.decide("scheduling", vec![Candidate::new("asap", 10.0), Candidate::new("pm", 6.0)]);
        assert_eq!(w1, "pm");
        let w2 =
            dl.decide("bus encoding", vec![Candidate::new("none", 8.0), Candidate::new("t0", 2.0)]);
        assert_eq!(w2, "t0");
        assert_eq!(dl.decisions().len(), 2);
        // Spread: (10/6) * (8/2) = 6.67x.
        assert!((dl.cumulative_spread() - (10.0 / 6.0) * 4.0).abs() < 1e-9);
        let s = format!("{dl}");
        assert!(s.contains("scheduling") && s.contains("t0"));
    }

    #[test]
    #[should_panic(expected = "at least one option")]
    fn empty_decision_panics() {
        DesignLoop::new().decide("empty", vec![]);
    }
}
