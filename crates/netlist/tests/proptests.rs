//! Property-based tests for the gate-level substrate.

use hlpower_netlist::{gen, streams, words, Library, Netlist, ZeroDelaySim};
use proptest::prelude::*;

fn eval_once(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let mut sim = ZeroDelaySim::new(nl).expect("acyclic");
    sim.eval_combinational(inputs).expect("width matches")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ripple adders compute addition for arbitrary operand values.
    #[test]
    fn adder_matches_integer_addition(a in 0u64..256, b in 0u64..256) {
        let mut nl = Netlist::new();
        let ab = nl.input_bus("a", 8);
        let bb = nl.input_bus("b", 8);
        let zero = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &ab, &bb, zero);
        nl.output_bus("s", &s);
        let mut v = words::to_bits(a, 8);
        v.extend(words::to_bits(b, 8));
        let out = eval_once(&nl, &v);
        prop_assert_eq!(words::from_bits(&out), a + b);
    }

    /// Array multipliers compute multiplication for arbitrary operands.
    #[test]
    fn multiplier_matches_integer_multiplication(a in 0u64..64, b in 0u64..64) {
        let mut nl = Netlist::new();
        let ab = nl.input_bus("a", 6);
        let bb = nl.input_bus("b", 6);
        let p = gen::array_multiplier(&mut nl, &ab, &bb);
        nl.output_bus("p", &p);
        let mut v = words::to_bits(a, 6);
        v.extend(words::to_bits(b, 6));
        let out = eval_once(&nl, &v);
        prop_assert_eq!(words::from_bits(&out), a * b);
    }

    /// CSD constant multipliers agree with multiplication for any constant.
    #[test]
    fn csd_multiplier_correct(k in 1u64..512, x in 0u64..64) {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 6);
        let p = gen::csd_const_multiplier(&mut nl, &a, k);
        nl.output_bus("p", &p);
        let w = p.len();
        let out = eval_once(&nl, &words::to_bits(x, 6));
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        prop_assert_eq!(words::from_bits(&out), (x * k) & mask);
    }

    /// CSD digit strings reconstruct the constant and have no adjacent
    /// nonzero digits.
    #[test]
    fn csd_digits_invariants(k in 0u64..100_000) {
        let digits = gen::csd_digits(k);
        let value: i128 = digits.iter().enumerate().map(|(i, &d)| (d as i128) << i).sum();
        prop_assert_eq!(value, k as i128);
        for w in digits.windows(2) {
            prop_assert!(!(w[0] != 0 && w[1] != 0));
        }
    }

    /// Simulation is deterministic: the same stream yields identical
    /// activity twice.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..1000) {
        let mut nl = Netlist::new();
        gen::random_logic(&mut nl, seed, 6, 30, 3);
        let run = |s: u64| {
            let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
            sim.run(streams::random(s, nl.input_count()).take(100))
        };
        prop_assert_eq!(run(seed).toggles, run(seed).toggles);
    }

    /// Random logic netlists are always acyclic and power-analyzable.
    #[test]
    fn random_logic_is_well_formed(seed in 0u64..500, gates in 5usize..80) {
        let mut nl = Netlist::new();
        gen::random_logic(&mut nl, seed, 8, gates, 4);
        prop_assert!(nl.topo_order().is_ok());
        let lib = Library::default();
        let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
        let act = sim.run(streams::random(seed, 8).take(50));
        let report = act.power(&nl, &lib);
        prop_assert!(report.total_power_uw().is_finite());
        prop_assert!(report.total_power_uw() >= 0.0);
    }

    /// Word helpers round-trip for any width.
    #[test]
    fn word_round_trip(v in 0u64..u64::MAX, width in 1usize..64) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let bits = words::to_bits(v, width);
        prop_assert_eq!(words::from_bits(&bits), v & mask);
    }

    /// Hamming distance is a metric on bit vectors (symmetry + identity).
    #[test]
    fn hamming_is_symmetric(a in 0u64..65536, b in 0u64..65536) {
        let va = words::to_bits(a, 16);
        let vb = words::to_bits(b, 16);
        prop_assert_eq!(words::hamming(&va, &vb), words::hamming(&vb, &va));
        prop_assert_eq!(words::hamming(&va, &va), 0);
        prop_assert_eq!(words::hamming(&va, &vb) as u32, (a ^ b).count_ones());
    }
}
