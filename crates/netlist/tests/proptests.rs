//! Property-based tests for the gate-level substrate. Runs on the
//! in-tree [`hlpower_rng::check`] harness.

use hlpower_netlist::{
    gen, streams, words, GateKind, IncrementalSim, Library, Netlist, NetlistEditor, NodeId,
    NodeKind, ZeroDelaySim,
};
use hlpower_rng::check::Check;
use hlpower_rng::Rng;

fn eval_once(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let mut sim = ZeroDelaySim::new(nl).expect("acyclic");
    sim.eval_combinational(inputs).expect("width matches")
}

/// Ripple adders compute addition for arbitrary operand values.
#[test]
fn adder_matches_integer_addition() {
    Check::new("adder_matches_integer_addition").cases(64).run(|rng| {
        let a = rng.gen_range(0u64..256);
        let b = rng.gen_range(0u64..256);
        let mut nl = Netlist::new();
        let ab = nl.input_bus("a", 8);
        let bb = nl.input_bus("b", 8);
        let zero = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &ab, &bb, zero);
        nl.output_bus("s", &s);
        let mut v = words::to_bits(a, 8);
        v.extend(words::to_bits(b, 8));
        let out = eval_once(&nl, &v);
        assert_eq!(words::from_bits(&out), a + b);
    });
}

/// Array multipliers compute multiplication for arbitrary operands.
#[test]
fn multiplier_matches_integer_multiplication() {
    Check::new("multiplier_matches_integer_multiplication").cases(64).run(|rng| {
        let a = rng.gen_range(0u64..64);
        let b = rng.gen_range(0u64..64);
        let mut nl = Netlist::new();
        let ab = nl.input_bus("a", 6);
        let bb = nl.input_bus("b", 6);
        let p = gen::array_multiplier(&mut nl, &ab, &bb);
        nl.output_bus("p", &p);
        let mut v = words::to_bits(a, 6);
        v.extend(words::to_bits(b, 6));
        let out = eval_once(&nl, &v);
        assert_eq!(words::from_bits(&out), a * b);
    });
}

/// CSD constant multipliers agree with multiplication for any constant.
#[test]
fn csd_multiplier_correct() {
    Check::new("csd_multiplier_correct").cases(64).run(|rng| {
        let k = rng.gen_range(1u64..512);
        let x = rng.gen_range(0u64..64);
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 6);
        let p = gen::csd_const_multiplier(&mut nl, &a, k);
        nl.output_bus("p", &p);
        let w = p.len();
        let out = eval_once(&nl, &words::to_bits(x, 6));
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        assert_eq!(words::from_bits(&out), (x * k) & mask);
    });
}

/// CSD digit strings reconstruct the constant and have no adjacent
/// nonzero digits.
#[test]
fn csd_digits_invariants() {
    Check::new("csd_digits_invariants").cases(64).run(|rng| {
        let k = rng.gen_range(0u64..100_000);
        let digits = gen::csd_digits(k);
        let value: i128 = digits.iter().enumerate().map(|(i, &d)| (d as i128) << i).sum();
        assert_eq!(value, k as i128);
        for w in digits.windows(2) {
            assert!(!(w[0] != 0 && w[1] != 0));
        }
    });
}

/// Simulation is deterministic: the same stream yields identical
/// activity twice.
#[test]
fn simulation_is_deterministic() {
    Check::new("simulation_is_deterministic").cases(64).run(|rng| {
        let seed = rng.gen_range(0u64..1000);
        let mut nl = Netlist::new();
        gen::random_logic(&mut nl, seed, 6, 30, 3);
        let run = |s: u64| {
            let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
            sim.run(streams::random(s, nl.input_count()).take(100)).expect("width matches")
        };
        assert_eq!(run(seed).toggles, run(seed).toggles);
    });
}

/// Random logic netlists are always acyclic and power-analyzable.
#[test]
fn random_logic_is_well_formed() {
    Check::new("random_logic_is_well_formed").cases(64).run(|rng| {
        let seed = rng.gen_range(0u64..500);
        let gates = rng.gen_range(5usize..80);
        let mut nl = Netlist::new();
        gen::random_logic(&mut nl, seed, 8, gates, 4);
        assert!(nl.topo_order().is_ok());
        let lib = Library::default();
        let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
        let act = sim.run(streams::random(seed, 8).take(50)).expect("width matches");
        let report = act.power(&nl, &lib);
        assert!(report.total_power_uw().is_finite());
        assert!(report.total_power_uw() >= 0.0);
    });
}

/// Word helpers round-trip for any width.
#[test]
fn word_round_trip() {
    Check::new("word_round_trip").cases(64).run(|rng| {
        let v = rng.next_u64();
        let width = rng.gen_range(1usize..=64);
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let bits = words::to_bits(v, width);
        assert_eq!(words::from_bits(&bits), v & mask);
    });
}

/// One random gate-level mutation of `current`, guaranteed acyclic (new
/// fanins always have smaller node indices than the gate that reads
/// them, and `random_logic` builds netlists in topological index order).
/// Returns the mutated netlist and the declared change set.
fn random_mutation(rng: &mut Rng, current: &Netlist) -> (Netlist, Vec<NodeId>) {
    let ids: Vec<NodeId> = current.node_ids().collect();
    let gates: Vec<NodeId> = ids
        .iter()
        .copied()
        .filter(|&id| matches!(current.kind(id), NodeKind::Gate { .. }))
        .collect();
    let variadic =
        [GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor, GateKind::Xor, GateKind::Xnor];
    let mut mutated = current.clone();
    let target = gates[rng.gen_range(0..gates.len())];
    let NodeKind::Gate { kind, inputs } = current.kind(target).clone() else { unreachable!() };
    match rng.gen_range(0u32..3) {
        // Function flip: new gate kind over the same fanins.
        0 => {
            let new_kind = variadic[rng.gen_range(0..variadic.len())];
            mutated.replace_gate(target, new_kind, inputs).expect("arity holds");
        }
        // Rewire: repoint one fanin at an arbitrary earlier node.
        1 => {
            let mut ins = inputs;
            let pin = rng.gen_range(0..ins.len());
            ins[pin] = ids[rng.gen_range(0..target.index())];
            mutated.replace_gate(target, kind, ins).expect("arity holds");
        }
        // Append: fresh logic over earlier nodes, spliced into a fanin.
        _ => {
            let new_kind = variadic[rng.gen_range(0..variadic.len())];
            let a = ids[rng.gen_range(0..target.index())];
            let b = ids[rng.gen_range(0..target.index())];
            let fresh = mutated.gate(new_kind, [a, b]).expect("arity holds");
            let mut ins = inputs;
            let pin = rng.gen_range(0..ins.len());
            ins[pin] = fresh;
            mutated.replace_gate(target, kind, ins).expect("arity holds");
        }
    }
    (mutated, vec![target])
}

/// Dirty-cone re-simulation equals a full recompile-and-replay —
/// activity bit-for-bit and cached value words word-for-word — across a
/// random sequence of committed mutations, and the cone is always a
/// superset of the nodes whose values actually changed.
#[test]
fn dirty_cone_resim_matches_full_replay() {
    Check::new("dirty_cone_resim_matches_full_replay").cases(32).run(|rng| {
        let seed = rng.next_u64();
        let n_inputs = rng.gen_range(3usize..8);
        let n_gates = rng.gen_range(10usize..60);
        let mut nl = Netlist::new();
        gen::random_logic(&mut nl, seed, n_inputs, n_gates, 3);
        let cycles = rng.gen_range(60usize..200);
        let stream: Vec<Vec<bool>> = streams::random(seed, n_inputs).take(cycles).collect();
        let mut inc = IncrementalSim::record(&nl, &stream).expect("combinational");
        let mut current = nl;
        for _ in 0..rng.gen_range(1usize..5) {
            let (mutated, changed) = random_mutation(rng, &current);
            let resim = inc.resim(&mutated, &changed).expect("incremental edit");
            let full = IncrementalSim::record(&mutated, &stream).expect("combinational");
            // The cone is a superset of every node whose value changed...
            let mut in_cone = vec![false; mutated.node_count()];
            for &id in &resim.cone {
                in_cone[id.index()] = true;
            }
            for id in current.node_ids() {
                if inc.value_words(id) != full.value_words(id) {
                    assert!(in_cone[id.index()], "node {id} changed outside the cone");
                }
            }
            // ...and `changed_values` is inside the cone.
            for &id in &resim.changed_values {
                assert!(in_cone[id.index()]);
            }
            // The delta activity is bit-identical to the full replay.
            assert_eq!(resim.activity, full.activity());
            // Committing leaves the cache word-for-word equal to it too.
            inc.commit(&mutated, &resim);
            for id in mutated.node_ids() {
                assert_eq!(
                    inc.value_words(id),
                    full.value_words(id),
                    "committed cache diverged at node {id}"
                );
            }
            current = mutated;
        }
    });
}

/// The recorded base activity always matches the scalar simulator, for
/// arbitrary random netlists and stream lengths (including non-multiples
/// of 64, the packed word width).
#[test]
fn incremental_recording_matches_scalar_oracle() {
    Check::new("incremental_recording_matches_scalar_oracle").cases(32).run(|rng| {
        let seed = rng.next_u64();
        let n_inputs = rng.gen_range(2usize..7);
        let mut nl = Netlist::new();
        gen::random_logic(&mut nl, seed, n_inputs, rng.gen_range(5usize..40), 2);
        let cycles = rng.gen_range(1usize..150);
        let stream: Vec<Vec<bool>> = streams::random(seed, n_inputs).take(cycles).collect();
        let inc = IncrementalSim::record(&nl, &stream).expect("combinational");
        let mut scalar = ZeroDelaySim::new(&nl).expect("acyclic");
        let act = scalar.run(stream.iter().cloned()).expect("width matches");
        assert_eq!(inc.activity(), act);
    });
}

/// Rolling back an editor session — any interleaving of gate
/// replacements, rewires, insertions (gates and registers), removals,
/// and output rebinds, including ops that were rejected mid-sequence —
/// restores the netlist to structural equality with its pre-edit state.
#[test]
fn editor_rollback_restores_structural_equality() {
    Check::new("editor_rollback_restores_structural_equality").cases(48).run(|rng| {
        let mut nl = Netlist::new();
        gen::random_logic(&mut nl, rng.next_u64(), rng.gen_range(3usize..7), 25, 3);
        let before = nl.clone();
        let ids: Vec<NodeId> = nl.node_ids().collect();
        let gates: Vec<NodeId> = ids
            .iter()
            .copied()
            .filter(|&id| matches!(nl.kind(id), NodeKind::Gate { .. }))
            .collect();
        let n_outputs = nl.outputs().len();
        let mut ed = NetlistEditor::begin(&mut nl);
        for _ in 0..rng.gen_range(1usize..12) {
            let target = gates[rng.gen_range(0..gates.len())];
            // Rejected ops (arity, liveness, cycles) must leave no
            // journal residue, so failures are ignored rather than
            // avoided.
            let _ = match rng.gen_range(0u32..6) {
                0 => ed
                    .replace_gate(target, GateKind::Nand, [ids[0], ids[1 % ids.len()]])
                    .map(|_| ()),
                1 => {
                    let src = ids[rng.gen_range(0..target.index().max(1))];
                    ed.rewire_input(target, 0, src).map(|_| ())
                }
                2 => {
                    let a = ids[rng.gen_range(0..ids.len())];
                    let b = ids[rng.gen_range(0..ids.len())];
                    ed.insert_gate(GateKind::Xor, [a, b]).map(|fresh| {
                        let _ = ed.rewire_input(target, 0, fresh);
                    })
                }
                3 => {
                    let d = ids[rng.gen_range(0..ids.len())];
                    ed.insert_dff(d, rng.gen_range(0u32..2) == 0).map(|_| ())
                }
                4 => ed.remove_gate(target),
                _ => {
                    let idx = rng.gen_range(0..n_outputs);
                    let node = ids[rng.gen_range(0..ids.len())];
                    ed.rebind_output(idx, node)
                }
            };
        }
        ed.rollback();
        assert_eq!(nl, before, "rollback left the netlist structurally different");
    });
}

/// Hamming distance is a metric on bit vectors (symmetry + identity).
#[test]
fn hamming_is_symmetric() {
    Check::new("hamming_is_symmetric").cases(64).run(|rng| {
        let a = rng.gen_range(0u64..65536);
        let b = rng.gen_range(0u64..65536);
        let va = words::to_bits(a, 16);
        let vb = words::to_bits(b, 16);
        assert_eq!(words::hamming(&va, &vb), words::hamming(&vb, &va));
        assert_eq!(words::hamming(&va, &va), 0);
        assert_eq!(words::hamming(&va, &vb) as u32, (a ^ b).count_ones());
    });
}
