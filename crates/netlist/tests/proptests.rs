//! Property-based tests for the gate-level substrate. Runs on the
//! in-tree [`hlpower_rng::check`] harness.

use hlpower_netlist::{gen, streams, words, Library, Netlist, ZeroDelaySim};
use hlpower_rng::check::Check;

fn eval_once(nl: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let mut sim = ZeroDelaySim::new(nl).expect("acyclic");
    sim.eval_combinational(inputs).expect("width matches")
}

/// Ripple adders compute addition for arbitrary operand values.
#[test]
fn adder_matches_integer_addition() {
    Check::new("adder_matches_integer_addition").cases(64).run(|rng| {
        let a = rng.gen_range(0u64..256);
        let b = rng.gen_range(0u64..256);
        let mut nl = Netlist::new();
        let ab = nl.input_bus("a", 8);
        let bb = nl.input_bus("b", 8);
        let zero = nl.constant(false);
        let s = gen::ripple_adder(&mut nl, &ab, &bb, zero);
        nl.output_bus("s", &s);
        let mut v = words::to_bits(a, 8);
        v.extend(words::to_bits(b, 8));
        let out = eval_once(&nl, &v);
        assert_eq!(words::from_bits(&out), a + b);
    });
}

/// Array multipliers compute multiplication for arbitrary operands.
#[test]
fn multiplier_matches_integer_multiplication() {
    Check::new("multiplier_matches_integer_multiplication").cases(64).run(|rng| {
        let a = rng.gen_range(0u64..64);
        let b = rng.gen_range(0u64..64);
        let mut nl = Netlist::new();
        let ab = nl.input_bus("a", 6);
        let bb = nl.input_bus("b", 6);
        let p = gen::array_multiplier(&mut nl, &ab, &bb);
        nl.output_bus("p", &p);
        let mut v = words::to_bits(a, 6);
        v.extend(words::to_bits(b, 6));
        let out = eval_once(&nl, &v);
        assert_eq!(words::from_bits(&out), a * b);
    });
}

/// CSD constant multipliers agree with multiplication for any constant.
#[test]
fn csd_multiplier_correct() {
    Check::new("csd_multiplier_correct").cases(64).run(|rng| {
        let k = rng.gen_range(1u64..512);
        let x = rng.gen_range(0u64..64);
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", 6);
        let p = gen::csd_const_multiplier(&mut nl, &a, k);
        nl.output_bus("p", &p);
        let w = p.len();
        let out = eval_once(&nl, &words::to_bits(x, 6));
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        assert_eq!(words::from_bits(&out), (x * k) & mask);
    });
}

/// CSD digit strings reconstruct the constant and have no adjacent
/// nonzero digits.
#[test]
fn csd_digits_invariants() {
    Check::new("csd_digits_invariants").cases(64).run(|rng| {
        let k = rng.gen_range(0u64..100_000);
        let digits = gen::csd_digits(k);
        let value: i128 = digits.iter().enumerate().map(|(i, &d)| (d as i128) << i).sum();
        assert_eq!(value, k as i128);
        for w in digits.windows(2) {
            assert!(!(w[0] != 0 && w[1] != 0));
        }
    });
}

/// Simulation is deterministic: the same stream yields identical
/// activity twice.
#[test]
fn simulation_is_deterministic() {
    Check::new("simulation_is_deterministic").cases(64).run(|rng| {
        let seed = rng.gen_range(0u64..1000);
        let mut nl = Netlist::new();
        gen::random_logic(&mut nl, seed, 6, 30, 3);
        let run = |s: u64| {
            let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
            sim.run(streams::random(s, nl.input_count()).take(100)).expect("width matches")
        };
        assert_eq!(run(seed).toggles, run(seed).toggles);
    });
}

/// Random logic netlists are always acyclic and power-analyzable.
#[test]
fn random_logic_is_well_formed() {
    Check::new("random_logic_is_well_formed").cases(64).run(|rng| {
        let seed = rng.gen_range(0u64..500);
        let gates = rng.gen_range(5usize..80);
        let mut nl = Netlist::new();
        gen::random_logic(&mut nl, seed, 8, gates, 4);
        assert!(nl.topo_order().is_ok());
        let lib = Library::default();
        let mut sim = ZeroDelaySim::new(&nl).expect("acyclic");
        let act = sim.run(streams::random(seed, 8).take(50)).expect("width matches");
        let report = act.power(&nl, &lib);
        assert!(report.total_power_uw().is_finite());
        assert!(report.total_power_uw() >= 0.0);
    });
}

/// Word helpers round-trip for any width.
#[test]
fn word_round_trip() {
    Check::new("word_round_trip").cases(64).run(|rng| {
        let v = rng.next_u64();
        let width = rng.gen_range(1usize..=64);
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let bits = words::to_bits(v, width);
        assert_eq!(words::from_bits(&bits), v & mask);
    });
}

/// Hamming distance is a metric on bit vectors (symmetry + identity).
#[test]
fn hamming_is_symmetric() {
    Check::new("hamming_is_symmetric").cases(64).run(|rng| {
        let a = rng.gen_range(0u64..65536);
        let b = rng.gen_range(0u64..65536);
        let va = words::to_bits(a, 16);
        let vb = words::to_bits(b, 16);
        assert_eq!(words::hamming(&va, &vb), words::hamming(&vb, &va));
        assert_eq!(words::hamming(&va, &va), 0);
        assert_eq!(words::hamming(&va, &vb) as u32, (a ^ b).count_ones());
    });
}
